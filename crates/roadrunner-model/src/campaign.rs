//! Campaign-level modeling: time-to-solution for the paper's full
//! parameter study, including restart-dump overhead and machine
//! availability — the operational arithmetic behind running a
//! trillion-particle study on a machine whose mean time between
//! interrupts is measured in hours (a real constraint the Roadrunner
//! papers discuss).

use crate::model::{NodeLoad, PerfModel};

/// One run of a parameter study.
#[derive(Clone, Copy, Debug)]
pub struct RunPlan {
    /// Steps of physics per run.
    pub steps: u64,
    /// Steps between restart dumps (0 = never).
    pub checkpoint_interval: u64,
    /// Seconds to write one restart dump (dominated by particle bytes
    /// through the I/O system).
    pub checkpoint_seconds: f64,
}

impl RunPlan {
    /// Dump cost estimate from the particle count and an aggregate
    /// filesystem bandwidth (GB/s): 32 bytes per particle.
    pub fn checkpoint_cost(n_particles: f64, fs_bandwidth_gbs: f64) -> f64 {
        n_particles * 32.0 / (fs_bandwidth_gbs * 1e9)
    }
}

/// Campaign model: `n_runs` runs on the machine described by `model`.
#[derive(Clone, Copy, Debug)]
pub struct Campaign {
    pub model: PerfModel,
    pub load: NodeLoad,
    pub plan: RunPlan,
    /// Runs in the study (the paper scanned laser intensity).
    pub n_runs: usize,
    /// Mean time between machine interrupts (seconds); each interrupt
    /// costs the work since the last dump plus a restart.
    pub mtbi_seconds: f64,
    /// Seconds to restart after an interrupt (requeue + reload).
    pub restart_seconds: f64,
}

/// The campaign's predicted cost breakdown (seconds).
#[derive(Clone, Copy, Debug)]
pub struct CampaignCost {
    pub physics: f64,
    pub checkpointing: f64,
    pub rework: f64,
    pub restarts: f64,
}

impl CampaignCost {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.physics + self.checkpointing + self.rework + self.restarts
    }

    /// Fraction of wall time doing physics.
    pub fn efficiency(&self) -> f64 {
        self.physics / self.total()
    }
}

impl Campaign {
    /// Predict the campaign's wall-clock cost.
    pub fn cost(&self) -> CampaignCost {
        let step_time = self.model.step_budget(&self.load).total();
        let physics_per_run = self.plan.steps as f64 * step_time;
        let physics = physics_per_run * self.n_runs as f64;

        let dumps_per_run = self
            .plan
            .steps
            .checked_div(self.plan.checkpoint_interval)
            .unwrap_or(0) as f64;
        let checkpointing = dumps_per_run * self.plan.checkpoint_seconds * self.n_runs as f64;

        // Interrupts: Poisson at rate 1/MTBI over the productive time;
        // each one throws away on average half a checkpoint interval of
        // physics (or half a run if never dumping).
        let productive = physics + checkpointing;
        let n_interrupts = productive / self.mtbi_seconds;
        let rework_per_interrupt = if self.plan.checkpoint_interval > 0 {
            0.5 * self.plan.checkpoint_interval as f64 * step_time
        } else {
            0.5 * physics_per_run
        };
        CampaignCost {
            physics,
            checkpointing,
            rework: n_interrupts * rework_per_interrupt,
            restarts: n_interrupts * self.restart_seconds,
        }
    }

    /// The checkpoint interval (steps) minimizing total cost — the classic
    /// Young/Daly optimum `τ_opt = √(2·δ·MTBI)` expressed in steps.
    pub fn optimal_checkpoint_interval(&self) -> u64 {
        let step_time = self.model.step_budget(&self.load).total();
        let delta = self.plan.checkpoint_seconds;
        let tau = (2.0 * delta * self.mtbi_seconds).sqrt();
        (tau / step_time).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::model::KernelRates;

    fn paper_campaign(interval: u64) -> Campaign {
        let machine = Machine::roadrunner();
        let model = PerfModel {
            machine,
            rates: KernelRates::from_paper_inner_loop(&machine, 0.488),
        };
        let load = NodeLoad::paper_headline(&machine);
        Campaign {
            model,
            load,
            plan: RunPlan {
                steps: 10_000,
                checkpoint_interval: interval,
                checkpoint_seconds: RunPlan::checkpoint_cost(1.0e12, 50.0),
            },
            n_runs: 6, // the intensity scan
            mtbi_seconds: 6.0 * 3600.0,
            restart_seconds: 600.0,
        }
    }

    #[test]
    fn checkpoint_cost_is_io_bound() {
        // 1e12 particles × 32 B at 50 GB/s ≈ 640 s per dump.
        let c = RunPlan::checkpoint_cost(1.0e12, 50.0);
        assert!((c - 640.0).abs() < 1.0, "dump = {c}");
    }

    #[test]
    fn never_checkpointing_loses_runs_to_interrupts() {
        let with = paper_campaign(2000).cost();
        let without = paper_campaign(0).cost();
        // A multi-hour run without dumps replays far more work per
        // interrupt (half a run instead of half a dump interval).
        assert!(
            without.rework > 2.5 * with.rework,
            "{:?} vs {:?}",
            with,
            without
        );
        // Whether dumping wins *overall* depends on the dump cost; at the
        // assumed 50 GB/s filesystem it costs more wall time than the
        // rework it saves — exactly the trade Young/Daly optimizes, so
        // check the optimum interval lands between the two extremes.
        assert!(with.efficiency() > 0.5 && without.efficiency() > 0.5);
    }

    #[test]
    fn optimum_interval_beats_extremes() {
        let base = paper_campaign(1);
        let opt = base.optimal_checkpoint_interval();
        assert!(opt > 10, "opt = {opt}");
        let cost_opt = paper_campaign(opt).cost().total();
        let cost_tiny = paper_campaign(opt / 8).cost().total();
        let cost_huge = paper_campaign(opt * 8).cost().total();
        assert!(cost_opt <= cost_tiny, "opt {cost_opt} vs tiny {cost_tiny}");
        assert!(cost_opt <= cost_huge, "opt {cost_opt} vs huge {cost_huge}");
    }

    #[test]
    fn physics_time_matches_step_budget() {
        let c = paper_campaign(2000);
        let cost = c.cost();
        let step = c.model.step_budget(&c.load).total();
        assert!((cost.physics - 6.0 * 10_000.0 * step).abs() < 1e-6);
        assert!(cost.total() > cost.physics);
    }
}
