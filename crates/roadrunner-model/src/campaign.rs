//! Campaign-level modeling: time-to-solution for the paper's full
//! parameter study, including restart-dump overhead and machine
//! availability — the operational arithmetic behind running a
//! trillion-particle study on a machine whose mean time between
//! interrupts is measured in hours (a real constraint the Roadrunner
//! papers discuss).

use crate::model::{NodeLoad, PerfModel};

/// The Young/Daly optimal checkpoint period in *seconds*:
/// `τ_opt = √(2·δ·MTBI)` for a per-dump cost `δ` and mean time between
/// interrupts `MTBI` (both seconds). Degenerate inputs (zero or negative
/// cost or MTBI) yield 0.0, meaning "no useful optimum".
pub fn young_daly_interval_seconds(checkpoint_seconds: f64, mtbi_seconds: f64) -> f64 {
    if checkpoint_seconds <= 0.0 || mtbi_seconds <= 0.0 {
        return 0.0;
    }
    (2.0 * checkpoint_seconds * mtbi_seconds).sqrt()
}

/// The Young/Daly optimum expressed in whole simulation steps, given the
/// measured wall time of one step. Always at least 1 so a campaign that
/// asks for the optimum still checkpoints.
pub fn young_daly_interval_steps(
    checkpoint_seconds: f64,
    mtbi_seconds: f64,
    step_seconds: f64,
) -> u64 {
    let tau = young_daly_interval_seconds(checkpoint_seconds, mtbi_seconds);
    if step_seconds <= 0.0 {
        return 1;
    }
    (tau / step_seconds).max(1.0) as u64
}

/// One run of a parameter study.
#[derive(Clone, Copy, Debug)]
pub struct RunPlan {
    /// Steps of physics per run.
    pub steps: u64,
    /// Steps between restart dumps (0 = never).
    pub checkpoint_interval: u64,
    /// Seconds to write one restart dump (dominated by particle bytes
    /// through the I/O system).
    pub checkpoint_seconds: f64,
}

impl RunPlan {
    /// Dump cost estimate from the particle count and an aggregate
    /// filesystem bandwidth (GB/s): 32 bytes per particle.
    pub fn checkpoint_cost(n_particles: f64, fs_bandwidth_gbs: f64) -> f64 {
        n_particles * 32.0 / (fs_bandwidth_gbs * 1e9)
    }
}

/// Campaign model: `n_runs` runs on the machine described by `model`.
#[derive(Clone, Copy, Debug)]
pub struct Campaign {
    pub model: PerfModel,
    pub load: NodeLoad,
    pub plan: RunPlan,
    /// Runs in the study (the paper scanned laser intensity).
    pub n_runs: usize,
    /// Mean time between machine interrupts (seconds); each interrupt
    /// costs the work since the last dump plus a restart.
    pub mtbi_seconds: f64,
    /// Seconds to restart after an interrupt (requeue + reload).
    pub restart_seconds: f64,
}

/// The campaign's predicted cost breakdown (seconds).
#[derive(Clone, Copy, Debug)]
pub struct CampaignCost {
    pub physics: f64,
    pub checkpointing: f64,
    pub rework: f64,
    pub restarts: f64,
}

impl CampaignCost {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.physics + self.checkpointing + self.rework + self.restarts
    }

    /// Fraction of wall time doing physics.
    pub fn efficiency(&self) -> f64 {
        self.physics / self.total()
    }
}

impl Campaign {
    /// Predict the campaign's wall-clock cost.
    pub fn cost(&self) -> CampaignCost {
        let step_time = self.model.step_budget(&self.load).total();
        let physics_per_run = self.plan.steps as f64 * step_time;
        let physics = physics_per_run * self.n_runs as f64;

        let dumps_per_run = self
            .plan
            .steps
            .checked_div(self.plan.checkpoint_interval)
            .unwrap_or(0) as f64;
        let checkpointing = dumps_per_run * self.plan.checkpoint_seconds * self.n_runs as f64;

        // Interrupts: Poisson at rate 1/MTBI over the productive time;
        // each one throws away on average half a checkpoint interval of
        // physics (or half a run if never dumping).
        let productive = physics + checkpointing;
        let n_interrupts = productive / self.mtbi_seconds;
        let rework_per_interrupt = if self.plan.checkpoint_interval > 0 {
            0.5 * self.plan.checkpoint_interval as f64 * step_time
        } else {
            0.5 * physics_per_run
        };
        CampaignCost {
            physics,
            checkpointing,
            rework: n_interrupts * rework_per_interrupt,
            restarts: n_interrupts * self.restart_seconds,
        }
    }

    /// The checkpoint interval (steps) minimizing total cost — the classic
    /// Young/Daly optimum `τ_opt = √(2·δ·MTBI)` expressed in steps.
    pub fn optimal_checkpoint_interval(&self) -> u64 {
        let step_time = self.model.step_budget(&self.load).total();
        young_daly_interval_steps(self.plan.checkpoint_seconds, self.mtbi_seconds, step_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::model::KernelRates;

    fn paper_campaign(interval: u64) -> Campaign {
        let machine = Machine::roadrunner();
        let model = PerfModel {
            machine,
            rates: KernelRates::from_paper_inner_loop(&machine, 0.488),
        };
        let load = NodeLoad::paper_headline(&machine);
        Campaign {
            model,
            load,
            plan: RunPlan {
                steps: 10_000,
                checkpoint_interval: interval,
                checkpoint_seconds: RunPlan::checkpoint_cost(1.0e12, 50.0),
            },
            n_runs: 6, // the intensity scan
            mtbi_seconds: 6.0 * 3600.0,
            restart_seconds: 600.0,
        }
    }

    #[test]
    fn checkpoint_cost_is_io_bound() {
        // 1e12 particles × 32 B at 50 GB/s ≈ 640 s per dump.
        let c = RunPlan::checkpoint_cost(1.0e12, 50.0);
        assert!((c - 640.0).abs() < 1.0, "dump = {c}");
    }

    #[test]
    fn never_checkpointing_loses_runs_to_interrupts() {
        let with = paper_campaign(2000).cost();
        let without = paper_campaign(0).cost();
        // A multi-hour run without dumps replays far more work per
        // interrupt (half a run instead of half a dump interval).
        assert!(
            without.rework > 2.5 * with.rework,
            "{:?} vs {:?}",
            with,
            without
        );
        // Whether dumping wins *overall* depends on the dump cost; at the
        // assumed 50 GB/s filesystem it costs more wall time than the
        // rework it saves — exactly the trade Young/Daly optimizes, so
        // check the optimum interval lands between the two extremes.
        assert!(with.efficiency() > 0.5 && without.efficiency() > 0.5);
    }

    #[test]
    fn optimum_interval_beats_extremes() {
        let base = paper_campaign(1);
        let opt = base.optimal_checkpoint_interval();
        assert!(opt > 10, "opt = {opt}");
        let cost_opt = paper_campaign(opt).cost().total();
        let cost_tiny = paper_campaign(opt / 8).cost().total();
        let cost_huge = paper_campaign(opt * 8).cost().total();
        assert!(cost_opt <= cost_tiny, "opt {cost_opt} vs tiny {cost_tiny}");
        assert!(cost_opt <= cost_huge, "opt {cost_opt} vs huge {cost_huge}");
    }

    #[test]
    fn young_daly_matches_closed_form_across_grid() {
        // τ_opt = √(2·δ·MTBI) over a grid of dump costs and MTBIs.
        for delta in [0.5, 10.0, 640.0, 3600.0] {
            for mtbi in [600.0, 3600.0, 6.0 * 3600.0, 24.0 * 3600.0] {
                let tau = young_daly_interval_seconds(delta, mtbi);
                let expect = (2.0 * delta * mtbi).sqrt();
                assert!(
                    (tau - expect).abs() < 1e-9 * expect,
                    "delta={delta} mtbi={mtbi}: {tau} vs {expect}"
                );
                for step in [0.01, 0.5, 30.0] {
                    let steps = young_daly_interval_steps(delta, mtbi, step);
                    assert_eq!(steps, ((expect / step).max(1.0)) as u64);
                    assert!(steps >= 1);
                }
            }
        }
        // Degenerate inputs: no optimum, but never a panic or zero steps.
        assert_eq!(young_daly_interval_seconds(0.0, 3600.0), 0.0);
        assert_eq!(young_daly_interval_seconds(640.0, 0.0), 0.0);
        assert_eq!(young_daly_interval_steps(640.0, 3600.0, 0.0), 1);
        assert_eq!(young_daly_interval_steps(0.0, 0.0, 1.0), 1);
    }

    #[test]
    fn campaign_optimum_delegates_to_young_daly() {
        let c = paper_campaign(1);
        let step = c.model.step_budget(&c.load).total();
        assert_eq!(
            c.optimal_checkpoint_interval(),
            young_daly_interval_steps(c.plan.checkpoint_seconds, c.mtbi_seconds, step)
        );
    }

    #[test]
    fn physics_time_matches_step_budget() {
        let c = paper_campaign(2000);
        let cost = c.cost();
        let step = c.model.step_budget(&c.load).total();
        assert!((cost.physics - 6.0 * 10_000.0 * step).abs() < 1e-6);
        assert!(cost.total() > cost.physics);
    }
}
