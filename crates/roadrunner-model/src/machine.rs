//! Description of the IBM Roadrunner supercomputer (LANL, 2008) — the
//! heterogeneous Opteron + PowerXCell 8i machine of the paper.
//!
//! Numbers are the public configuration of the full (phase 3) system:
//! 17 connected units (CUs) × 180 "triblade" compute nodes; each triblade
//! couples one LS21 Opteron blade (2 dual-core 1.8 GHz Opterons) with two
//! QS22 blades carrying two PowerXCell 8i each (4 Cells/node, 8 SPEs per
//! Cell at 3.2 GHz, 4-wide single-precision FMA → 25.6 Gflop/s s.p. per
//! SPE). Nodes connect by 4x DDR InfiniBand through a two-stage fat tree;
//! Cell↔Opteron staging crosses PCIe.

/// Static machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Connected units in the full system.
    pub n_cu: usize,
    /// Compute nodes (triblades) per CU.
    pub nodes_per_cu: usize,
    /// PowerXCell 8i processors per node.
    pub cells_per_node: usize,
    /// SPEs per Cell.
    pub spes_per_cell: usize,
    /// Single-precision peak per SPE (Gflop/s).
    pub spe_gflops_sp: f64,
    /// Opteron cores per node (host side; runs MPI + bookkeeping).
    pub opteron_cores_per_node: usize,
    /// Single-precision peak per Opteron core (Gflop/s).
    pub opteron_gflops_sp: f64,
    /// Sustainable node-to-node InfiniBand bandwidth (GB/s, per direction).
    pub ib_bandwidth_gbs: f64,
    /// Small-message node-to-node latency (µs).
    pub ib_latency_us: f64,
    /// Sustainable Opteron↔Cell PCIe staging bandwidth (GB/s).
    pub pcie_bandwidth_gbs: f64,
    /// PCIe transaction latency (µs).
    pub pcie_latency_us: f64,
}

impl Machine {
    /// The full 17-CU Roadrunner.
    pub fn roadrunner() -> Self {
        Machine {
            n_cu: 17,
            nodes_per_cu: 180,
            cells_per_node: 4,
            spes_per_cell: 8,
            spe_gflops_sp: 25.6,
            opteron_cores_per_node: 4,
            opteron_gflops_sp: 7.2, // 1.8 GHz × 2 flops/cycle × SSE(2-wide)
            ib_bandwidth_gbs: 2.0,
            ib_latency_us: 2.5,
            pcie_bandwidth_gbs: 2.0,
            pcie_latency_us: 10.0,
        }
    }

    /// A truncated machine with `n_cu` CUs (for scaling sweeps).
    pub fn roadrunner_cus(n_cu: usize) -> Self {
        Machine {
            n_cu,
            ..Machine::roadrunner()
        }
    }

    /// Total compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_cu * self.nodes_per_cu
    }

    /// Total Cell processors.
    pub fn n_cells(&self) -> usize {
        self.n_nodes() * self.cells_per_node
    }

    /// Total SPEs.
    pub fn n_spes(&self) -> usize {
        self.n_cells() * self.spes_per_cell
    }

    /// Single-precision peak of the Cell side (Pflop/s).
    pub fn peak_sp_pflops(&self) -> f64 {
        self.n_spes() as f64 * self.spe_gflops_sp / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_counts() {
        let m = Machine::roadrunner();
        assert_eq!(m.n_nodes(), 3060);
        assert_eq!(m.n_cells(), 12240);
        assert_eq!(m.n_spes(), 97920);
        // ~2.5 Pflop/s s.p. on the Cell side.
        let peak = m.peak_sp_pflops();
        assert!((peak - 2.507).abs() < 0.01, "peak = {peak}");
    }

    #[test]
    fn truncated_machine_scales_linearly() {
        let one = Machine::roadrunner_cus(1);
        let four = Machine::roadrunner_cus(4);
        assert_eq!(four.n_spes(), 4 * one.n_spes());
        assert!((four.peak_sp_pflops() - 4.0 * one.peak_sp_pflops()).abs() < 1e-12);
    }
}
