//! Static flop accounting for the PIC kernels.
//!
//! Every Pflop/s-style number in the benchmark harness comes from these
//! constants times measured advance counts — the same convention Gordon
//! Bell PIC submissions use (a fixed per-particle operation count for the
//! inner loop). The counts below are a line-by-line tally of
//! `vpic_core::push::advance_block` and friends; `sqrt` and divide are
//! counted as one flop each (the paper's Cell SPEs likewise pipelined
//! their rsqrt/recip estimates).

/// Per-particle flops of the inner loop (interpolate + Boris + move +
/// within-cell Villasenor–Buneman deposition), itemized.
pub mod particle {
    /// E interpolation: 3 components × (4 mul + 3 add).
    pub const INTERP_E: u64 = 3 * 7;
    /// B interpolation: 3 components × (1 mul + 1 add).
    pub const INTERP_B: u64 = 3 * 2;
    /// Two half electric kicks: 2 × 3 adds.
    pub const HALF_KICKS: u64 = 6;
    /// First γ evaluation: 3 mul + 3 add + sqrt + div.
    pub const GAMMA1: u64 = 8;
    /// Boris scalar chain (v1..v4): 3 mul+2 add, 2 mul, 3 mul+2 add,
    /// 2 mul+1 add+1 div, 1 add.
    pub const BORIS_SCALARS: u64 = 17;
    /// u′ construction: 3 × (3 mul + 2 add).
    pub const BORIS_UPRIME: u64 = 15;
    /// Rotation completion: 3 × (3 mul + 2 add).
    pub const BORIS_ROTATE: u64 = 15;
    /// Second 1/γ: 3 mul + 3 add + sqrt + div.
    pub const GAMMA2: u64 = 8;
    /// Displacement scaling: 3 × 2 mul.
    pub const DISPLACEMENT: u64 = 6;
    /// Midpoint + new position: 6 adds.
    pub const POSITIONS: u64 = 6;
    /// Deposition: v5 (3 mul) + 3 × (6 mul + 12 add).
    pub const DEPOSIT: u64 = 3 + 3 * 18;

    /// Total flops per particle advance.
    pub const TOTAL: u64 = INTERP_E
        + INTERP_B
        + HALF_KICKS
        + GAMMA1
        + BORIS_SCALARS
        + BORIS_UPRIME
        + BORIS_ROTATE
        + GAMMA2
        + DISPLACEMENT
        + POSITIONS
        + DEPOSIT;
}

/// Per-voxel flops of the field-side work each step.
pub mod voxel {
    /// `advance_b` at half step: 3 comps × 6 flops, twice per step.
    pub const ADVANCE_B: u64 = 2 * 18;
    /// `advance_e`: 3 comps × 8 flops.
    pub const ADVANCE_E: u64 = 24;
    /// Interpolator load: 3 E comps × 16 + 3 B comps × 4.
    pub const INTERP_LOAD: u64 = 60;
    /// Accumulator unload: 3 comps × (4 add + 1 mul).
    pub const UNLOAD: u64 = 15;

    /// Total per live voxel per step.
    pub const TOTAL: u64 = ADVANCE_B + ADVANCE_E + INTERP_LOAD + UNLOAD;
}

/// Bytes touched per particle advance with the 32-byte particle layout:
/// particle read+write (64) + interpolator line (72) + accumulator
/// read-modify-write (96). The paper's data-motion argument: PIC moves
/// ~1.5 bytes per flop where dense LINPACK moves ~0.01.
pub const BYTES_PER_PARTICLE_ADVANCE: u64 = 64 + 72 + 96;

/// Convert an advance rate into s.p. flop/s.
pub fn particle_flops(particles_per_sec: f64) -> f64 {
    particles_per_sec * particle::TOTAL as f64
}

/// Field-side flop/s for a voxel-update rate.
pub fn voxel_flops(voxels_per_sec: f64) -> f64 {
    voxels_per_sec * voxel::TOTAL as f64
}

/// Bytes moved per flop in the particle inner loop.
pub fn bytes_per_flop() -> f64 {
    BYTES_PER_PARTICLE_ADVANCE as f64 / particle::TOTAL as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_consistent() {
        assert_eq!(
            particle::TOTAL,
            21 + 6 + 6 + 8 + 17 + 15 + 15 + 8 + 6 + 6 + 57
        );
        assert_eq!(particle::TOTAL, 165);
        assert_eq!(voxel::TOTAL, 36 + 24 + 60 + 15);
    }

    #[test]
    fn rates_scale_linearly() {
        assert_eq!(particle_flops(1.0), particle::TOTAL as f64);
        assert_eq!(voxel_flops(2.0), 2.0 * voxel::TOTAL as f64);
    }

    #[test]
    fn pic_moves_more_than_a_byte_per_flop() {
        // The abstract's data-motion point: PIC is memory-bound by design.
        let bpf = bytes_per_flop();
        assert!(bpf > 1.0 && bpf < 3.0, "bytes/flop = {bpf}");
    }
}
