//! # roadrunner-model
//!
//! An analytic performance model of the IBM Roadrunner supercomputer and
//! of VPIC running on it — the substitute for the machine we cannot have.
//! The SC'08 paper itself validated a Kerbyson-style analytic model
//! against measured rates and used it to reason about full-machine
//! performance; this crate reproduces that methodology:
//!
//! * [`machine`] — the 17-CU, 3060-triblade, 97920-SPE configuration;
//! * [`flops`] — static flop/byte accounting for our kernels (the basis
//!   of every Pflop/s figure the bench harness prints);
//! * [`model`] — step-time budget (push, field, ghost exchange, particle
//!   migration, PCIe staging, allreduce), weak scaling, and Pflop/s
//!   projections, calibrated either from the paper's inner-loop figure or
//!   from rates measured on the host running the benches.

pub mod campaign;
pub mod flops;
pub mod machine;
pub mod model;

pub use campaign::{
    young_daly_interval_seconds, young_daly_interval_steps, Campaign, CampaignCost, RunPlan,
};
pub use machine::Machine;
pub use model::{KernelRates, NodeLoad, PerfModel, StepBudget};
