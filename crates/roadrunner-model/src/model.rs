//! Analytic performance model of VPIC on Roadrunner, in the style of the
//! Kerbyson/Barker model the paper used to predict and validate
//! full-machine rates. Calibrated either from the paper's reported inner
//! loop figure or from kernel rates measured by this repository's bench
//! harness, it projects step time, particles advanced per second and
//! Pflop/s for arbitrary machine fractions and problem sizes.

use crate::flops;
use crate::machine::Machine;

/// Calibrated kernel rates.
#[derive(Clone, Copy, Debug)]
pub struct KernelRates {
    /// Particle advances per second per SPE.
    pub particles_per_sec_per_spe: f64,
    /// Voxel (field) updates per second per SPE-equivalent.
    pub voxels_per_sec_per_spe: f64,
    /// Fraction of SP peak the inner loop reaches (bookkeeping only).
    pub spe_efficiency: f64,
}

impl KernelRates {
    /// Back out per-SPE rates from the paper's reported inner-loop rate
    /// (0.488 Pflop/s s.p. over the full machine) using our flop count.
    pub fn from_paper_inner_loop(machine: &Machine, inner_pflops: f64) -> Self {
        let flops_per_spe = inner_pflops * 1e15 / machine.n_spes() as f64;
        let pps = flops_per_spe / flops::particle::TOTAL as f64;
        KernelRates {
            particles_per_sec_per_spe: pps,
            // Field work is bandwidth-bound like the push; assume the same
            // efficiency on the smaller per-voxel flop count.
            voxels_per_sec_per_spe: flops_per_spe / flops::voxel::TOTAL as f64,
            spe_efficiency: flops_per_spe / (machine.spe_gflops_sp * 1e9),
        }
    }

    /// Calibrate from rates measured on the host running this crate's
    /// benches: scale a measured per-core rate by the SP-peak ratio
    /// between one SPE and one host core.
    pub fn from_measured_host_rate(
        machine: &Machine,
        particles_per_sec_per_core: f64,
        voxels_per_sec_per_core: f64,
        host_core_gflops_sp: f64,
    ) -> Self {
        let scale = machine.spe_gflops_sp / host_core_gflops_sp;
        let pps = particles_per_sec_per_core * scale;
        KernelRates {
            particles_per_sec_per_spe: pps,
            voxels_per_sec_per_spe: voxels_per_sec_per_core * scale,
            spe_efficiency: pps * flops::particle::TOTAL as f64 / (machine.spe_gflops_sp * 1e9),
        }
    }
}

/// One step's predicted time budget for a node (seconds).
#[derive(Clone, Copy, Debug)]
pub struct StepBudget {
    pub push: f64,
    pub field: f64,
    /// Ghost-plane exchange over InfiniBand.
    pub ghost_exchange: f64,
    /// Particle migration traffic.
    pub migration: f64,
    /// PCIe staging between Opteron (MPI) and Cell (compute) memory.
    pub staging: f64,
    /// Log-depth global reduction.
    pub allreduce: f64,
}

impl StepBudget {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.push
            + self.field
            + self.ghost_exchange
            + self.migration
            + self.staging
            + self.allreduce
    }

    /// Fraction of the step spent in the particle inner loop.
    pub fn inner_fraction(&self) -> f64 {
        self.push / self.total()
    }
}

/// Problem laid on the machine: per-node particle and voxel loads plus the
/// ghost surface of a node's (assumed cubic) domain.
#[derive(Clone, Copy, Debug)]
pub struct NodeLoad {
    pub particles_per_node: f64,
    pub voxels_per_node: f64,
    /// Fraction of a node's particles crossing a face per step (thermal
    /// flux ≈ `vth·dt/dx / √(2π)` per cell-width face layer).
    pub migration_fraction: f64,
}

impl NodeLoad {
    /// The paper's headline configuration spread over the full machine:
    /// 1.0e12 particles on 136e6 voxels over 3060 nodes.
    pub fn paper_headline(machine: &Machine) -> Self {
        let nodes = machine.n_nodes() as f64;
        NodeLoad {
            particles_per_node: 1.0e12 / nodes,
            voxels_per_node: 136.0e6 / nodes,
            // Thermal boundary flux: ~17% of a 35³ domain's cells touch a
            // face, ~3% of those particles step across it per dt.
            migration_fraction: 0.006,
        }
    }
}

/// The assembled performance model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    pub machine: Machine,
    pub rates: KernelRates,
}

/// Bytes exchanged per ghost face cell per step: E (2 comps) + B (3 planes
/// worth) + J fold (2 comps), 4 B each — see `vpic_parallel::exchange`.
const GHOST_BYTES_PER_FACE_CELL: f64 = (2 + 3 + 2) as f64 * 4.0;
/// Bytes per migrated particle (particle + unfinished mover).
const MIGRANT_BYTES: f64 = 48.0;

impl PerfModel {
    /// Predicted per-node step budget.
    pub fn step_budget(&self, load: &NodeLoad) -> StepBudget {
        let m = &self.machine;
        let spes = (m.cells_per_node * m.spes_per_cell) as f64;
        let push = load.particles_per_node / (self.rates.particles_per_sec_per_spe * spes);
        let field = load.voxels_per_node / (self.rates.voxels_per_sec_per_spe * spes);
        // Cubic node domain: 6 faces of (voxels^(2/3)) cells. The fat tree
        // carries mild contention as the machine grows (Kerbyson-style
        // derating of the effective link bandwidth).
        let contention = 1.0 + 0.015 * (self.machine.n_nodes() as f64).log2();
        let ib_bw = self.machine.ib_bandwidth_gbs * 1e9 / contention;
        let face_cells = load.voxels_per_node.powf(2.0 / 3.0);
        let ghost_bytes = 6.0 * face_cells * GHOST_BYTES_PER_FACE_CELL * 3.0; // 3 exchanges/step
        let ghost_exchange = ghost_bytes / ib_bw + 6.0 * 3.0 * self.machine.ib_latency_us * 1e-6;
        let migrants = load.particles_per_node * load.migration_fraction;
        let migration = migrants * MIGRANT_BYTES / ib_bw + 6.0 * self.machine.ib_latency_us * 1e-6;
        // PCIe staging: particle data crosses to Cell memory once per
        // residence change only; steady state ships the ghost planes and
        // migrants through the host, so stage the same bytes again.
        let staging = (ghost_bytes + migrants * MIGRANT_BYTES)
            / (self.machine.pcie_bandwidth_gbs * 1e9)
            + 2.0 * self.machine.pcie_latency_us * 1e-6;
        let allreduce =
            (self.machine.n_nodes() as f64).log2().ceil() * self.machine.ib_latency_us * 1e-6;
        StepBudget {
            push,
            field,
            ghost_exchange,
            migration,
            staging,
            allreduce,
        }
    }

    /// Sustained Pflop/s for a whole-machine run at the given node load.
    pub fn sustained_pflops(&self, load: &NodeLoad) -> f64 {
        let budget = self.step_budget(load);
        let flops_per_node_step = load.particles_per_node * flops::particle::TOTAL as f64
            + load.voxels_per_node * flops::voxel::TOTAL as f64;
        flops_per_node_step * self.machine.n_nodes() as f64 / budget.total() / 1e15
    }

    /// Inner-loop-only Pflop/s (what the paper reports as 0.488).
    pub fn inner_loop_pflops(&self, load: &NodeLoad) -> f64 {
        let budget = self.step_budget(load);
        load.particles_per_node * flops::particle::TOTAL as f64 * self.machine.n_nodes() as f64
            / budget.push
            / 1e15
    }

    /// Particles advanced per second, whole machine.
    pub fn particles_per_second(&self, load: &NodeLoad) -> f64 {
        let budget = self.step_budget(load);
        load.particles_per_node * self.machine.n_nodes() as f64 / budget.total()
    }

    /// Weak-scaling efficiency sweep: same per-node load, machines of
    /// 1..=n_cu CUs. Returns `(n_cu, efficiency, sustained_pflops)`.
    pub fn weak_scaling(&self, load: &NodeLoad, max_cu: usize) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::new();
        let mut base_rate = 0.0;
        for n_cu in 1..=max_cu {
            let m = Machine {
                n_cu,
                ..self.machine
            };
            let sub = PerfModel {
                machine: m,
                rates: self.rates,
            };
            let budget = sub.step_budget(load);
            let per_node_rate = load.particles_per_node / budget.total();
            if n_cu == 1 {
                base_rate = per_node_rate;
            }
            out.push((n_cu, per_node_rate / base_rate, sub.sustained_pflops(load)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> PerfModel {
        let machine = Machine::roadrunner();
        let rates = KernelRates::from_paper_inner_loop(&machine, 0.488);
        PerfModel { machine, rates }
    }

    #[test]
    fn calibration_roundtrips_inner_loop() {
        let model = paper_model();
        let load = NodeLoad::paper_headline(&model.machine);
        let inner = model.inner_loop_pflops(&load);
        assert!((inner - 0.488).abs() < 1e-9, "inner = {inner}");
    }

    #[test]
    fn sustained_is_below_inner_and_in_paper_ballpark() {
        let model = paper_model();
        let load = NodeLoad::paper_headline(&model.machine);
        let sustained = model.sustained_pflops(&load);
        let inner = model.inner_loop_pflops(&load);
        assert!(sustained < inner);
        // The paper measured 0.374 sustained (77% of inner loop). The
        // analytic budget must land in that neighborhood.
        assert!(
            (0.25..0.47).contains(&sustained),
            "sustained = {sustained}, inner fraction = {}",
            model.step_budget(&load).inner_fraction()
        );
    }

    #[test]
    fn spe_efficiency_is_plausible() {
        let model = paper_model();
        // 0.488 Pflop/s over 97920 SPEs ≈ 19% of SP peak.
        assert!((model.rates.spe_efficiency - 0.195).abs() < 0.01);
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        let model = paper_model();
        let load = NodeLoad::paper_headline(&model.machine);
        let sweep = model.weak_scaling(&load, 17);
        assert_eq!(sweep.len(), 17);
        for (_, eff, _) in &sweep {
            assert!(*eff > 0.95, "efficiency dipped: {sweep:?}");
        }
        // Pflop/s grows ~linearly with CUs.
        let (_, _, p1) = sweep[0];
        let (_, _, p17) = sweep[16];
        assert!(p17 / p1 > 15.0, "p1 = {p1}, p17 = {p17}");
    }

    #[test]
    fn measured_host_calibration_scales() {
        let machine = Machine::roadrunner();
        let a = KernelRates::from_measured_host_rate(&machine, 10e6, 100e6, 12.8);
        assert!((a.particles_per_sec_per_spe - 20e6).abs() < 1.0);
        assert!((a.voxels_per_sec_per_spe - 200e6).abs() < 10.0);
    }

    #[test]
    fn more_particles_per_node_raise_inner_fraction() {
        let model = paper_model();
        let light = NodeLoad {
            particles_per_node: 1e7,
            voxels_per_node: 44444.0,
            migration_fraction: 0.01,
        };
        let heavy = NodeLoad {
            particles_per_node: 1e9,
            voxels_per_node: 44444.0,
            migration_fraction: 0.01,
        };
        let fl = model.step_budget(&light).inner_fraction();
        let fh = model.step_budget(&heavy).inner_fraction();
        assert!(fh > fl, "{fl} vs {fh}");
    }
}
