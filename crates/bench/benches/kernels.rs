//! Criterion microbenchmarks of the PIC kernels (companion to the
//! experiment binaries; these give statistically robust per-kernel
//! numbers for calibration and regression tracking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vpic_core::aosoa::{advance_p_aosoa, AosoaStore};
use vpic_core::field_solver::{advance_b, advance_e};
use vpic_core::push::{advance_p_serial, PushCoefficients};
use vpic_core::sort::sort_by_voxel;
use vpic_core::{
    load_uniform, AccumulatorArray, FieldArray, Grid, InterpolatorArray, Momentum, Rng, Simulation,
    Species,
};

fn plasma(n: (usize, usize, usize), ppc: usize) -> Simulation {
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let g = Grid::periodic(n, (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(1);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        ppc,
        Momentum::thermal(0.05),
    );
    sim.add_species(e);
    for _ in 0..2 {
        sim.step();
    }
    sim.species[0].sort(&sim.grid);
    sim.interp.load(&sim.fields, &sim.grid);
    sim
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle_push");
    for ppc in [16usize, 64] {
        let sim = plasma((12, 12, 12), ppc);
        let g = sim.grid.clone();
        let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
        let interp = sim.interp.clone();
        let mut acc = AccumulatorArray::new(&g);
        let n = sim.n_particles();
        group.throughput(Throughput::Elements(n as u64));
        let mut parts = sim.species[0].to_particles();
        group.bench_with_input(BenchmarkId::new("aos", ppc), &ppc, |b, _| {
            b.iter(|| {
                acc.clear();
                advance_p_serial(&mut parts, coeffs, &interp, &mut acc, &g);
            })
        });
        let mut store = AosoaStore::from_particles(&parts);
        group.bench_with_input(BenchmarkId::new("aosoa", ppc), &ppc, |b, _| {
            b.iter(|| {
                acc.clear();
                advance_p_aosoa(&mut store, coeffs, &interp, &mut acc, &g);
            })
        });
    }
    group.finish();
}

fn bench_field_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_solver");
    let n = (32usize, 32usize, 32usize);
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let g = Grid::periodic(n, (dx, dx, dx), dt);
    let mut f = FieldArray::new(&g);
    group.throughput(Throughput::Elements(g.n_live() as u64));
    group.bench_function("advance_b_half", |b| b.iter(|| advance_b(&mut f, &g, 0.5)));
    group.bench_function("advance_e", |b| b.iter(|| advance_e(&mut f, &g)));
    let mut ia = InterpolatorArray::new(&g);
    group.bench_function("interpolator_load", |b| b.iter(|| ia.load(&f, &g)));
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    let sim = plasma((16, 16, 16), 32);
    let nv = sim.grid.n_voxels();
    let shuffled = {
        let mut v = sim.species[0].to_particles();
        let mut rng = Rng::seeded(3);
        for i in (1..v.len()).rev() {
            v.swap(i, rng.index(i + 1));
        }
        v
    };
    group.throughput(Throughput::Elements(shuffled.len() as u64));
    group.bench_function("counting_sort", |b| {
        b.iter_batched(
            || shuffled.clone(),
            |mut v| {
                let mut scratch = Vec::new();
                sort_by_voxel(&mut v, nv, &mut scratch);
                v
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_full_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step");
    group.sample_size(10);
    let mut sim = plasma((12, 12, 12), 32);
    group.throughput(Throughput::Elements(sim.n_particles() as u64));
    group.bench_function("simulation_step", |b| b.iter(|| sim.step()));
    group.finish();
}

fn bench_collisions(c: &mut Criterion) {
    use vpic_core::collision::CollisionOperator;
    let mut group = c.benchmark_group("collisions");
    let mut sim = plasma((8, 8, 8), 64);
    sim.species[0].sort(&sim.grid);
    let g = sim.grid.clone();
    let op = CollisionOperator::new(1e-4, 1);
    let mut rng = Rng::seeded(11);
    group.throughput(Throughput::Elements(sim.n_particles() as u64));
    group.bench_function("ta77_apply", |b| {
        b.iter(|| op.apply(&mut sim.species[0], &g, &mut rng))
    });
    group.finish();
}

fn bench_hydro_and_loaders(c: &mut Criterion) {
    use vpic_core::hydro::HydroArray;
    use vpic_core::juttner::sample_juttner;
    let mut group = c.benchmark_group("moments_and_loaders");
    let sim = plasma((12, 12, 12), 32);
    let g = sim.grid.clone();
    group.throughput(Throughput::Elements(sim.n_particles() as u64));
    group.bench_function("hydro_accumulate", |b| {
        b.iter(|| {
            let mut h = HydroArray::new(&g);
            h.accumulate(&sim.species[0], &g);
            h
        })
    });
    let mut rng = Rng::seeded(5);
    group.throughput(Throughput::Elements(1));
    group.bench_function("juttner_sample", |b| {
        b.iter(|| sample_juttner(0.5, &mut rng))
    });
    group.finish();
}

fn bench_layout_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    let sim = plasma((12, 12, 12), 32);
    let parts = sim.species[0].to_particles();
    group.throughput(Throughput::Elements(parts.len() as u64));
    group.bench_function("aos_to_aosoa", |b| {
        b.iter(|| AosoaStore::from_particles(&parts))
    });
    let store = AosoaStore::from_particles(&parts);
    group.bench_function("aosoa_to_aos", |b| b.iter(|| store.to_particles()));
    group.finish();
}

criterion_group!(
    benches,
    bench_push,
    bench_field_solver,
    bench_sort,
    bench_full_step,
    bench_collisions,
    bench_hydro_and_loaders,
    bench_layout_conversion
);
criterion_main!(benches);
