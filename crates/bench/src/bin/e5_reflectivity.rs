//! E5 — Laser reflectivity vs laser intensity (the paper's headline
//! physics: "a parameter study of laser reflectivity as a function of
//! laser intensity under experimentally realizable hohlraum conditions").
//!
//! Sweeps the laser strength a0 for a fixed underdense slab and measures
//! the time-averaged SRS backscatter reflectivity with the PIC code,
//! against the linear slab gain and the Tang fluid baseline. The expected
//! *shape*: a noise-level floor at low intensity, a steep rise once the
//! growth rate beats Landau damping, approaching saturation at high
//! intensity — with the kinetic (PIC) curve rising ahead of the fluid one
//! once trapping reduces the effective damping.
//!
//! `--from-curve <path>` skips the simulations and tabulates a
//! `reflectivity_curve.json` artifact produced by the sweep service
//! (`vpic-run` with a `[sweep]` deck section) against the same linear
//! theory columns, so crash-proof overnight sweeps and this experiment
//! share one report.

use vpic_bench::{parse_flag, parse_opt, print_table};
use vpic_core::units::LabFrame;
use vpic_lpi::sweep::parse_curve_reflectivities;
use vpic_lpi::{tang_reflectivity, LpiParams, LpiRun};

/// Tabulate a sweep-service curve artifact instead of running PIC here.
fn report_from_curve(path: &str, base: &LpiParams) {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("e5: cannot read curve artifact {path}: {e}");
            std::process::exit(1);
        }
    };
    let points = parse_curve_reflectivities(&json);
    if points.is_empty() {
        eprintln!("e5: no finished points in {path} (all quarantined or wrong schema?)");
        std::process::exit(1);
    }
    let lab = LabFrame::nif(base.n_over_ncr);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(a0, r)| {
            vec![
                format!("{a0:.3}"),
                format!("{:.1e}", lab.intensity_of_a0(a0)),
                format!("{r:.3e}"),
            ]
        })
        .collect();
    print_table(
        &format!("E5: reflectivity vs laser intensity (sweep curve: {path})"),
        &["a0", "I@351nm W/cm²", "R (PIC, kinetic)"],
        &rows,
    );
    println!(
        "\n{} point(s) from the sweep service's exactly-once aggregation;",
        points.len()
    );
    println!("quarantined grid points are omitted (see the artifact for causes).");
}

fn main() {
    let full = parse_flag("full");
    let from_curve: String = parse_opt("from-curve", String::new());
    let a0s: &[f64] = if full {
        &[0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18]
    } else {
        &[0.01, 0.03, 0.06, 0.12]
    };
    let base = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        flat: if full { 32.0 } else { 16.0 },
        ramp: 4.0, // gentle ramps keep the linear (non-SRS) reflection low
        ppc: if full { 256 } else { 64 },
        pipelines: 1,
        // Seed the backscatter (1% of the pump in power) so the
        // amplification is measured above the PIC noise/ramp floor — the
        // standard controlled-seed technique in LPI PIC studies.
        seed_frac: 0.1,
        ..Default::default()
    };
    if !from_curve.is_empty() {
        report_from_curve(&from_curve, &base);
        return;
    }
    let lab = LabFrame::nif(base.n_over_ncr);
    println!(
        "E5: SRS reflectivity vs intensity — n/ncr = {}, Te = {:.1} keV, slab {:.1} µm, {} ppc,",
        base.n_over_ncr,
        lab.ev_of_vth(base.vth) / 1000.0,
        lab.microns_of(base.flat as f64),
        base.ppc
    );
    println!(
        "    seeded backscatter at {:.1e} of pump power (floor of the R curve)",
        base.seed_frac * base.seed_frac
    );

    let mut rows = Vec::new();
    let mut spectral_line = (0.0f64, 0.0f64, 0.0f64); // (a0, peak ω, ω_s)
    for &a0 in a0s {
        let mut run = LpiRun::new(LpiParams { a0, ..base });
        let m = run.srs;
        let steps = run.suggested_steps(if full { 6.0 } else { 3.0 });
        run.run(steps);
        let (peak_omega, _) = run.backscatter_peak(m.omega0 * 1.2).unwrap_or((0.0, 0.0));
        spectral_line = (a0, peak_omega, m.omega_s);
        let gain = m.linear_gain(a0, base.flat as f64);
        let lab = LabFrame::nif(base.n_over_ncr);
        rows.push(vec![
            format!("{a0:.3}"),
            format!("{:.1e}", lab.intensity_of_a0(a0)),
            format!("{:.4}", m.growth_rate(a0)),
            format!("{:.2}", m.growth_to_damping(a0)),
            format!("{:.2}", gain),
            format!(
                "{:.3e}",
                tang_reflectivity(gain, base.seed_frac * base.seed_frac)
            ),
            format!("{:.3e}", run.reflectivity()),
        ]);
        eprintln!("  a0 = {a0}: done ({} steps)", steps);
    }
    print_table(
        "E5: reflectivity vs laser intensity",
        &[
            "a0",
            "I@351nm W/cm²",
            "γ0/ωpe",
            "γ0/νL",
            "gain G",
            "R (Tang fluid)",
            "R (PIC, kinetic)",
        ],
        &rows,
    );
    println!(
        "\nspectral check at a0 = {}: backscatter line at ω = {:.3} ωpe vs SRS-matched\nω_s = {:.3} ωpe (the reflected light is Raman-shifted, not a mirror reflection)",
        spectral_line.0, spectral_line.1, spectral_line.2
    );
    println!("\npaper anchor: reflectivity rises steeply with intensity through the");
    println!("trapping-affected regime (kλD ≈ 0.3); absolute values depend on noise");
    println!("seeding and slab length, the *shape* (floor → steep rise) is the target.");
}
