//! E6 — Particle trapping physics (paper anchor: the trillion-particle
//! runs were sized "to model accurately the particle trapping physics
//! occurring within a laser-driven hohlraum").
//!
//! Runs one SRS point at a trapping-relevant intensity and prints the
//! electron x-momentum distribution before and after, the hot-tail
//! fraction beyond the plasma-wave phase velocity, and the bulk momentum
//! spread — the classic signatures of a trapping-flattened distribution.

use vpic_bench::{parse_flag, print_table};
use vpic_diag::{momentum_histogram, momentum_spread, tail_fraction};
use vpic_lpi::{LpiParams, LpiRun};

fn main() {
    let full = parse_flag("full");
    let params = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        a0: if full { 0.12 } else { 0.1 },
        flat: if full { 32.0 } else { 16.0 },
        ppc: if full { 512 } else { 128 },
        pipelines: 1,
        ramp: 4.0,
        seed_frac: 0.1, // drive the plasma wave hard enough to trap
        ..Default::default()
    };
    let mut run = LpiRun::new(params);
    let vphi = run.srs.v_phase;
    let u_phi = vphi / (1.0 - vphi * vphi).sqrt();
    println!(
        "E6: trapping at a0 = {}, kλD = {:.3}, vφ = {:.3}c (uφ = {:.3})",
        params.a0, run.srs.k_lambda_d, vphi, u_phi
    );

    let before = momentum_histogram(run.electron_species(), 0, -0.6, 0.6, 24);
    let tail_before = tail_fraction(run.electron_species(), 0, 0.6 * u_phi);
    let spread_before = momentum_spread(run.electron_species(), 0);

    let steps = run.suggested_steps(if full { 6.0 } else { 3.0 });
    eprintln!(
        "running {steps} steps on {} particles ...",
        run.sim.n_particles()
    );
    run.run(steps);

    let after = momentum_histogram(run.electron_species(), 0, -0.6, 0.6, 24);
    let tail_after = tail_fraction(run.electron_species(), 0, 0.6 * u_phi);
    let spread_after = momentum_spread(run.electron_species(), 0);

    let total_b = before.total().max(1e-300);
    let total_a = after.total().max(1e-300);
    let rows: Vec<Vec<String>> = (0..before.counts.len())
        .map(|i| {
            let fb = before.counts[i] / total_b;
            let fa = after.counts[i] / total_a;
            let bar = |f: f64| "#".repeat(((f * 400.0).sqrt() as usize).min(40));
            vec![
                format!("{:+.3}", before.center(i)),
                format!("{:.2e}", fb),
                format!("{:.2e}", fa),
                format!("{:7.2}", if fb > 0.0 { fa / fb } else { f64::INFINITY }),
                bar(fa),
            ]
        })
        .collect();
    print_table(
        "E6: electron f(ux) before/after SRS saturation",
        &["ux", "f before", "f after", "ratio", "after (bar)"],
        &rows,
    );

    print_table(
        "E6: trapping metrics",
        &["metric", "before", "after"],
        &[
            vec![
                format!("tail fraction (ux > {:.2})", 0.6 * u_phi),
                format!("{tail_before:.3e}"),
                format!("{tail_after:.3e}"),
            ],
            vec![
                "momentum spread σ(ux)".into(),
                format!("{spread_before:.4}"),
                format!("{spread_after:.4}"),
            ],
            vec![
                "reflectivity".into(),
                "-".into(),
                format!("{:.3e}", run.reflectivity()),
            ],
        ],
    );
    println!("\nshape check: the forward tail (toward the plasma-wave phase velocity)");
    println!("grows by orders of magnitude while the bulk heats — trapping signatures.");
}
