//! E2 — Whole-step phase breakdown (paper anchor: sustained 0.374 Pflop/s
//! vs inner loop 0.488 Pflop/s → the inner loop is ~77% of the step).
//!
//! Runs the full single-domain step loop and prints where the time goes,
//! plus the sustained-vs-inner-loop flop-rate ratio on this host.

use roadrunner_model::flops;
use vpic_bench::{parse_flag, print_table, uniform_plasma};

fn main() {
    let full = parse_flag("full");
    let n = if full { (32, 32, 32) } else { (16, 16, 16) };
    let ppc = if full { 128 } else { 64 };
    let steps = if full { 60 } else { 25 };

    let mut sim = uniform_plasma(n, ppc, 1, 7);
    sim.species[0].sort_interval = 25;
    for _ in 0..3 {
        sim.step(); // warm-up, excluded from the report
    }
    sim.timings = Default::default();
    for _ in 0..steps {
        sim.step();
    }
    let t = sim.timings;
    let total = t.total();

    let row = |name: &str, secs: f64| {
        vec![
            name.to_string(),
            format!("{:.4}", secs),
            format!("{:.1}%", 100.0 * secs / total),
        ]
    };
    print_table(
        &format!("E2: step breakdown, grid {n:?}, ppc {ppc}, {steps} steps"),
        &["phase", "seconds", "share"],
        &[
            row("particle push + deposit (inner loop)", t.push),
            row("interpolator load", t.interpolate),
            row("current reduce/unload/sync", t.current),
            row("field solve (B/E/B)", t.field),
            row("particle sort", t.sort),
            row("other (sponge/cleaning/hooks)", t.other),
            row("TOTAL", total),
        ],
    );

    let particle_flops = t.particle_steps as f64 * flops::particle::TOTAL as f64;
    let voxel_flops = t.voxel_steps as f64 * flops::voxel::TOTAL as f64;
    let inner_rate = particle_flops / t.push / 1e9;
    let sustained_rate = (particle_flops + voxel_flops) / total / 1e9;
    print_table(
        "E2: sustained vs inner loop",
        &["metric", "this host", "paper (Roadrunner)"],
        &[
            vec![
                "inner loop rate".into(),
                format!("{inner_rate:.2} Gflop/s"),
                "488,000 Gflop/s".into(),
            ],
            vec![
                "sustained rate".into(),
                format!("{sustained_rate:.2} Gflop/s"),
                "374,000 Gflop/s".into(),
            ],
            vec![
                "sustained / inner".into(),
                format!("{:.3}", sustained_rate / inner_rate),
                "0.766".into(),
            ],
            vec![
                "inner-loop time share".into(),
                format!("{:.3}", t.inner_loop_fraction()),
                "~0.77 (implied)".into(),
            ],
        ],
    );
    println!("\nshape check: the inner loop dominates the step and the sustained/inner");
    println!("ratio sits in the same ~0.7-0.9 band the paper reports.");
}
