//! E2 — Whole-step phase breakdown (paper anchor: sustained 0.374 Pflop/s
//! vs inner loop 0.488 Pflop/s → the inner loop is ~77% of the step).
//!
//! Runs the full single-domain step loop and prints where the time goes,
//! plus the sustained-vs-inner-loop flop-rate ratio on this host.
//!
//! This binary doubles as the step-throughput bench: `--nx/--ny/--nz`,
//! `--ppc`, `--steps`, `--pipelines` and `--layout aos|aosoa` size the
//! run, and `--json <path>` writes a machine-readable `BENCH_step.json`
//! record (schema in `vpic_bench::stepjson`). Writing into an existing
//! file *merges by layout* — run once per layout and the file carries
//! both records side by side. The CI smoke lane re-invokes it as
//! `--validate <path>` to check every record in a previously written file
//! for schema problems and NaN/zero rates. `--sentinel` arms the
//! numerical-integrity sentinel at its default 10-step cadence so the
//! health-monitoring overhead can be compared against a plain run.

use roadrunner_model::flops;
use vpic_bench::stepjson::{read_set, write_set, StepBench};
use vpic_bench::{parse_flag, parse_opt, print_table, uniform_plasma};
use vpic_core::store::Layout;

fn main() {
    let validate_path = parse_opt::<String>("validate", String::new());
    if !validate_path.is_empty() {
        std::process::exit(validate(&validate_path));
    }

    let full = parse_flag("full");
    let def = if full { 32 } else { 16 };
    let nx = parse_opt("nx", def);
    let ny = parse_opt("ny", nx);
    let nz = parse_opt("nz", nx);
    let n = (nx, ny, nz);
    let ppc = parse_opt("ppc", if full { 128 } else { 64 });
    let steps = parse_opt("steps", if full { 60 } else { 25 });
    let pipelines = parse_opt("pipelines", vpic_core::worker_threads());
    let json = parse_opt::<String>("json", String::new());
    let sentinel = parse_flag("sentinel");
    let layout_str = parse_opt::<String>("layout", "aos".into());
    let Some(layout) = Layout::parse(&layout_str) else {
        eprintln!("--layout must be aos or aosoa, got {layout_str}");
        std::process::exit(2);
    };

    let mut sim = uniform_plasma(n, ppc, pipelines, 7);
    sim.set_layout(layout);
    sim.species[0].sort_interval = 25;
    if sentinel {
        // Arm the numerical-integrity sentinel at its default 10-step
        // cadence; its sweeps land in the "other" phase so the overhead
        // of health monitoring shows up in the same breakdown.
        sim.set_config(&vpic_core::sentinel::SimConfig {
            sentinel: vpic_core::sentinel::SentinelConfig::enabled(),
            ..Default::default()
        });
    }
    for _ in 0..3 {
        sim.step(); // warm-up, excluded from the report
    }
    sim.timings = Default::default();
    for _ in 0..steps {
        sim.step();
    }
    let t = sim.timings;
    let total = t.total();

    let row = |name: &str, secs: f64| {
        vec![
            name.to_string(),
            format!("{:.4}", secs),
            format!("{:.1}%", 100.0 * secs / total),
        ]
    };
    print_table(
        &format!(
            "E2: step breakdown, grid {n:?}, ppc {ppc}, {steps} steps, \
             {pipelines} pipelines, {} rayon threads, {layout} layout{}",
            vpic_core::worker_threads(),
            if sentinel { ", sentinel armed" } else { "" }
        ),
        &["phase", "seconds", "share"],
        &[
            row("particle push + deposit (inner loop)", t.push),
            row("interpolator load", t.interpolate),
            row("current reduce/unload/sync", t.current),
            row("field solve (B/E/B)", t.field),
            row("particle sort", t.sort),
            row("other (sponge/cleaning/hooks)", t.other),
            row("TOTAL", total),
        ],
    );

    let particle_flops = t.particle_steps as f64 * flops::particle::TOTAL as f64;
    let voxel_flops = t.voxel_steps as f64 * flops::voxel::TOTAL as f64;
    let inner_rate = particle_flops / t.push / 1e9;
    let sustained_rate = (particle_flops + voxel_flops) / total / 1e9;
    print_table(
        "E2: sustained vs inner loop",
        &["metric", "this host", "paper (Roadrunner)"],
        &[
            vec![
                "inner loop rate".into(),
                format!("{inner_rate:.2} Gflop/s"),
                "488,000 Gflop/s".into(),
            ],
            vec![
                "sustained rate".into(),
                format!("{sustained_rate:.2} Gflop/s"),
                "374,000 Gflop/s".into(),
            ],
            vec![
                "sustained / inner".into(),
                format!("{:.3}", sustained_rate / inner_rate),
                "0.766".into(),
            ],
            vec![
                "inner-loop time share".into(),
                format!("{:.3}", t.inner_loop_fraction()),
                "~0.77 (implied)".into(),
            ],
        ],
    );
    println!(
        "\nwhole-step throughput: {:.4e} particles/s ({} particles, {} pipelines, {} threads, \
         {} layout)",
        t.particle_steps as f64 / total,
        sim.n_particles(),
        pipelines,
        vpic_core::worker_threads(),
        layout
    );
    println!("shape check: the inner loop dominates the step and the sustained/inner");
    println!("ratio sits in the same ~0.7-0.9 band the paper reports.");

    if !json.is_empty() {
        let bench = StepBench::from_timings(
            &t,
            n,
            ppc,
            pipelines,
            vpic_core::worker_threads(),
            sim.n_particles() as u64,
            layout.name(),
        );
        if let Err(e) = bench.validate() {
            eprintln!("refusing to write {json}: {e}");
            std::process::exit(1);
        }
        // Merge by layout: an existing readable file keeps its other-layout
        // records, so one run per layout accumulates a complete set.
        let path = std::path::Path::new(&json);
        let mut set = read_set(path).unwrap_or_default();
        set.retain(|b| b.layout != bench.layout);
        set.push(bench);
        set.sort_by(|a, b| a.layout.cmp(&b.layout));
        if let Err(e) = write_set(&set, path) {
            eprintln!("write {json}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json} ({} records)", set.len());
    }
}

/// `--validate <path>`: load + check every record in a BENCH_step.json,
/// exit nonzero on any schema problem or NaN/zero rate.
fn validate(path: &str) -> i32 {
    match read_set(std::path::Path::new(path))
        .and_then(|set| set.iter().try_for_each(StepBench::validate).map(|()| set))
    {
        Ok(set) => {
            for b in &set {
                println!(
                    "{path} OK [{}]: {:.4e} particles/s, grid {:?}, {} threads, \
                     inner-loop share {:.3}",
                    b.layout, b.particles_per_sec, b.grid, b.threads, b.inner_loop_fraction
                );
            }
            0
        }
        Err(e) => {
            eprintln!("{path} INVALID: {e}");
            1
        }
    }
}
