//! E2 — Whole-step phase breakdown (paper anchor: sustained 0.374 Pflop/s
//! vs inner loop 0.488 Pflop/s → the inner loop is ~77% of the step).
//!
//! Runs the full single-domain step loop and prints where the time goes,
//! plus the sustained-vs-inner-loop flop-rate ratio on this host.
//!
//! This binary doubles as the step-throughput bench: `--nx/--ny/--nz`,
//! `--ppc`, `--steps`, `--pipelines`, `--layout aos|aosoa`,
//! `--kernel scalar|lane` and `--sort auto|N` size the run, and
//! `--json <path>` writes a machine-readable `BENCH_step.json` record
//! (schema in `vpic_bench::stepjson`), including the realized sort
//! cadence and the coherence telemetry (spill rate, mixed-block
//! fraction) measured over the timed window. Writing into an existing
//! file *merges by (layout, kernel, cadence)* — run once per variant and
//! the file carries all the records side by side. The CI smoke lane
//! re-invokes it as `--validate <path>` to check every record in a
//! previously written file for schema problems and NaN/zero rates, and
//! then cross-checks the lane kernel against the scalar AoS oracle on a
//! shrunk bench grid — a record is only as trustworthy as the kernel
//! that produced it. `--assert-speedup <path>` compares the file's two
//! AoSoA records at the same cadence and fails unless the lane kernel is
//! at least as fast as the scalar body; `--assert-auto <path>` compares
//! the file's aosoa-lane `auto` record against its `fixed-25` record and
//! fails unless the controller is at least on par (3% noise guard).
//! `--sentinel` arms the numerical-integrity sentinel at its default
//! 10-step cadence so the health-monitoring overhead can be compared
//! against a plain run.
//!
//! `--diag off|sync|async` runs the probe-plane observation + snapshot
//! publication of the diagnostics pipeline on the step path (a real
//! `DiagSink`, including streaming `progress.json` artifacts), so the
//! record captures what in-situ diagnostics cost the step under each
//! mode. `--assert-diag <path>` compares the file's `async` record
//! against its `off` record at the same configuration and fails unless
//! the pipeline costs at most 3% of step throughput — the tentpole's
//! off-the-hot-path gate.

use roadrunner_model::flops;
use vpic_bench::stepjson::{read_set, write_set, StepBench};
use vpic_bench::{parse_flag, parse_opt, print_table, uniform_plasma};
use vpic_core::cadence::{CoherenceCounters, SortPolicy};
use vpic_core::push::PushKernel;
use vpic_core::store::Layout;
use vpic_diag::{DiagConfig, DiagMode, DiagSink, DiagSnapshot, ReflectivityProbe};

/// Counter delta over the timed window (`end` and `start` are lifetime
/// totals snapshotted around the measured steps).
fn coh_delta(end: &CoherenceCounters, start: &CoherenceCounters) -> CoherenceCounters {
    let mut d = *end;
    d.tally.pushed -= start.tally.pushed;
    d.tally.crossers -= start.tally.crossers;
    d.tally.lane_blocks -= start.tally.lane_blocks;
    d.tally.lane_spills -= start.tally.lane_spills;
    d.tally.mixed_blocks -= start.tally.mixed_blocks;
    d.tally.straddle_lanes -= start.tally.straddle_lanes;
    d.sorts -= start.sorts;
    d.skipped_sorts -= start.skipped_sorts;
    d
}

fn main() {
    let validate_path = parse_opt::<String>("validate", String::new());
    if !validate_path.is_empty() {
        std::process::exit(validate(&validate_path));
    }
    let speedup_path = parse_opt::<String>("assert-speedup", String::new());
    if !speedup_path.is_empty() {
        std::process::exit(assert_speedup(&speedup_path));
    }
    let auto_path = parse_opt::<String>("assert-auto", String::new());
    if !auto_path.is_empty() {
        std::process::exit(assert_auto(&auto_path));
    }
    let diag_path = parse_opt::<String>("assert-diag", String::new());
    if !diag_path.is_empty() {
        std::process::exit(assert_diag(&diag_path));
    }

    let full = parse_flag("full");
    let def = if full { 32 } else { 16 };
    let nx = parse_opt("nx", def);
    let ny = parse_opt("ny", nx);
    let nz = parse_opt("nz", nx);
    let n = (nx, ny, nz);
    let ppc = parse_opt("ppc", if full { 128 } else { 64 });
    let steps = parse_opt("steps", if full { 60 } else { 25 });
    let pipelines = parse_opt("pipelines", vpic_core::worker_threads());
    let json = parse_opt::<String>("json", String::new());
    let sentinel = parse_flag("sentinel");
    let layout_str = parse_opt::<String>("layout", "aos".into());
    let Some(layout) = Layout::parse(&layout_str) else {
        eprintln!("--layout must be aos or aosoa, got {layout_str}");
        std::process::exit(2);
    };
    let kernel_str = parse_opt::<String>("kernel", "lane".into());
    let kernel = match kernel_str.as_str() {
        "scalar" => PushKernel::Scalar,
        "lane" => PushKernel::Lane,
        _ => {
            eprintln!("--kernel must be scalar or lane, got {kernel_str}");
            std::process::exit(2);
        }
    };
    // The AoS path ignores the kernel knob and always runs the scalar
    // body; record what actually executed.
    let kernel_name = if layout == Layout::Aos {
        "scalar"
    } else {
        match kernel {
            PushKernel::Scalar => "scalar",
            PushKernel::Lane => "lane",
        }
    };
    let sort_str = parse_opt::<String>("sort", "25".into());
    let Some(sort_policy) = SortPolicy::parse(&sort_str) else {
        eprintln!("--sort must be auto or a step count, got {sort_str}");
        std::process::exit(2);
    };
    let cadence_name = sort_policy.name();
    let diag_str = parse_opt::<String>("diag", "off".into());
    let Some(diag_mode) = DiagMode::parse(&diag_str) else {
        eprintln!("--diag must be off, sync or async, got {diag_str}");
        std::process::exit(2);
    };
    let diag_name = diag_mode.as_str();

    let mut sim = uniform_plasma(n, ppc, pipelines, 7);
    sim.set_layout(layout);
    sim.set_kernel(kernel);
    sim.species[0].set_sort_policy(sort_policy);
    if sentinel {
        // Arm the numerical-integrity sentinel at its default 10-step
        // cadence; its sweeps land in the "other" phase so the overhead
        // of health monitoring shows up in the same breakdown.
        sim.set_config(&vpic_core::sentinel::SimConfig {
            sentinel: vpic_core::sentinel::SentinelConfig::enabled(),
            ..Default::default()
        });
    }
    // The diagnostics workload mirrors the LPI run's observation: a
    // reflectivity probe sampled inline every step, plus a heavy
    // field-slab + decimated-particle snapshot on the cadence. Artifacts
    // go to a scratch dir so the sync mode pays the real FFT +
    // progress.json cost the async worker is supposed to absorb.
    let dcfg = DiagConfig {
        mode: diag_mode,
        cadence: 8,
        ..Default::default()
    };
    let mut sink = DiagSink::new(&dcfg, sim.grid.dt as f64);
    if !sink.is_off() {
        let dir = std::env::temp_dir().join(format!("vpic_e2_diag_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        sink.set_out_dir(dir);
    }
    let mut probe = ReflectivityProbe::new(nx / 2);

    for _ in 0..3 {
        sim.step(); // warm-up, excluded from the report
    }
    sim.timings = Default::default();
    let coh_start = *sim.species[0].coherence();
    for _ in 0..steps {
        if sink.is_off() {
            sim.step();
        } else {
            let sink = &mut sink;
            let probe = &mut probe;
            sim.step_with_observed(
                |_, _, _| {},
                |f, g, species, step| {
                    probe.sample(f, g);
                    let v = g.voxel(probe.plane, 1, 1);
                    let backward = 0.5 * (f.ey[v] - f.cbz[v]);
                    let heavy = step.is_multiple_of(dcfg.cadence);
                    let (slab, particles) = if heavy {
                        let mut slab = sink.slab_buffer();
                        for k in 1..=g.nz {
                            for j in 1..=g.ny {
                                let v = g.voxel(probe.plane, j, k);
                                slab.extend_from_slice(&[
                                    f.ey[v] as f64,
                                    f.ez[v] as f64,
                                    f.cby[v] as f64,
                                    f.cbz[v] as f64,
                                ]);
                            }
                        }
                        let parts: Vec<f32> = species[0]
                            .iter()
                            .step_by(dcfg.decimation)
                            .map(|p| (p.ux * p.ux + p.uy * p.uy + p.uz * p.uz).sqrt())
                            .collect();
                        (Some(slab), Some(parts))
                    } else {
                        (None, None)
                    };
                    sink.publish(DiagSnapshot {
                        step,
                        time: step as f64 * g.dt as f64,
                        backward: backward as f64,
                        probe_raw: probe.raw_state(),
                        slab,
                        particles,
                    });
                },
            );
        }
    }
    let t = sim.timings;
    let (_engine, dstats) = sink.finish();
    let total = t.total();
    let coh = coh_delta(sim.species[0].coherence(), &coh_start);
    let realized_interval = sim.species[0].cadence().interval;

    let row = |name: &str, secs: f64| {
        vec![
            name.to_string(),
            format!("{:.4}", secs),
            format!("{:.1}%", 100.0 * secs / total),
        ]
    };
    print_table(
        &format!(
            "E2: step breakdown, grid {n:?}, ppc {ppc}, {steps} steps, \
             {pipelines} pipelines, {} rayon threads, {layout} layout, \
             {kernel_name} kernel, {cadence_name} cadence, {diag_name} diag{}",
            vpic_core::worker_threads(),
            if sentinel { ", sentinel armed" } else { "" }
        ),
        &["phase", "seconds", "share"],
        &[
            row("particle push + deposit (inner loop)", t.push),
            row("interpolator load", t.interpolate),
            row("current reduce/unload/sync", t.current),
            row("field solve (B/E/B)", t.field),
            row("particle sort", t.sort),
            row("probe sample + snapshot publish (diag)", t.diag),
            row("other (sponge/cleaning/hooks)", t.other),
            row("TOTAL", total),
        ],
    );
    if diag_mode != DiagMode::Off {
        println!(
            "diag [{}]: {} snapshot(s) published, {} consumed, {} dropped, max queue depth {}, \
             publisher stalled {:.1} ms",
            diag_name,
            dstats.published,
            dstats.consumed,
            dstats.dropped,
            dstats.max_depth,
            dstats.stall_seconds * 1e3
        );
    }

    let particle_flops = t.particle_steps as f64 * flops::particle::TOTAL as f64;
    let voxel_flops = t.voxel_steps as f64 * flops::voxel::TOTAL as f64;
    let inner_rate = particle_flops / t.push / 1e9;
    let sustained_rate = (particle_flops + voxel_flops) / total / 1e9;
    print_table(
        "E2: sustained vs inner loop",
        &["metric", "this host", "paper (Roadrunner)"],
        &[
            vec![
                "inner loop rate".into(),
                format!("{inner_rate:.2} Gflop/s"),
                "488,000 Gflop/s".into(),
            ],
            vec![
                "sustained rate".into(),
                format!("{sustained_rate:.2} Gflop/s"),
                "374,000 Gflop/s".into(),
            ],
            vec![
                "sustained / inner".into(),
                format!("{:.3}", sustained_rate / inner_rate),
                "0.766".into(),
            ],
            vec![
                "inner-loop time share".into(),
                format!("{:.3}", t.inner_loop_fraction()),
                "~0.77 (implied)".into(),
            ],
        ],
    );
    println!(
        "\nwhole-step throughput: {:.4e} particles/s ({} particles, {} pipelines, {} threads, \
         {} layout, {} kernel)",
        t.particle_steps as f64 / total,
        sim.n_particles(),
        pipelines,
        vpic_core::worker_threads(),
        layout,
        kernel_name
    );
    print_table(
        &format!("E2: sort cadence & lane coherence over the timed window ({cadence_name})"),
        &["metric", "value"],
        &[
            vec![
                "realized sort interval (steps)".into(),
                realized_interval.to_string(),
            ],
            vec!["sorts performed".into(), coh.sorts.to_string()],
            vec![
                "sorts skipped (coherent)".into(),
                coh.skipped_sorts.to_string(),
            ],
            vec![
                "crosser rate (per particle-step)".into(),
                format!("{:.5}", coh.crosser_rate()),
            ],
            vec![
                "lane spill rate (per lane)".into(),
                format!("{:.5}", coh.spill_rate()),
            ],
            vec![
                "mixed-voxel block fraction".into(),
                format!("{:.5}", coh.mixed_block_fraction()),
            ],
        ],
    );
    println!("shape check: the inner loop dominates the step and the sustained/inner");
    println!("ratio sits in the same ~0.7-0.9 band the paper reports.");

    if !json.is_empty() {
        let bench = StepBench::from_timings(
            &t,
            n,
            ppc,
            pipelines,
            vpic_core::worker_threads(),
            sim.n_particles() as u64,
            layout.name(),
            kernel_name,
        )
        .with_coherence(&cadence_name, &coh)
        .with_diag(diag_name);
        if let Err(e) = bench.validate() {
            eprintln!("refusing to write {json}: {e}");
            std::process::exit(1);
        }
        // Merge by (layout, kernel, cadence, diag): an existing readable
        // file keeps its other-variant records, so one run per variant
        // accumulates a complete set.
        let path = std::path::Path::new(&json);
        let mut set = read_set(path).unwrap_or_default();
        set.retain(|b| {
            b.layout != bench.layout
                || b.kernel != bench.kernel
                || b.cadence != bench.cadence
                || b.diag != bench.diag
        });
        set.push(bench);
        set.sort_by(|a, b| {
            (&a.layout, &a.kernel, &a.cadence, &a.diag)
                .cmp(&(&b.layout, &b.kernel, &b.cadence, &b.diag))
        });
        if let Err(e) = write_set(&set, path) {
            eprintln!("write {json}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json} ({} records)", set.len());
    }
}

/// `--validate <path>`: load + check every record in a BENCH_step.json,
/// exit nonzero on any schema problem or NaN/zero rate. Then run the
/// lane kernel against the scalar AoS oracle on a shrunk bench grid and
/// require bit-identical particles and fields — the same differential
/// contract `tests/kernel_oracle.rs` pins, re-checked in the binary that
/// writes the perf records.
fn validate(path: &str) -> i32 {
    match read_set(std::path::Path::new(path))
        .and_then(|set| set.iter().try_for_each(StepBench::validate).map(|()| set))
    {
        Ok(set) => {
            for b in &set {
                println!(
                    "{path} OK [{} {} {} diag-{}]: {:.4e} particles/s, grid {:?}, {} threads, \
                     inner-loop share {:.3}, spill rate {:.4}",
                    b.layout,
                    b.kernel,
                    b.cadence,
                    b.diag,
                    b.particles_per_sec,
                    b.grid,
                    b.threads,
                    b.inner_loop_fraction,
                    b.spill_rate
                );
            }
        }
        Err(e) => {
            eprintln!("{path} INVALID: {e}");
            return 1;
        }
    }
    match oracle_cross_check() {
        Ok(msg) => {
            println!("{msg}");
            0
        }
        Err(e) => {
            eprintln!("lane kernel DIVERGES from scalar oracle: {e}");
            1
        }
    }
}

/// Run the bench deck (same plasma factory and sort cadence the records
/// come from) on a shrunk grid under all three variants and demand the
/// AoSoA scalar and lane runs land bit-for-bit on the AoS scalar oracle.
fn oracle_cross_check() -> Result<String, String> {
    let n = (8, 8, 8);
    let (ppc, steps) = (8, 6);
    let pipelines = vpic_core::worker_threads().max(2);
    let mut sims = [
        (Layout::Aos, PushKernel::Scalar),
        (Layout::Aosoa, PushKernel::Scalar),
        (Layout::Aosoa, PushKernel::Lane),
    ]
    .map(|(layout, kernel)| {
        let mut sim = uniform_plasma(n, ppc, pipelines, 7);
        sim.set_layout(layout);
        sim.set_kernel(kernel);
        // A short sort interval so the lane kernel sees both freshly
        // sorted single-voxel blocks and drifted mixed-voxel blocks.
        sim.species[0].set_sort_policy(SortPolicy::Fixed(3));
        sim
    });
    for _ in 0..steps {
        for sim in sims.iter_mut() {
            sim.step();
        }
    }
    let [oracle, aosoa_scalar, aosoa_lane] = sims;
    for (sim, which) in [(&aosoa_scalar, "aosoa scalar"), (&aosoa_lane, "aosoa lane")] {
        if sim.n_particles() != oracle.n_particles() {
            return Err(format!(
                "{which}: {} particles vs oracle {}",
                sim.n_particles(),
                oracle.n_particles()
            ));
        }
        for (sa, sb) in oracle.species.iter().zip(sim.species.iter()) {
            for (k, (p, q)) in sa.iter().zip(sb.iter()).enumerate() {
                if p != q {
                    return Err(format!(
                        "{which}: particle {k} differs after {steps} steps:\n  oracle {p:?}\n  \
                         kernel {q:?}"
                    ));
                }
            }
        }
        let fields = [
            ("ex", &oracle.fields.ex, &sim.fields.ex),
            ("ey", &oracle.fields.ey, &sim.fields.ey),
            ("ez", &oracle.fields.ez, &sim.fields.ez),
            ("cbx", &oracle.fields.cbx, &sim.fields.cbx),
            ("cby", &oracle.fields.cby, &sim.fields.cby),
            ("cbz", &oracle.fields.cbz, &sim.fields.cbz),
            ("jx", &oracle.fields.jx, &sim.fields.jx),
            ("jy", &oracle.fields.jy, &sim.fields.jy),
            ("jz", &oracle.fields.jz, &sim.fields.jz),
        ];
        for (name, a, b) in fields {
            for (v, (p, q)) in a.iter().zip(b.iter()).enumerate() {
                if p.to_bits() != q.to_bits() {
                    return Err(format!("{which}: field {name}[{v}] differs: {p} vs {q}"));
                }
            }
        }
    }
    Ok(format!(
        "oracle cross-check OK: aosoa scalar+lane bit-identical to aos scalar over {steps} steps \
         on {n:?} ppc {ppc} ({} particles)",
        oracle.n_particles()
    ))
}

/// `--assert-diag <path>`: the file must carry records for both
/// `diag = off` and `diag = async` on the same configuration (layout,
/// kernel, cadence), and the async pipeline must cost at most 3% of
/// step throughput — the snapshot handoff is supposed to be off the hot
/// path, so its residual step cost is probe sampling + publication only.
fn assert_diag(path: &str) -> i32 {
    let set = match read_set(std::path::Path::new(path)) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let off = set.iter().find(|b| b.diag == "off");
    let asy = off.and_then(|o| {
        set.iter().find(|b| {
            b.diag == "async"
                && b.layout == o.layout
                && b.kernel == o.kernel
                && b.cadence == o.cadence
        })
    });
    let (Some(off), Some(asy)) = (off, asy) else {
        eprintln!("{path}: need records for both diag=off and diag=async on one configuration");
        return 1;
    };
    if off.grid != asy.grid || off.ppc != asy.ppc || off.pipelines != asy.pipelines {
        eprintln!(
            "{path}: records not comparable (off grid {:?} ppc {} pipes {} vs async grid {:?} \
             ppc {} pipes {})",
            off.grid, off.ppc, off.pipelines, asy.grid, asy.ppc, asy.pipelines
        );
        return 1;
    }
    let ratio = asy.particles_per_sec / off.particles_per_sec;
    println!(
        "{path}: diag async {:.4e} p/s vs diag off {:.4e} p/s ({ratio:.3}x)",
        asy.particles_per_sec, off.particles_per_sec
    );
    if ratio >= 0.97 {
        0
    } else {
        eprintln!("async diagnostics cost more than 3% of step throughput");
        1
    }
}

/// `--assert-speedup <path>`: the file must carry AoSoA records for both
/// kernels on the same configuration and sort cadence, and the lane
/// kernel must be at least as fast — the regression gate for the lane
/// rewrite.
fn assert_speedup(path: &str) -> i32 {
    let set = match read_set(std::path::Path::new(path)) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let scalar = set
        .iter()
        .find(|b| b.layout == "aosoa" && b.kernel == "scalar");
    let lane = scalar.and_then(|s| {
        set.iter()
            .find(|b| b.layout == "aosoa" && b.kernel == "lane" && b.cadence == s.cadence)
    });
    let (Some(scalar), Some(lane)) = (scalar, lane) else {
        eprintln!("{path}: need aosoa records for both scalar and lane kernels at one cadence");
        return 1;
    };
    if scalar.grid != lane.grid || scalar.ppc != lane.ppc || scalar.pipelines != lane.pipelines {
        eprintln!(
            "{path}: records not comparable (scalar grid {:?} ppc {} pipes {} vs lane grid {:?} \
             ppc {} pipes {})",
            scalar.grid, scalar.ppc, scalar.pipelines, lane.grid, lane.ppc, lane.pipelines
        );
        return 1;
    }
    let ratio = lane.particles_per_sec / scalar.particles_per_sec;
    println!(
        "{path}: aosoa lane {:.4e} p/s vs aosoa scalar {:.4e} p/s ({ratio:.2}x)",
        lane.particles_per_sec, scalar.particles_per_sec
    );
    if lane.particles_per_sec >= scalar.particles_per_sec {
        0
    } else {
        eprintln!("lane kernel is SLOWER than the scalar body it replaced");
        1
    }
}

/// `--assert-auto <path>`: the file must carry aosoa-lane records for
/// both the `auto` and `fixed-25` cadences on the same configuration,
/// and the controller must be at least on par with the historical fixed
/// cadence. A 3% guard absorbs run-to-run timing noise in CI; the
/// committed BENCH_step.json is expected to clear 1.0x outright.
fn assert_auto(path: &str) -> i32 {
    let set = match read_set(std::path::Path::new(path)) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let find = |cadence: &str| {
        set.iter()
            .find(|b| b.layout == "aosoa" && b.kernel == "lane" && b.cadence == cadence)
    };
    let (Some(auto), Some(fixed)) = (find("auto"), find("fixed-25")) else {
        eprintln!("{path}: need aosoa lane records for both auto and fixed-25 cadences");
        return 1;
    };
    if auto.grid != fixed.grid || auto.ppc != fixed.ppc || auto.pipelines != fixed.pipelines {
        eprintln!(
            "{path}: records not comparable (auto grid {:?} ppc {} pipes {} vs fixed grid {:?} \
             ppc {} pipes {})",
            auto.grid, auto.ppc, auto.pipelines, fixed.grid, fixed.ppc, fixed.pipelines
        );
        return 1;
    }
    let ratio = auto.particles_per_sec / fixed.particles_per_sec;
    println!(
        "{path}: aosoa lane auto {:.4e} p/s ({} sorts, {} skipped) vs fixed-25 {:.4e} p/s \
         ({ratio:.3}x)",
        auto.particles_per_sec, auto.sorts, auto.skipped_sorts, fixed.particles_per_sec
    );
    if ratio >= 0.97 {
        0
    } else {
        eprintln!("auto cadence is SLOWER than the fixed-25 default it replaces");
        1
    }
}
