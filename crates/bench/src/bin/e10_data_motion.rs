//! E10 — The data-motion argument (paper abstract: "PIC … typically
//! requires more data motion per computation than other techniques (such
//! as dense matrix calculations, molecular dynamics N-body calculations
//! and Monte-Carlo calculations) often used to demonstrate supercomputer
//! performance").
//!
//! Runs each technique's reference kernel on this host and tabulates
//! achieved flop rates next to the algorithmic bytes-per-flop.

use roadrunner_model::flops;
use vpic_bench::datamotion::{dense_matmul, monte_carlo, nbody_allpairs, KernelReport};
use vpic_bench::{parse_flag, print_table, time_it, uniform_plasma};
use vpic_core::push::{advance_p, PushCoefficients};

fn pic_report(full: bool) -> KernelReport {
    let n = if full { (24, 24, 24) } else { (16, 16, 16) };
    let mut sim = uniform_plasma(n, 64, 1, 4);
    for _ in 0..2 {
        sim.step();
    }
    sim.species[0].sort(&sim.grid);
    sim.interp.load(&sim.fields, &sim.grid);
    let g = sim.grid.clone();
    let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
    let reps = if full { 25 } else { 10 };
    let np = sim.n_particles();
    let (seconds, _) = time_it(|| {
        for _ in 0..reps {
            sim.accumulators.clear();
            advance_p(
                sim.species[0].store_mut(),
                coeffs,
                &sim.interp,
                &mut sim.accumulators.arrays,
                &g,
            );
        }
    });
    KernelReport {
        name: "PIC particle advance (this code)",
        flops: np as f64 * reps as f64 * flops::particle::TOTAL as f64,
        seconds,
        bytes_per_flop: flops::bytes_per_flop(),
    }
}

fn main() {
    let full = parse_flag("full");
    let mm = dense_matmul(if full { 512 } else { 256 });
    let nb = nbody_allpairs(if full { 4096 } else { 2048 });
    let mc = monte_carlo(if full { 20_000_000 } else { 5_000_000 });
    let pic = pic_report(full);

    let row = |r: &KernelReport| {
        vec![
            r.name.to_string(),
            format!("{:.2}", r.gflops()),
            format!("{:.4}", r.bytes_per_flop),
            format!("{:.1}x", r.bytes_per_flop / mm.bytes_per_flop),
        ]
    };
    print_table(
        "E10: data motion per flop across demonstration techniques",
        &[
            "kernel",
            "Gflop/s (this host)",
            "bytes/flop (algorithmic)",
            "vs dense matmul",
        ],
        &[row(&mm), row(&nb), row(&mc), row(&pic)],
    );
    println!(
        "\nPIC moves ~{:.1} bytes per flop ({} bytes per 165-flop particle advance):",
        pic.bytes_per_flop,
        flops::BYTES_PER_PARTICLE_ADVANCE
    );
    println!("orders of magnitude more data motion than the compute-dense techniques —");
    println!("the reason 0.374 Pflop/s sustained in a PIC code was remarkable in 2008.");
}
