//! E7 — Trillion-particle machine projection (paper anchors: 1.0e12
//! particles on 136e6 voxels, 0.488 Pflop/s inner loop, 0.374 Pflop/s
//! sustained on the full 17-CU Roadrunner).
//!
//! Builds the hierarchy table SPE → Cell → node → CU → machine twice:
//! once calibrated from the paper's inner-loop figure (consistency check:
//! must reproduce 0.488 exactly and land near 0.374 sustained), once from
//! a rate measured on this host just before printing.

use roadrunner_model::{flops, KernelRates, Machine, NodeLoad, PerfModel};
use vpic_bench::{parse_flag, print_table, time_it, uniform_plasma};
use vpic_core::push::{advance_p, PushCoefficients};

fn measure_host_rate(full: bool) -> f64 {
    let n = if full { (24, 24, 24) } else { (16, 16, 16) };
    let mut sim = uniform_plasma(n, 64, 1, 3);
    for _ in 0..2 {
        sim.step();
    }
    sim.species[0].sort(&sim.grid);
    sim.interp.load(&sim.fields, &sim.grid);
    let g = sim.grid.clone();
    let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
    let reps = if full { 30 } else { 10 };
    let n_particles = sim.n_particles();
    let (secs, _) = time_it(|| {
        for _ in 0..reps {
            sim.accumulators.clear();
            advance_p(
                sim.species[0].store_mut(),
                coeffs,
                &sim.interp,
                &mut sim.accumulators.arrays,
                &g,
            );
        }
    });
    n_particles as f64 * reps as f64 / secs
}

fn hierarchy_rows(model: &PerfModel, load: &NodeLoad) -> Vec<Vec<String>> {
    let m = &model.machine;
    let spe_pps = model.rates.particles_per_sec_per_spe;
    let levels: &[(&str, f64)] = &[
        ("SPE", 1.0),
        ("Cell (8 SPE)", m.spes_per_cell as f64),
        ("node (4 Cell)", (m.spes_per_cell * m.cells_per_node) as f64),
        (
            "CU (180 nodes)",
            (m.spes_per_cell * m.cells_per_node * m.nodes_per_cu) as f64,
        ),
        ("machine (17 CU)", m.n_spes() as f64),
    ];
    let mut rows: Vec<Vec<String>> = levels
        .iter()
        .map(|(name, spes)| {
            let pps = spe_pps * spes;
            vec![
                name.to_string(),
                format!("{:.0}", spes),
                format!("{:.3e}", pps),
                format!("{:.4}", flops::particle_flops(pps) / 1e15),
            ]
        })
        .collect();
    let budget = model.step_budget(load);
    rows.push(vec![
        "machine, whole step".into(),
        format!("{}", model.machine.n_spes()),
        format!("{:.3e}", model.particles_per_second(load)),
        format!("{:.4}", model.sustained_pflops(load)),
    ]);
    rows.push(vec![
        "  step time / inner share".into(),
        String::new(),
        format!("{:.3} s", budget.total()),
        format!("{:.2}", budget.inner_fraction()),
    ]);
    rows
}

fn main() {
    let full = parse_flag("full");
    let machine = Machine::roadrunner();
    let load = NodeLoad::paper_headline(&machine);
    println!(
        "E7: projections for the paper's headline run: 1.0e12 particles, 136e6 voxels,\n    {:.0} particles/node, {:.0} voxels/node, {} flops/particle",
        load.particles_per_node,
        load.voxels_per_node,
        flops::particle::TOTAL
    );

    let paper = PerfModel {
        machine,
        rates: KernelRates::from_paper_inner_loop(&machine, 0.488),
    };
    print_table(
        "E7a: paper-calibrated hierarchy (inner-loop Pflop/s; last rows: sustained)",
        &["level", "SPEs", "particles/s", "Pflop/s (s.p.)"],
        &hierarchy_rows(&paper, &load),
    );
    println!("paper anchors: inner loop 0.488 Pflop/s (exact by calibration), sustained 0.374");

    let host_pps = measure_host_rate(full);
    let host = PerfModel {
        machine,
        rates: KernelRates::from_measured_host_rate(
            &machine,
            host_pps,
            host_pps * flops::particle::TOTAL as f64 / flops::voxel::TOTAL as f64,
            25.6, // treat one host core as one SPE-equivalent peak
        ),
    };
    println!(
        "\nmeasured host inner-loop rate: {:.3e} particles/s per core",
        host_pps
    );
    print_table(
        "E7b: host-calibrated hierarchy (one host core ≡ one SPE)",
        &["level", "SPEs", "particles/s", "Pflop/s (s.p.)"],
        &hierarchy_rows(&host, &load),
    );
    // Cell-acceleration factor: the same kernel run on the Opteron side
    // only (the "conventional cluster" Roadrunner replaced). Peak-scaled:
    // one node has 4 Opteron cores vs 32 SPEs.
    let m = &machine;
    let opteron_node_peak = m.opteron_cores_per_node as f64 * m.opteron_gflops_sp;
    let cell_node_peak = (m.cells_per_node * m.spes_per_cell) as f64 * m.spe_gflops_sp;
    print_table(
        "E7c: heterogeneous acceleration (node-level s.p. peak)",
        &["configuration", "Gflop/s per node", "relative"],
        &[
            vec![
                "Opteron-only (4 cores)".into(),
                format!("{opteron_node_peak:.1}"),
                "1.0×".into(),
            ],
            vec![
                "with 4 PowerXCell 8i".into(),
                format!("{cell_node_peak:.1}"),
                format!("{:.1}×", cell_node_peak / opteron_node_peak),
            ],
        ],
    );
    println!(
        "(the Cell blades supply ~{:.0}× the flops — why VPIC's port to the SPEs,",
        cell_node_peak / opteron_node_peak
    );
    println!(" not the Opterons, set the machine's PIC capability)");

    let ratio = host.sustained_pflops(&load) / 0.374;
    println!(
        "\nhost-calibrated sustained projection = {:.3} Pflop/s ({:.2}× the paper's 0.374):\n\
         the projection machinery reproduces the paper when fed the paper's rate, and\n\
         shows what this host's kernel efficiency would deliver on the same machine.",
        host.sustained_pflops(&load),
        ratio
    );
}
