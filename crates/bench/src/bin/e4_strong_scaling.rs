//! E4 — Strong scaling: a fixed global problem split over more ranks.
//!
//! On a shared-core host the interesting measurable is how the
//! communication/overhead share grows as the per-rank domain shrinks —
//! the same surface-to-volume effect that bends the paper's strong
//! scaling curves. The analytic model mirrors the sweep on Roadrunner.

use nanompi::CartTopology;
use roadrunner_model::{KernelRates, Machine, NodeLoad, PerfModel};
use vpic_bench::{parse_flag, print_table};
use vpic_core::{Momentum, ParticleBc, Species};
use vpic_parallel::{DistributedSim, DomainSpec};

fn main() {
    let full = parse_flag("full");
    let global = if full { (32, 32, 32) } else { (16, 16, 16) };
    let ppc = if full { 64 } else { 32 };
    let steps = if full { 30u64 } else { 15 };
    let rank_counts: &[usize] = &[1, 2, 4, 8];

    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let topo = CartTopology::balanced(ranks, [true, true, true]);
        if global.0 % topo.dims[0] != 0
            || global.1 % topo.dims[1] != 0
            || global.2 % topo.dims[2] != 0
        {
            continue;
        }
        let spec = DomainSpec {
            global_cells: global,
            cell: (0.25, 0.25, 0.25),
            dt: 0.1,
            topo,
            global_bc: [ParticleBc::Periodic; 6],
            origin: (0.0, 0.0, 0.0),
        };
        let (results, _) = nanompi::run_expect(ranks, |comm| {
            let mut sim = DistributedSim::new(spec.clone(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 11, 1.0, ppc, Momentum::thermal(0.05));
            comm.barrier().unwrap();
            let t0 = std::time::Instant::now();
            for _ in 0..steps {
                sim.step(comm).unwrap();
            }
            comm.barrier().unwrap();
            (
                t0.elapsed().as_secs_f64(),
                sim.n_particles(),
                sim.timings.comm_fraction(),
            )
        });
        let time = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let particles: usize = results.iter().map(|r| r.1).sum();
        let comm = results.iter().map(|r| r.2).sum::<f64>() / ranks as f64;
        let rate = particles as f64 * steps as f64 / time;
        rows.push(vec![
            format!("{ranks}"),
            format!("{:?}", spec.local_cells()),
            format!("{:.3e}", rate),
            format!("{:.1}%", 100.0 * comm),
        ]);
    }
    print_table(
        &format!("E4a: measured strong scaling, global {global:?}, {ppc} ppc, {steps} steps"),
        &["ranks", "cells/rank", "agg rate (p/s)", "comm share"],
        &rows,
    );

    // Model: same total problem on growing machine fractions.
    let machine = Machine::roadrunner();
    let rates = KernelRates::from_paper_inner_loop(&machine, 0.488);
    let total_particles = 1.0e12;
    let total_voxels = 136.0e6;
    let mut rows = Vec::new();
    let mut base = 0.0f64;
    for n_cu in [1usize, 2, 4, 8, 17] {
        let m = Machine::roadrunner_cus(n_cu);
        let model = PerfModel { machine: m, rates };
        let nodes = m.n_nodes() as f64;
        let load = NodeLoad {
            particles_per_node: total_particles / nodes,
            voxels_per_node: total_voxels / nodes,
            migration_fraction: 0.01,
        };
        let t = model.step_budget(&load).total();
        if n_cu == 1 {
            base = t;
        }
        rows.push(vec![
            format!("{n_cu}"),
            format!("{:.3}", t),
            format!("{:.2}", base / t),
            format!("{:.2}", (base / t) / n_cu as f64),
            format!("{:.3}", model.sustained_pflops(&load)),
        ]);
    }
    print_table(
        "E4b: Roadrunner strong-scaling model (1e12 particles / 136e6 voxels total)",
        &[
            "CUs",
            "step time (s)",
            "speedup",
            "efficiency",
            "sustained Pflop/s",
        ],
        &rows,
    );

    // A 250× smaller problem exposes the latency/surface terms.
    let small_particles = 4.0e9;
    let small_voxels = 5.4e5;
    let mut rows = Vec::new();
    let mut base = 0.0f64;
    for n_cu in [1usize, 2, 4, 8, 17] {
        let m = Machine::roadrunner_cus(n_cu);
        let model = PerfModel { machine: m, rates };
        let nodes = m.n_nodes() as f64;
        let load = NodeLoad {
            particles_per_node: small_particles / nodes,
            voxels_per_node: small_voxels / nodes,
            migration_fraction: 0.02,
        };
        let t = model.step_budget(&load).total();
        if n_cu == 1 {
            base = t;
        }
        rows.push(vec![
            format!("{n_cu}"),
            format!("{:.5}", t),
            format!("{:.2}", base / t),
            format!("{:.2}", (base / t) / n_cu as f64),
        ]);
    }
    print_table(
        "E4c: strong-scaling model, 250× smaller problem (4e9 particles)",
        &["CUs", "step time (s)", "speedup", "efficiency"],
        &rows,
    );
    println!("\nshape check: the headline-size problem strong-scales almost perfectly");
    println!("(huge per-node work); the small problem shows the classic efficiency");
    println!("decay as fixed communication/latency terms stop amortizing.");
}
