//! E9 — Fidelity battery: the analytic checks backing the paper's
//! "unprecedented fidelity" claim, each compared against theory.
//!
//! 1. Langmuir oscillation frequency vs Bohm-Gross;
//! 2. two-stream instability growth rate vs cold-beam theory;
//! 3. long-run total energy conservation;
//! 4. exact discrete charge continuity (dρ/dt + ∇·J);
//! 5. ∇·B preservation;
//! 6. light-wave dispersion on the Yee mesh.

use vpic_bench::{parse_flag, print_table, uniform_plasma};
use vpic_core::field_solver::{bcs_of, compute_div_b_err, sync_e, sync_j, sync_rho};
use vpic_core::{load_two_stream, Grid, Rng, Simulation, Species};
use vpic_diag::TimeSeries;

fn langmuir(full: bool) -> (f64, f64) {
    let nx = if full { 64 } else { 32 };
    let vth = 0.02f32;
    let mut sim = uniform_plasma((nx, 4, 4), if full { 128 } else { 64 }, 1, 1);
    let g = sim.grid.clone();
    let kx = 2.0 * std::f32::consts::PI / g.extent().0;
    // Thermal velocity of the factory plasma is 0.05; reload colder for a
    // crisper line: replace momenta.
    let mut parts = sim.species[0].to_particles();
    for p in &mut parts {
        p.ux *= vth / 0.05;
        p.uy *= vth / 0.05;
        p.uz *= vth / 0.05;
    }
    sim.species[0].set_particles(parts);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let x = (i as f32 - 0.5) * g.dx;
                sim.fields.ex[g.voxel(i, j, k)] = 0.004 * (kx * x).sin();
            }
        }
    }
    sync_e(&mut sim.fields, &g, bcs_of(&g));
    let steps = (40.0 / g.dt as f64) as usize;
    let mut ts = TimeSeries::new("fe", g.dt as f64);
    for _ in 0..steps {
        sim.step();
        ts.push(sim.energies().field_e);
    }
    let measured = ts.dominant_omega() / 2.0;
    let theory = (1.0 + 3.0 * (kx * vth) as f64 * (kx * vth) as f64).sqrt();
    (measured, theory)
}

fn two_stream(full: bool) -> (f64, f64) {
    let nx = if full { 128 } else { 64 };
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let grid = Grid::periodic((nx, 2, 2), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(8);
    load_two_stream(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        if full { 256 } else { 128 },
        0.1,
        0.005,
    );
    sim.add_species(e);
    let steps = (60.0 / sim.grid.dt as f64) as usize;
    let mut ts = TimeSeries::new("fe", sim.grid.dt as f64);
    for _ in 0..steps {
        sim.step();
        ts.push(sim.energies().field_e.max(1e-300));
    }
    let (_, peak) = ts.min_max();
    let sat = ts
        .samples
        .iter()
        .position(|&v| v > 0.1 * peak)
        .unwrap_or(steps / 2);
    let gamma = 0.5 * ts.growth_rate_in(sat / 3, sat);
    (gamma, 1.0 / (2.0 * 2.0f64.sqrt()))
}

fn energy_drift(full: bool) -> f64 {
    let mut sim = uniform_plasma((12, 12, 12), if full { 64 } else { 32 }, 1, 9);
    let e0 = sim.energies().total();
    let steps = if full { 600 } else { 200 };
    for _ in 0..steps {
        sim.step();
    }
    (sim.energies().total() - e0).abs() / e0
}

fn continuity_residual() -> f64 {
    use vpic_core::deposit::deposit_rho;
    use vpic_core::push::{advance_p_serial, PushCoefficients};
    use vpic_core::{AccumulatorArray, FieldArray};
    let g = Grid::periodic((8, 8, 8), (0.4, 0.4, 0.4), 0.3);
    let mut rng = Rng::seeded(10);
    let mut parts = Vec::new();
    for _ in 0..500 {
        parts.push(vpic_core::Particle {
            dx: rng.uniform_in(-0.99, 0.99) as f32,
            dy: rng.uniform_in(-0.99, 0.99) as f32,
            dz: rng.uniform_in(-0.99, 0.99) as f32,
            i: g.voxel(1 + rng.index(8), 1 + rng.index(8), 1 + rng.index(8)) as u32,
            ux: rng.normal() as f32,
            uy: rng.normal() as f32,
            uz: rng.normal() as f32,
            w: 1.0,
        });
    }
    let before = parts.clone();
    let ia = vpic_core::InterpolatorArray::new(&g);
    let mut acc = AccumulatorArray::new(&g);
    advance_p_serial(
        &mut parts,
        PushCoefficients::new(-1.0, 1.0, &g),
        &ia,
        &mut acc,
        &g,
    );
    let mut f = FieldArray::new(&g);
    acc.unload(&mut f, &g);
    sync_j(&mut f, &g, bcs_of(&g));
    let mut rho_b = FieldArray::new(&g);
    deposit_rho(&mut rho_b, &g, before.iter().copied(), -1.0);
    sync_rho(&mut rho_b, &g, bcs_of(&g));
    let mut rho_a = FieldArray::new(&g);
    deposit_rho(&mut rho_a, &g, parts.iter().copied(), -1.0);
    sync_rho(&mut rho_a, &g, bcs_of(&g));
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let mut max_r = 0.0f64;
    let mut max_t = 1e-30f64;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                let drho = (rho_a.rho[v] as f64 - rho_b.rho[v] as f64) / g.dt as f64;
                let divj = (f.jx[v] as f64 - f.jx[v - 1] as f64) / g.dx as f64
                    + (f.jy[v] as f64 - f.jy[v - dj] as f64) / g.dy as f64
                    + (f.jz[v] as f64 - f.jz[v - dk] as f64) / g.dz as f64;
                max_r = max_r.max((drho + divj).abs());
                max_t = max_t.max(drho.abs());
            }
        }
    }
    max_r / max_t
}

fn div_b_rms(full: bool) -> f64 {
    let mut sim = uniform_plasma((10, 10, 10), 16, 1, 11);
    for _ in 0..if full { 200 } else { 80 } {
        sim.step();
    }
    let mut scratch = Vec::new();
    compute_div_b_err(&sim.fields, &sim.grid, &mut scratch)
}

fn light_dispersion() -> (f64, f64) {
    // ω(k) for an EM wave at 16 cells/wavelength vs the Yee dispersion
    // relation sin(ωΔt/2)/Δt = c·sin(kΔx/2)/Δx.
    let n = 32;
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.6);
    let g = Grid::periodic((n, 1, 1), (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, 1);
    let g = sim.grid.clone();
    let kx = 2.0 * 2.0 * std::f64::consts::PI / (n as f64 * dx as f64); // mode 2
    for i in 1..=n {
        let x_node = (i - 1) as f64 * dx as f64;
        let x_edge = x_node + 0.5 * dx as f64;
        for jk in [
            (0usize, 0usize),
            (1, 1),
            (2, 2),
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (0, 2),
            (2, 0),
        ] {
            let v = g.voxel(i, jk.0, jk.1);
            sim.fields.ey[v] = (kx * x_node).sin() as f32;
            sim.fields.cbz[v] = (kx * (x_edge + 0.5 * dt as f64)).sin() as f32;
        }
    }
    sync_e(&mut sim.fields, &g, bcs_of(&g));
    vpic_core::field_solver::sync_b(&mut sim.fields, &g, bcs_of(&g));
    let probe = g.voxel(5, 1, 1);
    let steps = (60.0 / dt as f64) as usize;
    let mut ts = TimeSeries::new("ey", dt as f64);
    for _ in 0..steps {
        sim.step();
        ts.push(sim.fields.ey[probe] as f64);
    }
    let measured = ts.dominant_omega();
    let theory = 2.0 / dt as f64 * ((dt as f64 / dx as f64) * (kx * dx as f64 / 2.0).sin()).asin();
    (measured, theory)
}

fn main() {
    let full = parse_flag("full");
    let (lw_m, lw_t) = langmuir(full);
    let (ts_m, ts_t) = two_stream(full);
    let drift = energy_drift(full);
    let cont = continuity_residual();
    let divb = div_b_rms(full);
    let (ld_m, ld_t) = light_dispersion();

    let pct = |m: f64, t: f64| format!("{:.2}%", 100.0 * (m - t).abs() / t.abs());
    print_table(
        "E9: fidelity battery (theory vs measured)",
        &["check", "theory", "measured", "error/size"],
        &[
            vec![
                "Langmuir ω (Bohm-Gross)".into(),
                format!("{lw_t:.4}"),
                format!("{lw_m:.4}"),
                pct(lw_m, lw_t),
            ],
            vec![
                "two-stream γ_max (cold)".into(),
                format!("{ts_t:.3}"),
                format!("{ts_m:.3}"),
                "≤ theory (warm, k-quantized)".into(),
            ],
            vec![
                "energy drift (long run)".into(),
                "0".into(),
                format!("{drift:.2e}"),
                "-".into(),
            ],
            vec![
                "continuity max residual".into(),
                "0 (exact)".into(),
                format!("{cont:.2e}"),
                "f32 roundoff".into(),
            ],
            vec![
                "∇·B RMS (long run)".into(),
                "0 (exact)".into(),
                format!("{divb:.2e}"),
                "f32 roundoff".into(),
            ],
            vec![
                "light ω (Yee dispersion)".into(),
                format!("{ld_t:.4}"),
                format!("{ld_m:.4}"),
                pct(ld_m, ld_t),
            ],
        ],
    );
    println!("\npass criteria: Langmuir/light within ~2%, drift < 1e-3, residuals < 1e-4,");
    println!("two-stream growth within ~2× below the cold-beam bound.");
}
