//! E8 — Ablations of VPIC's key implementation choices:
//!
//! 1. particle layout: 32-byte AoS vs AoSoA SIMD blocks (the paper's Cell
//!    SPE pipelines consumed AoSoA-converted blocks);
//! 2. sort cadence × push kernel — the cache-locality lever crossed with
//!    the scalar/lane body, including the `auto` cadence controller
//!    (`--json <path>` dumps the sweep as a machine-readable record);
//! 3. pipeline (accumulator) count — VPIC's write-conflict-free
//!    parallelization of the scatter.

use vpic_bench::{parse_flag, parse_opt, print_table, time_it, uniform_plasma};
use vpic_core::cadence::SortPolicy;
use vpic_core::push::{advance_p, PushCoefficients, PushKernel};
use vpic_core::sort::locality_fraction;
use vpic_core::store::{Layout, ParticleStore};

fn main() {
    let full = parse_flag("full");
    let n = if full { (24, 24, 24) } else { (16, 16, 16) };
    let ppc = if full { 128 } else { 64 };
    let reps = if full { 25 } else { 10 };

    // --- (1) Layout: AoS vs AoSoA ------------------------------------
    // Both layouts run the *production* advance_p through the unified
    // ParticleStore — the same code path sim.step() takes — so the row
    // difference is purely the storage layout.
    let mut sim = uniform_plasma(n, ppc, 1, 21);
    for _ in 0..2 {
        sim.step();
    }
    sim.species[0].sort(&sim.grid);
    sim.interp.load(&sim.fields, &sim.grid);
    let g = sim.grid.clone();
    let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
    let n_particles = sim.n_particles();

    let base = sim.species[0].to_particles();
    let mut acc = vpic_core::AccumulatorArray::new(&g);
    let mut rate_of = |layout: Layout| {
        let mut store = ParticleStore::from_particles(base.clone(), layout);
        let (t, _) = time_it(|| {
            for _ in 0..reps {
                acc.clear();
                advance_p(
                    &mut store,
                    coeffs,
                    &sim.interp,
                    std::slice::from_mut(&mut acc),
                    &g,
                );
            }
        });
        n_particles as f64 * reps as f64 / t
    };
    let r_aos = rate_of(Layout::Aos);
    let r_soa = rate_of(Layout::Aosoa);
    print_table(
        &format!("E8.1: particle layout ({} particles, sorted)", n_particles),
        &["layout", "advances/s", "relative"],
        &[
            vec![
                "AoS (32-byte particles)".into(),
                format!("{:.3e}", r_aos),
                "1.00".into(),
            ],
            vec![
                "AoSoA (8-lane blocks)".into(),
                format!("{:.3e}", r_soa),
                format!("{:.2}", r_soa / r_aos),
            ],
        ],
    );

    // --- (2) Sort cadence x push kernel --------------------------------
    // Each cell runs the production AoSoA step loop under one cadence
    // policy and one kernel body; `auto` exercises the coherence-driven
    // controller. The JSON dump feeds EXPERIMENTS.md and ad-hoc plotting.
    let json = parse_opt::<String>("json", String::new());
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let policies = ["0", "10", "25", "100", "auto"];
    for cadence in policies {
        let policy = SortPolicy::parse(cadence).expect("sweep cadences all parse");
        for kernel in [PushKernel::Scalar, PushKernel::Lane] {
            let kernel_name = match kernel {
                PushKernel::Scalar => "scalar",
                PushKernel::Lane => "lane",
            };
            let mut sim = uniform_plasma(n, ppc, 1, 22);
            sim.set_layout(Layout::Aosoa);
            sim.set_kernel(kernel);
            sim.species[0].set_sort_policy(policy);
            // Scramble particle order thoroughly before measuring.
            for _ in 0..if full { 60 } else { 30 } {
                sim.step();
            }
            let loc = locality_fraction(&sim.species[0].to_particles());
            sim.timings = Default::default();
            let coh_start = *sim.species[0].coherence();
            let steps = if full { 30 } else { 12 };
            for _ in 0..steps {
                sim.step();
            }
            let pps = sim.timings.particle_steps as f64 / sim.timings.push;
            let sort_per_step = sim.timings.sort / sim.timings.steps as f64;
            let coh_end = *sim.species[0].coherence();
            let sorts = coh_end.sorts - coh_start.sorts;
            let skipped = coh_end.skipped_sorts - coh_start.skipped_sorts;
            let spill = {
                let lanes = (coh_end.tally.lane_blocks - coh_start.tally.lane_blocks) * 8;
                if lanes == 0 {
                    0.0
                } else {
                    (coh_end.tally.lane_spills - coh_start.tally.lane_spills) as f64 / lanes as f64
                }
            };
            let realized = sim.species[0].cadence().interval;
            rows.push(vec![
                policy.name(),
                kernel_name.into(),
                format!("{realized}"),
                format!("{:.3}", loc),
                format!("{:.3e}", pps),
                format!("{:.4}", sort_per_step),
                format!("{:.4}", spill),
            ]);
            records.push(format!(
                "    {{\n      \"cadence\": \"{}\",\n      \"kernel\": \"{kernel_name}\",\n      \
                 \"realized_interval\": {realized},\n      \"locality\": {loc:.6},\n      \
                 \"push_advances_per_sec\": {pps:.6e},\n      \"sort_sec_per_step\": \
                 {sort_per_step:.6e},\n      \"spill_rate\": {spill:.6},\n      \"sorts\": \
                 {sorts},\n      \"skipped_sorts\": {skipped}\n    }}",
                policy.name()
            ));
        }
    }
    print_table(
        "E8.2: sort cadence x kernel (aosoa layout; locality = fraction of neighbors in \
         adjacent voxels)",
        &[
            "cadence",
            "kernel",
            "realized",
            "locality",
            "push advances/s",
            "sort s/step",
            "spill rate",
        ],
        &rows,
    );
    if !json.is_empty() {
        let body = format!(
            "{{\n  \"schema\": \"vpic-bench/e8-sort-kernel/v1\",\n  \"grid\": [{}, {}, {}],\n  \
             \"ppc\": {ppc},\n  \"sweep\": [\n{}\n  ]\n}}\n",
            n.0,
            n.1,
            n.2,
            records.join(",\n")
        );
        if let Err(e) = std::fs::write(&json, body) {
            eprintln!("write {json}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {json} ({} sweep records)", records.len());
    }

    // --- (3) Pipelines --------------------------------------------------
    let mut rows = Vec::new();
    let mut base_rate = 0.0;
    for &pipes in &[1usize, 2, 4, 8] {
        let mut sim = uniform_plasma(n, ppc, pipes, 23);
        for _ in 0..2 {
            sim.step();
        }
        sim.species[0].sort(&sim.grid);
        sim.interp.load(&sim.fields, &sim.grid);
        let coeffs = PushCoefficients::new(-1.0, 1.0, &sim.grid);
        let g2 = sim.grid.clone();
        let np = sim.n_particles();
        let (t, _) = time_it(|| {
            for _ in 0..reps {
                sim.accumulators.clear();
                advance_p(
                    sim.species[0].store_mut(),
                    coeffs,
                    &sim.interp,
                    &mut sim.accumulators.arrays,
                    &g2,
                );
            }
        });
        let pps = np as f64 * reps as f64 / t;
        if pipes == 1 {
            base_rate = pps;
        }
        rows.push(vec![
            format!("{pipes}"),
            format!("{:.3e}", pps),
            format!("{:.2}", pps / base_rate),
        ]);
    }
    print_table(
        "E8.3: accumulator pipelines (Rayon workers; conflict-free scatter)",
        &["pipelines", "advances/s", "speedup"],
        &rows,
    );
    println!("\n(on a single-core host the pipeline sweep measures overhead, not speedup)");
}
