//! E8 — Ablations of VPIC's key implementation choices:
//!
//! 1. particle layout: 32-byte AoS vs AoSoA SIMD blocks (the paper's Cell
//!    SPE pipelines consumed AoSoA-converted blocks);
//! 2. voxel-order sorting interval (the cache-locality lever);
//! 3. pipeline (accumulator) count — VPIC's write-conflict-free
//!    parallelization of the scatter.

use vpic_bench::{parse_flag, print_table, time_it, uniform_plasma};
use vpic_core::push::{advance_p, PushCoefficients};
use vpic_core::sort::locality_fraction;
use vpic_core::store::{Layout, ParticleStore};

fn main() {
    let full = parse_flag("full");
    let n = if full { (24, 24, 24) } else { (16, 16, 16) };
    let ppc = if full { 128 } else { 64 };
    let reps = if full { 25 } else { 10 };

    // --- (1) Layout: AoS vs AoSoA ------------------------------------
    // Both layouts run the *production* advance_p through the unified
    // ParticleStore — the same code path sim.step() takes — so the row
    // difference is purely the storage layout.
    let mut sim = uniform_plasma(n, ppc, 1, 21);
    for _ in 0..2 {
        sim.step();
    }
    sim.species[0].sort(&sim.grid);
    sim.interp.load(&sim.fields, &sim.grid);
    let g = sim.grid.clone();
    let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
    let n_particles = sim.n_particles();

    let base = sim.species[0].to_particles();
    let mut acc = vpic_core::AccumulatorArray::new(&g);
    let mut rate_of = |layout: Layout| {
        let mut store = ParticleStore::from_particles(base.clone(), layout);
        let (t, _) = time_it(|| {
            for _ in 0..reps {
                acc.clear();
                advance_p(
                    &mut store,
                    coeffs,
                    &sim.interp,
                    std::slice::from_mut(&mut acc),
                    &g,
                );
            }
        });
        n_particles as f64 * reps as f64 / t
    };
    let r_aos = rate_of(Layout::Aos);
    let r_soa = rate_of(Layout::Aosoa);
    print_table(
        &format!("E8.1: particle layout ({} particles, sorted)", n_particles),
        &["layout", "advances/s", "relative"],
        &[
            vec![
                "AoS (32-byte particles)".into(),
                format!("{:.3e}", r_aos),
                "1.00".into(),
            ],
            vec![
                "AoSoA (8-lane blocks)".into(),
                format!("{:.3e}", r_soa),
                format!("{:.2}", r_soa / r_aos),
            ],
        ],
    );

    // --- (2) Sort interval --------------------------------------------
    let mut rows = Vec::new();
    for &interval in &[0usize, 10, 25, 100] {
        let mut sim = uniform_plasma(n, ppc, 1, 22);
        sim.species[0].sort_interval = interval;
        // Scramble particle order thoroughly before measuring.
        for _ in 0..if full { 60 } else { 30 } {
            sim.step();
        }
        let loc = locality_fraction(&sim.species[0].to_particles());
        sim.timings = Default::default();
        let steps = if full { 30 } else { 12 };
        for _ in 0..steps {
            sim.step();
        }
        let pps = sim.timings.particle_steps as f64 / sim.timings.push;
        rows.push(vec![
            if interval == 0 {
                "never".into()
            } else {
                format!("{interval}")
            },
            format!("{:.3}", loc),
            format!("{:.3e}", pps),
            format!("{:.4}", sim.timings.sort / sim.timings.steps as f64),
        ]);
    }
    print_table(
        "E8.2: voxel-sort interval (locality = fraction of neighbors in adjacent voxels)",
        &["sort every", "locality", "push advances/s", "sort s/step"],
        &rows,
    );

    // --- (3) Pipelines --------------------------------------------------
    let mut rows = Vec::new();
    let mut base_rate = 0.0;
    for &pipes in &[1usize, 2, 4, 8] {
        let mut sim = uniform_plasma(n, ppc, pipes, 23);
        for _ in 0..2 {
            sim.step();
        }
        sim.species[0].sort(&sim.grid);
        sim.interp.load(&sim.fields, &sim.grid);
        let coeffs = PushCoefficients::new(-1.0, 1.0, &sim.grid);
        let g2 = sim.grid.clone();
        let np = sim.n_particles();
        let (t, _) = time_it(|| {
            for _ in 0..reps {
                sim.accumulators.clear();
                advance_p(
                    sim.species[0].store_mut(),
                    coeffs,
                    &sim.interp,
                    &mut sim.accumulators.arrays,
                    &g2,
                );
            }
        });
        let pps = np as f64 * reps as f64 / t;
        if pipes == 1 {
            base_rate = pps;
        }
        rows.push(vec![
            format!("{pipes}"),
            format!("{:.3e}", pps),
            format!("{:.2}", pps / base_rate),
        ]);
    }
    print_table(
        "E8.3: accumulator pipelines (Rayon workers; conflict-free scatter)",
        &["pipelines", "advances/s", "speedup"],
        &rows,
    );
    println!("\n(on a single-core host the pipeline sweep measures overhead, not speedup)");
}
