//! E1 — Inner-loop particle advance rate (paper anchor: 0.488 Pflop/s
//! s.p. over 97,920 SPEs, i.e. ~19.5% of SP peak).
//!
//! Measures the particle push + deposition kernel in isolation for a
//! sweep of particles-per-cell, reporting particle advances per second
//! and the equivalent s.p. flop rate under the documented flop count
//! (`roadrunner-model::flops`).

use roadrunner_model::flops;
use vpic_bench::{parse_flag, print_table, time_it, uniform_plasma};
use vpic_core::push::{advance_p, PushCoefficients};

fn main() {
    let full = parse_flag("full");
    let n = if full { (32, 32, 32) } else { (16, 16, 16) };
    let ppcs: &[usize] = &[16, 64, 256];
    let repeats = if full { 40 } else { 15 };

    let mut rows = Vec::new();
    for &ppc in ppcs {
        let mut sim = uniform_plasma(n, ppc, 1, 42);
        // Warm the state and build a realistic interpolator.
        for _ in 0..3 {
            sim.step();
        }
        sim.species[0].sort(&sim.grid);
        sim.interp.load(&sim.fields, &sim.grid);
        let g = sim.grid.clone();
        let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
        let n_particles = sim.n_particles();

        let (secs, _) = time_it(|| {
            for _ in 0..repeats {
                sim.accumulators.clear();
                let exiles = advance_p(
                    sim.species[0].store_mut(),
                    coeffs,
                    &sim.interp,
                    &mut sim.accumulators.arrays,
                    &g,
                );
                assert!(exiles.is_empty());
            }
        });
        let advances = n_particles as f64 * repeats as f64;
        let pps = advances / secs;
        let gflops = flops::particle_flops(pps) / 1e9;
        rows.push(vec![
            format!("{ppc}"),
            format!("{n_particles}"),
            format!("{:.3e}", pps),
            format!("{:.2}", gflops),
            format!("{:.2}", flops::bytes_per_flop() * gflops), // GB/s implied
        ]);
    }

    print_table(
        &format!(
            "E1: inner loop (push + deposit), grid {n:?}, {} flops/particle",
            flops::particle::TOTAL
        ),
        &[
            "ppc",
            "particles",
            "advances/s",
            "Gflop/s (s.p.)",
            "implied GB/s",
        ],
        &rows,
    );
    println!(
        "\npaper anchor: 0.488 Pflop/s s.p. over 97,920 SPEs \
         (= {:.1} Mparticles/s per SPE under our flop count)",
        0.488e15 / 97920.0 / flops::particle::TOTAL as f64 / 1e6
    );
    println!("see e7_machine_projection for the calibrated full-machine extrapolation");
}
