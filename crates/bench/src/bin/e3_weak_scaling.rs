//! E3 — Weak scaling (paper anchor: near-linear scaling of VPIC across
//! Roadrunner's 17 CUs, the Gordon Bell claim).
//!
//! Part 1 measures in-process ranks on this host with a fixed per-rank
//! load (aggregate particle rate should stay flat — software overheads
//! only, since ranks share cores). Part 2 extrapolates with the analytic
//! Roadrunner model calibrated from the paper's inner-loop rate.

use nanompi::CartTopology;
use roadrunner_model::{KernelRates, Machine, NodeLoad, PerfModel};
use vpic_bench::{parse_flag, print_table};
use vpic_core::{Momentum, ParticleBc, Species};
use vpic_parallel::{DistributedSim, DomainSpec};

fn main() {
    let full = parse_flag("full");
    let per_rank = if full { (16, 16, 16) } else { (12, 12, 12) };
    let ppc = if full { 64 } else { 32 };
    let steps = if full { 40u64 } else { 20 };
    let rank_counts: &[usize] = if full {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8]
    };

    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    for &ranks in rank_counts {
        let topo = CartTopology::balanced(ranks, [true, true, true]);
        let global = (
            per_rank.0 * topo.dims[0],
            per_rank.1 * topo.dims[1],
            per_rank.2 * topo.dims[2],
        );
        let spec = DomainSpec {
            global_cells: global,
            cell: (0.25, 0.25, 0.25),
            dt: 0.1,
            topo,
            global_bc: [ParticleBc::Periodic; 6],
            origin: (0.0, 0.0, 0.0),
        };
        let (results, traffic) = nanompi::run_expect(ranks, |comm| {
            let mut sim = DistributedSim::new(spec.clone(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 5, 1.0, ppc, Momentum::thermal(0.05));
            comm.barrier().unwrap();
            let t0 = std::time::Instant::now();
            for _ in 0..steps {
                sim.step(comm).unwrap();
            }
            comm.barrier().unwrap();
            (t0.elapsed().as_secs_f64(), sim.n_particles(), sim.migrated)
        });
        let time = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let particles: usize = results.iter().map(|r| r.1).sum();
        let migrated: u64 = results.iter().map(|r| r.2).sum();
        let rate = particles as f64 * steps as f64 / time;
        if ranks == 1 {
            base_rate = rate;
        }
        rows.push(vec![
            format!("{ranks}"),
            format!("{global:?}"),
            format!("{particles}"),
            format!("{:.3e}", rate),
            format!("{:.2}", rate / base_rate),
            format!("{:.1}", migrated as f64 / steps as f64 / ranks as f64),
            format!("{:.1} MB", traffic.total_bytes as f64 / 1e6),
        ]);
    }
    print_table(
        &format!(
            "E3a: measured weak scaling ({ppc} ppc × {per_rank:?} cells per rank, {steps} steps)"
        ),
        &[
            "ranks",
            "global grid",
            "particles",
            "agg rate (p/s)",
            "rate vs 1",
            "migr/rank/step",
            "traffic",
        ],
        &rows,
    );
    println!("(ranks share this host's core(s): flat aggregate rate = no software overhead)");

    // Part 2: model extrapolation across CUs.
    let machine = Machine::roadrunner();
    let rates = KernelRates::from_paper_inner_loop(&machine, 0.488);
    let model = PerfModel { machine, rates };
    let load = NodeLoad::paper_headline(&machine);
    let sweep = model.weak_scaling(&load, 17);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .filter(|(cu, _, _)| [1usize, 2, 4, 8, 12, 17].contains(cu))
        .map(|(cu, eff, pflops)| {
            vec![
                format!("{cu}"),
                format!("{}", cu * 180),
                format!("{eff:.3}"),
                format!("{pflops:.3}"),
            ]
        })
        .collect();
    print_table(
        "E3b: Roadrunner weak-scaling model (paper-calibrated, per-node load of the headline run)",
        &["CUs", "nodes", "efficiency", "sustained Pflop/s"],
        &rows,
    );
    println!(
        "\npaper anchor: near-linear scaling to 17 CUs, 0.374 Pflop/s sustained at full machine"
    );
}
