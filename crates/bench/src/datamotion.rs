//! Reference kernels for the paper's data-motion argument (experiment
//! E10): the abstract stresses that PIC moves far more data per flop than
//! the techniques usually used to showcase supercomputers — dense matrix
//! algebra (LINPACK), molecular-dynamics N-body and Monte Carlo. Here we
//! implement small versions of each, measure their achieved flop rates on
//! this host, and tabulate their *algorithmic* bytes-per-flop next to the
//! PIC inner loop's.

/// Result of running one reference kernel.
#[derive(Clone, Debug)]
pub struct KernelReport {
    pub name: &'static str,
    pub flops: f64,
    pub seconds: f64,
    /// Algorithmic bytes moved per flop (working-set traffic, not cache
    /// micro-measurement).
    pub bytes_per_flop: f64,
}

impl KernelReport {
    /// Achieved Gflop/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.seconds / 1e9
    }
}

/// Dense single-precision matmul `C = A·B` (ikj loop order, the
/// cache-friendly textbook form). `2n³` flops over `3n²` matrix elements:
/// bytes/flop = `12n²/2n³ = 6/n` — essentially free data motion.
pub fn dense_matmul(n: usize) -> KernelReport {
    let a: Vec<f32> = (0..n * n).map(|i| (i % 17) as f32 * 0.25).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 * 0.5).collect();
    let mut c = vec![0.0f32; n * n];
    let t0 = std::time::Instant::now();
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    std::hint::black_box(&c);
    KernelReport {
        name: "dense matmul (LINPACK-like)",
        flops: 2.0 * (n as f64).powi(3),
        seconds,
        bytes_per_flop: 12.0 * (n as f64).powi(2) / (2.0 * (n as f64).powi(3)),
    }
}

/// All-pairs gravitational N-body step (MD-like): ~20 flops per pair over
/// `n` 16-byte bodies: bytes/flop = `16n·2/(20n²)` ≈ `1.6/n`.
pub fn nbody_allpairs(n: usize) -> KernelReport {
    let mut px: Vec<f32> = (0..n).map(|i| (i as f32 * 0.618).fract()).collect();
    let py: Vec<f32> = (0..n).map(|i| (i as f32 * 0.414).fract()).collect();
    let pz: Vec<f32> = (0..n).map(|i| (i as f32 * 0.741).fract()).collect();
    let mut ax = vec![0.0f32; n];
    let t0 = std::time::Instant::now();
    for i in 0..n {
        let (xi, yi, zi) = (px[i], py[i], pz[i]);
        let mut acc = 0.0f32;
        for j in 0..n {
            let dx = px[j] - xi;
            let dy = py[j] - yi;
            let dz = pz[j] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + 1e-4;
            let inv = 1.0 / (r2 * r2.sqrt());
            acc += dx * inv;
        }
        ax[i] = acc;
    }
    let seconds = t0.elapsed().as_secs_f64();
    std::hint::black_box(&ax);
    px[0] += ax[0]; // keep the optimizer honest
    std::hint::black_box(&px);
    KernelReport {
        name: "N-body all-pairs (MD-like)",
        flops: 13.0 * (n as f64).powi(2),
        seconds,
        bytes_per_flop: 2.0 * 16.0 * n as f64 / (13.0 * (n as f64).powi(2)),
    }
}

/// Monte-Carlo π estimation with an inline xorshift: ~10 flops per sample
/// over O(1) state — bytes/flop ≈ 0.
pub fn monte_carlo(samples: usize) -> KernelReport {
    let mut state = 0x853c_49e6_748f_ea9bu64;
    let mut hits = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..samples {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let x = (state >> 40) as f32 / (1u64 << 24) as f32;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let y = (state >> 40) as f32 / (1u64 << 24) as f32;
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    std::hint::black_box(hits);
    KernelReport {
        name: "Monte Carlo (pi)",
        flops: 7.0 * samples as f64,
        seconds,
        bytes_per_flop: 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_bytes_per_flop_shrinks_with_n() {
        let small = dense_matmul(32);
        let big = dense_matmul(64);
        assert!(big.bytes_per_flop < small.bytes_per_flop);
        assert!(small.gflops() > 0.0);
        assert!((small.bytes_per_flop - 6.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn nbody_runs_and_reports() {
        let r = nbody_allpairs(256);
        assert!(r.flops > 0.0 && r.seconds > 0.0);
        assert!(r.bytes_per_flop < 0.01);
    }

    #[test]
    fn monte_carlo_is_computationally_dense() {
        let r = monte_carlo(100_000);
        assert!(r.bytes_per_flop < 1e-3);
        assert!(r.gflops() > 0.0);
    }
}
