//! Shared measurement and reporting utilities for the experiment binaries.

use std::time::Instant;
use vpic_core::{load_uniform, Grid, Momentum, Rng, Simulation, Species};

/// True when `--<name>` is on the command line.
pub fn parse_flag(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}

/// Value of `--<name> <v>` on the command line, or `default`.
pub fn parse_opt<T: std::str::FromStr>(name: &str, default: T) -> T {
    let want = format!("--{name}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == want {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
            }
        }
    }
    default
}

/// Wall-time a closure.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Standard uniform thermal plasma test case (density 1, vth = 0.05c).
pub fn uniform_plasma(
    n: (usize, usize, usize),
    ppc: usize,
    pipelines: usize,
    seed: u64,
) -> Simulation {
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let g = Grid::periodic(n, (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, pipelines);
    let mut e = Species::new("electron", -1.0, 1.0);
    let mut rng = Rng::seeded(seed);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        ppc,
        Momentum::thermal(0.05),
    );
    sim.add_species(e);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plasma_factory_loads_expected_count() {
        let sim = uniform_plasma((4, 4, 4), 8, 2, 1);
        assert_eq!(sim.n_particles(), 64 * 8);
        assert_eq!(sim.accumulators.n_pipelines(), 2);
    }

    #[test]
    fn timing_returns_result() {
        let (t, v) = time_it(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn opt_default_when_missing() {
        assert_eq!(parse_opt("definitely-not-set", 7u32), 7);
        assert!(!parse_flag("definitely-not-set"));
    }
}
