//! # vpic-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! SC'08 VPIC paper's evaluation (experiment index in `DESIGN.md`, paper
//! vs. measured record in `EXPERIMENTS.md`). One binary per experiment:
//!
//! | bin | reproduces |
//! |-----|------------|
//! | `e1_inner_loop` | inner-loop particle advance rate (0.488 Pflop/s anchor) |
//! | `e2_step_breakdown` | sustained vs inner loop (0.374/0.488 ≈ 77%) |
//! | `e3_weak_scaling` | weak scaling across ranks + CU extrapolation |
//! | `e4_strong_scaling` | strong scaling at fixed global problem |
//! | `e5_reflectivity` | reflectivity vs laser intensity (headline physics) |
//! | `e6_trapping` | trapped-particle distribution tails |
//! | `e7_machine_projection` | trillion-particle machine projection table |
//! | `e8_ablations` | layout / sort-interval / pipeline ablations |
//! | `e9_validation` | fidelity battery vs analytic theory |
//! | `e10_data_motion` | bytes-per-flop vs LINPACK/N-body/Monte-Carlo |
//!
//! Every binary accepts `--full` for a larger (longer) configuration and
//! prints self-contained tables to stdout.

pub mod datamotion;
pub mod stepjson;
pub mod util;

pub use util::{parse_flag, parse_opt, print_table, time_it, uniform_plasma};
