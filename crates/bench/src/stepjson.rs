//! Machine-readable step-throughput records (`BENCH_step.json`).
//!
//! Every perf-oriented PR lands with one of these files so the whole-step
//! particle rate and the serial-phase share form a trajectory over time
//! instead of a one-off claim. The schema is flat on purpose: a writer, a
//! reader and a validator live here so `scripts/ci.sh` can smoke-test the
//! file without any external JSON tooling.

use std::fmt::Write as _;
use std::path::Path;
use vpic_core::cadence::CoherenceCounters;
use vpic_core::sim::StepTimings;

/// Schema identifier embedded in every record. v2 added the `layout`
/// field (particle storage layout the step ran with) and multi-record
/// files ([`write_set`]) so one `BENCH_step.json` carries an AoS and an
/// AoSoA measurement side by side. v3 added the `kernel` field (`scalar`
/// or `lane` push body); v2 records predate the lane kernel and parse
/// with `kernel = "scalar"`. v4 added the `cadence` field (sort policy
/// the run used, `auto` or `fixed-N`) and the `coherence` block (realized
/// sorts/skips and crosser/spill/mixed-block rates), so the file captures
/// *why* a rate came out the way it did, not just the rate; v3 and v2
/// records parse with `cadence = "fixed-25"` (the historical default) and
/// zeroed coherence. v5 added the `diag` field (diagnostics-pipeline mode
/// the step paid for: `off`, `sync` or `async`); v4 and older records
/// predate the pipeline and parse with `diag = "off"`.
pub const SCHEMA: &str = "vpic-bench/step/v5";

/// Previous schemas, still readable (see [`SCHEMA`]).
pub const SCHEMA_V4: &str = "vpic-bench/step/v4";
pub const SCHEMA_V3: &str = "vpic-bench/step/v3";
pub const SCHEMA_V2: &str = "vpic-bench/step/v2";

/// One whole-step throughput measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct StepBench {
    /// Live grid dimensions.
    pub grid: (usize, usize, usize),
    /// Particles per cell at load time.
    pub ppc: usize,
    /// Timed steps (warm-up excluded).
    pub steps: u64,
    /// Push pipelines (accumulator arrays).
    pub pipelines: usize,
    /// Rayon worker threads observed at run time.
    pub threads: usize,
    /// Particle storage layout (`aos` or `aosoa`).
    pub layout: String,
    /// Push body (`scalar` or `lane`). AoS always runs the scalar body,
    /// so `layout = "aos"` records must carry `kernel = "scalar"`.
    pub kernel: String,
    /// Sort policy the run used (`auto` or `fixed-N`).
    pub cadence: String,
    /// Diagnostics-pipeline mode the step paid for (`off`, `sync` or
    /// `async`). `sync` computes spectra inline on the step path; `async`
    /// publishes snapshots to the worker thread and pays only the
    /// publication cost here.
    pub diag: String,
    /// Counting sorts actually performed during the timed steps.
    pub sorts: u64,
    /// Cadence-due sorts skipped as provably coherent.
    pub skipped_sorts: u64,
    /// Crossers per particle-step (cell-crossing rate).
    pub crosser_rate: f64,
    /// Lanes spilled per lane-kernel lane pushed.
    pub spill_rate: f64,
    /// Fraction of lane-kernel blocks spanning more than one voxel.
    pub mixed_block_fraction: f64,
    /// Total macroparticles.
    pub particles: u64,
    /// Whole-step particle advance rate.
    pub particles_per_sec: f64,
    /// Share of wall time spent in the particle inner loop.
    pub inner_loop_fraction: f64,
    /// Per-phase wall seconds.
    pub sort: f64,
    pub interpolate: f64,
    pub push: f64,
    pub current: f64,
    pub field: f64,
    pub other: f64,
    pub total: f64,
}

impl StepBench {
    /// Build a record from accumulated step timings.
    #[allow(clippy::too_many_arguments)]
    pub fn from_timings(
        t: &StepTimings,
        grid: (usize, usize, usize),
        ppc: usize,
        pipelines: usize,
        threads: usize,
        particles: u64,
        layout: &str,
        kernel: &str,
    ) -> Self {
        let total = t.total();
        StepBench {
            grid,
            ppc,
            steps: t.steps,
            pipelines,
            threads,
            layout: layout.to_string(),
            kernel: kernel.to_string(),
            cadence: "fixed-25".to_string(),
            diag: "off".to_string(),
            sorts: 0,
            skipped_sorts: 0,
            crosser_rate: 0.0,
            spill_rate: 0.0,
            mixed_block_fraction: 0.0,
            particles,
            particles_per_sec: if total > 0.0 {
                t.particle_steps as f64 / total
            } else {
                0.0
            },
            inner_loop_fraction: t.inner_loop_fraction(),
            sort: t.sort,
            interpolate: t.interpolate,
            push: t.push,
            current: t.current,
            field: t.field,
            // Probe sampling + snapshot publication ride the catch-all
            // phase so the breakdown still sums to `total`.
            other: t.other + t.diag,
            total,
        }
    }

    /// Attach the diagnostics-pipeline mode the timed steps ran with.
    pub fn with_diag(mut self, diag: &str) -> Self {
        self.diag = diag.to_string();
        self
    }

    /// Attach the sort policy and realized coherence telemetry of the
    /// timed window (counter deltas over the timed steps, so the rates
    /// describe what this record measured, not the warm-up).
    pub fn with_coherence(mut self, cadence: &str, coh: &CoherenceCounters) -> Self {
        self.cadence = cadence.to_string();
        self.sorts = coh.sorts;
        self.skipped_sorts = coh.skipped_sorts;
        self.crosser_rate = coh.crosser_rate();
        self.spill_rate = coh.spill_rate();
        self.mixed_block_fraction = coh.mixed_block_fraction();
        self
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(
            s,
            "  \"grid\": {{\"nx\": {}, \"ny\": {}, \"nz\": {}}},",
            self.grid.0, self.grid.1, self.grid.2
        );
        let _ = writeln!(s, "  \"ppc\": {},", self.ppc);
        let _ = writeln!(s, "  \"steps\": {},", self.steps);
        let _ = writeln!(s, "  \"pipelines\": {},", self.pipelines);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"layout\": \"{}\",", self.layout);
        let _ = writeln!(s, "  \"kernel\": \"{}\",", self.kernel);
        let _ = writeln!(s, "  \"cadence\": \"{}\",", self.cadence);
        let _ = writeln!(s, "  \"diag\": \"{}\",", self.diag);
        let _ = writeln!(s, "  \"coherence\": {{");
        let _ = writeln!(s, "    \"sorts\": {},", self.sorts);
        let _ = writeln!(s, "    \"skipped_sorts\": {},", self.skipped_sorts);
        let _ = writeln!(s, "    \"crosser_rate\": {:e},", self.crosser_rate);
        let _ = writeln!(s, "    \"spill_rate\": {:e},", self.spill_rate);
        let _ = writeln!(
            s,
            "    \"mixed_block_fraction\": {:e}",
            self.mixed_block_fraction
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"particles\": {},", self.particles);
        let _ = writeln!(s, "  \"particles_per_sec\": {:e},", self.particles_per_sec);
        let _ = writeln!(
            s,
            "  \"inner_loop_fraction\": {:.6},",
            self.inner_loop_fraction
        );
        let _ = writeln!(s, "  \"phase_seconds\": {{");
        let _ = writeln!(s, "    \"sort\": {:e},", self.sort);
        let _ = writeln!(s, "    \"interpolate\": {:e},", self.interpolate);
        let _ = writeln!(s, "    \"push\": {:e},", self.push);
        let _ = writeln!(s, "    \"current\": {:e},", self.current);
        let _ = writeln!(s, "    \"field\": {:e},", self.field);
        let _ = writeln!(s, "    \"other\": {:e},", self.other);
        let _ = writeln!(s, "    \"total\": {:e}", self.total);
        let _ = writeln!(s, "  }}");
        let _ = write!(s, "}}");
        s
    }

    /// Write the record to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Parse a record previously written by [`StepBench::write`]. The
    /// parser only understands this writer's output (flat `"key": value`
    /// pairs), which is all the CI smoke lane needs.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parse from JSON text (see [`StepBench::read`]). Understands the
    /// current schema, v4 (no `diag` field — predates the diagnostics
    /// pipeline, so those records parse as `diag = "off"`), v3
    /// (additionally no `cadence`/`coherence` — defaults to the
    /// historical fixed-25 with zeroed telemetry) and v2 (additionally no
    /// `kernel` field — those records predate the lane kernel, so they
    /// parse as `kernel = "scalar"`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let schema = scan_string(text, "schema")?;
        if schema != SCHEMA && schema != SCHEMA_V4 && schema != SCHEMA_V3 && schema != SCHEMA_V2 {
            return Err(format!(
                "schema mismatch: got {schema:?}, want {SCHEMA:?} \
                 (or {SCHEMA_V4:?}/{SCHEMA_V3:?}/{SCHEMA_V2:?})"
            ));
        }
        let kernel = if schema == SCHEMA_V2 {
            "scalar".to_string()
        } else {
            scan_string(text, "kernel")?
        };
        let (cadence, sorts, skipped_sorts, crosser_rate, spill_rate, mixed_block_fraction) =
            if schema == SCHEMA || schema == SCHEMA_V4 {
                (
                    scan_string(text, "cadence")?,
                    scan_number(text, "sorts")? as u64,
                    scan_number(text, "skipped_sorts")? as u64,
                    scan_number(text, "crosser_rate")?,
                    scan_number(text, "spill_rate")?,
                    scan_number(text, "mixed_block_fraction")?,
                )
            } else {
                ("fixed-25".to_string(), 0, 0, 0.0, 0.0, 0.0)
            };
        let diag = if schema == SCHEMA {
            scan_string(text, "diag")?
        } else {
            "off".to_string()
        };
        Ok(StepBench {
            grid: (
                scan_number(text, "nx")? as usize,
                scan_number(text, "ny")? as usize,
                scan_number(text, "nz")? as usize,
            ),
            ppc: scan_number(text, "ppc")? as usize,
            steps: scan_number(text, "steps")? as u64,
            pipelines: scan_number(text, "pipelines")? as usize,
            threads: scan_number(text, "threads")? as usize,
            layout: scan_string(text, "layout")?,
            kernel,
            cadence,
            diag,
            sorts,
            skipped_sorts,
            crosser_rate,
            spill_rate,
            mixed_block_fraction,
            particles: scan_number(text, "particles")? as u64,
            particles_per_sec: scan_number(text, "particles_per_sec")?,
            inner_loop_fraction: scan_number(text, "inner_loop_fraction")?,
            sort: scan_number(text, "sort")?,
            interpolate: scan_number(text, "interpolate")?,
            push: scan_number(text, "push")?,
            current: scan_number(text, "current")?,
            field: scan_number(text, "field")?,
            other: scan_number(text, "other")?,
            total: scan_number(text, "total")?,
        })
    }

    /// Schema + sanity validation: all rates finite and nonzero, phase
    /// times finite and non-negative. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let (nx, ny, nz) = self.grid;
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(format!("degenerate grid {:?}", self.grid));
        }
        if self.steps == 0 {
            return Err("zero steps timed".into());
        }
        if self.particles == 0 {
            return Err("zero particles".into());
        }
        if self.pipelines == 0 || self.threads == 0 {
            return Err("zero pipelines/threads".into());
        }
        if self.layout != "aos" && self.layout != "aosoa" {
            return Err(format!("unknown layout {:?}", self.layout));
        }
        if self.kernel != "scalar" && self.kernel != "lane" {
            return Err(format!("unknown kernel {:?}", self.kernel));
        }
        if self.layout == "aos" && self.kernel != "scalar" {
            return Err("aos layout always runs the scalar kernel".into());
        }
        let cadence_ok = self.cadence == "auto"
            || self
                .cadence
                .strip_prefix("fixed-")
                .is_some_and(|n| n.parse::<u32>().is_ok());
        if !cadence_ok {
            return Err(format!("unknown cadence {:?}", self.cadence));
        }
        if !matches!(self.diag.as_str(), "off" | "sync" | "async") {
            return Err(format!("unknown diag mode {:?}", self.diag));
        }
        for (name, v) in [
            ("crosser_rate", self.crosser_rate),
            ("spill_rate", self.spill_rate),
            ("mixed_block_fraction", self.mixed_block_fraction),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} out of range: {v}"));
            }
        }
        if !self.particles_per_sec.is_finite() || self.particles_per_sec <= 0.0 {
            return Err(format!("bad particle rate {}", self.particles_per_sec));
        }
        if !self.inner_loop_fraction.is_finite() || !(0.0..=1.0).contains(&self.inner_loop_fraction)
        {
            return Err(format!(
                "inner_loop_fraction out of range: {}",
                self.inner_loop_fraction
            ));
        }
        for (name, v) in [
            ("sort", self.sort),
            ("interpolate", self.interpolate),
            ("push", self.push),
            ("current", self.current),
            ("field", self.field),
            ("other", self.other),
            ("total", self.total),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("phase {name} has bad time {v}"));
            }
        }
        if self.total <= 0.0 {
            return Err("zero total time".into());
        }
        Ok(())
    }
}

/// Serialize several records as a JSON array (one per layout, say).
pub fn set_to_json(benches: &[StepBench]) -> String {
    let mut s = String::from("[\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&b.to_json());
        s.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    s.push(']');
    s
}

/// Write a multi-record file (see [`set_to_json`]).
pub fn write_set(benches: &[StepBench], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, set_to_json(benches) + "\n")
}

/// Parse one or many records: a bare object or a [`set_to_json`] array.
/// Records are located by their embedded `"schema"` keys, so the parser
/// stays a flat scanner.
pub fn parse_set(text: &str) -> Result<Vec<StepBench>, String> {
    let starts: Vec<usize> = text.match_indices("\"schema\"").map(|(i, _)| i).collect();
    if starts.is_empty() {
        return Err("no records found".into());
    }
    let mut out = Vec::new();
    for (n, &at) in starts.iter().enumerate() {
        let end = starts.get(n + 1).copied().unwrap_or(text.len());
        out.push(StepBench::parse(&text[at..end])?);
    }
    Ok(out)
}

/// Read a single- or multi-record file.
pub fn read_set(path: &Path) -> Result<Vec<StepBench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_set(&text)
}

/// Find `"key": "value"` and return `value`.
fn scan_string(text: &str, key: &str) -> Result<String, String> {
    let rest = after_key(text, key)?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("{key}: expected string"))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("{key}: unterminated"))?;
    Ok(rest[..end].to_string())
}

/// Find `"key": <number>` and return the parsed number.
fn scan_number(text: &str, key: &str) -> Result<f64, String> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("{key}: {e}"))
}

fn after_key<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing key {key}"))?;
    Ok(text[at + pat.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StepBench {
        StepBench {
            grid: (64, 64, 64),
            ppc: 8,
            steps: 10,
            pipelines: 8,
            threads: 8,
            layout: "aos".into(),
            kernel: "scalar".into(),
            cadence: "fixed-25".into(),
            diag: "off".into(),
            sorts: 1,
            skipped_sorts: 0,
            crosser_rate: 0.02,
            spill_rate: 0.03,
            mixed_block_fraction: 0.1,
            particles: 2_097_152,
            particles_per_sec: 1.25e7,
            inner_loop_fraction: 0.62,
            sort: 0.1,
            interpolate: 0.2,
            push: 1.0,
            current: 0.15,
            field: 0.12,
            other: 0.01,
            total: 1.58,
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = sample();
        let parsed = StepBench::parse(&b.to_json()).unwrap();
        assert_eq!(b, parsed);
        parsed.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_rates() {
        let mut b = sample();
        b.particles_per_sec = 0.0;
        assert!(b.validate().is_err());
        let mut b = sample();
        b.particles_per_sec = f64::NAN;
        assert!(b.validate().is_err());
        let mut b = sample();
        b.push = f64::INFINITY;
        assert!(b.validate().is_err());
        let mut b = sample();
        b.steps = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn set_roundtrip_carries_both_layouts() {
        let a = sample();
        let mut b = sample();
        b.layout = "aosoa".into();
        b.particles_per_sec = 2.5e7;
        let parsed = parse_set(&set_to_json(&[a.clone(), b.clone()])).unwrap();
        assert_eq!(parsed, vec![a.clone(), b]);
        // A bare single record also parses as a one-element set.
        assert_eq!(parse_set(&a.to_json()).unwrap(), vec![a]);
    }

    #[test]
    fn validation_rejects_unknown_layout() {
        let mut b = sample();
        b.layout = "soa".into();
        assert!(b.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_kernel_combinations() {
        let mut b = sample();
        b.kernel = "avx".into();
        assert!(b.validate().is_err());
        // The AoS path ignores the kernel knob and always runs the scalar
        // body — an "aos"+"lane" record would be claiming a run that
        // cannot happen.
        let mut b = sample();
        b.kernel = "lane".into();
        assert!(b.validate().is_err());
        b.layout = "aosoa".into();
        b.validate().unwrap();
    }

    #[test]
    fn v2_records_parse_with_scalar_kernel() {
        // A committed v2 BENCH_step.json predates the lane kernel; it must
        // keep parsing, with the kernel defaulted to "scalar".
        let v2 = sample()
            .to_json()
            .replace(SCHEMA, SCHEMA_V2)
            .replace("  \"kernel\": \"scalar\",\n", "");
        assert!(!v2.contains("kernel"));
        let parsed = StepBench::parse(&v2).unwrap();
        assert_eq!(parsed.kernel, "scalar");
        parsed.validate().unwrap();
    }

    #[test]
    fn v3_records_parse_with_default_cadence() {
        // A committed v3 BENCH_step.json predates the cadence controller;
        // it must keep parsing, with the historical fixed-25 default and
        // zeroed coherence telemetry.
        let b = sample();
        let v3 = b
            .to_json()
            .replace(SCHEMA, SCHEMA_V3)
            .replace("  \"cadence\": \"fixed-25\",\n", "");
        let parsed = StepBench::parse(&v3).unwrap();
        assert_eq!(parsed.cadence, "fixed-25");
        assert_eq!(parsed.sorts, 0);
        assert_eq!(parsed.crosser_rate, 0.0);
        parsed.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_cadence_and_rates() {
        let mut b = sample();
        b.cadence = "sometimes".into();
        assert!(b.validate().is_err());
        let mut b = sample();
        b.cadence = "fixed-".into();
        assert!(b.validate().is_err());
        let mut b = sample();
        b.cadence = "auto".into();
        b.validate().unwrap();
        b.spill_rate = 1.5;
        assert!(b.validate().is_err());
        let mut b = sample();
        b.crosser_rate = f64::NAN;
        assert!(b.validate().is_err());
    }

    #[test]
    fn coherence_rides_the_roundtrip() {
        use vpic_core::cadence::{CoherenceCounters, PushTally};
        let coh = CoherenceCounters {
            tally: PushTally {
                pushed: 1000,
                crossers: 20,
                lane_blocks: 100,
                lane_spills: 16,
                mixed_blocks: 10,
                straddle_lanes: 8,
            },
            sorts: 3,
            skipped_sorts: 1,
        };
        let mut b = sample();
        b.layout = "aosoa".into();
        b.kernel = "lane".into();
        let b = b.with_coherence("auto", &coh);
        let parsed = StepBench::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.cadence, "auto");
        assert_eq!(parsed.sorts, 3);
        assert_eq!(parsed.skipped_sorts, 1);
        assert!((parsed.crosser_rate - 0.02).abs() < 1e-12);
        parsed.validate().unwrap();
    }

    #[test]
    fn v4_records_parse_with_diag_off() {
        // A committed v4 BENCH_step.json predates the diagnostics
        // pipeline; it must keep parsing, with `diag` defaulted to "off"
        // (and its cadence/coherence block still honored).
        let b = sample().with_coherence("auto", &Default::default());
        let v4 = b
            .to_json()
            .replace(SCHEMA, SCHEMA_V4)
            .replace("  \"diag\": \"off\",\n", "");
        assert!(!v4.contains("\"diag\""));
        let parsed = StepBench::parse(&v4).unwrap();
        assert_eq!(parsed.diag, "off");
        assert_eq!(parsed.cadence, "auto");
        parsed.validate().unwrap();
    }

    #[test]
    fn diag_mode_roundtrips_and_validates() {
        let b = sample().with_diag("async");
        let parsed = StepBench::parse(&b.to_json()).unwrap();
        assert_eq!(parsed.diag, "async");
        parsed.validate().unwrap();
        let mut bad = sample();
        bad.diag = "lazy".into();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = sample().to_json().replace(SCHEMA, "other/v0");
        assert!(StepBench::parse(&text).is_err());
    }

    #[test]
    fn from_timings_computes_rate() {
        let t = StepTimings {
            push: 2.0,
            interpolate: 1.0,
            particle_steps: 3_000_000,
            steps: 10,
            ..Default::default()
        };
        let b = StepBench::from_timings(&t, (16, 16, 16), 4, 2, 1, 300_000, "aosoa", "lane");
        assert_eq!(b.total, 3.0);
        assert!((b.particles_per_sec - 1e6).abs() < 1e-6);
        b.validate().unwrap();
    }
}
