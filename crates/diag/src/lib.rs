//! # vpic-diag
//!
//! Diagnostics for PIC runs: the instruments the SC'08 paper's evaluation
//! relies on.
//!
//! * [`fft`] — from-scratch radix-2 FFT, power spectra, dominant-frequency
//!   and growth-rate extraction;
//! * [`poynting`] — Poynting flux and forward/backward wave decomposition
//!   (the laser reflectivity probe of the paper's parameter study);
//! * [`histogram`] — weighted momentum/energy distributions and trapping
//!   metrics (hot-tail fraction, momentum spread);
//! * [`spectra`] — spatial field lines and k-spectra;
//! * [`recorder`] — scalar time series with ω and growth-rate fits.

pub mod dump;
pub mod fft;
pub mod histogram;
pub mod poynting;
pub mod recorder;
pub mod spectra;
pub mod spectrogram;

pub use dump::{write_field_line_x, write_series, EnergyLogger};
pub use fft::{dominant_frequency, fft_inplace, growth_rate, power_spectrum};
pub use histogram::{
    energy_histogram, momentum_histogram, momentum_spread, tail_fraction, Histogram,
};
pub use poynting::{poynting_x, wave_split_x, ReflectivityProbe};
pub use recorder::TimeSeries;
pub use spectra::{dominant_k_x, k_spectrum_x, line_x, line_x_mean, Component};
pub use spectrogram::Spectrogram;
