//! # vpic-diag
//!
//! Diagnostics for PIC runs: the instruments the SC'08 paper's evaluation
//! relies on.
//!
//! * [`fft`] — from-scratch radix-2 FFT, power spectra, dominant-frequency
//!   and growth-rate extraction;
//! * [`poynting`] — Poynting flux and forward/backward wave decomposition
//!   (the laser reflectivity probe of the paper's parameter study);
//! * [`histogram`] — weighted momentum/energy distributions and trapping
//!   metrics (hot-tail fraction, momentum spread);
//! * [`spectra`] — spatial field lines and k-spectra;
//! * [`recorder`] — scalar time series with ω and growth-rate fits;
//! * [`pipeline`] — the off-hot-path snapshot pipeline: a bounded-queue
//!   worker consuming deterministic [`DiagSnapshot`]s, with the sync
//!   inline path kept as the bit-identity oracle.

pub mod dump;
pub mod fft;
pub mod histogram;
pub mod pipeline;
pub mod poynting;
pub mod recorder;
pub mod spectra;
pub mod spectrogram;

pub use dump::{write_field_line_x, write_series, EnergyLogger};
pub use fft::{dominant_frequency, fft_inplace, growth_rate, power_spectrum};
pub use histogram::{
    energy_histogram, momentum_histogram, momentum_spread, tail_fraction, Histogram,
};
pub use pipeline::{
    backscatter_spectrum_of, parse_progress, spectrum_peak, Backpressure, DiagConfig, DiagEngine,
    DiagMode, DiagPipeline, DiagSink, DiagSnapshot, DiagStats, EngineState,
};
pub use poynting::{poynting_x, wave_split_x, ReflectivityProbe};
pub use recorder::TimeSeries;
pub use spectra::{dominant_k_x, k_spectrum_x, line_x, line_x_mean, Component};
pub use spectrogram::Spectrogram;
