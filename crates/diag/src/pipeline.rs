//! Off-hot-path diagnostics pipeline: snapshot handoff from the step
//! loop to a dedicated consumer.
//!
//! The SC'08 run's science product was in-situ data reduction — at a
//! trillion particles you cannot dump raw state, so spectra and
//! reflectivity are computed as the run flies. This module decouples
//! that reduction from the push kernel: the step loop publishes cheap
//! deterministic [`DiagSnapshot`]s (one scalar probe sample per sampled
//! step; a probe-plane field slab plus decimated particle sample every
//! `cadence`-th step) and a [`DiagEngine`] consumes them to maintain the
//! backscatter series, spectra, spectrograms, Poynting split and a
//! streaming `progress.json` artifact.
//!
//! **Bit-identity by construction.** The same engine is driven two
//! ways: `sync` ingests each snapshot inline (the oracle), `async`
//! sends it over a bounded channel to a worker thread that calls the
//! identical `ingest`. Snapshots arrive in publication order on a
//! single consumer, so every artifact the engine produces — series,
//! spectrum, spectrogram, `progress.json` — is byte-identical across
//! modes at any pipeline count. The only observable difference is
//! *when* the work happens.
//!
//! **Flush/drain contract.** `flush()` is a barrier: it returns only
//! after every previously published snapshot has been ingested. The
//! campaign driver flushes before every checkpoint, rollback and
//! graceful degrade, and `reset()` rebuilds the engine from the
//! checkpoint-authoritative probe/series state, so replayed steps never
//! double-count a sample.
//!
//! **Backpressure.** The default policy is `block`: when the bounded
//! queue is full the publisher waits (stall time is counted), keeping
//! the pipeline lossless and deterministic. The opt-in `drop` policy
//! sheds the newest snapshot instead and counts it — cheaper under
//! bursty load, but snapshot-lossy, so it forfeits the bit-identity
//! contract and is never the default.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::fft::power_spectrum;
use crate::recorder::TimeSeries;
use crate::spectrogram::Spectrogram;

/// Schema identifier for the streaming progress artifact.
pub const PROGRESS_SCHEMA: &str = "vpic-diag/progress/v1";

/// Where diagnostics run relative to the step loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiagMode {
    /// No engine: only the inline probe/series sampling happens.
    #[default]
    Off,
    /// Engine ingests every snapshot inline in the step loop (oracle).
    Sync,
    /// Engine runs on a worker thread behind a bounded channel.
    Async,
}

impl DiagMode {
    /// Parse the `mode = off|sync|async` deck value.
    pub fn parse(s: &str) -> Option<DiagMode> {
        match s {
            "off" => Some(DiagMode::Off),
            "sync" => Some(DiagMode::Sync),
            "async" => Some(DiagMode::Async),
            _ => None,
        }
    }

    /// Deck spelling of the mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagMode::Off => "off",
            DiagMode::Sync => "sync",
            DiagMode::Async => "async",
        }
    }
}

/// What the publisher does when the bounded queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the worker (lossless, deterministic; stall is counted).
    #[default]
    Block,
    /// Drop the newest snapshot and count it (lossy: forfeits the
    /// sync/async bit-identity contract).
    Drop,
}

impl Backpressure {
    /// Parse the `backpressure = block|drop` deck value.
    pub fn parse(s: &str) -> Option<Backpressure> {
        match s {
            "block" => Some(Backpressure::Block),
            "drop" => Some(Backpressure::Drop),
            _ => None,
        }
    }

    /// Deck spelling of the policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::Drop => "drop",
        }
    }
}

/// Configuration of the diagnostics pipeline (the `[diag]` deck
/// section). `Copy` so it can ride inside `LpiParams`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagConfig {
    pub mode: DiagMode,
    /// Heavy-snapshot cadence in steps: every snapshot carries the
    /// scalar probe sample; steps divisible by `cadence` additionally
    /// carry the probe-plane field slab + decimated particle sample and
    /// trigger a `progress.json` write. Cadence keys on the absolute
    /// step number, so rollback replay regenerates the same heavy
    /// snapshots.
    pub cadence: u64,
    /// Bounded channel depth for `async` mode (min 1).
    pub queue_depth: usize,
    /// Particle decimation: every `decimation`-th electron contributes
    /// to the heavy snapshot's momentum sample (min 1).
    pub decimation: usize,
    /// Backscatter-series retention cap in samples (0 = unbounded); see
    /// [`TimeSeries::push`] for the windowed-retention rule.
    pub series_cap: usize,
    pub backpressure: Backpressure,
}

impl Default for DiagConfig {
    fn default() -> Self {
        DiagConfig {
            mode: DiagMode::Off,
            cadence: 64,
            queue_depth: 32,
            decimation: 64,
            series_cap: 65_536,
            backpressure: Backpressure::Block,
        }
    }
}

/// One deterministic handoff from the step loop to the engine.
#[derive(Clone, Debug)]
pub struct DiagSnapshot {
    /// Completed-step count at publication.
    pub step: u64,
    /// Simulation time `step · dt`.
    pub time: f64,
    /// Backward-wave amplitude at the probe plane this step (the same
    /// value pushed into the run's checkpoint-authoritative series).
    pub backward: f64,
    /// Probe accumulator state `(incident, reflected, samples)` after
    /// this step's sample.
    pub probe_raw: (f64, f64, u64),
    /// Probe-plane field slab `[ey, ez, cby, cbz]` per transverse cell
    /// — heavy snapshots only. The buffer is recycled through the
    /// pipeline (double-buffering), not reallocated per snapshot.
    pub slab: Option<Vec<f64>>,
    /// Decimated electron momentum magnitudes — heavy snapshots only.
    pub particles: Option<Vec<f32>>,
}

/// Engine state carried by a `reset` (rollback/resume): exactly the
/// checkpoint-authoritative probe/series state, so a replayed engine is
/// indistinguishable from one that never left the checkpoint.
#[derive(Clone, Debug)]
pub struct EngineState {
    /// Retained backscatter samples (the series' window).
    pub samples: Vec<f64>,
    /// Samples discarded by windowed retention before this state.
    pub discarded: u64,
    pub probe_raw: (f64, f64, u64),
    /// Step count of the state.
    pub step: u64,
}

/// Pipeline counters (snapshots published/consumed, queue behavior).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiagStats {
    pub published: u64,
    pub consumed: u64,
    /// Snapshots shed under the `drop` backpressure policy.
    pub dropped: u64,
    /// High-water mark of the queue depth.
    pub max_depth: u64,
    /// Publisher wall time spent blocked on a full queue.
    pub stall_seconds: f64,
}

#[derive(Default)]
struct SharedStats {
    published: AtomicU64,
    consumed: AtomicU64,
    dropped: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
    stall_ns: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> DiagStats {
        DiagStats {
            published: self.published.load(Ordering::Relaxed),
            consumed: self.consumed.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            stall_seconds: self.stall_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }
}

/// Power spectrum of a backscatter series as `(ω, power)` bins — the
/// single definition shared by [`DiagEngine`] and `LpiRun`, so the
/// engine's artifact and the legacy inline path agree bit-for-bit.
pub fn backscatter_spectrum_of(samples: &[f64], dt: f64) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        // Too short to have a spectrum: report that, don't zero-pad an
        // empty series into fake bins.
        return Vec::new();
    }
    let ps = power_spectrum(samples);
    let n = samples.len().next_power_of_two().max(2);
    let domega = 2.0 * std::f64::consts::PI / (n as f64 * dt);
    ps.into_iter()
        .enumerate()
        .map(|(m, p)| (m as f64 * domega, p))
        .collect()
}

/// Strongest post-DC line below `omega_max`, or `None` when the series
/// is too short to have one (no silent `(0, 0)`).
pub fn spectrum_peak(spectrum: &[(f64, f64)], omega_max: f64) -> Option<(f64, f64)> {
    spectrum
        .iter()
        .copied()
        .skip(1)
        .take_while(|(w, _)| *w <= omega_max)
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
}

const SG_WINDOW: usize = 256;

/// The diagnostics consumer: identical whether driven inline (`sync`)
/// or from the worker thread (`async`). Everything it produces is a
/// pure function of the snapshot sequence it ingested.
#[derive(Clone, Debug)]
pub struct DiagEngine {
    /// Mirror of the run's backscatter series (same retention cap, so a
    /// `reset` from the checkpointed series is always consistent).
    series: TimeSeries,
    probe_raw: (f64, f64, u64),
    last_step: u64,
    /// Latest heavy snapshot's Poynting split `(forward, backward)`.
    poynting: (f64, f64),
    /// Latest heavy snapshot's particle RMS momentum + sample count.
    particle_rms: f64,
    particle_samples: usize,
    spectrum_cache: Option<(usize, Vec<(f64, f64)>)>,
    out_dir: Option<PathBuf>,
    ingested: u64,
}

impl DiagEngine {
    /// New engine for a series with timestep `dt`, retaining at most
    /// `cfg.series_cap` samples.
    pub fn new(dt: f64, cfg: &DiagConfig) -> Self {
        DiagEngine {
            series: TimeSeries::new("backward amplitude", dt).with_cap(cfg.series_cap),
            probe_raw: (0.0, 0.0, 0),
            last_step: 0,
            poynting: (0.0, 0.0),
            particle_rms: 0.0,
            particle_samples: 0,
            spectrum_cache: None,
            out_dir: None,
            ingested: 0,
        }
    }

    /// Stream `progress.json` into `dir` on every heavy snapshot.
    pub fn set_out_dir(&mut self, dir: PathBuf) {
        self.out_dir = Some(dir);
    }

    /// Consume one snapshot. Heavy snapshots (slab present) refresh the
    /// Poynting/particle reductions and write the progress artifact.
    pub fn ingest(&mut self, snap: &DiagSnapshot) {
        self.series.push(snap.backward);
        self.probe_raw = snap.probe_raw;
        self.last_step = snap.step;
        self.ingested += 1;
        if let Some(slab) = &snap.slab {
            let mut fwd = 0.0f64;
            let mut bwd = 0.0f64;
            let cells = slab.len() / 4;
            for c in slab.chunks_exact(4) {
                let (ey, ez, cby, cbz) = (c[0], c[1], c[2], c[3]);
                let fy = 0.5 * (ey + cbz);
                let by = 0.5 * (ey - cbz);
                let fz = 0.5 * (ez - cby);
                let bz = 0.5 * (ez + cby);
                fwd += fy * fy + fz * fz;
                bwd += by * by + bz * bz;
            }
            if cells > 0 {
                self.poynting = (fwd / cells as f64, bwd / cells as f64);
            }
            if let Some(parts) = &snap.particles {
                self.particle_samples = parts.len();
                if !parts.is_empty() {
                    let sum: f64 = parts.iter().map(|&u| u as f64 * u as f64).sum();
                    self.particle_rms = (sum / parts.len() as f64).sqrt();
                }
            }
            self.write_progress();
        }
    }

    /// Rebuild from checkpoint-authoritative state (rollback/resume):
    /// drops everything ingested past the checkpoint so replayed steps
    /// never double-count.
    pub fn reset(&mut self, state: EngineState) {
        self.series.samples = state.samples;
        self.series.discarded = state.discarded;
        self.probe_raw = state.probe_raw;
        self.last_step = state.step;
        self.ingested = self.series.discarded + self.series.samples.len() as u64;
        self.poynting = (0.0, 0.0);
        self.particle_rms = 0.0;
        self.particle_samples = 0;
        self.spectrum_cache = None;
    }

    /// Time-averaged power reflectivity from the probe accumulators.
    pub fn reflectivity(&self) -> f64 {
        let (incident, reflected, _) = self.probe_raw;
        if incident > 0.0 {
            reflected / incident
        } else {
            0.0
        }
    }

    /// Retained backscatter samples.
    pub fn samples(&self) -> &[f64] {
        &self.series.samples
    }

    /// Total samples ever ingested (retained + discarded).
    pub fn total_samples(&self) -> u64 {
        self.series.total_pushed()
    }

    /// Step count of the newest ingested snapshot.
    pub fn last_step(&self) -> u64 {
        self.last_step
    }

    /// Backscatter power spectrum over the retained window, cached by
    /// series length so repeated probing is O(1).
    pub fn spectrum(&mut self) -> &[(f64, f64)] {
        let len = self.series.samples.len();
        if self.spectrum_cache.as_ref().map(|c| c.0) != Some(len) {
            let spec = backscatter_spectrum_of(&self.series.samples, self.series.dt);
            self.spectrum_cache = Some((len, spec));
        }
        &self.spectrum_cache.as_ref().unwrap().1
    }

    /// Spectrogram of the retained window: Hann frames of
    /// `min(256, ⌊len⌋₂)` samples at half-window hop, or `None` when the
    /// series is shorter than 8 samples. A pure function of the series.
    pub fn spectrogram(&self) -> Option<Spectrogram> {
        let len = self.series.samples.len();
        if len < 8 {
            return None;
        }
        let mut w = SG_WINDOW.min(len);
        while !w.is_power_of_two() {
            w -= 1;
        }
        Some(Spectrogram::compute(
            &self.series.samples,
            self.series.dt,
            w,
            (w / 2).max(1),
        ))
    }

    /// The streaming progress artifact: a pure function of the engine
    /// state, so sync and async runs (and rollback replays) write
    /// byte-identical files at the same ingest points.
    pub fn progress_json(&mut self) -> String {
        use std::fmt::Write as _;
        let r = self.reflectivity();
        let (incident, _, probe_samples) = self.probe_raw;
        let (fwd, bwd) = self.poynting;
        let (step, total, retained, discarded) = (
            self.last_step,
            self.series.total_pushed(),
            self.series.samples.len(),
            self.series.discarded,
        );
        let (rms, nparts) = (self.particle_rms, self.particle_samples);
        let peak = spectrum_peak(self.spectrum(), f64::INFINITY);
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{PROGRESS_SCHEMA}\",");
        let _ = writeln!(s, "  \"step\": {step},");
        let _ = writeln!(s, "  \"samples\": {total},");
        let _ = writeln!(s, "  \"samples_retained\": {retained},");
        let _ = writeln!(s, "  \"samples_discarded\": {discarded},");
        let _ = writeln!(s, "  \"probe_samples\": {probe_samples},");
        let _ = writeln!(s, "  \"reflectivity\": {r:e},");
        let _ = writeln!(s, "  \"reflectivity_bits\": \"{:#018x}\",", r.to_bits());
        let _ = writeln!(s, "  \"mean_incident\": {incident:e},");
        let _ = writeln!(s, "  \"poynting_forward\": {fwd:e},");
        let _ = writeln!(s, "  \"poynting_backward\": {bwd:e},");
        let _ = writeln!(s, "  \"particle_rms_u\": {rms:e},");
        let _ = writeln!(s, "  \"particle_samples\": {nparts},");
        match peak {
            Some((w, p)) => {
                let _ = writeln!(s, "  \"peak_omega\": {w:e},");
                let _ = writeln!(s, "  \"peak_power\": {p:e}");
            }
            None => {
                let _ = writeln!(s, "  \"peak_omega\": null,");
                let _ = writeln!(s, "  \"peak_power\": null");
            }
        }
        let _ = write!(s, "}}");
        s
    }

    /// Write `progress.json` atomically (best-effort: streaming output
    /// must never take the run down).
    fn write_progress(&mut self) {
        let Some(dir) = self.out_dir.clone() else {
            return;
        };
        let json = self.progress_json();
        let _ = write_atomic_nosync(&dir.join("progress.json"), json.as_bytes());
    }

    /// End-of-run hook: one final progress write so the artifact always
    /// reflects the complete series.
    pub fn finalize(&mut self) {
        if self.out_dir.is_some() {
            self.write_progress();
        }
    }
}

/// Parse `(step, reflectivity)` back out of a progress artifact without
/// a JSON dependency (the sweep scheduler's provisional-estimate path).
pub fn parse_progress(json: &str) -> Option<(u64, f64)> {
    let field = |key: &str| -> Option<&str> {
        let pat = format!("\"{key}\": ");
        let i = json.find(&pat)?;
        json[i + pat.len()..].split(&[',', '\n', '}'][..]).next()
    };
    let step = field("step")?.trim().parse::<u64>().ok()?;
    let refl = field("reflectivity")?.trim().parse::<f64>().ok()?;
    Some((step, refl))
}

enum Msg {
    Snapshot(DiagSnapshot),
    Flush(SyncSender<()>),
    Reset(Box<EngineState>),
    SetOutDir(PathBuf),
}

/// The async half: bounded channel + worker thread owning the engine.
pub struct DiagPipeline {
    tx: SyncSender<Msg>,
    recycle: Receiver<Vec<f64>>,
    worker: Option<JoinHandle<DiagEngine>>,
    stats: Arc<SharedStats>,
    backpressure: Backpressure,
}

impl DiagPipeline {
    /// Spawn the worker with a queue of `cfg.queue_depth` snapshots.
    pub fn spawn(engine: DiagEngine, cfg: &DiagConfig) -> DiagPipeline {
        let (tx, rx) = sync_channel::<Msg>(cfg.queue_depth.max(1));
        let (recycle_tx, recycle) = std::sync::mpsc::channel::<Vec<f64>>();
        let stats = Arc::new(SharedStats::default());
        let wstats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("vpic-diag".into())
            .spawn(move || {
                let mut engine = engine;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Snapshot(mut snap) => {
                            engine.ingest(&snap);
                            wstats.depth.fetch_sub(1, Ordering::Relaxed);
                            wstats.consumed.fetch_add(1, Ordering::Relaxed);
                            if let Some(mut slab) = snap.slab.take() {
                                slab.clear();
                                let _ = recycle_tx.send(slab);
                            }
                        }
                        Msg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                        Msg::Reset(state) => engine.reset(*state),
                        Msg::SetOutDir(dir) => engine.set_out_dir(dir),
                    }
                }
                engine.finalize();
                engine
            })
            .expect("spawn diag worker");
        DiagPipeline {
            tx,
            recycle,
            worker: Some(worker),
            stats,
            backpressure: cfg.backpressure,
        }
    }

    /// A recycled slab buffer if the worker has returned one.
    pub fn slab_buffer(&mut self) -> Option<Vec<f64>> {
        self.recycle.try_recv().ok()
    }

    /// Publish one snapshot under the configured backpressure policy.
    pub fn publish(&mut self, snap: DiagSnapshot) {
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        // Count the depth *before* sending: the worker may consume (and
        // decrement) the instant the send lands.
        let d = self.stats.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_depth.fetch_max(d, Ordering::Relaxed);
        match self.tx.try_send(Msg::Snapshot(snap)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => match self.backpressure {
                Backpressure::Block => {
                    let t0 = Instant::now();
                    self.tx.send(msg).expect("diag worker died");
                    self.stats
                        .stall_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                Backpressure::Drop => {
                    self.stats.depth.fetch_sub(1, Ordering::Relaxed);
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(TrySendError::Disconnected(_)) => panic!("diag worker died"),
        }
    }

    /// Barrier: returns once every snapshot published before this call
    /// has been ingested. Always blocking, even under `drop`.
    pub fn flush(&mut self) {
        let (ack_tx, ack_rx) = sync_channel::<()>(1);
        self.tx.send(Msg::Flush(ack_tx)).expect("diag worker died");
        ack_rx.recv().expect("diag worker died");
    }

    /// Queue a rollback/resume reset (FIFO-ordered after everything
    /// already published; callers flush first to drain stale snapshots).
    pub fn reset(&mut self, state: EngineState) {
        self.tx
            .send(Msg::Reset(Box::new(state)))
            .expect("diag worker died");
    }

    /// Route the engine's streaming artifacts to `dir`.
    pub fn set_out_dir(&mut self, dir: PathBuf) {
        self.tx.send(Msg::SetOutDir(dir)).expect("diag worker died");
    }

    /// Counters so far (safe to sample mid-run).
    pub fn stats(&self) -> DiagStats {
        self.stats.snapshot()
    }

    /// Drain the queue, stop the worker and recover the engine.
    pub fn finish(self) -> (DiagEngine, DiagStats) {
        let DiagPipeline {
            tx,
            recycle,
            worker,
            stats,
            ..
        } = self;
        drop(tx);
        drop(recycle);
        let engine = worker
            .expect("diag worker already joined")
            .join()
            .expect("diag worker panicked");
        (engine, stats.snapshot())
    }
}

/// The step loop's uniform handle over all three modes. `Off` costs a
/// branch; `Sync` is the inline oracle; `Async` is the pipeline.
pub enum DiagSink {
    Off,
    Sync {
        engine: Box<DiagEngine>,
        stats: DiagStats,
        /// Spare slab buffer recycled across heavy snapshots.
        spare: Vec<f64>,
    },
    Async(DiagPipeline),
}

impl DiagSink {
    /// Build a sink for `cfg`; `dt` is the probe sampling timestep.
    pub fn new(cfg: &DiagConfig, dt: f64) -> DiagSink {
        match cfg.mode {
            DiagMode::Off => DiagSink::Off,
            DiagMode::Sync => DiagSink::Sync {
                engine: Box::new(DiagEngine::new(dt, cfg)),
                stats: DiagStats::default(),
                spare: Vec::new(),
            },
            DiagMode::Async => DiagSink::Async(DiagPipeline::spawn(DiagEngine::new(dt, cfg), cfg)),
        }
    }

    /// Whether publishing is a no-op.
    pub fn is_off(&self) -> bool {
        matches!(self, DiagSink::Off)
    }

    /// The mode this sink runs in.
    pub fn mode(&self) -> DiagMode {
        match self {
            DiagSink::Off => DiagMode::Off,
            DiagSink::Sync { .. } => DiagMode::Sync,
            DiagSink::Async(_) => DiagMode::Async,
        }
    }

    /// A slab buffer for the next heavy snapshot (recycled when the
    /// consumer has returned one).
    pub fn slab_buffer(&mut self) -> Vec<f64> {
        match self {
            DiagSink::Off => Vec::new(),
            DiagSink::Sync { spare, .. } => std::mem::take(spare),
            DiagSink::Async(p) => p.slab_buffer().unwrap_or_default(),
        }
    }

    /// Publish one snapshot (no-op when off).
    pub fn publish(&mut self, mut snap: DiagSnapshot) {
        match self {
            DiagSink::Off => {}
            DiagSink::Sync {
                engine,
                stats,
                spare,
            } => {
                engine.ingest(&snap);
                stats.published += 1;
                stats.consumed += 1;
                if let Some(mut slab) = snap.slab.take() {
                    slab.clear();
                    *spare = slab;
                }
            }
            DiagSink::Async(p) => p.publish(snap),
        }
    }

    /// Barrier: every published snapshot has been ingested on return.
    pub fn flush(&mut self) {
        if let DiagSink::Async(p) = self {
            p.flush();
        }
    }

    /// Rebuild the engine from checkpoint-authoritative state.
    pub fn reset(&mut self, state: EngineState) {
        match self {
            DiagSink::Off => {}
            DiagSink::Sync { engine, .. } => engine.reset(state),
            DiagSink::Async(p) => p.reset(state),
        }
    }

    /// Route streaming artifacts to `dir`.
    pub fn set_out_dir(&mut self, dir: PathBuf) {
        match self {
            DiagSink::Off => {}
            DiagSink::Sync { engine, .. } => engine.set_out_dir(dir),
            DiagSink::Async(p) => p.set_out_dir(dir),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DiagStats {
        match self {
            DiagSink::Off => DiagStats::default(),
            DiagSink::Sync { stats, .. } => *stats,
            DiagSink::Async(p) => p.stats(),
        }
    }

    /// Stop the sink (replacing it with `Off`) and recover the engine +
    /// final counters. Sync engines get their `finalize` here so both
    /// modes write the closing progress artifact at the same point.
    pub fn finish(&mut self) -> (Option<Box<DiagEngine>>, DiagStats) {
        match std::mem::replace(self, DiagSink::Off) {
            DiagSink::Off => (None, DiagStats::default()),
            DiagSink::Sync {
                mut engine, stats, ..
            } => {
                engine.finalize();
                (Some(engine), stats)
            }
            DiagSink::Async(p) => {
                let (engine, stats) = p.finish();
                (Some(Box::new(engine)), stats)
            }
        }
    }
}

/// Atomic streaming-artifact write: tmp + rename, no fsync (progress
/// files are advisory; the checkpoint path owns durable writes).
pub(crate) fn write_atomic_nosync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(mode: DiagMode, queue_depth: usize) -> DiagConfig {
        DiagConfig {
            mode,
            cadence: 4,
            queue_depth,
            decimation: 1,
            series_cap: 0,
            backpressure: Backpressure::Block,
        }
    }

    fn snap(step: u64, v: f64) -> DiagSnapshot {
        DiagSnapshot {
            step,
            time: step as f64 * 0.1,
            backward: v,
            probe_raw: (1.0 + v, v, step),
            slab: None,
            particles: None,
        }
    }

    #[test]
    fn sync_and_async_engines_agree_bit_for_bit() {
        let mut sync = DiagSink::new(&cfg(DiagMode::Sync, 2), 0.1);
        let mut asy = DiagSink::new(&cfg(DiagMode::Async, 2), 0.1);
        for i in 0..300u64 {
            let v = ((i as f64) * 0.37).sin();
            sync.publish(snap(i, v));
            asy.publish(snap(i, v));
        }
        let (se, ss) = sync.finish();
        let (ae, astats) = asy.finish();
        let (mut se, mut ae) = (se.unwrap(), ae.unwrap());
        assert_eq!(ss.published, 300);
        assert_eq!(astats.published, 300);
        assert_eq!(astats.consumed, 300);
        assert_eq!(astats.dropped, 0);
        assert_eq!(se.samples().len(), ae.samples().len());
        for (a, b) in se.samples().iter().zip(ae.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(se.reflectivity().to_bits(), ae.reflectivity().to_bits());
        let (s1, s2) = (se.spectrum().to_vec(), ae.spectrum().to_vec());
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(se.progress_json(), ae.progress_json());
    }

    #[test]
    fn flush_is_a_barrier() {
        let mut sink = DiagSink::new(&cfg(DiagMode::Async, 1), 0.1);
        for i in 0..50u64 {
            sink.publish(snap(i, i as f64));
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.consumed, 50, "flush must drain the queue");
        assert_eq!(stats.published, 50);
        let (engine, _) = sink.finish();
        assert_eq!(engine.unwrap().samples().len(), 50);
    }

    #[test]
    fn reset_discards_replayed_tail() {
        // Publish 10, checkpoint, publish 5 junk (the "future" a fault
        // destroys), reset to the checkpoint, replay 5 good: the engine
        // must end exactly as if the junk never happened.
        let run = |with_fault: bool| -> Vec<f64> {
            let mut sink = DiagSink::new(&cfg(DiagMode::Async, 2), 0.1);
            for i in 0..10u64 {
                sink.publish(snap(i, i as f64));
            }
            sink.flush();
            let ckpt = EngineState {
                samples: (0..10).map(|i| i as f64).collect(),
                discarded: 0,
                probe_raw: (10.0, 9.0, 9),
                step: 9,
            };
            if with_fault {
                for i in 10..15u64 {
                    sink.publish(snap(i, -1.0));
                }
                sink.flush();
                sink.reset(ckpt);
            }
            for i in 10..15u64 {
                sink.publish(snap(i, i as f64));
            }
            let (engine, _) = sink.finish();
            engine.unwrap().samples().to_vec()
        };
        let clean = run(false);
        let replayed = run(true);
        assert_eq!(clean.len(), 15);
        assert_eq!(clean, replayed, "rollback replay double-counted");
    }

    #[test]
    fn drop_policy_counts_losses() {
        let mut c = cfg(DiagMode::Async, 1);
        c.backpressure = Backpressure::Drop;
        let mut sink = DiagSink::new(&c, 0.1);
        // A slow consumer is not required: with depth 1 a fast publisher
        // will overrun eventually. Retry until at least one drop lands.
        let mut published = 0u64;
        for i in 0..10_000u64 {
            sink.publish(snap(i, 0.0));
            published += 1;
            if sink.stats().dropped > 0 {
                break;
            }
        }
        sink.flush();
        let stats = sink.stats();
        let (engine, fin) = sink.finish();
        assert_eq!(stats.published, published);
        assert_eq!(fin.consumed + fin.dropped, published);
        assert_eq!(engine.unwrap().samples().len() as u64, fin.consumed);
    }

    #[test]
    fn progress_json_parses_back() {
        let mut engine = DiagEngine::new(0.1, &DiagConfig::default());
        for i in 0..32u64 {
            engine.ingest(&snap(i, (i as f64 * 0.5).sin()));
        }
        let json = engine.progress_json();
        assert!(json.contains(PROGRESS_SCHEMA));
        let (step, refl) = parse_progress(&json).unwrap();
        assert_eq!(step, 31);
        assert_eq!(refl.to_bits(), engine.reflectivity().to_bits());
    }

    #[test]
    fn short_series_has_no_peak_and_no_spectrogram() {
        // Empty series: no spectrum at all, so no peak — and the
        // progress artifact must still be writable (nulls, not 0s).
        let mut engine = DiagEngine::new(0.1, &DiagConfig::default());
        assert!(engine.spectrum().is_empty());
        assert!(spectrum_peak(engine.spectrum(), f64::INFINITY).is_none());
        assert!(engine.spectrogram().is_none());
        assert!(engine.progress_json().contains("\"peak_omega\": null"));
        // One sample: a post-DC bin exists, but an `omega_max` below it
        // leaves the window empty — None, not a silent (0, 0).
        engine.ingest(&snap(0, 1.0));
        assert!(spectrum_peak(engine.spectrum(), f64::INFINITY).is_some());
        assert!(spectrum_peak(engine.spectrum(), 0.0).is_none());
        assert!(engine.spectrogram().is_none());
    }

    #[test]
    fn heavy_snapshot_updates_poynting_split() {
        let mut engine = DiagEngine::new(0.1, &DiagConfig::default());
        let mut s = snap(0, 0.0);
        // Pure forward y-polarized wave: ey = cbz = 2 ⇒ fwd 4, bwd 0.
        s.slab = Some(vec![2.0, 0.0, 0.0, 2.0]);
        s.particles = Some(vec![3.0, 4.0]);
        engine.ingest(&s);
        let json = engine.progress_json();
        assert!(json.contains("\"poynting_forward\": 4e0"), "{json}");
        assert!(json.contains("\"poynting_backward\": 0e0"), "{json}");
        // RMS of {3,4} = sqrt(12.5).
        assert!(json.contains("\"particle_rms_u\": 3.5355339059327378e0"));
    }

    #[test]
    fn slab_buffers_are_recycled() {
        let mut sink = DiagSink::new(&cfg(DiagMode::Async, 2), 0.1);
        let mut recycled = false;
        for i in 0..200u64 {
            let mut buf = sink.slab_buffer();
            recycled |= buf.capacity() > 0;
            buf.extend_from_slice(&[1.0, 0.0, 0.0, 1.0]);
            let mut s = snap(i, 0.0);
            s.slab = Some(buf);
            sink.publish(s);
        }
        sink.flush();
        assert!(recycled, "no slab buffer ever came back");
        sink.finish();
    }

    proptest! {
        /// Any interleaving of publishes and flushes, at any queue
        /// depth, delivers every sample exactly once, in order.
        #[test]
        fn flush_drain_preserves_order(
            depth in 1usize..5,
            ops in prop::collection::vec(0i32..256, 1..120),
        ) {
            let mut sink = DiagSink::new(&cfg(DiagMode::Async, depth), 0.1);
            let mut model = Vec::new();
            let mut step = 0u64;
            for op in ops {
                // ~1 in 4 ops is a flush barrier, the rest publish.
                if op < 64 {
                    sink.flush();
                    prop_assert_eq!(sink.stats().consumed, model.len() as u64);
                } else {
                    let v = op as f64;
                    sink.publish(snap(step, v));
                    model.push(v);
                    step += 1;
                }
            }
            let (engine, stats) = sink.finish();
            prop_assert_eq!(stats.published, model.len() as u64);
            prop_assert_eq!(stats.consumed, model.len() as u64);
            prop_assert_eq!(stats.dropped, 0);
            let engine = engine.unwrap();
            prop_assert_eq!(engine.samples(), &model[..]);
        }
    }
}
