//! Short-time Fourier transform (spectrogram) of a scalar time series —
//! the "streaked spectrum" diagnostic LPI papers (including the VPIC
//! group's) use to show backscatter bursts: frequency content vs time.

use crate::fft::fft_inplace;

/// A computed spectrogram: power in `frames × bins` layout.
#[derive(Clone, Debug)]
pub struct Spectrogram {
    /// Center time of each frame (same units as the input `dt`).
    pub times: Vec<f64>,
    /// Angular frequency of each bin.
    pub omegas: Vec<f64>,
    /// `power[frame][bin]`.
    pub power: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// Compute with Hann-windowed frames of `window` samples (rounded up
    /// to a power of two) advancing by `hop` samples.
    pub fn compute(samples: &[f64], dt: f64, window: usize, hop: usize) -> Self {
        assert!(window >= 4 && hop >= 1 && dt > 0.0);
        let n = window.next_power_of_two();
        let omegas: Vec<f64> = (0..=n / 2)
            .map(|k| 2.0 * std::f64::consts::PI * k as f64 / (n as f64 * dt))
            .collect();
        let hann: Vec<f64> = (0..window)
            .map(|i| {
                0.5 * (1.0
                    - (2.0 * std::f64::consts::PI * i as f64 / (window - 1).max(1) as f64).cos())
            })
            .collect();
        let mut times = Vec::new();
        let mut power = Vec::new();
        let mut start = 0usize;
        while start + window <= samples.len() {
            let mut re = vec![0.0f64; n];
            let mut im = vec![0.0f64; n];
            for i in 0..window {
                re[i] = samples[start + i] * hann[i];
            }
            fft_inplace(&mut re, &mut im, false);
            power.push((0..=n / 2).map(|k| re[k] * re[k] + im[k] * im[k]).collect());
            times.push((start as f64 + window as f64 / 2.0) * dt);
            start += hop;
        }
        Spectrogram {
            times,
            omegas,
            power,
        }
    }

    /// Number of time frames.
    pub fn n_frames(&self) -> usize {
        self.power.len()
    }

    /// Frequency of the strongest nonzero bin in frame `f`.
    pub fn peak_omega(&self, f: usize) -> f64 {
        let frame = &self.power[f];
        let best = (1..frame.len()).max_by(|&a, &b| frame[a].partial_cmp(&frame[b]).unwrap());
        best.map(|b| self.omegas[b]).unwrap_or(0.0)
    }

    /// Total in-band power of frame `f` within `[w_lo, w_hi]`.
    pub fn band_power(&self, f: usize, w_lo: f64, w_hi: f64) -> f64 {
        self.omegas
            .iter()
            .zip(&self.power[f])
            .filter(|(w, _)| **w >= w_lo && **w <= w_hi)
            .map(|(_, p)| p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chirp_is_tracked_in_time() {
        // A two-tone signal: ω = 2 for the first half, ω = 6 after.
        let dt = 0.05;
        let n = 4096;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                if i < n / 2 {
                    (2.0 * t).sin()
                } else {
                    (6.0 * t).sin()
                }
            })
            .collect();
        let sg = Spectrogram::compute(&samples, dt, 256, 128);
        assert!(sg.n_frames() > 10);
        let early = sg.peak_omega(0);
        let late = sg.peak_omega(sg.n_frames() - 1);
        assert!((early - 2.0).abs() < 0.3, "early peak {early}");
        assert!((late - 6.0).abs() < 0.3, "late peak {late}");
        // Band power switches bands across the jump.
        let f0 = 0;
        let f1 = sg.n_frames() - 1;
        assert!(sg.band_power(f0, 1.5, 2.5) > 10.0 * sg.band_power(f0, 5.5, 6.5));
        assert!(sg.band_power(f1, 5.5, 6.5) > 10.0 * sg.band_power(f1, 1.5, 2.5));
    }

    #[test]
    fn frame_times_advance_by_hop() {
        let samples = vec![0.0; 1000];
        let sg = Spectrogram::compute(&samples, 0.1, 128, 64);
        for w in sg.times.windows(2) {
            assert!((w[1] - w[0] - 6.4).abs() < 1e-9);
        }
        assert_eq!(sg.omegas.len(), 65);
    }
}
