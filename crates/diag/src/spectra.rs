//! Spatial field-line extraction and k-spectra.

use crate::fft::power_spectrum;
use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;

/// Which field component to probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    Ex,
    Ey,
    Ez,
    CBx,
    CBy,
    CBz,
}

fn array_of(f: &FieldArray, c: Component) -> &[f32] {
    match c {
        Component::Ex => &f.ex,
        Component::Ey => &f.ey,
        Component::Ez => &f.ez,
        Component::CBx => &f.cbx,
        Component::CBy => &f.cby,
        Component::CBz => &f.cbz,
    }
}

/// Extract a field line along x at fixed `(j, k)` (live cells only).
pub fn line_x(f: &FieldArray, g: &Grid, c: Component, j: usize, k: usize) -> Vec<f64> {
    let arr = array_of(f, c);
    (1..=g.nx).map(|i| arr[g.voxel(i, j, k)] as f64).collect()
}

/// Extract the transverse average of a component along x.
pub fn line_x_mean(f: &FieldArray, g: &Grid, c: Component) -> Vec<f64> {
    let arr = array_of(f, c);
    (1..=g.nx)
        .map(|i| {
            let mut s = 0.0f64;
            for k in 1..=g.nz {
                for j in 1..=g.ny {
                    s += arr[g.voxel(i, j, k)] as f64;
                }
            }
            s / (g.ny * g.nz) as f64
        })
        .collect()
}

/// `k`-space power spectrum of a component along x (transverse-averaged).
/// Bin `m` corresponds to `k = 2π·m/(nx·dx)`; returns `(k, power)` pairs.
pub fn k_spectrum_x(f: &FieldArray, g: &Grid, c: Component) -> Vec<(f64, f64)> {
    let line = line_x_mean(f, g, c);
    let ps = power_spectrum(&line);
    let n = line.len().next_power_of_two().max(2);
    let dk = 2.0 * std::f64::consts::PI / (n as f64 * g.dx as f64);
    ps.into_iter()
        .enumerate()
        .map(|(m, p)| (m as f64 * dk, p))
        .collect()
}

/// Strongest nonzero-k mode of a component along x; returns `(k, power)`.
pub fn dominant_k_x(f: &FieldArray, g: &Grid, c: Component) -> (f64, f64) {
    let spec = k_spectrum_x(f, g, c);
    spec.into_iter()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap_or((0.0, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let g = Grid::periodic((8, 2, 2), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for i in 1..=8 {
            for k in 1..=2 {
                for j in 1..=2 {
                    f.ey[g.voxel(i, j, k)] = i as f32;
                }
            }
        }
        let line = line_x(&f, &g, Component::Ey, 1, 1);
        assert_eq!(line, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mean = line_x_mean(&f, &g, Component::Ey);
        assert_eq!(mean, line);
    }

    #[test]
    fn dominant_k_of_sinusoid() {
        let n = 64;
        let dx = 0.25f32;
        let g = Grid::periodic((n, 1, 1), (dx, dx, dx), 0.01);
        let mut f = FieldArray::new(&g);
        let m = 5.0; // five wavelengths across the box
        for i in 1..=n {
            let x = (i - 1) as f64 * dx as f64;
            let val = (2.0 * std::f64::consts::PI * m * x / (n as f64 * dx as f64)).sin();
            f.ex[g.voxel(i, 1, 1)] = val as f32;
        }
        let (k, p) = dominant_k_x(&f, &g, Component::Ex);
        let want = 2.0 * std::f64::consts::PI * m / (n as f64 * dx as f64);
        assert!((k - want).abs() < 1e-9, "k = {k}, want {want}");
        assert!(p > 0.0);
    }
}
