//! Poynting flux and forward/backward wave decomposition through x-planes
//! — the reflectivity instrument for the paper's headline parameter study.
//!
//! For waves propagating along ±x in normalized units (`c = ε0 = 1`,
//! fields stored as `E` and `cB`):
//!
//! ```text
//! Sx = Ey·cBz − Ez·cBy
//! f±(y-pol) = (Ey ± cBz)/2      forward carries +f², backward −f²
//! f±(z-pol) = (Ez ∓ cBy)/2
//! ```
//!
//! so `Sx = f₊² − f₋²` summed over polarizations: `⟨f₋²⟩/⟨f₊²⟩` is the
//! power reflectivity at the probe plane.

use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;

/// Instantaneous Poynting flux through x-plane `i` (power per unit area,
/// averaged over the plane's live cells).
pub fn poynting_x(f: &FieldArray, g: &Grid, i: usize) -> f64 {
    let mut s = 0.0f64;
    let mut n = 0usize;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            let v = g.voxel(i, j, k);
            s += f.ey[v] as f64 * f.cbz[v] as f64 - f.ez[v] as f64 * f.cby[v] as f64;
            n += 1;
        }
    }
    s / n as f64
}

/// Forward/backward wave amplitudes squared at x-plane `i`, summed over
/// both transverse polarizations and averaged over the plane.
pub fn wave_split_x(f: &FieldArray, g: &Grid, i: usize) -> (f64, f64) {
    let mut fwd = 0.0f64;
    let mut bwd = 0.0f64;
    let mut n = 0usize;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            let v = g.voxel(i, j, k);
            let (ey, ez) = (f.ey[v] as f64, f.ez[v] as f64);
            let (cby, cbz) = (f.cby[v] as f64, f.cbz[v] as f64);
            let fy = 0.5 * (ey + cbz);
            let by = 0.5 * (ey - cbz);
            let fz = 0.5 * (ez - cby);
            let bz = 0.5 * (ez + cby);
            fwd += fy * fy + fz * fz;
            bwd += by * by + bz * bz;
            n += 1;
        }
    }
    (fwd / n as f64, bwd / n as f64)
}

/// Time-accumulating reflectivity probe at a fixed x-plane.
#[derive(Clone, Debug)]
pub struct ReflectivityProbe {
    /// Probe plane (live x index).
    pub plane: usize,
    incident: f64,
    reflected: f64,
    samples: u64,
}

impl ReflectivityProbe {
    /// New probe at x-plane `plane`.
    pub fn new(plane: usize) -> Self {
        ReflectivityProbe {
            plane,
            incident: 0.0,
            reflected: 0.0,
            samples: 0,
        }
    }

    /// Accumulate one time sample.
    pub fn sample(&mut self, f: &FieldArray, g: &Grid) {
        let (fwd, bwd) = wave_split_x(f, g, self.plane);
        self.incident += fwd;
        self.reflected += bwd;
        self.samples += 1;
    }

    /// Time-averaged power reflectivity `⟨f₋²⟩/⟨f₊²⟩`.
    pub fn reflectivity(&self) -> f64 {
        if self.incident > 0.0 {
            self.reflected / self.incident
        } else {
            0.0
        }
    }

    /// Time-averaged incident intensity `⟨f₊²⟩`.
    pub fn mean_incident(&self) -> f64 {
        if self.samples > 0 {
            self.incident / self.samples as f64
        } else {
            0.0
        }
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Reset the accumulators (e.g. to skip the ramp-up transient).
    pub fn reset(&mut self) {
        self.incident = 0.0;
        self.reflected = 0.0;
        self.samples = 0;
    }

    /// Raw accumulator state `(incident, reflected, samples)`, for
    /// serializing the probe into a checkpoint sidecar.
    pub fn raw_state(&self) -> (f64, f64, u64) {
        (self.incident, self.reflected, self.samples)
    }

    /// Rebuild a probe from serialized raw state (inverse of
    /// [`Self::raw_state`]); restores accumulators bit-exactly.
    pub fn from_raw(plane: usize, incident: f64, reflected: f64, samples: u64) -> Self {
        ReflectivityProbe {
            plane,
            incident,
            reflected,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::periodic((8, 2, 2), (1.0, 1.0, 1.0), 0.1)
    }

    fn set_plane(f: &mut FieldArray, g: &Grid, i: usize, ey: f32, ez: f32, cby: f32, cbz: f32) {
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                let v = g.voxel(i, j, k);
                f.ey[v] = ey;
                f.ez[v] = ez;
                f.cby[v] = cby;
                f.cbz[v] = cbz;
            }
        }
    }

    #[test]
    fn forward_wave_is_pure_forward() {
        let g = grid();
        let mut f = FieldArray::new(&g);
        set_plane(&mut f, &g, 4, 2.0, 0.0, 0.0, 2.0); // Ey = cBz: +x wave
        let (fwd, bwd) = wave_split_x(&f, &g, 4);
        assert!((fwd - 4.0).abs() < 1e-9);
        assert!(bwd.abs() < 1e-12);
        assert!((poynting_x(&f, &g, 4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn backward_wave_is_pure_backward() {
        let g = grid();
        let mut f = FieldArray::new(&g);
        set_plane(&mut f, &g, 4, 2.0, 0.0, 0.0, -2.0); // Ey = −cBz: −x wave
        let (fwd, bwd) = wave_split_x(&f, &g, 4);
        assert!(fwd.abs() < 1e-12);
        assert!((bwd - 4.0).abs() < 1e-9);
        assert!((poynting_x(&f, &g, 4) + 4.0).abs() < 1e-9);
    }

    #[test]
    fn z_polarization_signs() {
        let g = grid();
        let mut f = FieldArray::new(&g);
        // +x wave, z-polarized: Ez = −cBy (S = Ez·(−cBy) > 0 … check sign:
        // E×B with E=ẑEz, B=ŷBy → Sx = −Ez·By).
        set_plane(&mut f, &g, 3, 0.0, 1.0, -1.0, 0.0);
        let (fwd, bwd) = wave_split_x(&f, &g, 3);
        assert!((fwd - 1.0).abs() < 1e-9);
        assert!(bwd.abs() < 1e-12);
        assert!((poynting_x(&f, &g, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_accumulates_reflectivity() {
        let g = grid();
        let mut probe = ReflectivityProbe::new(4);
        let mut f = FieldArray::new(&g);
        // 3 samples of mixed field: fwd amplitude 2, bwd amplitude 1.
        // Ey = f+ + f− = 3, cBz = f+ − f− = 1.
        set_plane(&mut f, &g, 4, 3.0, 0.0, 0.0, 1.0);
        for _ in 0..3 {
            probe.sample(&f, &g);
        }
        assert!((probe.reflectivity() - 0.25).abs() < 1e-9);
        assert!((probe.mean_incident() - 4.0).abs() < 1e-9);
        assert_eq!(probe.samples(), 3);
        probe.reset();
        assert_eq!(probe.samples(), 0);
        assert_eq!(probe.reflectivity(), 0.0);
    }
}
