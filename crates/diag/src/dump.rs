//! Text dumps for post-processing: VPIC writes an `energies` file (one
//! row per sampled step: field and per-species kinetic energies) and
//! periodic field/hydro dumps that LPI papers turn into figures. These
//! writers produce plain TSV any plotting tool ingests.

use std::io::{self, Write};
use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;
use vpic_core::sim::{EnergySnapshot, Simulation};

/// Streaming energy-history writer (VPIC's `energies` file).
pub struct EnergyLogger<W: Write> {
    out: W,
    species_names: Vec<String>,
    wrote_header: bool,
}

impl<W: Write> EnergyLogger<W> {
    /// New logger for the given species names.
    pub fn new(out: W, species_names: Vec<String>) -> Self {
        EnergyLogger {
            out,
            species_names,
            wrote_header: false,
        }
    }

    /// Append one sample row (`time` in simulation units).
    pub fn log(&mut self, time: f64, e: &EnergySnapshot) -> io::Result<()> {
        if !self.wrote_header {
            write!(self.out, "# time\tfield_E\tfield_B")?;
            for name in &self.species_names {
                write!(self.out, "\tke_{name}")?;
            }
            writeln!(self.out, "\ttotal")?;
            self.wrote_header = true;
        }
        write!(self.out, "{time:.6e}\t{:.6e}\t{:.6e}", e.field_e, e.field_b)?;
        for ke in &e.kinetic {
            write!(self.out, "\t{ke:.6e}")?;
        }
        writeln!(self.out, "\t{:.6e}", e.total())
    }

    /// Convenience: sample a simulation directly.
    pub fn log_sim(&mut self, sim: &Simulation) -> io::Result<()> {
        let t = sim.step_count as f64 * sim.grid.dt as f64;
        self.log(t, &sim.energies())
    }
}

/// Write a transverse-averaged x line-out of the six field components as
/// TSV (`x  ex  ey  ez  cbx  cby  cbz`).
pub fn write_field_line_x(f: &FieldArray, g: &Grid, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "# x\tex\tey\tez\tcbx\tcby\tcbz")?;
    let mean = |arr: &[f32], i: usize| {
        let mut s = 0.0f64;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                s += arr[g.voxel(i, j, k)] as f64;
            }
        }
        s / (g.ny * g.nz) as f64
    };
    for i in 1..=g.nx {
        let x = g.x0 as f64 + (i as f64 - 0.5) * g.dx as f64;
        writeln!(
            out,
            "{x:.6e}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}",
            mean(&f.ex, i),
            mean(&f.ey, i),
            mean(&f.ez, i),
            mean(&f.cbx, i),
            mean(&f.cby, i),
            mean(&f.cbz, i),
        )?;
    }
    Ok(())
}

/// Write a `(x, value)` series as TSV with a named header.
pub fn write_series(name: &str, xs: &[f64], ys: &[f64], out: &mut impl Write) -> io::Result<()> {
    assert_eq!(xs.len(), ys.len());
    writeln!(out, "# x\t{name}")?;
    for (x, y) in xs.iter().zip(ys) {
        writeln!(out, "{x:.6e}\t{y:.6e}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::sim::EnergySnapshot;

    #[test]
    fn energy_log_format() {
        let mut buf = Vec::new();
        let mut log = EnergyLogger::new(&mut buf, vec!["electron".into(), "ion".into()]);
        let snap = EnergySnapshot {
            field_e: 1.0,
            field_b: 2.0,
            kinetic: vec![3.0, 4.0],
        };
        log.log(0.5, &snap).unwrap();
        log.log(1.0, &snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("# time\tfield_E\tfield_B\tke_electron\tke_ion\ttotal"));
        assert!(lines[1].starts_with("5.000000e-1\t1.000000e0"));
        assert!(lines[1].ends_with("1.000000e1")); // total = 10
    }

    #[test]
    fn field_line_dump_shape() {
        let g = Grid::periodic((4, 2, 2), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for i in 1..=4 {
            for k in 1..=2 {
                for j in 1..=2 {
                    f.ey[g.voxel(i, j, k)] = i as f32;
                }
            }
        }
        let mut buf = Vec::new();
        write_field_line_x(&f, &g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 cells
        let cols: Vec<&str> = lines[2].split('\t').collect();
        assert_eq!(cols.len(), 7);
        let ey: f64 = cols[2].parse().unwrap();
        assert!((ey - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_writer_roundtrip() {
        let mut buf = Vec::new();
        write_series("R", &[1.0, 2.0], &[0.1, 0.2], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# x\tR\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
