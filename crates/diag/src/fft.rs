//! Radix-2 complex FFT (f64), written from scratch — spectra are how the
//! paper's LPI analysis separates pump, backscatter and plasma-wave lines.

use std::f64::consts::PI;

/// In-place iterative radix-2 Cooley–Tukey FFT of `(re, im)`;
/// length must be a power of two. `inverse` applies the 1/N scale.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for v in re.iter_mut().chain(im.iter_mut()) {
            *v *= s;
        }
    }
}

/// Power spectrum `|X_k|²` of a real signal, bins `0..=n/2`. The input is
/// zero-padded to the next power of two.
pub fn power_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len().next_power_of_two().max(2);
    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    re[..signal.len()].copy_from_slice(signal);
    fft_inplace(&mut re, &mut im, false);
    (0..=n / 2).map(|k| re[k] * re[k] + im[k] * im[k]).collect()
}

/// Index of the strongest nonzero-frequency bin and its (angular)
/// frequency given the sample spacing `dt`. Useful for "what is this
/// oscillation's ω" diagnostics. Returns `(bin, omega)`.
pub fn dominant_frequency(signal: &[f64], dt: f64) -> (usize, f64) {
    let ps = power_spectrum(signal);
    let n2 = (ps.len() - 1) * 2; // padded length
    let mut best = 1;
    for k in 2..ps.len() {
        if ps[k] > ps[best] {
            best = k;
        }
    }
    (best, 2.0 * PI * best as f64 / (n2 as f64 * dt))
}

/// Least-squares slope of `ln|signal|` over the index range — the growth
/// rate γ (per sample) of an exponentially growing signal. Ignores
/// non-positive samples.
pub fn growth_rate(signal: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = signal
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(i, &v)| (i as f64, v.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_known_signal() {
        // x = [1, 0, 0, 0] → X_k = 1 for all k.
        let mut re = vec![1.0, 0.0, 0.0, 0.0];
        let mut im = vec![0.0; 4];
        fft_inplace(&mut re, &mut im, false);
        for k in 0..4 {
            assert!((re[k] - 1.0).abs() < 1e-12 && im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let n = 64;
        let orig: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * (i as f64))
            .collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for (a, b) in re.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        for v in im {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 128;
        let sig: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        let time_e: f64 = sig.iter().map(|v| v * v).sum();
        let freq_e: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_e - freq_e).abs() / time_e < 1e-10);
    }

    #[test]
    fn dominant_frequency_of_pure_tone() {
        let n = 256;
        let dt = 0.1;
        let omega = 2.0 * PI * 12.0 / (n as f64 * dt); // exactly bin 12
        let sig: Vec<f64> = (0..n).map(|i| (omega * i as f64 * dt).cos()).collect();
        let (bin, w) = dominant_frequency(&sig, dt);
        assert_eq!(bin, 12);
        assert!((w - omega).abs() / omega < 1e-12);
    }

    #[test]
    fn growth_rate_of_exponential() {
        let gamma = 0.07;
        let sig: Vec<f64> = (0..100).map(|i| 1e-6 * (gamma * i as f64).exp()).collect();
        let got = growth_rate(&sig);
        assert!((got - gamma).abs() < 1e-9, "got {got}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_inplace(&mut re, &mut im, false);
    }
}
