//! Velocity/momentum distribution diagnostics — the instrument behind the
//! paper's particle-trapping claim: trapped electrons show up as a
//! flattened plateau / hot tail near the plasma-wave phase velocity.

use vpic_core::particle::Particle;
use vpic_core::species::Species;

/// A fixed-bin weighted 1D histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<f64>,
    pub underflow: f64,
    pub overflow: f64,
}

impl Histogram {
    /// `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
        }
    }

    /// Add weight `w` at `x`.
    pub fn add(&mut self, x: f64, w: f64) {
        if x < self.lo {
            self.underflow += w;
        } else if x >= self.hi {
            self.overflow += w;
        } else {
            let n = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.counts[bin.min(n - 1)] += w;
        }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Total in-range weight.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Weight in `[a, b)` (approximated at bin granularity).
    pub fn weight_in(&self, a: f64, b: f64) -> f64 {
        (0..self.counts.len())
            .filter(|&i| {
                let c = self.center(i);
                c >= a && c < b
            })
            .map(|i| self.counts[i])
            .sum()
    }
}

/// Momentum-component histogram of a species (`axis`: 0 = ux, 1 = uy,
/// 2 = uz), weighted by particle weight.
pub fn momentum_histogram(sp: &Species, axis: usize, lo: f64, hi: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(lo, hi, bins);
    for p in sp.iter() {
        h.add(p.momentum(axis) as f64, p.w as f64);
    }
    h
}

/// Kinetic-energy histogram `w·(γ−1)` per particle.
pub fn energy_histogram(sp: &Species, hi: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(0.0, hi, bins);
    for p in sp.iter() {
        let u2 = (p.ux as f64).powi(2) + (p.uy as f64).powi(2) + (p.uz as f64).powi(2);
        let ke = u2 / (1.0 + (1.0 + u2).sqrt());
        h.add(ke, p.w as f64);
    }
    h
}

/// A simple trapping metric: the fraction of species weight with
/// `u_axis > threshold` — the hot tail pulled out of the bulk by a
/// trapping plasma wave. Compare before/after saturation.
pub fn tail_fraction(sp: &Species, axis: usize, threshold: f64) -> f64 {
    let mut tail = 0.0f64;
    let mut total = 0.0f64;
    for p in sp.iter() {
        total += p.w as f64;
        if p.momentum(axis) as f64 > threshold {
            tail += p.w as f64;
        }
    }
    if total > 0.0 {
        tail / total
    } else {
        0.0
    }
}

/// Weighted RMS spread of a momentum component.
pub fn momentum_spread(sp: &Species, axis: usize) -> f64 {
    let mut s = 0.0f64;
    let mut s2 = 0.0f64;
    let mut w = 0.0f64;
    for p in sp.iter() {
        let u = p.momentum(axis) as f64;
        s += p.w as f64 * u;
        s2 += p.w as f64 * u * u;
        w += p.w as f64;
    }
    if w == 0.0 {
        return 0.0;
    }
    let mean = s / w;
    (s2 / w - mean * mean).max(0.0).sqrt()
}

/// Convenience: histogram directly from a particle slice.
pub fn particles_histogram(
    parts: &[Particle],
    axis: usize,
    lo: f64,
    hi: f64,
    bins: usize,
) -> Histogram {
    let mut h = Histogram::new(lo, hi, bins);
    for p in parts {
        h.add(p.momentum(axis) as f64, p.w as f64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0, 1.0);
        h.add(9.999, 2.0);
        h.add(-0.1, 3.0);
        h.add(10.0, 4.0);
        assert_eq!(h.counts[0], 1.0);
        assert_eq!(h.counts[9], 2.0);
        assert_eq!(h.underflow, 3.0);
        assert_eq!(h.overflow, 4.0);
        assert_eq!(h.total(), 3.0);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        assert!((h.width() - 1.0).abs() < 1e-12);
    }

    fn beam(u: f32, n: usize) -> Species {
        let mut sp = Species::new("e", -1.0, 1.0);
        for _ in 0..n {
            sp.push(Particle {
                ux: u,
                w: 2.0,
                ..Default::default()
            });
        }
        sp
    }

    #[test]
    fn momentum_histogram_peaks_at_beam() {
        let sp = beam(0.5, 100);
        let h = momentum_histogram(&sp, 0, -1.0, 1.0, 20);
        let peak = h
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((h.center(peak) - 0.5).abs() < 0.1);
        assert_eq!(h.total(), 200.0);
    }

    #[test]
    fn tail_fraction_and_spread() {
        let mut sp = beam(0.0, 90);
        for _ in 0..10 {
            sp.push(Particle {
                ux: 1.0,
                w: 2.0,
                ..Default::default()
            });
        }
        assert!((tail_fraction(&sp, 0, 0.5) - 0.1).abs() < 1e-12);
        let spread = momentum_spread(&sp, 0);
        // Mean 0.1, var = 0.1·(1−0.1)·1² = 0.09.
        assert!((spread - 0.3).abs() < 1e-9, "spread {spread}");
    }

    #[test]
    fn energy_histogram_of_cold_beam() {
        let sp = beam(0.1, 10);
        let h = energy_histogram(&sp, 0.1, 100);
        // (γ−1) = u²/(1+γ) ≈ 0.004994 for u = 0.1.
        let ke = 0.01f64 / (1.0 + 1.01f64.sqrt());
        let bin = (ke / h.width()) as usize;
        assert!(h.counts[bin] > 0.0, "bin {bin}: {:?}", &h.counts[..10]);
        assert_eq!(h.total(), 20.0);
    }
}
