//! Time-series recording of scalar diagnostics (energies, field probes)
//! with frequency/growth-rate extraction.

use crate::fft::{dominant_frequency, growth_rate};

/// A named scalar time series sampled every `dt`, with optional
/// windowed retention for long campaigns.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    pub name: String,
    pub dt: f64,
    /// Retained samples — the newest window when a cap is set.
    pub samples: Vec<f64>,
    /// Retention cap in samples; 0 means unbounded. See [`Self::push`]
    /// for the retention rule.
    pub cap: usize,
    /// Samples discarded by windowed retention (so `total_pushed` stays
    /// exact across checkpoints: both fields ride the sidecar).
    pub discarded: u64,
}

impl TimeSeries {
    /// Empty unbounded series.
    pub fn new(name: impl Into<String>, dt: f64) -> Self {
        TimeSeries {
            name: name.into(),
            dt,
            samples: Vec::new(),
            cap: 0,
            discarded: 0,
        }
    }

    /// Same series with a retention cap (0 = unbounded).
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    /// Append a sample. Retention rule: when the series holds `cap`
    /// samples, the oldest `max(cap/4, 1)` are discarded in one block
    /// (amortized O(1)) before the append, keeping the newest window.
    /// Spectra/fits are computed over the retained window; shipped
    /// decks stay far below the default cap, so their artifacts are
    /// unchanged by retention.
    pub fn push(&mut self, v: f64) {
        if self.cap > 0 && self.samples.len() >= self.cap {
            let drop = (self.cap / 4).max(1);
            self.samples.drain(..drop);
            self.discarded += drop as u64;
        }
        self.samples.push(v);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Samples ever pushed (retained + discarded).
    pub fn total_pushed(&self) -> u64 {
        self.discarded + self.samples.len() as u64
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean over the last `n` samples (or all, if fewer).
    pub fn tail_mean(&self, n: usize) -> f64 {
        let tail = &self.samples[self.samples.len().saturating_sub(n)..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }

    /// Min and max over the whole series.
    pub fn min_max(&self) -> (f64, f64) {
        self.samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }

    /// Dominant angular frequency (mean removed first so the DC component
    /// doesn't mask the physics).
    pub fn dominant_omega(&self) -> f64 {
        let mean = self.samples.iter().sum::<f64>() / self.samples.len().max(1) as f64;
        let centered: Vec<f64> = self.samples.iter().map(|v| v - mean).collect();
        dominant_frequency(&centered, self.dt).1
    }

    /// Exponential growth rate (per unit time) fit over the sample index
    /// range `[a, b)`.
    pub fn growth_rate_in(&self, a: usize, b: usize) -> f64 {
        let b = b.min(self.samples.len());
        if a >= b {
            return 0.0;
        }
        growth_rate(&self.samples[a..b]) / self.dt
    }

    /// Relative drift `(last − first)/first` (conservation metric).
    pub fn relative_drift(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&a), Some(&b)) if a != 0.0 => (b - a) / a,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_drift() {
        let mut ts = TimeSeries::new("x", 0.1);
        for i in 0..10 {
            ts.push(i as f64);
        }
        assert_eq!(ts.len(), 10);
        assert!(!ts.is_empty());
        assert!((ts.tail_mean(4) - 7.5).abs() < 1e-12);
        assert!((ts.tail_mean(100) - 4.5).abs() < 1e-12);
        assert_eq!(ts.min_max(), (0.0, 9.0));
        // First sample is zero → drift is defined as 0.
        assert_eq!(ts.relative_drift(), 0.0);
        let mut ts2 = TimeSeries::new("y", 1.0);
        ts2.push(2.0);
        ts2.push(3.0);
        assert!((ts2.relative_drift() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capped_series_keeps_newest_window() {
        let mut ts = TimeSeries::new("cap", 1.0).with_cap(8);
        for i in 0..8 {
            ts.push(i as f64);
        }
        assert_eq!(ts.discarded, 0);
        // Ninth push evicts the oldest cap/4 = 2 samples in one block.
        ts.push(8.0);
        assert_eq!(ts.len(), 7);
        assert_eq!(ts.discarded, 2);
        assert_eq!(ts.total_pushed(), 9);
        assert_eq!(ts.samples.first().copied(), Some(2.0));
        assert_eq!(ts.samples.last().copied(), Some(8.0));
        for i in 9..100 {
            ts.push(i as f64);
        }
        assert!(ts.len() <= 8);
        assert_eq!(ts.total_pushed(), 100);
        assert_eq!(ts.samples.last().copied(), Some(99.0));
        // Uncapped series never discards.
        let mut open = TimeSeries::new("open", 1.0);
        for i in 0..100 {
            open.push(i as f64);
        }
        assert_eq!(open.len(), 100);
        assert_eq!(open.discarded, 0);
    }

    #[test]
    fn oscillation_frequency_recovered() {
        let dt = 0.05;
        let omega = 3.0;
        let mut ts = TimeSeries::new("osc", dt);
        for i in 0..512 {
            ts.push(5.0 + (omega * i as f64 * dt).sin());
        }
        let got = ts.dominant_omega();
        assert!((got - omega).abs() / omega < 0.05, "got {got}");
    }

    #[test]
    fn growth_rate_window() {
        let dt = 0.2;
        let gamma = 0.5; // per unit time
        let mut ts = TimeSeries::new("g", dt);
        for i in 0..100 {
            ts.push(1e-8 * (gamma * i as f64 * dt).exp());
        }
        let got = ts.growth_rate_in(10, 90);
        assert!((got - gamma).abs() < 1e-6, "got {got}");
    }
}
