//! Multi-process socket transport: ranks are OS processes, packets are
//! CRC-framed byte messages on Unix-domain or TCP-loopback streams.
//!
//! ## Topology
//!
//! Every rank binds one listening endpoint (`{dir}/rank{r}.sock` or
//! `127.0.0.1:base_port+r`) and dials every peer, so each ordered pair has
//! a directional stream: the initiator's stream carries its sends (and its
//! heartbeats); the acceptor spawns a reader thread per accepted stream
//! that feeds a persistent per-peer inbox channel. Because the inbox
//! sender is retained across connections, a *re*connect (after a transient
//! error or a process respawn) transparently resumes delivery to the same
//! receiver.
//!
//! ## Framing
//!
//! Same discipline as the WAL journal (`vpic_core::journal`): every frame
//! is `[u32 len][payload][u32 crc32(payload)]`, little-endian, CRC-32
//! (IEEE). The first payload byte is the frame kind (HELLO / HELLO_ACK /
//! DATA / HEARTBEAT). A CRC mismatch is stream breakage — the connection
//! is dropped and redialed — whereas an *injected* `Corrupt` fault keeps
//! the frame CRC valid and sets the packet's corrupt flag, mirroring the
//! in-process transport's semantics so fault plans behave identically.
//!
//! ## Bootstrap handshake
//!
//! A dialer opens with HELLO `{version, world_fp, world, from, epoch}`;
//! the acceptor replies HELLO_ACK carrying its own values. The *dialer*
//! validates: version, then world size, then world fingerprint — each
//! mismatch is an immediate typed [`BootstrapError`]. A peer that accepts
//! but never completes the handshake produces
//! [`BootstrapError::HandshakeTimeout`] after the per-attempt handshake
//! deadline; [`connect_all`](SocketTransport::bootstrap) retries
//! slow-starter errors with jittered exponential backoff until the
//! per-peer connect deadline, then surfaces the last typed error.
//!
//! ## Failure detection and recovery
//!
//! Every frame received from a peer (handshakes, heartbeats, data)
//! refreshes its `last_seen` clock; a dedicated thread heartbeats every
//! open outgoing stream. A receive that would block checks staleness: a
//! peer once seen but silent for longer than the failure window is
//! reported [`RecvError::Closed`], which `Comm` converts into the same
//! `CommError::PeerClosed` path the campaign driver already escalates
//! through. Dead streams are redialed with backoff on the next send. A
//! `kill -9`'d rank is *adopted* at the process level: the respawned
//! process re-binds the rank's endpoint (stale Unix socket files are
//! unlinked), peers' redials land on it, and its bootstrap handshake
//! hands it the world's current epoch (`observed_epoch`) so the recovery
//! rendezvous converges.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::comm::{Comm, CommError, RankPanic, TrafficReport};
use crate::fault::FaultPlan;
use crate::transport::{Packet, Payload, RecvError, TagTraffic, Transport};
use crate::wire::{self, crc32, WireReader};

/// Wire protocol version; bumped on any framing or handshake change. Both
/// ends of a handshake must match exactly.
pub const WIRE_VERSION: u32 = 1;

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_DATA: u8 = 3;
const KIND_HEARTBEAT: u8 = 4;

/// Upper bound on a single frame payload; larger lengths mark a broken or
/// hostile stream.
const MAX_FRAME: u32 = 1 << 30;

/// Where each rank of a socket world listens.
#[derive(Clone, Debug)]
pub enum SocketAddrSpec {
    /// Unix-domain sockets `{dir}/rank{r}.sock`.
    Unix { dir: PathBuf },
    /// TCP loopback `127.0.0.1:{base_port + r}`.
    Tcp { base_port: u16 },
}

impl SocketAddrSpec {
    pub fn unix(dir: impl Into<PathBuf>) -> Self {
        SocketAddrSpec::Unix { dir: dir.into() }
    }

    pub fn tcp(base_port: u16) -> Self {
        SocketAddrSpec::Tcp { base_port }
    }

    fn addr_of(&self, rank: usize) -> Addr {
        match self {
            SocketAddrSpec::Unix { dir } => Addr::Unix(dir.join(format!("rank{rank}.sock"))),
            SocketAddrSpec::Tcp { base_port } => {
                Addr::Tcp(SocketAddr::from(([127, 0, 0, 1], base_port + rank as u16)))
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Addr {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Unix(p) => write!(f, "{}", p.display()),
            Addr::Tcp(a) => write!(f, "{a}"),
        }
    }
}

/// Everything a process needs to take (or retake) one rank's seat in a
/// socket world.
#[derive(Clone, Debug)]
pub struct SocketBoot {
    pub spec: SocketAddrSpec,
    pub rank: usize,
    pub world: usize,
    /// Protocol version offered in the handshake. Defaults to
    /// [`WIRE_VERSION`]; forgeable so tests can exercise the mismatch path.
    pub version: u32,
    /// Fingerprint of the world's configuration (deck, build, …). Both
    /// ends of a handshake must agree, so two different runs sharing a
    /// socket directory by accident fail loudly instead of exchanging
    /// garbage.
    pub world_fp: u64,
    /// Total budget for establishing (or re-establishing) the connection
    /// to one peer during bootstrap, including handshake retries.
    pub connect_timeout: Duration,
    /// Per-attempt bound on the HELLO/HELLO_ACK exchange.
    pub handshake_timeout: Duration,
    /// How often to heartbeat every open outgoing stream.
    pub heartbeat_interval: Duration,
    /// A peer once seen but silent this long is declared dead.
    pub failure_window: Duration,
}

impl SocketBoot {
    pub fn new(spec: SocketAddrSpec, rank: usize, world: usize) -> Self {
        SocketBoot {
            spec,
            rank,
            world,
            version: WIRE_VERSION,
            world_fp: 0,
            connect_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(2),
            heartbeat_interval: Duration::from_millis(100),
            failure_window: Duration::from_secs(1),
        }
    }
}

/// Why a socket world failed to come up (or a peer failed to rejoin it).
#[derive(Debug)]
pub enum BootstrapError {
    VersionMismatch {
        ours: u32,
        theirs: u32,
    },
    WorldMismatch {
        ours: usize,
        theirs: usize,
    },
    FingerprintMismatch {
        ours: u64,
        theirs: u64,
    },
    /// The peer accepted the connection but never completed the handshake.
    HandshakeTimeout {
        peer: usize,
    },
    Bind {
        addr: String,
        detail: String,
    },
    Connect {
        peer: usize,
        detail: String,
    },
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, peer {theirs}")
            }
            BootstrapError::WorldMismatch { ours, theirs } => {
                write!(f, "world size mismatch: ours {ours}, peer {theirs}")
            }
            BootstrapError::FingerprintMismatch { ours, theirs } => {
                write!(
                    f,
                    "world fingerprint mismatch: ours {ours:#018x}, peer {theirs:#018x}"
                )
            }
            BootstrapError::HandshakeTimeout { peer } => {
                write!(f, "rank {peer} connected but never completed the handshake")
            }
            BootstrapError::Bind { addr, detail } => {
                write!(f, "binding {addr}: {detail}")
            }
            BootstrapError::Connect { peer, detail } => {
                write!(f, "connecting to rank {peer}: {detail}")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// `[u32 len][payload][u32 crc32(payload)]`, the WAL journal's framing.
fn write_frame(w: &mut Stream, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Fill `buf` completely, tolerating read-timeout wakeups so the thread
/// can notice `stop` and enforce `deadline`. `Ok(false)` means stop was
/// requested while no bytes of `buf` had arrived yet (a timeout with a
/// *partial* read keeps waiting: giving up mid-frame would desync the
/// framing). A `deadline` in the past surfaces as `TimedOut`.
fn read_full(
    s: &mut Stream,
    buf: &mut [u8],
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match s.read(&mut buf[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && stop.load(Ordering::Relaxed) {
                    return Ok(false);
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one CRC-checked frame; `Ok(None)` on orderly stop. A bad length
/// or CRC is `InvalidData` — stream breakage, the caller drops the
/// connection. `deadline` bounds the whole frame (used for handshakes;
/// steady-state readers pass `None` and rely on stop/EOF).
fn read_frame(
    s: &mut Stream,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 4];
    if !read_full(s, &mut head, stop, deadline)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(head);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(s, &mut payload, stop, deadline)? {
        return Ok(None);
    }
    let mut tail = [0u8; 4];
    if !read_full(s, &mut tail, stop, deadline)? {
        return Ok(None);
    }
    if u32::from_le_bytes(tail) != crc32(&payload) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame crc mismatch",
        ));
    }
    Ok(Some(payload))
}

struct Hello {
    version: u32,
    world_fp: u64,
    world: u32,
    from: u32,
    epoch: u64,
}

impl Hello {
    fn encode(&self, kind: u8) -> Vec<u8> {
        let mut out = vec![kind];
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.world_fp.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out
    }

    fn decode(body: &mut WireReader<'_>) -> Option<Hello> {
        Some(Hello {
            version: body.u32()?,
            world_fp: body.u64()?,
            world: body.u32()?,
            from: body.u32()?,
            epoch: body.u64()?,
        })
    }
}

fn encode_data(pkt: &Packet) -> Vec<u8> {
    let (fp, data) = match &pkt.payload {
        Payload::Bytes { fp, data } => (*fp, data.as_slice()),
        Payload::Local(_) => {
            unreachable!("socket transport is by_bytes; payload must be serialized")
        }
    };
    let mut out = Vec::with_capacity(42 + data.len());
    out.push(KIND_DATA);
    out.extend_from_slice(&pkt.epoch.to_le_bytes());
    out.extend_from_slice(&pkt.tag.to_le_bytes());
    out.extend_from_slice(&pkt.seq.to_le_bytes());
    out.extend_from_slice(&(pkt.nbytes as u64).to_le_bytes());
    out.push(pkt.corrupt as u8);
    out.extend_from_slice(&fp.to_le_bytes());
    out.extend_from_slice(data);
    out
}

fn decode_data(r: &mut WireReader<'_>) -> Option<Packet> {
    let epoch = r.u64()?;
    let tag = r.u64()?;
    let seq = r.u64()?;
    let nbytes = usize::try_from(r.u64()?).ok()?;
    let corrupt = r.u8()? != 0;
    let fp = r.u64()?;
    let data = r.rest().to_vec();
    Some(Packet {
        epoch,
        tag,
        seq,
        nbytes,
        corrupt,
        payload: Payload::Bytes { fp, data },
    })
}

/// This rank's outgoing traffic counters (one row of the world's matrix).
struct Counters {
    n: usize,
    bytes: Vec<AtomicU64>,
    msgs: Vec<AtomicU64>,
    tags: Mutex<HashMap<u64, (u64, u64)>>,
}

impl Counters {
    fn new(n: usize) -> Self {
        Counters {
            n,
            bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            msgs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tags: Mutex::new(HashMap::new()),
        }
    }
}

/// State shared with the accept, reader, and heartbeat threads.
struct Inner {
    me: usize,
    n: usize,
    version: u32,
    world_fp: u64,
    stop: AtomicBool,
    /// Our current epoch, advertised in handshakes and heartbeats.
    our_epoch: AtomicU64,
    /// Newest epoch heard from any peer, by any means.
    observed_epoch: AtomicU64,
    start: Instant,
    /// Per-peer liveness clock: `0` = never seen, else millis-since-start
    /// of the last frame, plus one.
    last_seen: Vec<AtomicU64>,
    /// Persistent per-peer inbox feeds; reconnections reuse them.
    inboxes: Vec<Sender<Packet>>,
    counters: Arc<Counters>,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn mark_seen(&self, from: usize) {
        self.last_seen[from].store(self.now_ms() + 1, Ordering::Relaxed);
    }

    fn observe_epoch(&self, epoch: u64) {
        self.observed_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    fn hello(&self) -> Hello {
        Hello {
            version: self.version,
            world_fp: self.world_fp,
            world: self.n as u32,
            from: self.me as u32,
            epoch: self.our_epoch.load(Ordering::Relaxed),
        }
    }
}

/// One rank's seat in a multi-process socket world. See the module docs
/// for the topology, framing, and failure-detection story.
pub struct SocketTransport {
    inner: Arc<Inner>,
    /// Outgoing stream per peer; `None` until dialed (or after an error).
    conns: Vec<Arc<Mutex<Option<Stream>>>>,
    receivers: Vec<Receiver<Packet>>,
    addrs: Vec<Addr>,
    handshake_timeout: Duration,
    failure_window: Duration,
}

impl SocketTransport {
    /// Bind this rank's endpoint, start the accept/heartbeat machinery,
    /// and connect to every peer (the bootstrap barrier). A respawned
    /// process calls this again with the same boot to retake its seat:
    /// the stale Unix socket file is unlinked and re-bound, and peers'
    /// redials land on the new process.
    pub fn bootstrap(boot: &SocketBoot) -> Result<SocketTransport, BootstrapError> {
        assert!(boot.world >= 1, "need at least one rank");
        assert!(boot.rank < boot.world, "rank {} out of range", boot.rank);
        let n = boot.world;
        let addrs: Vec<Addr> = (0..n).map(|r| boot.spec.addr_of(r)).collect();

        let listener = match &addrs[boot.rank] {
            Addr::Unix(path) => {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::remove_file(path); // stale seat from a killed process
                UnixListener::bind(path).map(Listener::Unix)
            }
            Addr::Tcp(addr) => TcpListener::bind(addr).map(Listener::Tcp),
        }
        .map_err(|e| BootstrapError::Bind {
            addr: addrs[boot.rank].to_string(),
            detail: e.to_string(),
        })?;

        let mut inboxes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(Inner {
            me: boot.rank,
            n,
            version: boot.version,
            world_fp: boot.world_fp,
            stop: AtomicBool::new(false),
            our_epoch: AtomicU64::new(0),
            observed_epoch: AtomicU64::new(0),
            start: Instant::now(),
            last_seen: (0..n).map(|_| AtomicU64::new(0)).collect(),
            inboxes,
            counters: Arc::new(Counters::new(n)),
        });

        listener
            .set_nonblocking(true)
            .map_err(|e| BootstrapError::Bind {
                addr: addrs[boot.rank].to_string(),
                detail: e.to_string(),
            })?;
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(listener, inner));
        }

        let conns: Vec<Arc<Mutex<Option<Stream>>>> =
            (0..n).map(|_| Arc::new(Mutex::new(None))).collect();
        {
            let inner = Arc::clone(&inner);
            let conns = conns.clone();
            let interval = boot.heartbeat_interval;
            std::thread::spawn(move || heartbeat_loop(inner, conns, interval));
        }

        let t = SocketTransport {
            inner,
            conns,
            receivers,
            addrs,
            handshake_timeout: boot.handshake_timeout,
            failure_window: boot.failure_window,
        };
        t.connect_all(boot.connect_timeout)?;
        Ok(t)
    }

    /// Dial every peer, retrying slow-starter failures (connection refused,
    /// handshake timeout) with jittered exponential backoff until the
    /// per-peer deadline; protocol mismatches fail immediately.
    fn connect_all(&self, connect_timeout: Duration) -> Result<(), BootstrapError> {
        let me = self.inner.me;
        let seed = 0x50C4_E7ED_u64 ^ ((me as u64) << 24);
        for to in 0..self.inner.n {
            if to == me {
                continue;
            }
            let deadline = Instant::now() + connect_timeout;
            let mut attempt = 0u32;
            loop {
                match self.dial(to) {
                    Ok(stream) => {
                        *self.conns[to].lock().unwrap() = Some(stream);
                        break;
                    }
                    Err(
                        e @ (BootstrapError::VersionMismatch { .. }
                        | BootstrapError::WorldMismatch { .. }
                        | BootstrapError::FingerprintMismatch { .. }
                        | BootstrapError::Bind { .. }),
                    ) => return Err(e),
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(wire::backoff(
                            attempt,
                            Duration::from_millis(10),
                            Duration::from_millis(200),
                            seed ^ to as u64,
                        ));
                        attempt = attempt.saturating_add(1);
                    }
                }
            }
        }
        Ok(())
    }

    /// One connection + handshake attempt to `to`. The dialer validates
    /// the acceptor's HELLO_ACK: version, world size, then fingerprint.
    fn dial(&self, to: usize) -> Result<Stream, BootstrapError> {
        let connect_err = |e: &dyn std::fmt::Display| BootstrapError::Connect {
            peer: to,
            detail: e.to_string(),
        };
        let mut stream = match &self.addrs[to] {
            Addr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Addr::Tcp(addr) => {
                TcpStream::connect_timeout(addr, self.handshake_timeout).map(Stream::Tcp)
            }
        }
        .map_err(|e| connect_err(&e))?;
        stream
            .set_read_timeout(Some(self.handshake_timeout))
            .and_then(|_| stream.set_write_timeout(Some(self.handshake_timeout)))
            .map_err(|e| connect_err(&e))?;
        write_frame(&mut stream, &self.inner.hello().encode(KIND_HELLO))
            .map_err(|e| connect_err(&e))?;
        let ack_deadline = Instant::now() + self.handshake_timeout;
        let body = match read_frame(&mut stream, &self.inner.stop, Some(ack_deadline)) {
            Ok(Some(b)) => b,
            Ok(None) => return Err(connect_err(&"transport shutting down")),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(BootstrapError::HandshakeTimeout { peer: to })
            }
            Err(e) => return Err(connect_err(&e)),
        };
        let mut r = WireReader::new(&body);
        if r.u8() != Some(KIND_HELLO_ACK) {
            return Err(connect_err(&"unexpected handshake frame"));
        }
        let ack = Hello::decode(&mut r).ok_or_else(|| connect_err(&"malformed handshake"))?;
        if ack.version != self.inner.version {
            return Err(BootstrapError::VersionMismatch {
                ours: self.inner.version,
                theirs: ack.version,
            });
        }
        if ack.world as usize != self.inner.n {
            return Err(BootstrapError::WorldMismatch {
                ours: self.inner.n,
                theirs: ack.world as usize,
            });
        }
        if ack.world_fp != self.inner.world_fp {
            return Err(BootstrapError::FingerprintMismatch {
                ours: self.inner.world_fp,
                theirs: ack.world_fp,
            });
        }
        self.inner.mark_seen(to);
        self.inner.observe_epoch(ack.epoch);
        // Post-handshake the stream is write-only; bound writes so a
        // wedged peer cannot block the send path indefinitely.
        let _ = stream.set_write_timeout(Some(self.failure_window.max(Duration::from_secs(1))));
        Ok(stream)
    }

    /// Write a frame to `to`, dialing (with bounded retry + backoff) if
    /// there is no live connection, and redialing once if an established
    /// connection turns out to be dead.
    fn write_to(&self, to: usize, frame: &[u8]) -> Result<(), CommError> {
        let mut guard = self.conns[to].lock().unwrap();
        let seed = 0xDA1E_D000_u64 ^ ((self.inner.me as u64) << 16) ^ to as u64;
        for attempt in 0..3u32 {
            if guard.is_none() {
                match self.dial(to) {
                    Ok(s) => *guard = Some(s),
                    Err(_) => {
                        std::thread::sleep(wire::backoff(
                            attempt,
                            Duration::from_millis(5),
                            Duration::from_millis(50),
                            seed,
                        ));
                        continue;
                    }
                }
            }
            match write_frame(guard.as_mut().unwrap(), frame) {
                Ok(()) => return Ok(()),
                Err(_) => *guard = None, // dead stream: redial on next pass
            }
        }
        Err(CommError::PeerClosed { peer: to })
    }

    fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.inner.counters)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.inner.me
    }

    fn size(&self) -> usize {
        self.inner.n
    }

    fn by_bytes(&self) -> bool {
        true
    }

    fn send(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        self.write_to(to, &encode_data(&pkt))
    }

    fn recv_timeout(&mut self, from: usize, timeout: Duration) -> Result<Packet, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let slice = (deadline - now).min(Duration::from_millis(20));
            match self.receivers[from].recv_timeout(slice) {
                Ok(pkt) => return Ok(pkt),
                Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Closed),
                Err(RecvTimeoutError::Timeout) => {
                    let seen = self.inner.last_seen[from].load(Ordering::Relaxed);
                    if seen != 0 {
                        let stale = self.inner.now_ms().saturating_sub(seen - 1);
                        if stale > self.failure_window.as_millis() as u64 {
                            // Once-live peer gone silent past the failure
                            // window: positively dead, not merely slow.
                            return Err(RecvError::Closed);
                        }
                    }
                }
            }
        }
    }

    fn try_recv(&mut self, from: usize) -> Option<Packet> {
        self.receivers[from].try_recv().ok()
    }

    fn count(&self, to: usize, tag: u64, nbytes: u64) {
        let c = &self.inner.counters;
        c.bytes[to].fetch_add(nbytes, Ordering::Relaxed);
        c.msgs[to].fetch_add(1, Ordering::Relaxed);
        let mut tags = c.tags.lock().unwrap();
        let e = tags.entry(tag).or_insert((0, 0));
        e.0 += 1;
        e.1 += nbytes;
    }

    fn peer_may_return(&self) -> bool {
        true
    }

    fn observed_epoch(&self) -> u64 {
        self.inner.observed_epoch.load(Ordering::Relaxed)
    }

    fn set_epoch(&self, epoch: u64) {
        self.inner.our_epoch.store(epoch, Ordering::Relaxed);
    }
}

fn accept_loop(listener: Listener, inner: Arc<Inner>) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || reader_loop(stream, inner));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Serve one accepted stream: handshake, then pump DATA frames into the
/// sender's inbox until EOF, breakage, or shutdown.
fn reader_loop(mut stream: Stream, inner: Arc<Inner>) {
    if stream.set_nonblocking_off().is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(1)))
            .is_err()
    {
        return;
    }
    // First frame must be HELLO. The ack always carries *our* values —
    // the dialer does the comparing — then a mismatched dialer is cut off.
    let from = match read_frame(&mut stream, &inner.stop, None) {
        Ok(Some(body)) => {
            let mut r = WireReader::new(&body);
            if r.u8() != Some(KIND_HELLO) {
                return;
            }
            let Some(hello) = Hello::decode(&mut r) else {
                return;
            };
            if write_frame(&mut stream, &inner.hello().encode(KIND_HELLO_ACK)).is_err() {
                return;
            }
            let ok = hello.version == inner.version
                && hello.world as usize == inner.n
                && hello.world_fp == inner.world_fp
                && (hello.from as usize) < inner.n;
            if !ok {
                return;
            }
            let from = hello.from as usize;
            inner.mark_seen(from);
            inner.observe_epoch(hello.epoch);
            from
        }
        _ => return,
    };
    loop {
        match read_frame(&mut stream, &inner.stop, None) {
            Ok(Some(body)) => {
                inner.mark_seen(from);
                let mut r = WireReader::new(&body);
                match r.u8() {
                    Some(KIND_DATA) => {
                        let Some(pkt) = decode_data(&mut r) else {
                            return; // malformed despite valid CRC: breakage
                        };
                        inner.observe_epoch(pkt.epoch);
                        if inner.inboxes[from].send(pkt).is_err() {
                            return;
                        }
                    }
                    Some(KIND_HEARTBEAT) => {
                        if let Some(epoch) = r.skip(4).and_then(|r| r.u64()) {
                            inner.observe_epoch(epoch);
                        }
                    }
                    _ => {} // unknown kinds are ignored for forward compat
                }
            }
            Ok(None) => return, // shutdown
            Err(_) => return,   // EOF or breakage: dialer reconnects
        }
    }
}

impl Stream {
    fn set_nonblocking_off(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(false),
            Stream::Tcp(s) => s.set_nonblocking(false),
        }
    }
}

fn heartbeat_loop(inner: Arc<Inner>, conns: Vec<Arc<Mutex<Option<Stream>>>>, interval: Duration) {
    let mut frame = Vec::with_capacity(13);
    while !inner.stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        frame.clear();
        frame.push(KIND_HEARTBEAT);
        frame.extend_from_slice(&(inner.me as u32).to_le_bytes());
        frame.extend_from_slice(&inner.our_epoch.load(Ordering::Relaxed).to_le_bytes());
        for (to, conn) in conns.iter().enumerate() {
            if to == inner.me {
                continue;
            }
            // try_lock: never contend with the send path; a skipped beat
            // is harmless (sends themselves refresh the peer's clock).
            if let Ok(mut guard) = conn.try_lock() {
                if let Some(stream) = guard.as_mut() {
                    if write_frame(stream, &frame).is_err() {
                        *guard = None; // dead stream: sends will redial
                    }
                }
            }
        }
    }
}

fn socket_report(n: usize, rows: &[Option<Arc<Counters>>]) -> TrafficReport {
    let mut bytes = vec![vec![0u64; n]; n];
    let mut messages = vec![vec![0u64; n]; n];
    let mut tag_map: HashMap<u64, (u64, u64)> = HashMap::new();
    for (from, row) in rows.iter().enumerate() {
        let Some(c) = row else { continue };
        for to in 0..n.min(c.n) {
            bytes[from][to] = c.bytes[to].load(Ordering::Relaxed);
            messages[from][to] = c.msgs[to].load(Ordering::Relaxed);
        }
        for (&tag, &(m, b)) in c.tags.lock().unwrap().iter() {
            let e = tag_map.entry(tag).or_insert((0, 0));
            e.0 += m;
            e.1 += b;
        }
    }
    let mut by_tag: Vec<TagTraffic> = tag_map
        .into_iter()
        .map(|(tag, (messages, bytes))| TagTraffic {
            tag,
            messages,
            bytes,
        })
        .collect();
    by_tag.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.tag.cmp(&b.tag)));
    TrafficReport {
        n_ranks: n,
        total_bytes: bytes.iter().flatten().sum(),
        total_messages: messages.iter().flatten().sum(),
        bytes,
        messages,
        by_tag,
    }
}

/// Run one rank of a multi-process socket world in *this* process. The
/// returned traffic report covers this rank's outgoing row only (each
/// process keeps its own counters).
pub fn run_socket<R>(
    boot: &SocketBoot,
    plan: Option<FaultPlan>,
    f: impl FnOnce(&mut Comm) -> R,
) -> Result<(R, TrafficReport), BootstrapError> {
    let transport = SocketTransport::bootstrap(boot)?;
    let counters = transport.counters();
    let mut comm = Comm::from_transport(Box::new(transport), plan.map(Arc::new));
    let result = f(&mut comm);
    drop(comm);
    let mut rows: Vec<Option<Arc<Counters>>> = (0..boot.world).map(|_| None).collect();
    rows[boot.rank] = Some(counters);
    Ok((result, socket_report(boot.world, &rows)))
}

/// Spawn `n` ranks as threads of this process, each with its own
/// [`SocketTransport`] over real sockets — the full wire path (framing,
/// handshakes, heartbeats) without multi-process orchestration. Used by
/// the determinism matrix, the sweep scheduler's socket mode, and tests.
/// A rank whose bootstrap fails is reported as a [`RankPanic`].
pub fn run_socket_world<R, F>(
    n: usize,
    spec: SocketAddrSpec,
    plan: Option<FaultPlan>,
    f: F,
) -> (Vec<Result<R, RankPanic>>, TrafficReport)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    assert!(n >= 1, "need at least one rank");
    let plan = plan.map(Arc::new);
    let rows: Mutex<Vec<Option<Arc<Counters>>>> = Mutex::new((0..n).map(|_| None).collect());
    // MPI_Init-style rendezvous: no rank enters (or leaves) its closure
    // until every rank has finished bootstrapping, else a rank with a
    // short closure can tear down its listener before a slower peer has
    // dialed it. A harness-level latch (not a message barrier) so fault
    // plans and traffic counters see identical send sequences on both
    // transports. Failed bootstraps count too, so they can't hang peers.
    let booted = (Mutex::new(0usize), Condvar::new());
    let results: Vec<Result<R, RankPanic>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let spec = spec.clone();
            let plan = plan.clone();
            let f = &f;
            let rows = &rows;
            let booted = &booted;
            handles.push(scope.spawn(move || {
                let boot = SocketBoot::new(spec, rank, n);
                let outcome = SocketTransport::bootstrap(&boot);
                {
                    let mut done = booted.0.lock().unwrap();
                    *done += 1;
                    booted.1.notify_all();
                }
                let transport =
                    outcome.unwrap_or_else(|e| panic!("rank {rank} bootstrap failed: {e}"));
                rows.lock().unwrap()[rank] = Some(transport.counters());
                let mut comm = Comm::from_transport(Box::new(transport), plan);
                let guard = booted.0.lock().unwrap();
                let _ = booted
                    .1
                    .wait_timeout_while(guard, Duration::from_secs(30), |done| *done < n)
                    .unwrap();
                f(&mut comm)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| RankPanic {
                    rank,
                    message: crate::comm::panic_message(payload.as_ref()),
                })
            })
            .collect()
    });
    let report = socket_report(n, &rows.into_inner().unwrap());
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nanompi_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn socket_world_ring_pass_matches_local_and_counts_bytes() {
        let dir = test_dir("ring");
        let over_socket = |c: &mut Comm| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 7, c.rank() as u64).unwrap();
            let from_left: u64 = c.recv(left, 7).unwrap();
            c.allreduce_sum(from_left as f64).unwrap()
        };
        let (socket_results, traffic) =
            run_socket_world(3, SocketAddrSpec::unix(&dir), None, over_socket);
        let (local_results, _) = crate::run_expect(3, over_socket);
        let socket_results: Vec<f64> = socket_results.into_iter().map(|r| r.unwrap()).collect();
        // Bit-identical across transports.
        for (s, l) in socket_results.iter().zip(&local_results) {
            assert_eq!(s.to_bits(), l.to_bits());
        }
        assert_eq!(traffic.total_messages, 3);
        assert_eq!(traffic.total_bytes, 3 * 8);
        assert_eq!(traffic.by_tag.len(), 1);
        assert_eq!(traffic.by_tag[0].tag, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_loopback_world_works() {
        let (results, _) = run_socket_world(2, SocketAddrSpec::tcp(47613), None, |c| {
            let peer = 1 - c.rank();
            c.send(peer, 1, c.rank() as u32 + 10).unwrap();
            c.recv::<u32>(peer, 1).unwrap()
        });
        let got: Vec<u32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![11, 10]);
    }

    #[test]
    fn typed_payloads_and_type_mismatch_over_sockets() {
        let dir = test_dir("typed");
        let (results, _) = run_socket_world(2, SocketAddrSpec::unix(&dir), None, |c| {
            if c.rank() == 0 {
                c.send(1, 1, "hello".to_string()).unwrap();
                c.send_vec(1, 2, vec![1.5f32, -0.0]).unwrap();
                c.send(1, 3, 7u32).unwrap();
                true
            } else {
                assert_eq!(c.recv::<String>(0, 1).unwrap(), "hello");
                let v: Vec<f32> = c.recv(0, 2).unwrap();
                assert_eq!(v[0].to_bits(), 1.5f32.to_bits());
                assert_eq!(v[1].to_bits(), (-0.0f32).to_bits());
                // Mistyped receive is a typed error, exactly as in-process.
                matches!(
                    c.recv::<String>(0, 3),
                    Err(CommError::TypeMismatch { from: 0, tag: 3 })
                )
            }
        });
        assert!(results.into_iter().all(|r| r.unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_applies_unmodified_over_sockets() {
        let dir = test_dir("faults");
        // Corrupt message 1 and duplicate message 2 from rank 0: same
        // plan, same observable behavior as the in-process transport.
        let plan = FaultPlan::new(1)
            .corrupt_message(0, 1)
            .duplicate_message(0, 2);
        let (results, _) = run_socket_world(2, SocketAddrSpec::unix(&dir), Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(300));
            if c.rank() == 0 {
                c.send(1, 9, 5u32).unwrap();
                c.send(1, 9, 6u32).unwrap();
                c.send(1, 9, 7u32).unwrap();
                true
            } else {
                let corrupt = matches!(
                    c.recv::<u32>(0, 9),
                    Err(CommError::Corrupt { from: 0, tag: 9 })
                );
                let a: u32 = c.recv(0, 9).unwrap();
                let b: u32 = c.recv(0, 9).unwrap();
                // The duplicated copy was suppressed, not delivered
                // as a phantom third message.
                let empty = matches!(c.recv::<u32>(0, 9), Err(CommError::Timeout { .. }));
                corrupt && (a, b) == (6, 7) && empty
            }
        });
        assert!(results.into_iter().all(|r| r.unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A peer that speaks the handshake but answers with forged values —
    /// and, unlike a real mismatched rank, stays alive so the dialer's
    /// validation (not a torn-down listener) decides the outcome.
    fn forged_acceptor(path: PathBuf, ack: Hello) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let listener = UnixListener::bind(&path).unwrap();
            if let Ok((s, _)) = listener.accept() {
                let mut s = Stream::Unix(s);
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                let stop = AtomicBool::new(false);
                let _ = read_frame(&mut s, &stop, Some(Instant::now() + Duration::from_secs(2)));
                let _ = write_frame(&mut s, &ack.encode(KIND_HELLO_ACK));
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    }

    fn mismatch_boot(dir: &std::path::Path) -> SocketBoot {
        let mut boot = SocketBoot::new(SocketAddrSpec::unix(dir), 0, 2);
        boot.connect_timeout = Duration::from_secs(5);
        boot
    }

    #[test]
    fn bootstrap_world_size_mismatch_is_typed() {
        let dir = test_dir("world_mismatch");
        let acceptor = forged_acceptor(
            dir.join("rank1.sock"),
            Hello {
                version: WIRE_VERSION,
                world_fp: 0,
                world: 3, // claims a 3-rank world; ours is 2
                from: 1,
                epoch: 0,
            },
        );
        let err = SocketTransport::bootstrap(&mismatch_boot(&dir))
            .err()
            .expect("must fail");
        assert!(
            matches!(err, BootstrapError::WorldMismatch { ours: 2, theirs: 3 }),
            "got {err}"
        );
        acceptor.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bootstrap_version_mismatch_is_typed() {
        let dir = test_dir("version_mismatch");
        let acceptor = forged_acceptor(
            dir.join("rank1.sock"),
            Hello {
                version: WIRE_VERSION + 1, // a future build
                world_fp: 0,
                world: 2,
                from: 1,
                epoch: 0,
            },
        );
        let err = SocketTransport::bootstrap(&mismatch_boot(&dir))
            .err()
            .expect("must fail");
        match err {
            BootstrapError::VersionMismatch { ours, theirs } => {
                assert_eq!(ours, WIRE_VERSION);
                assert_eq!(theirs, WIRE_VERSION + 1);
            }
            other => panic!("got {other}"),
        }
        acceptor.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bootstrap_fingerprint_mismatch_is_typed() {
        let dir = test_dir("fp_mismatch");
        let acceptor = forged_acceptor(
            dir.join("rank1.sock"),
            Hello {
                version: WIRE_VERSION,
                world_fp: 0xBBBB, // a different deck in the same directory
                world: 2,
                from: 1,
                epoch: 0,
            },
        );
        let mut boot = mismatch_boot(&dir);
        boot.world_fp = 0xAAAA;
        let err = SocketTransport::bootstrap(&boot).err().expect("must fail");
        assert!(
            matches!(
                err,
                BootstrapError::FingerprintMismatch {
                    ours: 0xAAAA,
                    theirs: 0xBBBB
                }
            ),
            "got {err}"
        );
        acceptor.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silent_peer_times_out_with_typed_error_not_a_hang() {
        let dir = test_dir("silent_peer");
        let spec = SocketAddrSpec::unix(&dir);
        // Rank 1's seat: a listener that accepts (kernel backlog) but
        // never speaks the handshake.
        let silent = UnixListener::bind(dir.join("rank1.sock")).unwrap();
        let mut boot = SocketBoot::new(spec, 0, 2);
        boot.handshake_timeout = Duration::from_millis(100);
        boot.connect_timeout = Duration::from_millis(400);
        let started = Instant::now();
        let err = SocketTransport::bootstrap(&boot).err().expect("must fail");
        assert!(
            matches!(err, BootstrapError::HandshakeTimeout { peer: 1 }),
            "got {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bootstrap did not bound the silent peer"
        );
        drop(silent);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_peer_heartbeat_staleness_is_positively_closed() {
        let dir = test_dir("dead_peer");
        let spec = SocketAddrSpec::unix(&dir);
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let boot = SocketBoot::new(spec.clone(), 1, 2);
                let t = SocketTransport::bootstrap(&boot).unwrap();
                gate.wait();
                drop(t); // process "dies": heartbeats stop, streams close
            });
            let mut boot = SocketBoot::new(spec.clone(), 0, 2);
            boot.heartbeat_interval = Duration::from_millis(25);
            boot.failure_window = Duration::from_millis(250);
            let mut t = SocketTransport::bootstrap(&boot).unwrap();
            gate.wait();
            // Wait out the failure window: the receive must convert the
            // silence into Closed well before its own 5 s deadline.
            let started = Instant::now();
            let got = t.recv_timeout(1, Duration::from_secs(5));
            assert!(matches!(got, Err(RecvError::Closed)), "peer not detected");
            assert!(started.elapsed() < Duration::from_secs(3));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_rank_respawns_and_recovery_converges_on_sockets() {
        // The adopt path, in miniature: rank 1's first incarnation dies
        // after the world is up; a second incarnation re-binds the same
        // seat, learns the world's epoch from its handshake, and the
        // recovery rendezvous converges — while rank 0 retries its
        // announcements with backoff across the respawn gap.
        let dir = test_dir("respawn");
        let spec = SocketAddrSpec::unix(&dir);
        let up = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let survivor = s.spawn(|| {
                let mut boot = SocketBoot::new(spec.clone(), 0, 2);
                boot.heartbeat_interval = Duration::from_millis(25);
                boot.failure_window = Duration::from_millis(250);
                let (res, _) = run_socket(&boot, None, |c| {
                    c.set_op_timeout(Duration::from_millis(2000));
                    up.wait();
                    // The peer dies; this recv fails (Closed or Timeout),
                    // then recovery waits for its second incarnation.
                    assert!(c.recv::<u32>(1, 1).is_err());
                    let epoch = c.recover().unwrap();
                    let sum = c.allreduce_sum(1.0).unwrap();
                    (epoch, sum)
                })
                .unwrap();
                res
            });
            let first = SocketTransport::bootstrap(&SocketBoot::new(spec.clone(), 1, 2)).unwrap();
            up.wait();
            std::thread::sleep(Duration::from_millis(100));
            drop(first); // kill -9 stand-in
            std::thread::sleep(Duration::from_millis(400));
            let mut boot = SocketBoot::new(spec.clone(), 1, 2);
            boot.heartbeat_interval = Duration::from_millis(25);
            boot.failure_window = Duration::from_millis(250);
            let (res, _) = run_socket(&boot, None, |c| {
                c.set_op_timeout(Duration::from_millis(2000));
                let epoch = c.recover().unwrap();
                let sum = c.allreduce_sum(1.0).unwrap();
                (epoch, sum)
            })
            .unwrap();
            let (se, ss) = survivor.join().unwrap();
            let (re, rs) = res;
            assert_eq!(se, re, "survivor and rejoiner disagree on the epoch");
            assert!(se >= 1);
            assert_eq!(ss, 2.0);
            assert_eq!(rs, 2.0);
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
