//! The transport seam between [`Comm`](crate::Comm)'s typed, fault-aware
//! surface and the bytes (or boxed values) that actually move.
//!
//! `Comm` owns everything transport-independent — tag matching, per-tag
//! FIFO dedup, epochs, fault injection, collectives, the recovery
//! rendezvous — and delegates raw packet movement to a [`Transport`]:
//!
//! * [`LocalTransport`]: the original in-process substrate. Ranks are
//!   threads, packets ride per-pair lock-free channels as boxed values
//!   (no serialization), and a closed channel means the peer thread is
//!   gone forever.
//! * [`SocketTransport`](crate::socket::SocketTransport): ranks are OS
//!   processes, packets are CRC-framed byte messages on Unix-domain or
//!   TCP streams, and a dead peer may *come back* (a respawned process
//!   re-binds the rank's endpoint), which changes how the recovery
//!   rendezvous treats send failures.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::comm::CommError;

/// Which substrate a configured world runs over — the value of the
/// `transport = local|socket` deck global, shared vocabulary for every
/// launcher (vpic-run, the campaign runtime, the sweep scheduler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process: ranks are threads, payloads move as boxed values.
    #[default]
    Local,
    /// Real sockets: ranks are threads or processes, payloads move as
    /// CRC-framed bytes over Unix-domain or TCP streams.
    Socket,
}

impl TransportKind {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "local" => Some(TransportKind::Local),
            "socket" => Some(TransportKind::Socket),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::Local => "local",
            TransportKind::Socket => "socket",
        }
    }
}

/// A message payload in whichever representation the transport moves.
pub(crate) enum Payload {
    /// Boxed value (in-process transport; zero-copy, no serialization).
    Local(Box<dyn Any + Send>),
    /// Serialized bytes plus the sender's type fingerprint (byte-oriented
    /// transports; see [`crate::wire`]).
    Bytes { fp: u64, data: Vec<u8> },
}

/// The unit of transfer: epoch/tag/seq envelope plus payload. Identical
/// semantics on every transport; only the payload representation differs.
pub(crate) struct Packet {
    pub epoch: u64,
    pub tag: u64,
    /// Per-(sender, tag, epoch) sequence number, 1-based. Injected
    /// duplicates reuse their original's number so the receiver can
    /// suppress the copy instead of desyncing per-tag FIFO order.
    pub seq: u64,
    #[allow(dead_code)]
    pub nbytes: usize,
    pub corrupt: bool,
    pub payload: Payload,
}

/// Why a receive produced nothing.
pub(crate) enum RecvError {
    /// Nothing arrived in time; the peer may be alive but slow.
    Timeout,
    /// The peer is positively gone (closed channel / failed heartbeat).
    Closed,
}

/// Raw packet movement for one rank's seat in the world. Everything above
/// this trait (matching, dedup, epochs, faults, collectives, recovery) is
/// transport-independent.
pub(crate) trait Transport: Send {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;

    /// Whether payloads must be serialized ([`Payload::Bytes`]) rather
    /// than boxed ([`Payload::Local`]).
    fn by_bytes(&self) -> bool {
        false
    }

    /// Deliver one packet to `to` (no fault injection, no counting —
    /// both happen above).
    fn send(&mut self, to: usize, pkt: Packet) -> Result<(), CommError>;

    /// Wait up to `timeout` for the next packet from `from`.
    fn recv_timeout(&mut self, from: usize, timeout: Duration) -> Result<Packet, RecvError>;

    /// Non-blocking: next already-arrived packet from `from`, if any.
    fn try_recv(&mut self, from: usize) -> Option<Packet>;

    /// Account one counted application send (per-pair and per-tag).
    fn count(&self, to: usize, tag: u64, nbytes: u64);

    /// Whether a dead peer can reappear (process respawn). The recovery
    /// rendezvous retries announcements to such peers with backoff instead
    /// of failing fast.
    fn peer_may_return(&self) -> bool {
        false
    }

    /// Newest epoch observed out-of-band (bootstrap handshakes and
    /// heartbeats); lets a rejoining process catch up to the world's
    /// epoch before its first rendezvous. Always 0 for local transports.
    fn observed_epoch(&self) -> u64 {
        0
    }

    /// Publish this rank's current epoch for out-of-band advertisement
    /// (handshake replies, heartbeats). No-op for local transports.
    fn set_epoch(&self, _epoch: u64) {}
}

/// Per-tag traffic totals (counted application sends only, like the rest
/// of the report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagTraffic {
    pub tag: u64,
    pub messages: u64,
    pub bytes: u64,
}

/// Traffic counters shared by every rank of one in-process world.
pub(crate) struct Shared {
    pub size: usize,
    /// Channel matrix: `senders[from][to]` (receivers are taken by their
    /// owning rank at startup).
    pub senders: Vec<Vec<Sender<Packet>>>,
    /// bytes[from * size + to]
    pub bytes: Vec<AtomicU64>,
    pub msgs: Vec<AtomicU64>,
    /// tag -> (messages, bytes), application traffic only.
    pub tags: Mutex<HashMap<u64, (u64, u64)>>,
}

impl Shared {
    pub fn new(size: usize, senders: Vec<Vec<Sender<Packet>>>) -> Self {
        Shared {
            size,
            senders,
            bytes: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            msgs: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            tags: Mutex::new(HashMap::new()),
        }
    }

    /// Per-tag totals sorted by bytes (descending), ties by tag.
    pub fn tag_traffic(&self) -> Vec<TagTraffic> {
        let map = self.tags.lock().unwrap();
        let mut v: Vec<TagTraffic> = map
            .iter()
            .map(|(&tag, &(messages, bytes))| TagTraffic {
                tag,
                messages,
                bytes,
            })
            .collect();
        v.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.tag.cmp(&b.tag)));
        v
    }
}

/// The original in-process substrate: one rank's seat on the shared
/// channel matrix.
pub(crate) struct LocalTransport {
    pub rank: usize,
    pub shared: Arc<Shared>,
    pub receivers: Vec<Receiver<Packet>>,
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        self.shared.senders[self.rank][to]
            .send(pkt)
            .map_err(|_| CommError::PeerClosed { peer: to })
    }

    fn recv_timeout(&mut self, from: usize, timeout: Duration) -> Result<Packet, RecvError> {
        match self.receivers[from].recv_timeout(timeout) {
            Ok(pkt) => Ok(pkt),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn try_recv(&mut self, from: usize) -> Option<Packet> {
        self.receivers[from].try_recv().ok()
    }

    fn count(&self, to: usize, tag: u64, nbytes: u64) {
        let idx = self.rank * self.shared.size + to;
        self.shared.bytes[idx].fetch_add(nbytes, Ordering::Relaxed);
        self.shared.msgs[idx].fetch_add(1, Ordering::Relaxed);
        let mut tags = self.shared.tags.lock().unwrap();
        let e = tags.entry(tag).or_insert((0, 0));
        e.0 += 1;
        e.1 += nbytes;
    }
}

/// The inert transport left in a [`Comm`](crate::Comm) husk after
/// [`surrender`](crate::Comm::surrender); every operation is unreachable
/// because the husk fails its liveness check first.
pub(crate) struct HuskTransport {
    pub rank: usize,
    pub size: usize,
}

impl Transport for HuskTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, _pkt: Packet) -> Result<(), CommError> {
        Err(CommError::PeerClosed { peer: to })
    }

    fn recv_timeout(&mut self, _from: usize, _timeout: Duration) -> Result<Packet, RecvError> {
        Err(RecvError::Closed)
    }

    fn try_recv(&mut self, _from: usize) -> Option<Packet> {
        None
    }

    fn count(&self, _to: usize, _tag: u64, _nbytes: u64) {}
}
