//! # nanompi
//!
//! An in-process message-passing substrate standing in for the MPI layer
//! VPIC used on Roadrunner. Ranks are OS threads; point-to-point messages
//! travel over per-pair channels with MPI-like (source, tag) matching;
//! collectives (barrier, allgather, allreduce) run over a shared board.
//!
//! Every byte sent is counted per rank pair, so the distributed PIC's real
//! communication volume can be measured and fed to the Roadrunner
//! performance model (`roadrunner-model`), mirroring how the paper's
//! authors validated their analytic model against measured traffic.
//!
//! ```
//! let (results, traffic) = nanompi::run(4, |comm| {
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 7, comm.rank() as u64);
//!     let from_left: u64 = comm.recv(left, 7);
//!     comm.allreduce_sum(from_left as f64)
//! });
//! assert!(results.iter().all(|&r| r == 6.0)); // 0+1+2+3
//! assert_eq!(traffic.total_messages, 4);
//! ```

mod cart;
pub mod comm;

pub use cart::CartTopology;
pub use comm::{run, Comm, TrafficReport};
