//! # nanompi
//!
//! An in-process message-passing substrate standing in for the MPI layer
//! VPIC used on Roadrunner. Ranks are OS threads; point-to-point messages
//! travel over per-pair channels with MPI-like (source, tag) matching;
//! collectives (barrier, allgather, allreduce) run over the same channels.
//!
//! Every application byte sent is counted per rank pair, so the distributed
//! PIC's real communication volume can be measured and fed to the Roadrunner
//! performance model (`roadrunner-model`), mirroring how the paper's
//! authors validated their analytic model against measured traffic.
//!
//! The substrate is fault-aware: operations return [`CommError`] instead of
//! hanging or panicking when a peer dies, a [`FaultPlan`] can inject
//! deterministic message faults and rank kills for resilience testing, and
//! [`Comm::recover`] rendezvouses the world onto a fresh epoch so a
//! campaign can roll back to a checkpoint and resume.
//!
//! ```
//! let (results, traffic) = nanompi::run_expect(4, |comm| {
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 7, comm.rank() as u64).unwrap();
//!     let from_left: u64 = comm.recv(left, 7).unwrap();
//!     comm.allreduce_sum(from_left as f64).unwrap()
//! });
//! assert!(results.iter().all(|&r| r == 6.0)); // 0+1+2+3
//! assert_eq!(traffic.total_messages, 4);
//! ```

mod cart;
pub mod comm;
pub mod fault;
pub mod socket;
pub mod transport;
pub mod wire;

pub use cart::CartTopology;
pub use comm::{
    run, run_expect, run_with_faults, Comm, CommError, Endpoint, RankPanic, TrafficReport,
    DEFAULT_OP_TIMEOUT,
};
pub use fault::{FaultKind, FaultPlan, FaultRule, PartitionRule, Trigger};
pub use socket::{
    run_socket, run_socket_world, BootstrapError, SocketAddrSpec, SocketBoot, WIRE_VERSION,
};
pub use transport::{TagTraffic, TransportKind};
pub use wire::{Wire, WireReader};
