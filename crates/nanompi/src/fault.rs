//! Deterministic fault injection for the message-passing substrate.
//!
//! Roadrunner-scale campaigns only completed because VPIC could survive the
//! machine's mean time between interrupts; to *test* that survival in-process
//! a run can be handed a [`FaultPlan`]: a seed-driven, reproducible schedule
//! of message faults (drop / delay / duplicate / corrupt) and rank kills.
//!
//! Semantics:
//!
//! * Message faults apply on the **sending** rank, to application traffic
//!   only — never to the recovery rendezvous protocol (real resilience
//!   layers harden their control channel the same way).
//! * [`Trigger::AtStep`] and [`Trigger::OnMessage`] rules are **one-shot**:
//!   they fire for a single message (or a single kill) and are then spent,
//!   so a rolled-back-and-replayed campaign does not re-injure itself on
//!   the same deterministic trigger.
//! * [`Trigger::WithProbability`] rules draw from a splitmix64 stream seeded
//!   from `(plan.seed, rank)` and keep firing for the whole run; the stream
//!   is *not* rewound by rollback, so replays see fresh (but reproducible
//!   given the whole history) draws.
//! * A kill takes effect at the victim's next [`Comm::tick`](crate::Comm::tick):
//!   step-triggered kills fire at the first tick with `step >= n`, and
//!   count-triggered ([`Trigger::OnMessage`]) kills arm on the matching send
//!   (the message itself is still delivered) and land at the following tick.
//!   From then on every communication call on that rank returns
//!   [`CommError::Killed`](crate::CommError::Killed) until the rank is
//!   revived by [`Comm::recover`](crate::Comm::recover) or replaced by a
//!   hot spare adopting its endpoint.

use std::sync::Arc;
use std::time::Duration;

/// What to do to a message (or rank) when a rule fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Silently discard the message (the receiver times out).
    Drop,
    /// Deliver the message after sleeping this long.
    Delay(Duration),
    /// Deliver the message twice.
    Duplicate,
    /// Deliver the message flagged corrupt; the receiver's integrity check
    /// rejects it with [`CommError::Corrupt`](crate::CommError::Corrupt).
    Corrupt,
    /// Kill the rank (takes effect at `tick`, not per message).
    Kill,
}

/// When a rule fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// First opportunity at or after campaign step `n` (one-shot).
    AtStep(u64),
    /// The `n`-th message sent by the rank, counting from 1 (one-shot).
    OnMessage(u64),
    /// Every message independently with probability `p` (never spent).
    WithProbability(f64),
}

/// One fault rule: `kind` happens on `rank` when `trigger` fires.
#[derive(Clone, Debug)]
pub struct FaultRule {
    pub rank: usize,
    pub kind: FaultKind,
    pub trigger: Trigger,
}

/// A frame-level network partition: every message between ranks `a` and
/// `b` (both directions) is silently dropped for steps in
/// `[from_step, until_step)`. Receivers see timeouts; the link heals when
/// the window ends. Not one-shot — the cut holds for the whole window,
/// including across rollback replays of those steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionRule {
    pub a: usize,
    pub b: usize,
    pub from_step: u64,
    pub until_step: u64,
}

/// A reproducible schedule of injected faults for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
    pub partitions: Vec<PartitionRule>,
}

impl FaultPlan {
    /// Empty plan with the given probability-stream seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Kill `rank` at its first `tick` with step `>= step`.
    pub fn kill(self, rank: usize, step: u64) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Kill,
            trigger: Trigger::AtStep(step),
        })
    }

    /// Drop the `nth` message (1-based) sent by `rank`.
    pub fn drop_message(self, rank: usize, nth: u64) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Drop,
            trigger: Trigger::OnMessage(nth),
        })
    }

    /// Drop each message sent by `rank` with probability `p`.
    pub fn drop_messages(self, rank: usize, p: f64) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Drop,
            trigger: Trigger::WithProbability(p),
        })
    }

    /// Corrupt the `nth` message (1-based) sent by `rank`.
    pub fn corrupt_message(self, rank: usize, nth: u64) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Corrupt,
            trigger: Trigger::OnMessage(nth),
        })
    }

    /// Deliver the `nth` message (1-based) sent by `rank` twice.
    pub fn duplicate_message(self, rank: usize, nth: u64) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Duplicate,
            trigger: Trigger::OnMessage(nth),
        })
    }

    /// Cut the link between ranks `a` and `b` (both directions) for steps
    /// in `[from_step, until_step)`.
    pub fn partition(mut self, a: usize, b: usize, from_step: u64, until_step: u64) -> Self {
        self.partitions.push(PartitionRule {
            a,
            b,
            from_step,
            until_step,
        });
        self
    }

    /// Delay each message sent by `rank` with probability `p` by `by`.
    pub fn delay_messages(self, rank: usize, p: f64, by: Duration) -> Self {
        self.rule(FaultRule {
            rank,
            kind: FaultKind::Delay(by),
            trigger: Trigger::WithProbability(p),
        })
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-rank live fault-injection state (plan + probability stream + spent
/// flags + message/step counters).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: Option<Arc<FaultPlan>>,
    rank: usize,
    rng: u64,
    msg_seq: u64,
    step: u64,
    spent: Vec<bool>,
    /// Armed by a count-triggered kill rule on the send path; consumed by
    /// the next `kill_due` (ticks live on the step path, where the message
    /// counter is not advanced).
    pending_kill: bool,
}

impl FaultState {
    pub(crate) fn new(plan: Option<Arc<FaultPlan>>, rank: usize) -> Self {
        let (rng, n_rules) = match &plan {
            Some(p) => (
                p.seed ^ (0xD6E8_FEB8_6659_FD93u64.wrapping_mul(rank as u64 + 1)),
                p.rules.len(),
            ),
            None => (0, 0),
        };
        FaultState {
            plan,
            rank,
            rng,
            msg_seq: 0,
            step: 0,
            spent: vec![false; n_rules],
            pending_kill: false,
        }
    }

    pub(crate) fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Does a (not yet spent) kill rule fire for this rank at `step`?
    pub(crate) fn kill_due(&mut self, step: u64) -> bool {
        self.step = step;
        if self.pending_kill {
            self.pending_kill = false;
            return true;
        }
        let Some(plan) = self.plan.clone() else {
            return false;
        };
        for (i, rule) in plan.rules.iter().enumerate() {
            if self.spent[i] || rule.rank != self.rank || rule.kind != FaultKind::Kill {
                continue;
            }
            let due = match rule.trigger {
                Trigger::AtStep(n) => step >= n,
                // Count-based kills arm in `on_send`, where the message
                // counter lives; nothing to check on the step path.
                Trigger::OnMessage(_) => false,
                Trigger::WithProbability(p) => self.draw() < p,
            };
            if due {
                self.spent[i] = true;
                return true;
            }
        }
        false
    }

    /// Decide the fate of the next outgoing application message. Returns
    /// the first matching fault, if any. Count-triggered kill rules arm
    /// here (the message is still delivered) and fire at the next tick.
    pub(crate) fn on_send(&mut self) -> Option<FaultKind> {
        self.msg_seq += 1;
        let plan = self.plan.clone()?;
        for (i, rule) in plan.rules.iter().enumerate() {
            if self.spent[i] || rule.rank != self.rank {
                continue;
            }
            if rule.kind == FaultKind::Kill {
                if let Trigger::OnMessage(n) = rule.trigger {
                    if self.msg_seq == n {
                        self.spent[i] = true;
                        self.pending_kill = true;
                    }
                }
                continue;
            }
            let (fires, one_shot) = match rule.trigger {
                Trigger::OnMessage(n) => (self.msg_seq == n, true),
                Trigger::AtStep(n) => (self.step >= n, true),
                Trigger::WithProbability(p) => (self.draw() < p, false),
            };
            if fires {
                if one_shot {
                    self.spent[i] = true;
                }
                return Some(rule.kind.clone());
            }
        }
        None
    }

    /// Is the link from this rank to `to` cut by a partition window at the
    /// current step? (Symmetric: the rule matches either orientation.)
    pub(crate) fn partitioned(&self, to: usize) -> bool {
        let Some(plan) = &self.plan else {
            return false;
        };
        plan.partitions.iter().any(|p| {
            ((p.a == self.rank && p.b == to) || (p.b == self.rank && p.a == to))
                && self.step >= p.from_step
                && self.step < p.until_step
        })
    }

    fn draw(&mut self) -> f64 {
        (splitmix64(&mut self.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_rules_fire_exactly_once() {
        let plan = Arc::new(FaultPlan::new(1).drop_message(0, 2).kill(0, 5));
        let mut st = FaultState::new(Some(plan), 0);
        assert_eq!(st.on_send(), None); // message 1
        assert_eq!(st.on_send(), Some(FaultKind::Drop)); // message 2
        assert_eq!(st.on_send(), None); // message 3: spent
        assert!(!st.kill_due(4));
        assert!(st.kill_due(6)); // >= 5
        assert!(!st.kill_due(7)); // spent
    }

    #[test]
    fn rules_only_apply_to_their_rank() {
        let plan = Arc::new(FaultPlan::new(1).drop_message(3, 1).kill(2, 0));
        let mut st = FaultState::new(Some(plan), 0);
        assert_eq!(st.on_send(), None);
        assert!(!st.kill_due(10));
    }

    #[test]
    fn every_message_fault_kind_fires_on_its_numbered_message() {
        // Round trip each message-fault kind through the send path: the
        // rule must fire on exactly the (1-based) message its trigger
        // names — not one early, not one late — and exactly once.
        let kinds = [
            FaultKind::Drop,
            FaultKind::Corrupt,
            FaultKind::Duplicate,
            FaultKind::Delay(Duration::from_millis(1)),
        ];
        for kind in kinds {
            let plan = FaultPlan::new(1).rule(FaultRule {
                rank: 0,
                kind: kind.clone(),
                trigger: Trigger::OnMessage(3),
            });
            let mut st = FaultState::new(Some(Arc::new(plan)), 0);
            assert_eq!(st.on_send(), None, "{kind:?} fired on message 1");
            assert_eq!(st.on_send(), None, "{kind:?} fired on message 2");
            assert_eq!(
                st.on_send(),
                Some(kind.clone()),
                "{kind:?} missed message 3"
            );
            assert_eq!(st.on_send(), None, "{kind:?} fired twice");
        }
    }

    #[test]
    fn on_message_trigger_is_one_based() {
        let plan = Arc::new(FaultPlan::new(1).drop_message(0, 1));
        let mut st = FaultState::new(Some(plan), 0);
        assert_eq!(
            st.on_send(),
            Some(FaultKind::Drop),
            "nth=1 is the first message"
        );
        assert_eq!(st.on_send(), None);
    }

    #[test]
    fn count_triggered_kill_arms_on_send_and_fires_at_next_tick() {
        let plan = Arc::new(FaultPlan::new(1).rule(FaultRule {
            rank: 0,
            kind: FaultKind::Kill,
            trigger: Trigger::OnMessage(2),
        }));
        let mut st = FaultState::new(Some(plan), 0);
        assert!(!st.kill_due(0));
        assert_eq!(st.on_send(), None); // message 1
        assert!(!st.kill_due(0));
        assert_eq!(st.on_send(), None); // message 2: arms, still delivered
        assert!(st.kill_due(1), "armed kill did not land at the next tick");
        assert!(!st.kill_due(2), "one-shot kill fired twice");
    }

    #[test]
    fn partition_window_is_symmetric_and_heals() {
        let plan = Arc::new(FaultPlan::new(1).partition(0, 2, 3, 6));
        for rank in [0usize, 2] {
            let other = 2 - rank;
            let mut st = FaultState::new(Some(Arc::clone(&plan)), rank);
            st.set_step(2);
            assert!(!st.partitioned(other), "cut before the window opened");
            st.set_step(3);
            assert!(st.partitioned(other), "window start is inclusive");
            assert!(!st.partitioned(1), "unrelated link cut");
            st.set_step(5);
            assert!(st.partitioned(other));
            st.set_step(6);
            assert!(!st.partitioned(other), "window end is exclusive");
        }
        // A rank outside the pair is never cut.
        let mut st = FaultState::new(Some(plan), 1);
        st.set_step(4);
        assert!(!st.partitioned(0) && !st.partitioned(2));
    }

    #[test]
    fn probability_stream_is_deterministic_per_rank() {
        let plan = Arc::new(FaultPlan::new(99).drop_messages(1, 0.5));
        let fates = |rank| {
            let mut st = FaultState::new(Some(Arc::clone(&plan)), rank);
            (0..32).map(|_| st.on_send().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(fates(1), fates(1));
        // Rank 0 has no matching rule: never fires.
        assert!(fates(0).iter().all(|f| !f));
        // Roughly half of rank 1's messages are dropped.
        let hits = fates(1).iter().filter(|f| **f).count();
        assert!((8..=24).contains(&hits), "{hits} of 32");
    }
}
