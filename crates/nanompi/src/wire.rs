//! Byte-level serialization for the typed message surface.
//!
//! The in-process transport moves payloads as boxed values and never needs
//! bytes; the socket transport needs every payload flattened into a frame.
//! [`Wire`] is that contract: a bit-exact, little-endian encoding for every
//! type the application sends. Floats round-trip through `to_bits`, so a
//! distributed run over sockets lands on the same bits as the in-process
//! run — the whole bitwise-determinism story depends on this.
//!
//! Also home to the vendored integrity/jitter primitives the socket layer
//! reuses (nanompi deliberately has zero dependencies): the same CRC-32
//! polynomial as `vpic_core::journal`'s WAL framing and the same splitmix64
//! jitter discipline as `vpic_core::queue`'s retry backoff.

use std::time::Duration;

/// A type that can cross a byte-oriented transport bit-exactly.
///
/// `wire_get` must accept exactly what `wire_put` produced; a decode
/// returning `None` marks the payload as not being this type (the socket
/// analog of a failed downcast).
pub trait Wire: Clone + Send + Sized + 'static {
    fn wire_put(&self, out: &mut Vec<u8>);
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self>;
}

/// Cursor over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Consume and return everything not yet read.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skip `n` bytes, returning the reader for chaining.
    pub fn skip(&mut self, n: usize) -> Option<&mut Self> {
        self.take(n)?;
        Some(self)
    }

    /// True when every byte has been consumed (a decode that leaves
    /// trailing bytes did not match the sent type).
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

macro_rules! wire_le {
    ($($t:ty => $read:ident),* $(,)?) => {$(
        impl Wire for $t {
            fn wire_put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
                r.take(std::mem::size_of::<$t>())
                    .map(|b| <$t>::from_le_bytes(b.try_into().unwrap()))
            }
        }
    )*};
}

wire_le!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, i32 => i32, i64 => i64);

// usize travels as u64 so 32- and 64-bit builds interoperate.
impl Wire for usize {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        usize::try_from(r.u64()?).ok()
    }
}

// Floats are bit-patterns on the wire: NaN payloads, signed zeros and
// denormals all round-trip exactly.
impl Wire for f32 {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        r.u32().map(f32::from_bits)
    }
}

impl Wire for f64 {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        r.u64().map(f64::from_bits)
    }
}

impl Wire for bool {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for String {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        let len = usize::try_from(r.u64()?).ok()?;
        String::from_utf8(r.take(len)?.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.wire_put(out);
        }
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        let len = usize::try_from(r.u64()?).ok()?;
        // Guard against a hostile length prefix: each element needs at
        // least one byte on the wire.
        if len > r.buf.len().saturating_sub(r.pos) {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::wire_get(r)?);
        }
        Some(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_put(out);
            }
        }
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(None),
            1 => Some(Some(T::wire_get(r)?)),
            _ => None,
        }
    }
}

macro_rules! wire_tuple {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn wire_put(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.wire_put(out);)+
            }
            fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
                Some(($($name::wire_get(r)?,)+))
            }
        }
    };
}

wire_tuple!(A);
wire_tuple!(A, B);
wire_tuple!(A, B, C);
wire_tuple!(A, B, C, D);

/// A same-binary type tag carried next to byte payloads so a mistyped
/// receive fails with `TypeMismatch` instead of mis-decoding. Hashed from
/// `type_name`, which is only stable within one binary — the bootstrap
/// handshake's version check guarantees both ends run the same build.
pub fn type_fp<T: 'static>() -> u64 {
    fnv1a64(std::any::type_name::<T>().as_bytes())
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE, reflected — the `crc32fast`-compatible polynomial the
/// checkpoint/journal framing uses) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with seeded jitter, the same discipline as the
/// sweep queue's `RetryPolicy::backoff_ms`: `base·2^attempt` capped at
/// `max`, plus up to 50% deterministic jitter keyed on `(seed, attempt)`.
pub(crate) fn backoff(attempt: u32, base: Duration, max: Duration, seed: u64) -> Duration {
    let exp = base
        .saturating_mul(1u32 << attempt.min(10))
        .min(max)
        .max(Duration::from_millis(1));
    let mut s = seed ^ ((attempt as u64) << 32);
    let jitter_frac = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    exp + exp.mul_f64(0.5 * jitter_frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.wire_put(&mut buf);
        let mut r = WireReader::new(&buf);
        let got = T::wire_get(&mut r).expect("decode");
        assert!(r.done(), "trailing bytes after {v:?}");
        assert_eq!(got, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-1i64);
        round_trip(true);
        round_trip("héllo wörld".to_string());
        round_trip((1u64, 2u64, 3u64));
        round_trip(Some(vec![1.0f64, -0.0]));
        round_trip::<Option<u8>>(None);
        round_trip(vec![vec![1u32], vec![], vec![2, 3]]);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [0u32, 1, 0x7fc0_0001, 0x7f80_0000, 0x8000_0000, u32::MAX] {
            let v = f32::from_bits(bits);
            let mut buf = Vec::new();
            v.wire_put(&mut buf);
            let got = f32::wire_get(&mut WireReader::new(&buf)).unwrap();
            assert_eq!(got.to_bits(), bits);
        }
        for bits in [0u64, 1, 0x7ff8_dead_beef_0001, u64::MAX] {
            let v = f64::from_bits(bits);
            let mut buf = Vec::new();
            v.wire_put(&mut buf);
            let got = f64::wire_get(&mut WireReader::new(&buf)).unwrap();
            assert_eq!(got.to_bits(), bits);
        }
    }

    #[test]
    fn truncated_payload_decodes_to_none() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].wire_put(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                Vec::<u64>::wire_get(&mut WireReader::new(&buf[..cut])),
                None,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Vec::<u8>::wire_get(&mut WireReader::new(&buf)), None);
    }

    #[test]
    fn type_fps_differ() {
        assert_ne!(type_fp::<u64>(), type_fp::<f64>());
        assert_ne!(type_fp::<Vec<u32>>(), type_fp::<Vec<f32>>());
        assert_eq!(type_fp::<Vec<f32>>(), type_fp::<Vec<f32>>());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(500);
        let d0 = backoff(0, base, max, 7);
        let d3 = backoff(3, base, max, 7);
        let d9 = backoff(9, base, max, 7);
        assert!(d0 >= base && d0 <= base * 2);
        assert!(d3 >= base * 8 && d3 <= base * 12);
        assert!(d9 <= max * 3 / 2);
        // Deterministic for a given (seed, attempt).
        assert_eq!(backoff(3, base, max, 7), d3);
        assert_ne!(backoff(3, base, max, 8), backoff(3, base, max, 9));
    }
}
