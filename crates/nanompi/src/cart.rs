//! 3D Cartesian rank topology (MPI_Cart_create equivalent) used by the
//! domain-decomposed PIC to find face neighbors.

/// A `px × py × pz` brick of ranks, optionally periodic per axis.
/// Rank order is x-fastest: `rank = cx + px·(cy + py·cz)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CartTopology {
    pub dims: [usize; 3],
    pub periodic: [bool; 3],
}

impl CartTopology {
    /// Build a topology; panics unless every dim is ≥ 1.
    pub fn new(dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "dims must be >= 1");
        CartTopology { dims, periodic }
    }

    /// Pick a near-cubic factorization of `n` ranks (greedy largest-factor
    /// assignment, like `MPI_Dims_create`), biased toward splitting x first
    /// so quasi-1D domains decompose along their long axis.
    pub fn balanced(n: usize, periodic: [bool; 3]) -> Self {
        assert!(n >= 1);
        let mut dims = [1usize; 3];
        let mut rem = n;
        let mut f = 2;
        let mut factors = Vec::new();
        while f * f <= rem {
            while rem.is_multiple_of(f) {
                factors.push(f);
                rem /= f;
            }
            f += 1;
        }
        if rem > 1 {
            factors.push(rem);
        }
        // Assign largest factors to the currently smallest dim (ties → x).
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let axis = (0..3).min_by_key(|&a| (dims[a], a)).unwrap();
            dims[axis] *= f;
        }
        CartTopology::new(dims, periodic)
    }

    /// Total ranks.
    pub fn n_ranks(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.n_ranks());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank at `coords`.
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        for (a, &c) in coords.iter().enumerate() {
            assert!(c < self.dims[a]);
        }
        coords[0] + self.dims[0] * (coords[1] + self.dims[1] * coords[2])
    }

    /// Face neighbor of `rank` along `axis` in direction `dir` (−1 or +1);
    /// `None` at a non-periodic edge.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> Option<usize> {
        assert!(axis < 3 && (dir == 1 || dir == -1));
        let mut c = self.coords_of(rank);
        let d = self.dims[axis] as i64;
        let mut x = c[axis] as i64 + dir as i64;
        if x < 0 || x >= d {
            if !self.periodic[axis] {
                return None;
            }
            x = (x + d) % d;
        }
        c[axis] = x as usize;
        Some(self.rank_of(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = CartTopology::new([3, 2, 4], [true, true, true]);
        for r in 0..t.n_ranks() {
            assert_eq!(t.rank_of(t.coords_of(r)), r);
        }
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let t = CartTopology::new([3, 1, 1], [true, false, false]);
        assert_eq!(t.neighbor(0, 0, -1), Some(2));
        assert_eq!(t.neighbor(2, 0, 1), Some(0));
        assert_eq!(t.neighbor(0, 1, -1), None);
        assert_eq!(t.neighbor(0, 2, 1), None);
    }

    #[test]
    fn interior_neighbors() {
        let t = CartTopology::new([2, 2, 2], [false, false, false]);
        let r = t.rank_of([0, 0, 0]);
        assert_eq!(t.neighbor(r, 0, 1), Some(t.rank_of([1, 0, 0])));
        assert_eq!(t.neighbor(r, 1, 1), Some(t.rank_of([0, 1, 0])));
        assert_eq!(t.neighbor(r, 2, 1), Some(t.rank_of([0, 0, 1])));
        assert_eq!(t.neighbor(r, 0, -1), None);
    }

    #[test]
    fn balanced_factorizations() {
        assert_eq!(CartTopology::balanced(1, [true; 3]).dims, [1, 1, 1]);
        assert_eq!(CartTopology::balanced(8, [true; 3]).n_ranks(), 8);
        let t = CartTopology::balanced(8, [true; 3]);
        assert_eq!(t.dims, [2, 2, 2]);
        let t = CartTopology::balanced(12, [true; 3]);
        assert_eq!(t.n_ranks(), 12);
        assert!(t.dims.iter().all(|&d| d <= 4));
        let t = CartTopology::balanced(7, [true; 3]);
        assert_eq!(t.dims, [7, 1, 1]);
        // Prefers x for single splits.
        assert_eq!(CartTopology::balanced(2, [true; 3]).dims, [2, 1, 1]);
    }
}
