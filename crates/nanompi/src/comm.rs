//! Point-to-point messaging, collectives and traffic instrumentation.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

type Packet = (u64, usize, Box<dyn Any + Send>); // (tag, nbytes, payload)

struct Shared {
    size: usize,
    /// Channel matrix: `tx[from][to]` / `rx[to][from]` (receivers are taken
    /// by their owning rank at startup).
    senders: Vec<Vec<Sender<Packet>>>,
    barrier: Barrier,
    /// Collective board: one slot per rank.
    board: Vec<Mutex<Option<Box<dyn Any + Send + Sync>>>>,
    /// bytes[from * size + to]
    bytes: Vec<AtomicU64>,
    msgs: Vec<AtomicU64>,
}

/// Per-rank communicator handle. Dropping it mid-collective deadlocks the
/// world, exactly like real MPI.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    receivers: Vec<Receiver<Packet>>,
    /// Out-of-order messages held per source until their tag is asked for.
    pending: Vec<Vec<Packet>>,
}

/// Aggregate communication statistics for one `run`.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    pub n_ranks: usize,
    pub total_bytes: u64,
    pub total_messages: u64,
    /// `bytes[from][to]`.
    pub bytes: Vec<Vec<u64>>,
    /// `messages[from][to]`.
    pub messages: Vec<Vec<u64>>,
}

impl TrafficReport {
    /// Bytes sent by the busiest rank (max over senders).
    pub fn max_rank_bytes(&self) -> u64 {
        self.bytes.iter().map(|row| row.iter().sum::<u64>()).max().unwrap_or(0)
    }

    /// Average bytes per rank per message-bearing neighbor pair.
    pub fn mean_bytes_per_rank(&self) -> f64 {
        if self.n_ranks == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.n_ranks as f64
        }
    }
}

/// Spawn `n` ranks, run `f` on each, and return the per-rank results plus
/// the traffic report. Panics in any rank propagate.
pub fn run<R, F>(n: usize, f: F) -> (Vec<R>, TrafficReport)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    assert!(n >= 1, "need at least one rank");
    let mut senders: Vec<Vec<Sender<Packet>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut receivers: Vec<Vec<Receiver<Packet>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    for to in 0..n {
        for from in 0..n {
            let (tx, rx) = unbounded();
            // senders[from][to]; build column-wise then fix up below.
            receivers[to].push(rx);
            senders[from].push(tx);
        }
    }
    // senders[from] currently holds entries pushed in `to`-major order,
    // but the nested loop above pushes for each `to`, once per `from` —
    // i.e. senders[from] gets its `to`-th element in outer-loop order, so
    // senders[from][to] is already correct.
    let shared = Arc::new(Shared {
        size: n,
        senders,
        barrier: Barrier::new(n),
        board: (0..n).map(|_| Mutex::new(None)).collect(),
        bytes: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        msgs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
    });

    let mut receiver_slots: Vec<Option<Vec<Receiver<Packet>>>> =
        receivers.into_iter().map(Some).collect();

    let results: Vec<R> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let shared = Arc::clone(&shared);
            let rx = receiver_slots[rank].take().expect("receiver set");
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut comm = Comm {
                    rank,
                    shared,
                    receivers: rx,
                    pending: (0..n).map(|_| Vec::new()).collect(),
                };
                f(&mut comm)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    });

    let n2 = |v: &Vec<AtomicU64>| -> Vec<Vec<u64>> {
        (0..n).map(|from| (0..n).map(|to| v[from * n + to].load(Ordering::Relaxed)).collect()).collect()
    };
    let bytes = n2(&shared.bytes);
    let messages = n2(&shared.msgs);
    let report = TrafficReport {
        n_ranks: n,
        total_bytes: bytes.iter().flatten().sum(),
        total_messages: messages.iter().flatten().sum(),
        bytes,
        messages,
    };
    (results, report)
}

impl Comm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Send `msg` to rank `to` with `tag`. Counts `size_of::<T>()` bytes;
    /// use [`Comm::send_vec`] for containers so the payload is counted.
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, msg: T) {
        self.send_counted(to, tag, std::mem::size_of::<T>(), Box::new(msg));
    }

    /// Send a `Vec<T>`, counting `len·size_of::<T>()` payload bytes.
    pub fn send_vec<T: Send + 'static>(&self, to: usize, tag: u64, msg: Vec<T>) {
        let nbytes = msg.len() * std::mem::size_of::<T>();
        self.send_counted(to, tag, nbytes, Box::new(msg));
    }

    fn send_counted(&self, to: usize, tag: u64, nbytes: usize, payload: Box<dyn Any + Send>) {
        assert!(to < self.size(), "rank {to} out of range");
        let idx = self.rank * self.size() + to;
        self.shared.bytes[idx].fetch_add(nbytes as u64, Ordering::Relaxed);
        self.shared.msgs[idx].fetch_add(1, Ordering::Relaxed);
        self.shared.senders[self.rank][to]
            .send((tag, nbytes, payload))
            .expect("receiver rank exited early");
    }

    /// Blocking receive of a `T` sent from `from` with `tag`. Messages from
    /// the same source with other tags are buffered, preserving per-tag
    /// FIFO order. Panics if the payload type does not match.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        assert!(from < self.size(), "rank {from} out of range");
        // Check buffered messages first.
        if let Some(pos) = self.pending[from].iter().position(|(t, _, _)| *t == tag) {
            let (_, _, payload) = self.pending[from].remove(pos);
            return *payload.downcast::<T>().expect("message type mismatch");
        }
        loop {
            let pkt = self.receivers[from].recv().expect("sender rank exited early");
            if pkt.0 == tag {
                return *pkt.2.downcast::<T>().expect("message type mismatch");
            }
            self.pending[from].push(pkt);
        }
    }

    /// Non-blocking receive; returns `None` when no matching message has
    /// arrived yet.
    pub fn try_recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Option<T> {
        if let Some(pos) = self.pending[from].iter().position(|(t, _, _)| *t == tag) {
            let (_, _, payload) = self.pending[from].remove(pos);
            return Some(*payload.downcast::<T>().expect("message type mismatch"));
        }
        while let Ok(pkt) = self.receivers[from].try_recv() {
            if pkt.0 == tag {
                return Some(*pkt.2.downcast::<T>().expect("message type mismatch"));
            }
            self.pending[from].push(pkt);
        }
        None
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Gather one value from every rank (returned in rank order).
    pub fn allgather<T: Clone + Send + Sync + 'static>(&self, v: T) -> Vec<T> {
        *self.shared.board[self.rank].lock() = Some(Box::new(v));
        self.barrier();
        let out: Vec<T> = (0..self.size())
            .map(|r| {
                let guard = self.shared.board[r].lock();
                guard
                    .as_ref()
                    .expect("board slot missing")
                    .downcast_ref::<T>()
                    .expect("allgather type mismatch")
                    .clone()
            })
            .collect();
        self.barrier();
        *self.shared.board[self.rank].lock() = None;
        out
    }

    /// Sum an `f64` across all ranks.
    pub fn allreduce_sum(&self, v: f64) -> f64 {
        self.allgather(v).into_iter().sum()
    }

    /// Element-wise sum of `f64` vectors across all ranks (all must have
    /// the same length).
    pub fn allreduce_sum_vec(&self, v: Vec<f64>) -> Vec<f64> {
        let len = v.len();
        let all = self.allgather(v);
        let mut out = vec![0.0f64; len];
        for contrib in &all {
            assert_eq!(contrib.len(), len, "allreduce length mismatch");
            for (o, c) in out.iter_mut().zip(contrib) {
                *o += c;
            }
        }
        out
    }

    /// Max of an `f64` across all ranks.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.allgather(v).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum a `u64` across all ranks.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allgather(v).into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let (results, traffic) = run(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, c.rank());
            let got: usize = c.recv(left, 1);
            got
        });
        for (rank, got) in results.iter().enumerate() {
            assert_eq!(*got, (rank + 4) % 5);
        }
        assert_eq!(traffic.total_messages, 5);
        assert_eq!(traffic.total_bytes, 5 * 8);
        assert_eq!(traffic.bytes[0][1], 8);
        assert_eq!(traffic.bytes[0][2], 0);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, "first".to_string());
                c.send(1, 20, "second".to_string());
                0
            } else {
                // Ask for tag 20 before tag 10.
                let b: String = c.recv(0, 20);
                let a: String = c.recv(0, 10);
                assert_eq!(a, "first");
                assert_eq!(b, "second");
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn vec_payload_counts_bytes() {
        let (_, traffic) = run(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 0, vec![0f32; 100]);
            } else {
                let v: Vec<f32> = c.recv(0, 0);
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(traffic.total_bytes, 400);
        assert_eq!(traffic.max_rank_bytes(), 400);
    }

    #[test]
    fn allgather_and_reductions() {
        let (results, _) = run(4, |c| {
            let gathered = c.allgather(c.rank() as u64 * 10);
            assert_eq!(gathered, vec![0, 10, 20, 30]);
            let s = c.allreduce_sum(c.rank() as f64);
            let m = c.allreduce_max(c.rank() as f64);
            let v = c.allreduce_sum_vec(vec![1.0, c.rank() as f64]);
            let u = c.allreduce_sum_u64(1);
            (s, m, v, u)
        });
        for (s, m, v, u) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 3.0);
            assert_eq!(v, vec![4.0, 6.0]);
            assert_eq!(u, 4);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let (results, _) = run(3, |c| {
            let mut acc = 0.0;
            for round in 0..20 {
                acc += c.allreduce_sum((c.rank() + round) as f64);
            }
            acc
        });
        // Σ_round (0+1+2 + 3·round) = 20·3 + 3·190.
        for r in results {
            assert_eq!(r, 60.0 + 570.0);
        }
    }

    #[test]
    fn try_recv_returns_none_then_some() {
        let (results, _) = run(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                c.send(1, 5, 42u32);
                c.barrier();
                c.barrier();
                true
            } else {
                assert!(c.try_recv::<u32>(0, 5).is_none());
                c.barrier();
                c.barrier(); // message definitely sent now
                let got = c.try_recv::<u32>(0, 5);
                c.barrier();
                got == Some(42)
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn single_rank_world_works() {
        let (results, traffic) = run(1, |c| {
            assert_eq!(c.size(), 1);
            c.barrier();
            c.allreduce_sum(3.0)
        });
        assert_eq!(results, vec![3.0]);
        assert_eq!(traffic.total_bytes, 0);
    }
}
