//! Point-to-point messaging, collectives, traffic instrumentation, and
//! fault-tolerant error handling.
//!
//! Every operation that can be stranded by a dead or misbehaving peer is
//! bounded: receives (and the receive half of every collective) poll with a
//! deadline and return a typed [`CommError`] instead of hanging or aborting
//! the process. Collectives run over the same point-to-point channels as
//! application traffic (their bytes are *not* added to the traffic report,
//! which keeps the report's meaning — application payload volume — identical
//! to the pre-fault-tolerance substrate).
//!
//! Packet movement is delegated to a [`Transport`](crate::transport::Transport):
//! the in-process channel matrix ([`LocalTransport`](crate::transport::LocalTransport),
//! boxed values, ranks are threads) or the multi-process socket substrate
//! ([`SocketTransport`](crate::socket::SocketTransport), CRC-framed byte
//! messages, ranks are processes). Everything in this module — tag
//! matching, dedup, epochs, fault injection, collectives, recovery — is
//! transport-independent, which is what lets a fault plan written for the
//! in-process world run unmodified over sockets.
//!
//! Recovery: packets carry an epoch number. [`Comm::recover`] bumps the
//! epoch, drains stale traffic, revives a killed rank and rendezvouses with
//! every other rank, after which the world can resume from a checkpoint in
//! lockstep. The rendezvous is a max-consensus: ranks (re)announce their
//! target epoch, adopt any higher epoch they hear, and finish when every
//! peer has announced the agreed maximum — so a freshly respawned process
//! (which learns the world's epoch from its bootstrap handshake) and
//! long-running survivors converge on one epoch no matter who noticed the
//! failure first. Recovery-protocol messages bypass fault injection; on
//! transports where a dead peer can respawn, announcements are retried
//! with jittered exponential backoff instead of failing fast.
//!
//! Packets additionally carry a per-`(sender, tag)` sequence number and the
//! receiver suppresses replays, so an injected `Duplicate` fault cannot
//! desync the per-tag FIFO that step-periodic tags (ghost exchange,
//! migration) rely on. [`Comm::surrender`] / [`Comm::adopt`] move a rank's
//! whole endpoint between threads, which is how the campaign runtime's
//! hot-spare recovery replaces a dead rank with a fresh worker thread.

use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::transport::{
    HuskTransport, LocalTransport, Packet, Payload, RecvError, Shared, TagTraffic, Transport,
};
use crate::wire::{self, Wire, WireReader};

/// Default bound on how long a receive (or collective) waits for a peer
/// before declaring it dead. Generous for healthy runs; fault-tolerance
/// tests shrink it with [`Comm::set_op_timeout`].
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Recovery rendezvous waits this many op-timeouts for stragglers (ranks
/// detect a fault at different times, bounded by one op timeout each; a
/// killed *process* additionally needs time to respawn and rejoin).
const RECOVERY_TIMEOUT_FACTOR: u32 = 10;

/// Tag namespace for internally-generated collective traffic.
pub(crate) const COLLECTIVE_TAG: u64 = 1 << 63;

/// Tag of the recovery rendezvous protocol.
pub(crate) const RECOVER_TAG: u64 = u64::MAX;

/// Typed communication failure. Every variant is produced within a bounded
/// time; none of the peer-failure paths panic.
#[derive(Debug)]
pub enum CommError {
    /// No matching message arrived before the deadline (dead or wedged
    /// peer, or a dropped message).
    Timeout {
        from: usize,
        tag: u64,
        waited: Duration,
    },
    /// The peer's communicator was torn down (its rank closure returned or
    /// panicked, its process exited, or its heartbeat went silent).
    PeerClosed { peer: usize },
    /// The message arrived but failed its integrity check.
    Corrupt { from: usize, tag: u64 },
    /// This rank was killed by the fault plan at `step`; all communication
    /// fails until [`Comm::recover`] revives it.
    Killed { rank: usize, step: u64 },
    /// The payload type did not match the receive type.
    TypeMismatch { from: usize, tag: u64 },
    /// The recovery rendezvous itself failed (a rank is permanently gone).
    RecoveryFailed { rank: usize, detail: String },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag, waited } => {
                write!(
                    f,
                    "timed out after {waited:?} waiting for rank {from} (tag {tag:#x})"
                )
            }
            CommError::PeerClosed { peer } => write!(f, "rank {peer} closed its communicator"),
            CommError::Corrupt { from, tag } => {
                write!(f, "corrupt payload from rank {from} (tag {tag:#x})")
            }
            CommError::Killed { rank, step } => {
                write!(f, "rank {rank} killed by fault plan at step {step}")
            }
            CommError::TypeMismatch { from, tag } => {
                write!(f, "payload type mismatch from rank {from} (tag {tag:#x})")
            }
            CommError::RecoveryFailed { rank, detail } => {
                write!(f, "rank {rank} recovery rendezvous failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Per-rank communicator handle.
pub struct Comm {
    transport: Box<dyn Transport>,
    /// Out-of-order messages held per source until their tag is asked for.
    pending: Vec<VecDeque<Packet>>,
    /// Current recovery epoch; packets from older epochs are discarded.
    epoch: u64,
    /// Sequence number for internally-tagged collective operations.
    coll_seq: u64,
    op_timeout: Duration,
    fault: FaultState,
    /// `Some(step)` once the fault plan killed this rank.
    killed: Option<u64>,
    /// Next outgoing sequence number per `(to, tag)` for the current epoch.
    send_seq: HashMap<(usize, u64), u64>,
    /// Newest `(epoch, seq)` accepted per `(from, tag)`; duplicates at or
    /// below it are dropped on receipt.
    recv_seq: HashMap<(usize, u64), (u64, u64)>,
    /// Set once this rank's state moved into an [`Endpoint`]; every
    /// operation on the husk fails until [`Comm::readopt`].
    surrendered: bool,
}

/// A rank's detached communication state: everything a replacement
/// ("hot spare") worker thread needs to take over a dead rank's seat in the
/// world. Produced by [`Comm::surrender`], consumed by [`Comm::adopt`] /
/// [`Comm::readopt`].
///
/// The endpoint carries the rank's transport seat, pending buffers,
/// epoch, collective sequence, dedup state, and the *live* fault-injection
/// state — spent one-shot rules stay spent and the probability stream
/// continues — so the spare is indistinguishable from the original rank to
/// every peer, and the plan cannot re-fire an already-delivered kill on it.
pub struct Endpoint {
    rank: usize,
    transport: Box<dyn Transport>,
    pending: Vec<VecDeque<Packet>>,
    epoch: u64,
    coll_seq: u64,
    op_timeout: Duration,
    fault: FaultState,
    send_seq: HashMap<(usize, u64), u64>,
    recv_seq: HashMap<(usize, u64), (u64, u64)>,
    /// The step the original holder was killed at, if any (informational;
    /// adoption clears the kill).
    killed: Option<u64>,
}

impl Endpoint {
    /// The rank this endpoint speaks for.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("epoch", &self.epoch)
            .field("killed", &self.killed)
            .finish_non_exhaustive()
    }
}

/// Aggregate communication statistics for one `run`.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    pub n_ranks: usize,
    pub total_bytes: u64,
    pub total_messages: u64,
    /// `bytes[from][to]`.
    pub bytes: Vec<Vec<u64>>,
    /// `messages[from][to]`.
    pub messages: Vec<Vec<u64>>,
    /// Per-tag totals (counted application traffic), sorted by bytes
    /// descending. Attributes transport volume to the tags that caused it.
    pub by_tag: Vec<TagTraffic>,
}

impl TrafficReport {
    /// Bytes sent by the busiest rank (max over senders).
    pub fn max_rank_bytes(&self) -> u64 {
        self.bytes
            .iter()
            .map(|row| row.iter().sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Average bytes per rank per message-bearing neighbor pair.
    pub fn mean_bytes_per_rank(&self) -> f64 {
        if self.n_ranks == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.n_ranks as f64
        }
    }

    /// The `k` heaviest tags by byte volume.
    pub fn top_tags(&self, k: usize) -> &[TagTraffic] {
        &self.by_tag[..self.by_tag.len().min(k)]
    }
}

/// A rank closure that panicked instead of returning.
#[derive(Clone, Debug)]
pub struct RankPanic {
    pub rank: usize,
    pub message: String,
}

impl std::fmt::Display for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankPanic {}

/// Spawn `n` ranks, run `f` on each, and return the per-rank results plus
/// the traffic report. A panicking rank yields `Err(RankPanic)` for its
/// slot instead of aborting the whole run — its peers see bounded
/// [`CommError`]s rather than a deadlock.
pub fn run<R, F>(n: usize, f: F) -> (Vec<Result<R, RankPanic>>, TrafficReport)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_with_faults(n, None, f)
}

/// [`run`], but unwrapping the per-rank results: any rank panic is
/// propagated (resumed) on the caller thread. Convenience for tests,
/// examples and benches where a rank failure should fail the run.
pub fn run_expect<R, F>(n: usize, f: F) -> (Vec<R>, TrafficReport)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let (results, traffic) = run(n, f);
    let results = results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect();
    (results, traffic)
}

/// [`run`] with an optional fault-injection plan threaded through every
/// rank's communicator.
pub fn run_with_faults<R, F>(
    n: usize,
    plan: Option<FaultPlan>,
    f: F,
) -> (Vec<Result<R, RankPanic>>, TrafficReport)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    assert!(n >= 1, "need at least one rank");
    let plan = plan.map(Arc::new);
    let mut senders: Vec<Vec<Sender<Packet>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut receivers: Vec<Vec<Receiver<Packet>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    for to_slot in receivers.iter_mut() {
        for from_slot in senders.iter_mut() {
            let (tx, rx) = channel();
            to_slot.push(rx);
            from_slot.push(tx);
        }
    }
    // senders[from] gets its `to`-th element in outer-loop order, so
    // senders[from][to] is already correct.
    let shared = Arc::new(Shared::new(n, senders));

    let mut receiver_slots: Vec<Option<Vec<Receiver<Packet>>>> =
        receivers.into_iter().map(Some).collect();

    let results: Vec<Result<R, RankPanic>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, slot) in receiver_slots.iter_mut().enumerate() {
            let shared = Arc::clone(&shared);
            let rx = slot.take().expect("receiver set");
            let plan = plan.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let transport = LocalTransport {
                    rank,
                    shared,
                    receivers: rx,
                };
                let mut comm = Comm::from_transport(Box::new(transport), plan);
                f(&mut comm)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| RankPanic {
                    rank,
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    });

    (results, report_from_shared(&shared))
}

pub(crate) fn report_from_shared(shared: &Shared) -> TrafficReport {
    use std::sync::atomic::Ordering;
    let n = shared.size;
    let n2 = |v: &[std::sync::atomic::AtomicU64]| -> Vec<Vec<u64>> {
        (0..n)
            .map(|from| {
                (0..n)
                    .map(|to| v[from * n + to].load(Ordering::Relaxed))
                    .collect()
            })
            .collect()
    };
    let bytes = n2(&shared.bytes);
    let messages = n2(&shared.msgs);
    TrafficReport {
        n_ranks: n,
        total_bytes: bytes.iter().flatten().sum(),
        total_messages: messages.iter().flatten().sum(),
        bytes,
        messages,
        by_tag: shared.tag_traffic(),
    }
}

pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Comm {
    /// Wrap a transport seat in a full communicator (fresh epoch, no
    /// pending traffic). Entry point for every transport backend.
    pub(crate) fn from_transport(
        transport: Box<dyn Transport>,
        plan: Option<Arc<FaultPlan>>,
    ) -> Comm {
        let rank = transport.rank();
        let n = transport.size();
        transport.set_epoch(0);
        Comm {
            transport,
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            epoch: 0,
            coll_seq: 0,
            op_timeout: DEFAULT_OP_TIMEOUT,
            fault: FaultState::new(plan, rank),
            killed: None,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            surrendered: false,
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Bound on how long receives and collectives wait for a peer.
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// Current op timeout.
    pub fn op_timeout(&self) -> Duration {
        self.op_timeout
    }

    /// Current recovery epoch (0 until the first recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the fault-injection clock to campaign step `step` and apply
    /// any due kill rule. Call once per campaign step; a killed rank gets
    /// `Err(Killed)` here (and on every later operation until revived).
    pub fn tick(&mut self, step: u64) -> Result<(), CommError> {
        if self.killed.is_none() && self.fault.kill_due(step) {
            self.killed = Some(step);
        }
        self.fault.set_step(step);
        self.check_alive()
    }

    fn check_alive(&self) -> Result<(), CommError> {
        if self.surrendered {
            return Err(CommError::Killed {
                rank: self.rank(),
                step: self.killed.unwrap_or(u64::MAX),
            });
        }
        match self.killed {
            Some(step) => Err(CommError::Killed {
                rank: self.rank(),
                step,
            }),
            None => Ok(()),
        }
    }

    /// Send `msg` to rank `to` with `tag`. Counts `size_of::<T>()` bytes;
    /// use [`Comm::send_vec`] for containers so the payload is counted.
    pub fn send<T: Wire>(&mut self, to: usize, tag: u64, msg: T) -> Result<(), CommError> {
        self.send_impl(to, tag, std::mem::size_of::<T>(), msg, true)
    }

    /// Send a `Vec<T>`, counting `len·size_of::<T>()` payload bytes.
    pub fn send_vec<T: Wire>(&mut self, to: usize, tag: u64, msg: Vec<T>) -> Result<(), CommError> {
        let nbytes = msg.len() * std::mem::size_of::<T>();
        self.send_impl(to, tag, nbytes, msg, true)
    }

    /// The payload in whichever representation this transport moves.
    fn make_payload<T: Wire>(&self, msg: &T) -> Payload {
        if self.transport.by_bytes() {
            let mut data = Vec::new();
            msg.wire_put(&mut data);
            Payload::Bytes {
                fp: wire::type_fp::<T>(),
                data,
            }
        } else {
            Payload::Local(Box::new(msg.clone()))
        }
    }

    /// The application-traffic send path: subject to fault injection,
    /// counted when `counted`.
    fn send_impl<T: Wire>(
        &mut self,
        to: usize,
        tag: u64,
        nbytes: usize,
        msg: T,
        counted: bool,
    ) -> Result<(), CommError> {
        self.check_alive()?;
        assert!(to < self.size(), "rank {to} out of range");
        let fate = self.fault.on_send();
        if counted {
            // Count the send attempt once, whatever the network does to it.
            self.transport.count(to, tag, nbytes as u64);
        }
        let seq = {
            let c = self.send_seq.entry((to, tag)).or_insert(0);
            *c += 1;
            *c
        };
        if self.fault.partitioned(to) {
            // Frame-level network partition: the link is cut, the message
            // silently vanishes (the receiver times out, like Drop).
            return Ok(());
        }
        match fate {
            Some(FaultKind::Drop) => Ok(()),
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                let payload = self.make_payload(&msg);
                self.deliver(to, tag, seq, nbytes, false, payload)
            }
            Some(FaultKind::Duplicate) => {
                // Both copies share one sequence number; the receiver's
                // dedup admits exactly one.
                let payload = self.make_payload(&msg);
                self.deliver(to, tag, seq, nbytes, false, payload)?;
                let payload = self.make_payload(&msg);
                self.deliver(to, tag, seq, nbytes, false, payload)
            }
            Some(FaultKind::Corrupt) => {
                let payload = self.make_payload(&msg);
                self.deliver(to, tag, seq, nbytes, true, payload)
            }
            Some(FaultKind::Kill) | None => {
                let payload = self.make_payload(&msg);
                self.deliver(to, tag, seq, nbytes, false, payload)
            }
        }
    }

    /// Raw transport delivery (no fault injection, no counting).
    fn deliver(
        &mut self,
        to: usize,
        tag: u64,
        seq: u64,
        nbytes: usize,
        corrupt: bool,
        payload: Payload,
    ) -> Result<(), CommError> {
        let pkt = Packet {
            epoch: self.epoch,
            tag,
            seq,
            nbytes,
            corrupt,
            payload,
        };
        self.transport.send(to, pkt)
    }

    /// Transport-level duplicate suppression. Application tags are reused
    /// every step (ghost exchange, migration), so an injected duplicate
    /// would otherwise sit in the per-tag FIFO and silently desync every
    /// later step. Returns `false` when the packet is a replay of one
    /// already accepted for this `(from, tag)` in its epoch.
    fn admit(&mut self, from: usize, pkt: &Packet) -> bool {
        if pkt.tag == RECOVER_TAG {
            // Recovery announcements bypass injection and are idempotent
            // (the rendezvous folds them with max); nothing to dedup.
            return true;
        }
        match self.recv_seq.entry((from, pkt.tag)) {
            Entry::Occupied(mut e) => {
                let (epoch, last) = *e.get();
                if pkt.epoch == epoch {
                    if pkt.seq <= last {
                        return false;
                    }
                    e.insert((epoch, pkt.seq));
                    true
                } else if pkt.epoch > epoch {
                    e.insert((pkt.epoch, pkt.seq));
                    true
                } else {
                    // Stale epoch: the epoch filter discards it anyway.
                    true
                }
            }
            Entry::Vacant(v) => {
                v.insert((pkt.epoch, pkt.seq));
                true
            }
        }
    }

    fn unpack<T: Wire>(&self, pkt: Packet, from: usize) -> Result<T, CommError> {
        if pkt.corrupt {
            return Err(CommError::Corrupt { from, tag: pkt.tag });
        }
        let tag = pkt.tag;
        match pkt.payload {
            Payload::Local(b) => b
                .downcast::<T>()
                .map(|b| *b)
                .map_err(|_| CommError::TypeMismatch { from, tag }),
            Payload::Bytes { fp, data } => {
                if fp != wire::type_fp::<T>() {
                    return Err(CommError::TypeMismatch { from, tag });
                }
                let mut r = WireReader::new(&data);
                match T::wire_get(&mut r) {
                    Some(v) if r.done() => Ok(v),
                    // The fingerprint matched but the bytes didn't decode:
                    // the payload was damaged in transit.
                    _ => Err(CommError::Corrupt { from, tag }),
                }
            }
        }
    }

    /// Pull a matching current-epoch packet out of the pending buffer,
    /// discarding stale-epoch packets along the way.
    fn take_pending(&mut self, from: usize, tag: u64) -> Option<Packet> {
        let epoch = self.epoch;
        self.pending[from].retain(|p| p.epoch >= epoch);
        let pos = self.pending[from]
            .iter()
            .position(|p| p.tag == tag && p.epoch == epoch)?;
        self.pending[from].remove(pos)
    }

    /// Blocking receive of a `T` sent from `from` with `tag`, bounded by
    /// the op timeout. Messages from the same source with other tags are
    /// buffered, preserving per-tag FIFO order.
    pub fn recv<T: Wire>(&mut self, from: usize, tag: u64) -> Result<T, CommError> {
        let deadline = Instant::now() + self.op_timeout;
        self.recv_deadline(from, tag, deadline)
    }

    /// [`Comm::recv`] with an explicit deadline. A deadline already in the
    /// past returns [`CommError::Timeout`] immediately (after checking the
    /// pending buffer) — it never performs a blocking poll cycle.
    pub fn recv_deadline<T: Wire>(
        &mut self,
        from: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<T, CommError> {
        self.check_alive()?;
        assert!(from < self.size(), "rank {from} out of range");
        if let Some(pkt) = self.take_pending(from, tag) {
            return self.unpack(pkt, from);
        }
        let started = Instant::now();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    from,
                    tag,
                    waited: now - started,
                });
            }
            match self.transport.recv_timeout(from, deadline - now) {
                Ok(pkt) => {
                    if pkt.epoch < self.epoch {
                        continue; // stale traffic from before a recovery
                    }
                    if !self.admit(from, &pkt) {
                        continue; // injected duplicate
                    }
                    if pkt.tag == tag && pkt.epoch == self.epoch {
                        return self.unpack(pkt, from);
                    }
                    self.pending[from].push_back(pkt);
                }
                Err(RecvError::Timeout) => {
                    return Err(CommError::Timeout {
                        from,
                        tag,
                        waited: started.elapsed(),
                    });
                }
                Err(RecvError::Closed) => {
                    return Err(CommError::PeerClosed { peer: from });
                }
            }
        }
    }

    /// Non-blocking receive; `Ok(None)` when no matching message has
    /// arrived yet.
    pub fn try_recv<T: Wire>(&mut self, from: usize, tag: u64) -> Result<Option<T>, CommError> {
        self.check_alive()?;
        assert!(from < self.size(), "rank {from} out of range");
        if let Some(pkt) = self.take_pending(from, tag) {
            return self.unpack(pkt, from).map(Some);
        }
        while let Some(pkt) = self.transport.try_recv(from) {
            if pkt.epoch < self.epoch {
                continue;
            }
            if !self.admit(from, &pkt) {
                continue;
            }
            if pkt.tag == tag && pkt.epoch == self.epoch {
                return self.unpack(pkt, from).map(Some);
            }
            self.pending[from].push_back(pkt);
        }
        Ok(None)
    }

    fn next_collective_tag(&mut self) -> u64 {
        let tag = COLLECTIVE_TAG | self.coll_seq;
        self.coll_seq += 1;
        tag
    }

    /// Synchronize all ranks (bounded; a dead rank turns this into a typed
    /// error instead of a deadlock).
    pub fn barrier(&mut self) -> Result<(), CommError> {
        self.allgather(0u8).map(|_| ())
    }

    /// Gather one value from every rank (returned in rank order). Runs over
    /// point-to-point channels; collective bytes are not added to the
    /// traffic report.
    pub fn allgather<T: Wire>(&mut self, v: T) -> Result<Vec<T>, CommError> {
        self.check_alive()?;
        let n = self.size();
        if n == 1 {
            return Ok(vec![v]);
        }
        let tag = self.next_collective_tag();
        for to in 0..n {
            if to != self.rank() {
                self.send_impl(to, tag, std::mem::size_of::<T>(), v.clone(), false)?;
            }
        }
        let deadline = Instant::now() + self.op_timeout;
        let mut out = Vec::with_capacity(n);
        for from in 0..n {
            if from == self.rank() {
                out.push(v.clone());
            } else {
                out.push(self.recv_deadline(from, tag, deadline)?);
            }
        }
        Ok(out)
    }

    /// Sum an `f64` across all ranks.
    pub fn allreduce_sum(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(self.allgather(v)?.into_iter().sum())
    }

    /// Element-wise sum of `f64` vectors across all ranks (all must have
    /// the same length).
    pub fn allreduce_sum_vec(&mut self, v: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let len = v.len();
        let all = self.allgather(v)?;
        let mut out = vec![0.0f64; len];
        for contrib in &all {
            assert_eq!(contrib.len(), len, "allreduce length mismatch");
            for (o, c) in out.iter_mut().zip(contrib) {
                *o += c;
            }
        }
        Ok(out)
    }

    /// Max of an `f64` across all ranks.
    pub fn allreduce_max(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(self
            .allgather(v)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Sum a `u64` across all ranks.
    pub fn allreduce_sum_u64(&mut self, v: u64) -> Result<u64, CommError> {
        Ok(self.allgather(v)?.into_iter().sum())
    }

    /// Move to `epoch`: reset per-epoch sequence state and advertise the
    /// new epoch to the transport (handshakes/heartbeats carry it).
    fn adopt_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.coll_seq = 0;
        self.send_seq.clear();
        self.transport.set_epoch(epoch);
    }

    /// Send one recovery announcement (bypasses fault injection).
    fn announce(&mut self, to: usize) -> Result<(), CommError> {
        let epoch = self.epoch;
        let payload = if self.transport.by_bytes() {
            let mut data = Vec::new();
            epoch.wire_put(&mut data);
            Payload::Bytes {
                fp: wire::type_fp::<u64>(),
                data,
            }
        } else {
            Payload::Local(Box::new(epoch))
        };
        self.deliver(to, RECOVER_TAG, 1, 8, false, payload)
    }

    /// The epoch value carried by a recovery announcement, whatever its
    /// payload representation.
    fn announcement_epoch(pkt: &Packet) -> Option<u64> {
        match &pkt.payload {
            Payload::Local(b) => b.downcast_ref::<u64>().copied(),
            Payload::Bytes { data, .. } => u64::wire_get(&mut WireReader::new(data)),
        }
    }

    /// Next recovery announcement from anyone: pending buffers first, then
    /// a non-blocking drain of every source (buffering application packets
    /// from ranks already running a newer epoch), then a short sleep.
    fn poll_announcements(&mut self, slice: Duration) -> Option<(usize, u64)> {
        let n = self.size();
        for from in 0..n {
            if let Some(pos) = self.pending[from].iter().position(|p| p.tag == RECOVER_TAG) {
                let pkt = self.pending[from].remove(pos).unwrap();
                if let Some(ep) = Self::announcement_epoch(&pkt) {
                    return Some((from, ep));
                }
            }
        }
        for from in 0..n {
            if from == self.rank() {
                continue;
            }
            while let Some(pkt) = self.transport.try_recv(from) {
                if pkt.tag == RECOVER_TAG {
                    if let Some(ep) = Self::announcement_epoch(&pkt) {
                        return Some((from, ep));
                    }
                } else if pkt.epoch >= self.epoch && self.admit(from, &pkt) {
                    self.pending[from].push_back(pkt);
                }
            }
        }
        std::thread::sleep(slice);
        None
    }

    /// Tear down this epoch and rendezvous with every rank for a rollback:
    /// revives a killed rank, bumps the epoch (so in-flight traffic from
    /// the aborted epoch is discarded on receipt), drains stale queues, and
    /// waits — generously, but boundedly — for every other rank to arrive
    /// at the same epoch. Returns the new epoch.
    ///
    /// The rendezvous is a max-consensus: every rank announces its target
    /// epoch (one more than the newest epoch it knows, including epochs
    /// learned out-of-band from the transport's bootstrap handshake),
    /// adopts and re-announces any higher epoch it hears, and finishes
    /// when every peer has announced the agreed maximum. On transports
    /// where a dead peer can respawn, announcements that fail to send are
    /// retried with jittered exponential backoff until the rendezvous
    /// deadline; on the in-process transport a closed peer is permanent
    /// and the rendezvous fails fast.
    ///
    /// Recovery messages bypass fault injection: the substrate models a
    /// hardened control channel.
    pub fn recover(&mut self) -> Result<u64, CommError> {
        if self.surrendered {
            return Err(CommError::RecoveryFailed {
                rank: self.rank(),
                detail: "endpoint surrendered to a hot spare".to_string(),
            });
        }
        self.killed = None;
        // A rejoining process starts at epoch 0 but has heard the world's
        // real epoch via its bootstrap handshake; catch up before bumping.
        let known = self.epoch.max(self.transport.observed_epoch());
        self.adopt_epoch(known + 1);
        let n = self.size();
        let epoch = self.epoch;
        // Drain everything from dead epochs; keep packets that already
        // carry the new epoch (ranks that entered recovery before us) and
        // every buffered announcement (a peer that announced while we were
        // still inside a collective must not have to announce twice).
        for from in 0..n {
            self.pending[from].retain(|p| p.tag == RECOVER_TAG || p.epoch >= epoch);
            while let Some(pkt) = self.transport.try_recv(from) {
                if pkt.tag == RECOVER_TAG || (pkt.epoch >= epoch && self.admit(from, &pkt)) {
                    self.pending[from].push_back(pkt);
                }
            }
        }
        if n == 1 {
            return Ok(epoch);
        }
        let me = self.rank();
        let fail = move |detail: String| CommError::RecoveryFailed { rank: me, detail };
        let retry_sends = self.transport.peer_may_return();
        let deadline = Instant::now() + self.op_timeout * RECOVERY_TIMEOUT_FACTOR;
        // Per-peer: the newest epoch heard, the epoch last successfully
        // announced, and retry/backoff state for failed announcements.
        let mut latest = vec![0u64; n];
        let mut announced = vec![0u64; n];
        let mut attempt = vec![0u32; n];
        let mut next_try = vec![Instant::now(); n];
        let backoff_seed = 0x7ECA_11ED_u64 ^ ((me as u64) << 32);
        let mut last_blast = Instant::now();
        loop {
            if retry_sends && last_blast.elapsed() >= Duration::from_millis(250) {
                // A socket write can "succeed" into a peer that dies before
                // reading it; announcements are idempotent (folded with
                // max), so periodically re-blast instead of trusting a
                // successful write as delivery.
                announced.fill(0);
                last_blast = Instant::now();
            }
            for to in 0..n {
                if to == me || announced[to] == self.epoch || Instant::now() < next_try[to] {
                    continue;
                }
                match self.announce(to) {
                    Ok(()) => {
                        announced[to] = self.epoch;
                        attempt[to] = 0;
                    }
                    Err(e) if retry_sends => {
                        // The peer process may be respawning; back off and
                        // try its (re-bound) endpoint again.
                        let _ = e;
                        next_try[to] = Instant::now()
                            + wire::backoff(
                                attempt[to],
                                Duration::from_millis(20),
                                Duration::from_millis(500),
                                backoff_seed ^ to as u64,
                            );
                        attempt[to] = attempt[to].saturating_add(1);
                    }
                    Err(e) => {
                        // In-process peers cannot come back: fail fast.
                        return Err(fail(format!(
                            "announcing epoch {} to rank {to}: {e}",
                            self.epoch
                        )));
                    }
                }
            }
            if (0..n).all(|p| p == me || latest[p] == self.epoch) {
                return Ok(self.epoch);
            }
            if Instant::now() >= deadline {
                let missing = (0..n)
                    .filter(|&p| p != me && latest[p] != self.epoch)
                    .collect::<Vec<_>>();
                return Err(fail(format!(
                    "waiting for ranks {missing:?} to rejoin epoch {}: timed out after {:?}",
                    self.epoch,
                    self.op_timeout * RECOVERY_TIMEOUT_FACTOR
                )));
            }
            if let Some((from, ep)) = self.poll_announcements(Duration::from_millis(2)) {
                latest[from] = latest[from].max(ep);
                if ep > self.epoch {
                    // Someone is ahead (heard a newer failure, or a
                    // rejoiner that caught up past us): adopt the higher
                    // epoch; the `announced` check re-announces it.
                    self.adopt_epoch(ep);
                }
            }
        }
    }

    /// Detach this rank's entire communication state into an [`Endpoint`]
    /// that another thread can [`Comm::adopt`]. The remaining `Comm` is a
    /// husk: every operation on it returns a typed error until the endpoint
    /// comes back via [`Comm::readopt`]. This is how a hot-spare worker
    /// thread takes over a dead rank's seat without the world renumbering.
    pub fn surrender(&mut self) -> Endpoint {
        self.surrendered = true;
        let rank = self.rank();
        let size = self.size();
        let husk: Box<dyn Transport> = Box::new(HuskTransport { rank, size });
        Endpoint {
            rank,
            transport: std::mem::replace(&mut self.transport, husk),
            pending: std::mem::take(&mut self.pending),
            epoch: self.epoch,
            coll_seq: self.coll_seq,
            op_timeout: self.op_timeout,
            fault: std::mem::replace(&mut self.fault, FaultState::new(None, rank)),
            send_seq: std::mem::take(&mut self.send_seq),
            recv_seq: std::mem::take(&mut self.recv_seq),
            killed: self.killed,
        }
    }

    /// Build a live communicator around a surrendered endpoint. Clears the
    /// kill (the spare is a fresh process image in the same seat); the
    /// inherited fault state keeps spent one-shot rules spent.
    pub fn adopt(ep: Endpoint) -> Comm {
        Comm {
            transport: ep.transport,
            pending: ep.pending,
            epoch: ep.epoch,
            coll_seq: ep.coll_seq,
            op_timeout: ep.op_timeout,
            fault: ep.fault,
            killed: None,
            send_seq: ep.send_seq,
            recv_seq: ep.recv_seq,
            surrendered: false,
        }
    }

    /// Re-attach an endpoint to the husk left behind by [`Comm::surrender`]
    /// (e.g. after joining the spare thread that used it), making this
    /// communicator fully operational again.
    pub fn readopt(&mut self, ep: Endpoint) {
        *self = Comm::adopt(ep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let (results, traffic) = run_expect(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, c.rank()).unwrap();
            let got: usize = c.recv(left, 1).unwrap();
            got
        });
        for (rank, got) in results.iter().enumerate() {
            assert_eq!(*got, (rank + 4) % 5);
        }
        assert_eq!(traffic.total_messages, 5);
        assert_eq!(traffic.total_bytes, 5 * 8);
        assert_eq!(traffic.bytes[0][1], 8);
        assert_eq!(traffic.bytes[0][2], 0);
    }

    #[test]
    fn per_tag_counters_attribute_traffic() {
        let (_, traffic) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 7, vec![0f32; 100]).unwrap(); // 400 bytes
                c.send(1, 9, 1u64).unwrap(); // 8 bytes
                c.send(1, 9, 2u64).unwrap(); // 8 bytes
            } else {
                let _: Vec<f32> = c.recv(0, 7).unwrap();
                let _: u64 = c.recv(0, 9).unwrap();
                let _: u64 = c.recv(0, 9).unwrap();
            }
        });
        assert_eq!(
            traffic.by_tag,
            vec![
                TagTraffic {
                    tag: 7,
                    messages: 1,
                    bytes: 400
                },
                TagTraffic {
                    tag: 9,
                    messages: 2,
                    bytes: 16
                },
            ]
        );
        assert_eq!(traffic.top_tags(1).len(), 1);
        assert_eq!(traffic.top_tags(1)[0].tag, 7);
        // Collectives stay uncounted, per the report's contract.
        let (_, t2) = run_expect(2, |c| {
            c.barrier().unwrap();
        });
        assert!(t2.by_tag.is_empty());
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, "first".to_string()).unwrap();
                c.send(1, 20, "second".to_string()).unwrap();
                0
            } else {
                // Ask for tag 20 before tag 10.
                let b: String = c.recv(0, 20).unwrap();
                let a: String = c.recv(0, 10).unwrap();
                assert_eq!(a, "first");
                assert_eq!(b, "second");
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn vec_payload_counts_bytes() {
        let (_, traffic) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 0, vec![0f32; 100]).unwrap();
            } else {
                let v: Vec<f32> = c.recv(0, 0).unwrap();
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(traffic.total_bytes, 400);
        assert_eq!(traffic.max_rank_bytes(), 400);
    }

    #[test]
    fn allgather_and_reductions() {
        let (results, _) = run_expect(4, |c| {
            let gathered = c.allgather(c.rank() as u64 * 10).unwrap();
            assert_eq!(gathered, vec![0, 10, 20, 30]);
            let s = c.allreduce_sum(c.rank() as f64).unwrap();
            let m = c.allreduce_max(c.rank() as f64).unwrap();
            let v = c.allreduce_sum_vec(vec![1.0, c.rank() as f64]).unwrap();
            let u = c.allreduce_sum_u64(1).unwrap();
            (s, m, v, u)
        });
        for (s, m, v, u) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 3.0);
            assert_eq!(v, vec![4.0, 6.0]);
            assert_eq!(u, 4);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let (results, _) = run_expect(3, |c| {
            let mut acc = 0.0;
            for round in 0..20 {
                acc += c.allreduce_sum((c.rank() + round) as f64).unwrap();
            }
            acc
        });
        // Σ_round (0+1+2 + 3·round) = 20·3 + 3·190.
        for r in results {
            assert_eq!(r, 60.0 + 570.0);
        }
    }

    #[test]
    fn try_recv_returns_none_then_some() {
        let (results, _) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.barrier().unwrap();
                c.send(1, 5, 42u32).unwrap();
                c.barrier().unwrap();
                c.barrier().unwrap();
                true
            } else {
                assert!(c.try_recv::<u32>(0, 5).unwrap().is_none());
                c.barrier().unwrap();
                c.barrier().unwrap(); // message definitely sent now
                let got = c.try_recv::<u32>(0, 5).unwrap();
                c.barrier().unwrap();
                got == Some(42)
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn single_rank_world_works() {
        let (results, traffic) = run_expect(1, |c| {
            assert_eq!(c.size(), 1);
            c.barrier().unwrap();
            c.allreduce_sum(3.0).unwrap()
        });
        assert_eq!(results, vec![3.0]);
        assert_eq!(traffic.total_bytes, 0);
    }

    #[test]
    fn dead_peer_is_a_timeout_not_a_hang() {
        let started = Instant::now();
        let (results, _) = run(2, |c| {
            c.set_op_timeout(Duration::from_millis(100));
            if c.rank() == 0 {
                // Exit immediately without sending.
                return None;
            }
            Some(c.recv::<u32>(0, 7))
        });
        assert!(results[0].as_ref().unwrap().is_none());
        let r1 = results[1].as_ref().unwrap().as_ref().unwrap();
        assert!(
            matches!(r1.as_ref().err(), Some(CommError::Timeout { from: 0, .. })),
            "want timeout, got {r1:?}"
        );
        assert!(started.elapsed() < Duration::from_secs(5), "unbounded wait");
    }

    #[test]
    fn panicking_rank_reported_not_propagated() {
        let (results, _) = run(2, |c| {
            c.set_op_timeout(Duration::from_millis(100));
            if c.rank() == 0 {
                panic!("injected test panic");
            }
            c.recv::<u32>(0, 1)
        });
        let p = results[0].as_ref().expect_err("rank 0 panicked");
        assert_eq!(p.rank, 0);
        assert!(p.message.contains("injected test panic"));
        // Rank 1 got a typed error (timeout or closed), not a deadlock.
        assert!(results[1].as_ref().unwrap().is_err());
    }

    #[test]
    fn type_mismatch_is_typed_error() {
        let (results, _) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, 1u32).unwrap();
                true
            } else {
                matches!(
                    c.recv::<String>(0, 3),
                    Err(CommError::TypeMismatch { from: 0, tag: 3 })
                )
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn recv_deadline_in_the_past_times_out_immediately() {
        // A deadline that has already passed must not perform a blocking
        // poll cycle: the error comes back in (well under) a millisecond,
        // and a message already in the pending buffer is still served.
        let (results, _) = run_expect(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, 7u32).unwrap();
                c.barrier().unwrap();
                c.barrier().unwrap();
                true
            } else {
                c.barrier().unwrap();
                c.barrier().unwrap(); // tag-1 message has arrived by now
                let past = Instant::now() - Duration::from_secs(1);
                let t0 = Instant::now();
                let miss = c.recv_deadline::<u32>(0, 99, past);
                let waited = t0.elapsed();
                assert!(
                    matches!(
                        miss,
                        Err(CommError::Timeout {
                            from: 0,
                            tag: 99,
                            ..
                        })
                    ),
                    "want immediate timeout, got {miss:?}"
                );
                assert!(
                    waited < Duration::from_millis(50),
                    "past deadline blocked for {waited:?}"
                );
                // Pending traffic is still delivered even with a past
                // deadline (matching beats the clock).
                let hit: u32 = c.recv_deadline(0, 1, past).unwrap();
                hit == 7
            }
        });
        assert!(results[1]);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn dropped_message_times_out() {
        let plan = FaultPlan::new(1).drop_message(0, 1);
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(100));
            if c.rank() == 0 {
                c.send(1, 9, 5u32).unwrap();
                true
            } else {
                matches!(
                    c.recv::<u32>(0, 9),
                    Err(CommError::Timeout {
                        from: 0,
                        tag: 9,
                        ..
                    })
                )
            }
        });
        assert!(results[1].as_ref().unwrap());
    }

    #[test]
    fn corrupt_message_detected() {
        let plan = FaultPlan::new(1).corrupt_message(0, 1);
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 0 {
                c.send(1, 9, 5u32).unwrap();
                true
            } else {
                matches!(
                    c.recv::<u32>(0, 9),
                    Err(CommError::Corrupt { from: 0, tag: 9 })
                )
            }
        });
        assert!(results[1].as_ref().unwrap());
    }

    #[test]
    fn duplicate_message_suppressed_and_fifo_preserved() {
        // The duplicated copy of the first message must be swallowed by the
        // transport, not delivered as if it were the *next* message on the
        // same tag — step-periodic tags would otherwise desync forever.
        let plan = FaultPlan::new(1).duplicate_message(0, 1);
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(200));
            if c.rank() == 0 {
                c.send(1, 9, 5u32).unwrap();
                c.send(1, 9, 7u32).unwrap();
                0
            } else {
                let a: u32 = c.recv(0, 9).unwrap();
                let b: u32 = c.recv(0, 9).unwrap();
                assert_eq!((a, b), (5, 7));
                assert!(matches!(
                    c.recv::<u32>(0, 9),
                    Err(CommError::Timeout { .. })
                ));
                1
            }
        });
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        let delay = Duration::from_millis(50);
        let plan = FaultPlan::new(1).rule(crate::FaultRule {
            rank: 0,
            kind: FaultKind::Delay(delay),
            trigger: crate::Trigger::OnMessage(1),
        });
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 0 {
                let t0 = Instant::now();
                c.send(1, 9, 5u32).unwrap();
                // Delay is modeled on the sender: the send call itself blocks.
                t0.elapsed() >= delay
            } else {
                c.recv::<u32>(0, 9).unwrap() == 5
            }
        });
        assert!(results[0].as_ref().unwrap());
        assert!(results[1].as_ref().unwrap());
    }

    #[test]
    fn partitioned_link_drops_frames_both_ways_until_heal() {
        // A partition between ranks 0 and 1 from step 2 until step 4: the
        // cut is symmetric (both directions of the pair), frame-level
        // (receivers just time out), and heals when the window ends.
        let plan = FaultPlan::new(1).partition(0, 1, 2, 4);
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(100));
            let peer = 1 - c.rank();
            let mut delivered = Vec::new();
            for step in 0..6u64 {
                c.tick(step).unwrap();
                c.send(peer, step, step).unwrap();
                delivered.push(c.recv::<u64>(peer, step).is_ok());
            }
            delivered
        });
        for r in &results {
            assert_eq!(
                r.as_ref().unwrap(),
                &vec![true, true, false, false, true, true]
            );
        }
    }

    #[test]
    fn on_message_kill_fires_at_next_tick() {
        // A count-based kill arms on the matching send and lands at the
        // next tick, like an interrupt taken between steps.
        let plan = FaultPlan::new(1).rule(crate::FaultRule {
            rank: 0,
            kind: FaultKind::Kill,
            trigger: crate::Trigger::OnMessage(2),
        });
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(100));
            if c.rank() == 0 {
                c.tick(0).unwrap();
                c.send(1, 1, 1u32).unwrap();
                c.send(1, 2, 2u32).unwrap(); // arms the kill; still delivered
                matches!(c.tick(1), Err(CommError::Killed { rank: 0, step: 1 }))
            } else {
                let a: u32 = c.recv(0, 1).unwrap();
                let b: u32 = c.recv(0, 2).unwrap();
                (a, b) == (1, 2)
            }
        });
        assert!(results[0].as_ref().unwrap());
        assert!(results[1].as_ref().unwrap());
    }

    #[test]
    fn killed_rank_errors_and_peers_time_out() {
        let plan = FaultPlan::new(1).kill(0, 3);
        let (results, _) = run_with_faults(2, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(100));
            for step in 0..5u64 {
                if let Err(e) = c.tick(step) {
                    return (step, matches!(e, CommError::Killed { rank: 0, step: 3 }));
                }
                if c.rank() == 0 {
                    if c.send(1, step, step).is_err() {
                        return (step, false);
                    }
                } else {
                    match c.recv::<u64>(0, step) {
                        Ok(_) => {}
                        Err(CommError::Timeout { .. }) => return (step, true),
                        Err(_) => return (step, false),
                    }
                }
            }
            (u64::MAX, false)
        });
        // Rank 0 learns it was killed at its step-3 tick; rank 1 times out
        // waiting for step 3 traffic.
        assert_eq!(*results[0].as_ref().unwrap(), (3, true));
        assert_eq!(*results[1].as_ref().unwrap(), (3, true));
    }

    #[test]
    fn recovery_rendezvous_revives_the_world() {
        let plan = FaultPlan::new(1).kill(1, 2);
        let (results, _) = run_with_faults(3, Some(plan), |c| {
            c.set_op_timeout(Duration::from_millis(200));
            let mut recovered = false;
            let mut sum = 0.0;
            let mut step = 0u64;
            while step < 6 {
                let r = c.tick(step).and_then(|_| c.allreduce_sum(c.rank() as f64));
                match r {
                    Ok(s) => {
                        sum = s;
                        step += 1;
                    }
                    Err(_) => {
                        c.recover().unwrap();
                        recovered = true;
                        // Roll back to the "checkpoint" (step 0 here).
                        step = 0;
                    }
                }
            }
            (recovered, sum, c.epoch())
        });
        for r in &results {
            let (recovered, sum, epoch) = r.as_ref().unwrap();
            assert!(*recovered);
            assert_eq!(*sum, 3.0);
            assert_eq!(*epoch, 1);
        }
    }

    #[test]
    fn surrendered_endpoint_adopted_by_spare_thread_and_readopted() {
        let (results, _) = run_expect(2, |c| {
            c.set_op_timeout(Duration::from_millis(500));
            if c.rank() == 0 {
                let ep = c.surrender();
                assert_eq!(ep.rank(), 0);
                // The husk is inert until readopt.
                assert!(matches!(c.send(1, 1, 0u32), Err(CommError::Killed { .. })));
                assert!(matches!(c.recv::<u32>(1, 1), Err(CommError::Killed { .. })));
                assert!(matches!(c.recover(), Err(CommError::RecoveryFailed { .. })));
                let spare = std::thread::spawn(move || {
                    let mut comm = Comm::adopt(ep);
                    comm.send(1, 1, 41u32).unwrap();
                    let got: u32 = comm.recv(1, 2).unwrap();
                    (got, comm.surrender())
                });
                let (got, ep) = spare.join().unwrap();
                c.readopt(ep);
                let last: u32 = c.recv(1, 3).unwrap();
                (got + last) as usize
            } else {
                let v: u32 = c.recv(0, 1).unwrap();
                c.send(0, 2, v + 1).unwrap();
                c.send(0, 3, 100u32).unwrap();
                v as usize
            }
        });
        assert_eq!(results[0], 42 + 100);
        assert_eq!(results[1], 41);
    }

    #[test]
    fn stale_epoch_traffic_is_discarded() {
        // Rank 0 sends a pre-recovery message that must not be delivered
        // into the post-recovery epoch under the same tag.
        let (results, _) = run_expect(2, |c| {
            c.set_op_timeout(Duration::from_millis(200));
            if c.rank() == 0 {
                c.send(1, 42, 111u32).unwrap(); // epoch-0 traffic
                c.recover().unwrap();
                c.send(1, 42, 222u32).unwrap(); // epoch-1 traffic
                0
            } else {
                c.recover().unwrap();
                c.recv::<u32>(1 - 1, 42).unwrap() as usize
            }
        });
        assert_eq!(results[1], 222);
    }

    #[test]
    fn repeated_recoveries_advance_the_epoch_in_lockstep() {
        // Two full rendezvous back to back; the gate keeps one rank from
        // racing ahead into its second recovery (and thus announcing an
        // epoch the other would adopt mid-rendezvous — legal, but it makes
        // the final epoch nondeterministic).
        let gate = std::sync::Barrier::new(2);
        let (results, _) = run_expect(2, |c| {
            c.set_op_timeout(Duration::from_millis(500));
            let e1 = c.recover().unwrap();
            gate.wait();
            let e2 = c.recover().unwrap();
            (e1, e2, c.epoch())
        });
        for r in results {
            assert_eq!(r, (1, 2, 2));
        }
    }
}
