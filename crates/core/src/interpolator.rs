//! Per-voxel interpolation coefficients (VPIC's `interpolator_array`).
//!
//! Once per step the Yee fields are converted into 18 coefficients per
//! voxel so the particle push evaluates `E` and `cB` at a particle with a
//! handful of fused multiply-adds and a single indexed load:
//!
//! * Each `E` component is bilinear in the two directions transverse to its
//!   edge and constant along the edge (the energy-conserving scheme that
//!   pairs with the charge-conserving current deposition).
//! * Each `cB` component is linear along its face normal only.

use crate::field::FieldArray;
use crate::grid::Grid;
use crate::lanes::{transpose8, F32x8, LANES};
use rayon::prelude::*;

/// Interpolation coefficients for one voxel (offsets in `[-1,1]`):
///
/// ```text
/// Ex(dy,dz) = ex + dy·dexdy + dz·dexdz + dy·dz·d2exdydz
/// Ey(dz,dx) = ey + dz·deydz + dx·deydx + dz·dx·d2eydzdx
/// Ez(dx,dy) = ez + dx·dezdx + dy·dezdy + dx·dy·d2ezdxdy
/// cBx(dx)   = cbx + dx·dcbxdx      (and cyclic)
/// ```
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Interpolator {
    pub ex: f32,
    pub dexdy: f32,
    pub dexdz: f32,
    pub d2exdydz: f32,
    pub ey: f32,
    pub deydz: f32,
    pub deydx: f32,
    pub d2eydzdx: f32,
    pub ez: f32,
    pub dezdx: f32,
    pub dezdy: f32,
    pub d2ezdxdy: f32,
    pub cbx: f32,
    pub dcbxdx: f32,
    pub cby: f32,
    pub dcbydy: f32,
    pub cbz: f32,
    pub dcbzdz: f32,
}

impl Interpolator {
    /// Evaluate `E` at voxel-relative offsets.
    #[inline]
    pub fn e_at(&self, dx: f32, dy: f32, dz: f32) -> (f32, f32, f32) {
        (
            (self.ex + dy * self.dexdy) + dz * (self.dexdz + dy * self.d2exdydz),
            (self.ey + dz * self.deydz) + dx * (self.deydx + dz * self.d2eydzdx),
            (self.ez + dx * self.dezdx) + dy * (self.dezdy + dx * self.d2ezdxdy),
        )
    }

    /// Evaluate `cB` at voxel-relative offsets.
    #[inline]
    pub fn cb_at(&self, dx: f32, dy: f32, dz: f32) -> (f32, f32, f32) {
        (
            self.cbx + dx * self.dcbxdx,
            self.cby + dy * self.dcbydy,
            self.cbz + dz * self.dcbzdz,
        )
    }
}

/// The 18 interpolation coefficients of eight voxels, transposed into
/// lane vectors — the gather stage of the AoSoA lane kernel. Field names
/// mirror [`Interpolator`] one for one.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpolatorLanes {
    pub ex: F32x8,
    pub dexdy: F32x8,
    pub dexdz: F32x8,
    pub d2exdydz: F32x8,
    pub ey: F32x8,
    pub deydz: F32x8,
    pub deydx: F32x8,
    pub d2eydzdx: F32x8,
    pub ez: F32x8,
    pub dezdx: F32x8,
    pub dezdy: F32x8,
    pub d2ezdxdy: F32x8,
    pub cbx: F32x8,
    pub dcbxdx: F32x8,
    pub cby: F32x8,
    pub dcbydy: F32x8,
    pub cbz: F32x8,
    pub dcbzdz: F32x8,
}

/// Interpolator coefficients for every voxel (ghost entries stay zero).
#[derive(Clone, Debug)]
pub struct InterpolatorArray {
    pub data: Vec<Interpolator>,
}

impl InterpolatorArray {
    /// Zeroed array sized for `grid`.
    pub fn new(grid: &Grid) -> Self {
        InterpolatorArray {
            data: vec![Interpolator::default(); grid.n_voxels()],
        }
    }

    /// Rebuild all live-voxel coefficients from `fields`. Ghost planes of
    /// the fields must be synchronized (the field solver does this after
    /// every update).
    ///
    /// Parallelized over z-slabs: voxel `(i,j,k)` only writes its own
    /// entry and reads field values at `v`, `v+1`, `v+dj`, `v+dk` (shared,
    /// immutable), so slabs are independent and the result is bitwise
    /// identical to [`Self::load_serial`] for any worker count.
    pub fn load(&mut self, f: &FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        const Q: f32 = 0.25;
        const H: f32 = 0.5;
        self.data
            .par_chunks_mut(dk)
            .enumerate()
            .skip(1)
            .take(g.nz)
            .for_each(|(k, slab)| {
                for j in 1..=g.ny {
                    for i in 1..=g.nx {
                        let v = g.voxel(i, j, k);
                        let ip = &mut slab[v - k * dk];

                        // Ex on the 4 x-edges of the voxel: (j,k), (j+1,k), (k+1), (j+1,k+1).
                        let (w0, w1, w2, w3) =
                            (f.ex[v], f.ex[v + dj], f.ex[v + dk], f.ex[v + dj + dk]);
                        ip.ex = Q * (w0 + w1 + w2 + w3);
                        ip.dexdy = Q * ((w1 + w3) - (w0 + w2));
                        ip.dexdz = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2exdydz = Q * ((w0 + w3) - (w1 + w2));

                        // Ey on the 4 y-edges: (k,i), (k+1,i), (i+1), (k+1,i+1).
                        let (w0, w1, w2, w3) =
                            (f.ey[v], f.ey[v + dk], f.ey[v + 1], f.ey[v + dk + 1]);
                        ip.ey = Q * (w0 + w1 + w2 + w3);
                        ip.deydz = Q * ((w1 + w3) - (w0 + w2));
                        ip.deydx = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2eydzdx = Q * ((w0 + w3) - (w1 + w2));

                        // Ez on the 4 z-edges: (i,j), (i+1,j), (j+1), (i+1,j+1).
                        let (w0, w1, w2, w3) =
                            (f.ez[v], f.ez[v + 1], f.ez[v + dj], f.ez[v + 1 + dj]);
                        ip.ez = Q * (w0 + w1 + w2 + w3);
                        ip.dezdx = Q * ((w1 + w3) - (w0 + w2));
                        ip.dezdy = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2ezdxdy = Q * ((w0 + w3) - (w1 + w2));

                        // cB linear along its own normal.
                        ip.cbx = H * (f.cbx[v] + f.cbx[v + 1]);
                        ip.dcbxdx = H * (f.cbx[v + 1] - f.cbx[v]);
                        ip.cby = H * (f.cby[v] + f.cby[v + dj]);
                        ip.dcbydy = H * (f.cby[v + dj] - f.cby[v]);
                        ip.cbz = H * (f.cbz[v] + f.cbz[v + dk]);
                        ip.dcbzdz = H * (f.cbz[v + dk] - f.cbz[v]);
                    }
                }
            });
    }

    /// Gather the coefficients of eight voxels into lane vectors (the
    /// transposed load behind the AoSoA lane kernel). Values are copied
    /// bit-for-bit, so lane `l` sees exactly `data[idx[l]]`.
    #[inline]
    pub fn gather8(&self, idx: &[u32; LANES]) -> InterpolatorLanes {
        // Read each lane's coefficients as two contiguous 8-float rows
        // (the row field order matches the struct declaration, so LLVM
        // merges the reads into wide loads), then shuffle-transpose
        // rows→fields. Pure data movement — lane `l`, field `f` of the
        // result is bit-for-bit `self.data[idx[l]].f`, exactly what a
        // scalar per-field gather produces.
        let mut ra = [F32x8::splat(0.0); LANES];
        let mut rb = [F32x8::splat(0.0); LANES];
        let mut cbz = [0.0f32; LANES];
        let mut dcbzdz = [0.0f32; LANES];
        for l in 0..LANES {
            let f = &self.data[idx[l] as usize];
            ra[l] = F32x8([
                f.ex, f.dexdy, f.dexdz, f.d2exdydz, f.ey, f.deydz, f.deydx, f.d2eydzdx,
            ]);
            rb[l] = F32x8([
                f.ez, f.dezdx, f.dezdy, f.d2ezdxdy, f.cbx, f.dcbxdx, f.cby, f.dcbydy,
            ]);
            cbz[l] = f.cbz;
            dcbzdz[l] = f.dcbzdz;
        }
        let ta = transpose8(ra);
        let tb = transpose8(rb);
        InterpolatorLanes {
            ex: ta[0],
            dexdy: ta[1],
            dexdz: ta[2],
            d2exdydz: ta[3],
            ey: ta[4],
            deydz: ta[5],
            deydx: ta[6],
            d2eydzdx: ta[7],
            ez: tb[0],
            dezdx: tb[1],
            dezdy: tb[2],
            d2ezdxdy: tb[3],
            cbx: tb[4],
            dcbxdx: tb[5],
            cby: tb[6],
            dcbydy: tb[7],
            cbz: F32x8(cbz),
            dcbzdz: F32x8(dcbzdz),
        }
    }

    /// Fused gather + field interpolation for the lane kernel: returns
    /// the half E kick `(hax, hay, haz)` and interpolated `(cbx, cby,
    /// cbz)` for eight particles at voxel-relative offsets `(dx, dy,
    /// dz)`. The arithmetic is the scalar push's interpolation expression
    /// tree verbatim, evaluated element-wise on the [`Self::gather8`]
    /// transpose — so every lane is bit-identical to the scalar path.
    ///
    /// Fusing matters for register pressure, not semantics: the eighteen
    /// coefficient vectors die here instead of staying live across the
    /// whole Boris rotation, which is what keeps the caller's hot loop
    /// out of spill traffic.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn gather_ha_cb8(
        &self,
        idx: &[u32; LANES],
        dx: F32x8,
        dy: F32x8,
        dz: F32x8,
        qdt_2mc: f32,
    ) -> ((F32x8, F32x8, F32x8), (F32x8, F32x8, F32x8)) {
        let mut ra = [F32x8::splat(0.0); LANES];
        let mut rb = [F32x8::splat(0.0); LANES];
        let mut cbz0 = [0.0f32; LANES];
        let mut dcbzdz = [0.0f32; LANES];
        for l in 0..LANES {
            let f = &self.data[idx[l] as usize];
            ra[l] = F32x8([
                f.ex, f.dexdy, f.dexdz, f.d2exdydz, f.ey, f.deydz, f.deydx, f.d2eydzdx,
            ]);
            rb[l] = F32x8([
                f.ez, f.dezdx, f.dezdy, f.d2ezdxdy, f.cbx, f.dcbxdx, f.cby, f.dcbydy,
            ]);
            cbz0[l] = f.cbz;
            dcbzdz[l] = f.dcbzdz;
        }
        let qdt = F32x8::splat(qdt_2mc);
        let ta = transpose8(ra);
        let hax = qdt * ((ta[0] + dy * ta[1]) + dz * (ta[2] + dy * ta[3]));
        let hay = qdt * ((ta[4] + dz * ta[5]) + dx * (ta[6] + dz * ta[7]));
        let tb = transpose8(rb);
        let haz = qdt * ((tb[0] + dx * tb[1]) + dy * (tb[2] + dx * tb[3]));
        let cbx = tb[4] + dx * tb[5];
        let cby = tb[6] + dy * tb[7];
        let cbz = F32x8(cbz0) + dz * F32x8(dcbzdz);
        ((hax, hay, haz), (cbx, cby, cbz))
    }

    /// Serial reference for [`Self::load`].
    pub fn load_serial(&mut self, f: &FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        const Q: f32 = 0.25;
        const H: f32 = 0.5;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    let ip = &mut self.data[v];

                    // Ex on the 4 x-edges of the voxel: (j,k), (j+1,k), (k+1), (j+1,k+1).
                    let (w0, w1, w2, w3) = (f.ex[v], f.ex[v + dj], f.ex[v + dk], f.ex[v + dj + dk]);
                    ip.ex = Q * (w0 + w1 + w2 + w3);
                    ip.dexdy = Q * ((w1 + w3) - (w0 + w2));
                    ip.dexdz = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2exdydz = Q * ((w0 + w3) - (w1 + w2));

                    // Ey on the 4 y-edges: (k,i), (k+1,i), (i+1), (k+1,i+1).
                    let (w0, w1, w2, w3) = (f.ey[v], f.ey[v + dk], f.ey[v + 1], f.ey[v + dk + 1]);
                    ip.ey = Q * (w0 + w1 + w2 + w3);
                    ip.deydz = Q * ((w1 + w3) - (w0 + w2));
                    ip.deydx = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2eydzdx = Q * ((w0 + w3) - (w1 + w2));

                    // Ez on the 4 z-edges: (i,j), (i+1,j), (j+1), (i+1,j+1).
                    let (w0, w1, w2, w3) = (f.ez[v], f.ez[v + 1], f.ez[v + dj], f.ez[v + 1 + dj]);
                    ip.ez = Q * (w0 + w1 + w2 + w3);
                    ip.dezdx = Q * ((w1 + w3) - (w0 + w2));
                    ip.dezdy = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2ezdxdy = Q * ((w0 + w3) - (w1 + w2));

                    // cB linear along its own normal.
                    ip.cbx = H * (f.cbx[v] + f.cbx[v + 1]);
                    ip.dcbxdx = H * (f.cbx[v + 1] - f.cbx[v]);
                    ip.cby = H * (f.cby[v] + f.cby[v + dj]);
                    ip.dcbydy = H * (f.cby[v + dj] - f.cby[v]);
                    ip.cbz = H * (f.cbz[v] + f.cbz[v + dk]);
                    ip.dcbzdz = H * (f.cbz[v + dk] - f.cbz[v]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::{bcs_of, sync_b, sync_e};

    #[test]
    fn corners_recover_edge_values() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        // Distinct values on each x-edge of voxel (2,2,2).
        let v = g.voxel(2, 2, 2);
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        f.ex[v] = 1.0;
        f.ex[v + dj] = 2.0;
        f.ex[v + dk] = 3.0;
        f.ex[v + dj + dk] = 4.0;
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let ip = &ia.data[v];
        // dy=-1, dz=-1 corner → edge (j,k) value.
        assert!((ip.e_at(0.0, -1.0, -1.0).0 - 1.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, -1.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, -1.0, 1.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, 1.0).0 - 4.0).abs() < 1e-6);
        // Center is the average.
        assert!((ip.e_at(0.0, 0.0, 0.0).0 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn uniform_fields_interpolate_exactly() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        for val in f.ex.iter_mut() {
            *val = 5.0;
        }
        for val in f.cby.iter_mut() {
            *val = -2.0;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        for k in 1..=3 {
            for j in 1..=3 {
                for i in 1..=3 {
                    let ip = &ia.data[g.voxel(i, j, k)];
                    let (ex, ey, ez) = ip.e_at(0.37, -0.81, 0.12);
                    assert!((ex - 5.0).abs() < 1e-6);
                    assert_eq!(ey, 0.0);
                    assert_eq!(ez, 0.0);
                    let (bx, by, bz) = ip.cb_at(0.37, -0.81, 0.12);
                    assert_eq!(bx, 0.0);
                    assert!((by + 2.0).abs() < 1e-6);
                    assert_eq!(bz, 0.0);
                }
            }
        }
    }

    #[test]
    fn gather8_transposes_bitwise() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut ia = InterpolatorArray::new(&g);
        // Stamp every voxel with distinct values in every slot.
        for (v, ip) in ia.data.iter_mut().enumerate() {
            let base = v as f32;
            ip.ex = base + 0.01;
            ip.dexdy = base + 0.02;
            ip.dexdz = base + 0.03;
            ip.d2exdydz = base + 0.04;
            ip.ey = base + 0.05;
            ip.deydz = base + 0.06;
            ip.deydx = base + 0.07;
            ip.d2eydzdx = base + 0.08;
            ip.ez = base + 0.09;
            ip.dezdx = base + 0.10;
            ip.dezdy = base + 0.11;
            ip.d2ezdxdy = base + 0.12;
            ip.cbx = base + 0.13;
            ip.dcbxdx = base + 0.14;
            ip.cby = base + 0.15;
            ip.dcbydy = base + 0.16;
            ip.cbz = base + 0.17;
            ip.dcbzdz = base + 0.18;
        }
        // Mixed, repeated voxels across the lanes.
        let idx = [3u32, 17, 3, 0, 42, 7, 42, 63];
        let lanes = ia.gather8(&idx);
        for (l, &v) in idx.iter().enumerate() {
            let f = &ia.data[v as usize];
            assert_eq!(lanes.ex.0[l].to_bits(), f.ex.to_bits());
            assert_eq!(lanes.dexdy.0[l].to_bits(), f.dexdy.to_bits());
            assert_eq!(lanes.dexdz.0[l].to_bits(), f.dexdz.to_bits());
            assert_eq!(lanes.d2exdydz.0[l].to_bits(), f.d2exdydz.to_bits());
            assert_eq!(lanes.ey.0[l].to_bits(), f.ey.to_bits());
            assert_eq!(lanes.deydz.0[l].to_bits(), f.deydz.to_bits());
            assert_eq!(lanes.deydx.0[l].to_bits(), f.deydx.to_bits());
            assert_eq!(lanes.d2eydzdx.0[l].to_bits(), f.d2eydzdx.to_bits());
            assert_eq!(lanes.ez.0[l].to_bits(), f.ez.to_bits());
            assert_eq!(lanes.dezdx.0[l].to_bits(), f.dezdx.to_bits());
            assert_eq!(lanes.dezdy.0[l].to_bits(), f.dezdy.to_bits());
            assert_eq!(lanes.d2ezdxdy.0[l].to_bits(), f.d2ezdxdy.to_bits());
            assert_eq!(lanes.cbx.0[l].to_bits(), f.cbx.to_bits());
            assert_eq!(lanes.dcbxdx.0[l].to_bits(), f.dcbxdx.to_bits());
            assert_eq!(lanes.cby.0[l].to_bits(), f.cby.to_bits());
            assert_eq!(lanes.dcbydy.0[l].to_bits(), f.dcbydy.to_bits());
            assert_eq!(lanes.cbz.0[l].to_bits(), f.cbz.to_bits());
            assert_eq!(lanes.dcbzdz.0[l].to_bits(), f.dcbzdz.to_bits());
        }

        // The fused gather+interpolate path must reproduce the scalar
        // push's interpolation expressions bit-for-bit, lane by lane.
        let mk = |seed: u32| {
            F32x8(std::array::from_fn(|l| {
                ((seed + l as u32) as f32).mul_add(0.0371, -0.45)
            }))
        };
        let (dx, dy, dz) = (mk(1), mk(5), mk(11));
        let qdt = 0.173_f32;
        let ((hax, hay, haz), (cbx, cby, cbz)) = ia.gather_ha_cb8(&idx, dx, dy, dz, qdt);
        for (l, &v) in idx.iter().enumerate() {
            let f = &ia.data[v as usize];
            let (x, y, z) = (dx.0[l], dy.0[l], dz.0[l]);
            let sx = qdt * ((f.ex + y * f.dexdy) + z * (f.dexdz + y * f.d2exdydz));
            let sy = qdt * ((f.ey + z * f.deydz) + x * (f.deydx + z * f.d2eydzdx));
            let sz = qdt * ((f.ez + x * f.dezdx) + y * (f.dezdy + x * f.d2ezdxdy));
            assert_eq!(hax.0[l].to_bits(), sx.to_bits());
            assert_eq!(hay.0[l].to_bits(), sy.to_bits());
            assert_eq!(haz.0[l].to_bits(), sz.to_bits());
            assert_eq!(cbx.0[l].to_bits(), (f.cbx + x * f.dcbxdx).to_bits());
            assert_eq!(cby.0[l].to_bits(), (f.cby + y * f.dcbydy).to_bits());
            assert_eq!(cbz.0[l].to_bits(), (f.cbz + z * f.dcbzdz).to_bits());
        }
    }

    #[test]
    fn linear_b_gradient_is_recovered() {
        let g = Grid::periodic((4, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        // cbx grows linearly in x: cbx(i) = i (face-registered on x planes).
        for k in 0..g.strides().2 {
            for j in 0..g.strides().1 {
                for i in 0..g.strides().0 {
                    f.cbx[g.voxel(i, j, k)] = i as f32;
                }
            }
        }
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let ip = &ia.data[g.voxel(2, 1, 1)];
        // Faces at i=2 (dx=-1) and i=3 (dx=+1).
        assert!((ip.cb_at(-1.0, 0.0, 0.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.cb_at(1.0, 0.0, 0.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.cb_at(0.5, 0.0, 0.0).0 - 2.75).abs() < 1e-6);
    }
}
