//! Per-voxel interpolation coefficients (VPIC's `interpolator_array`).
//!
//! Once per step the Yee fields are converted into 18 coefficients per
//! voxel so the particle push evaluates `E` and `cB` at a particle with a
//! handful of fused multiply-adds and a single indexed load:
//!
//! * Each `E` component is bilinear in the two directions transverse to its
//!   edge and constant along the edge (the energy-conserving scheme that
//!   pairs with the charge-conserving current deposition).
//! * Each `cB` component is linear along its face normal only.

use crate::field::FieldArray;
use crate::grid::Grid;
use rayon::prelude::*;

/// Interpolation coefficients for one voxel (offsets in `[-1,1]`):
///
/// ```text
/// Ex(dy,dz) = ex + dy·dexdy + dz·dexdz + dy·dz·d2exdydz
/// Ey(dz,dx) = ey + dz·deydz + dx·deydx + dz·dx·d2eydzdx
/// Ez(dx,dy) = ez + dx·dezdx + dy·dezdy + dx·dy·d2ezdxdy
/// cBx(dx)   = cbx + dx·dcbxdx      (and cyclic)
/// ```
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Interpolator {
    pub ex: f32,
    pub dexdy: f32,
    pub dexdz: f32,
    pub d2exdydz: f32,
    pub ey: f32,
    pub deydz: f32,
    pub deydx: f32,
    pub d2eydzdx: f32,
    pub ez: f32,
    pub dezdx: f32,
    pub dezdy: f32,
    pub d2ezdxdy: f32,
    pub cbx: f32,
    pub dcbxdx: f32,
    pub cby: f32,
    pub dcbydy: f32,
    pub cbz: f32,
    pub dcbzdz: f32,
}

impl Interpolator {
    /// Evaluate `E` at voxel-relative offsets.
    #[inline]
    pub fn e_at(&self, dx: f32, dy: f32, dz: f32) -> (f32, f32, f32) {
        (
            (self.ex + dy * self.dexdy) + dz * (self.dexdz + dy * self.d2exdydz),
            (self.ey + dz * self.deydz) + dx * (self.deydx + dz * self.d2eydzdx),
            (self.ez + dx * self.dezdx) + dy * (self.dezdy + dx * self.d2ezdxdy),
        )
    }

    /// Evaluate `cB` at voxel-relative offsets.
    #[inline]
    pub fn cb_at(&self, dx: f32, dy: f32, dz: f32) -> (f32, f32, f32) {
        (
            self.cbx + dx * self.dcbxdx,
            self.cby + dy * self.dcbydy,
            self.cbz + dz * self.dcbzdz,
        )
    }
}

/// Interpolator coefficients for every voxel (ghost entries stay zero).
#[derive(Clone, Debug)]
pub struct InterpolatorArray {
    pub data: Vec<Interpolator>,
}

impl InterpolatorArray {
    /// Zeroed array sized for `grid`.
    pub fn new(grid: &Grid) -> Self {
        InterpolatorArray {
            data: vec![Interpolator::default(); grid.n_voxels()],
        }
    }

    /// Rebuild all live-voxel coefficients from `fields`. Ghost planes of
    /// the fields must be synchronized (the field solver does this after
    /// every update).
    ///
    /// Parallelized over z-slabs: voxel `(i,j,k)` only writes its own
    /// entry and reads field values at `v`, `v+1`, `v+dj`, `v+dk` (shared,
    /// immutable), so slabs are independent and the result is bitwise
    /// identical to [`Self::load_serial`] for any worker count.
    pub fn load(&mut self, f: &FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        const Q: f32 = 0.25;
        const H: f32 = 0.5;
        self.data
            .par_chunks_mut(dk)
            .enumerate()
            .skip(1)
            .take(g.nz)
            .for_each(|(k, slab)| {
                for j in 1..=g.ny {
                    for i in 1..=g.nx {
                        let v = g.voxel(i, j, k);
                        let ip = &mut slab[v - k * dk];

                        // Ex on the 4 x-edges of the voxel: (j,k), (j+1,k), (k+1), (j+1,k+1).
                        let (w0, w1, w2, w3) =
                            (f.ex[v], f.ex[v + dj], f.ex[v + dk], f.ex[v + dj + dk]);
                        ip.ex = Q * (w0 + w1 + w2 + w3);
                        ip.dexdy = Q * ((w1 + w3) - (w0 + w2));
                        ip.dexdz = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2exdydz = Q * ((w0 + w3) - (w1 + w2));

                        // Ey on the 4 y-edges: (k,i), (k+1,i), (i+1), (k+1,i+1).
                        let (w0, w1, w2, w3) =
                            (f.ey[v], f.ey[v + dk], f.ey[v + 1], f.ey[v + dk + 1]);
                        ip.ey = Q * (w0 + w1 + w2 + w3);
                        ip.deydz = Q * ((w1 + w3) - (w0 + w2));
                        ip.deydx = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2eydzdx = Q * ((w0 + w3) - (w1 + w2));

                        // Ez on the 4 z-edges: (i,j), (i+1,j), (j+1), (i+1,j+1).
                        let (w0, w1, w2, w3) =
                            (f.ez[v], f.ez[v + 1], f.ez[v + dj], f.ez[v + 1 + dj]);
                        ip.ez = Q * (w0 + w1 + w2 + w3);
                        ip.dezdx = Q * ((w1 + w3) - (w0 + w2));
                        ip.dezdy = Q * ((w2 + w3) - (w0 + w1));
                        ip.d2ezdxdy = Q * ((w0 + w3) - (w1 + w2));

                        // cB linear along its own normal.
                        ip.cbx = H * (f.cbx[v] + f.cbx[v + 1]);
                        ip.dcbxdx = H * (f.cbx[v + 1] - f.cbx[v]);
                        ip.cby = H * (f.cby[v] + f.cby[v + dj]);
                        ip.dcbydy = H * (f.cby[v + dj] - f.cby[v]);
                        ip.cbz = H * (f.cbz[v] + f.cbz[v + dk]);
                        ip.dcbzdz = H * (f.cbz[v + dk] - f.cbz[v]);
                    }
                }
            });
    }

    /// Serial reference for [`Self::load`].
    pub fn load_serial(&mut self, f: &FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        const Q: f32 = 0.25;
        const H: f32 = 0.5;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    let ip = &mut self.data[v];

                    // Ex on the 4 x-edges of the voxel: (j,k), (j+1,k), (k+1), (j+1,k+1).
                    let (w0, w1, w2, w3) = (f.ex[v], f.ex[v + dj], f.ex[v + dk], f.ex[v + dj + dk]);
                    ip.ex = Q * (w0 + w1 + w2 + w3);
                    ip.dexdy = Q * ((w1 + w3) - (w0 + w2));
                    ip.dexdz = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2exdydz = Q * ((w0 + w3) - (w1 + w2));

                    // Ey on the 4 y-edges: (k,i), (k+1,i), (i+1), (k+1,i+1).
                    let (w0, w1, w2, w3) = (f.ey[v], f.ey[v + dk], f.ey[v + 1], f.ey[v + dk + 1]);
                    ip.ey = Q * (w0 + w1 + w2 + w3);
                    ip.deydz = Q * ((w1 + w3) - (w0 + w2));
                    ip.deydx = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2eydzdx = Q * ((w0 + w3) - (w1 + w2));

                    // Ez on the 4 z-edges: (i,j), (i+1,j), (j+1), (i+1,j+1).
                    let (w0, w1, w2, w3) = (f.ez[v], f.ez[v + 1], f.ez[v + dj], f.ez[v + 1 + dj]);
                    ip.ez = Q * (w0 + w1 + w2 + w3);
                    ip.dezdx = Q * ((w1 + w3) - (w0 + w2));
                    ip.dezdy = Q * ((w2 + w3) - (w0 + w1));
                    ip.d2ezdxdy = Q * ((w0 + w3) - (w1 + w2));

                    // cB linear along its own normal.
                    ip.cbx = H * (f.cbx[v] + f.cbx[v + 1]);
                    ip.dcbxdx = H * (f.cbx[v + 1] - f.cbx[v]);
                    ip.cby = H * (f.cby[v] + f.cby[v + dj]);
                    ip.dcbydy = H * (f.cby[v + dj] - f.cby[v]);
                    ip.cbz = H * (f.cbz[v] + f.cbz[v + dk]);
                    ip.dcbzdz = H * (f.cbz[v + dk] - f.cbz[v]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::{bcs_of, sync_b, sync_e};

    #[test]
    fn corners_recover_edge_values() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        // Distinct values on each x-edge of voxel (2,2,2).
        let v = g.voxel(2, 2, 2);
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        f.ex[v] = 1.0;
        f.ex[v + dj] = 2.0;
        f.ex[v + dk] = 3.0;
        f.ex[v + dj + dk] = 4.0;
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let ip = &ia.data[v];
        // dy=-1, dz=-1 corner → edge (j,k) value.
        assert!((ip.e_at(0.0, -1.0, -1.0).0 - 1.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, -1.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, -1.0, 1.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, 1.0).0 - 4.0).abs() < 1e-6);
        // Center is the average.
        assert!((ip.e_at(0.0, 0.0, 0.0).0 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn uniform_fields_interpolate_exactly() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        for val in f.ex.iter_mut() {
            *val = 5.0;
        }
        for val in f.cby.iter_mut() {
            *val = -2.0;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        for k in 1..=3 {
            for j in 1..=3 {
                for i in 1..=3 {
                    let ip = &ia.data[g.voxel(i, j, k)];
                    let (ex, ey, ez) = ip.e_at(0.37, -0.81, 0.12);
                    assert!((ex - 5.0).abs() < 1e-6);
                    assert_eq!(ey, 0.0);
                    assert_eq!(ez, 0.0);
                    let (bx, by, bz) = ip.cb_at(0.37, -0.81, 0.12);
                    assert_eq!(bx, 0.0);
                    assert!((by + 2.0).abs() < 1e-6);
                    assert_eq!(bz, 0.0);
                }
            }
        }
    }

    #[test]
    fn linear_b_gradient_is_recovered() {
        let g = Grid::periodic((4, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        // cbx grows linearly in x: cbx(i) = i (face-registered on x planes).
        for k in 0..g.strides().2 {
            for j in 0..g.strides().1 {
                for i in 0..g.strides().0 {
                    f.cbx[g.voxel(i, j, k)] = i as f32;
                }
            }
        }
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let ip = &ia.data[g.voxel(2, 1, 1)];
        // Faces at i=2 (dx=-1) and i=3 (dx=+1).
        assert!((ip.cb_at(-1.0, 0.0, 0.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.cb_at(1.0, 0.0, 0.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.cb_at(0.5, 0.0, 0.0).0 - 2.75).abs() < 1e-6);
    }
}
