//! Crash-safe job queue: the state machine the sweep journal records.
//!
//! A job walks `Pending → Leased → Running → Done | Failed |
//! Quarantined`. Every transition is a [`JobEvent`] with a compact
//! little-endian encoding; the orchestrator appends the event to its
//! write-ahead journal (`crate::journal`) *before* acting on it, and a
//! restarted orchestrator rebuilds this queue by replaying the journal
//! through [`JobQueue::apply`]. The queue itself is pure state — no I/O,
//! no wall clock — so replays are deterministic and testable.
//!
//! Timing (lease deadlines, retry backoff) uses a caller-supplied
//! logical clock in milliseconds. Retry backoff is exponential with
//! seeded jitter ([`RetryPolicy::backoff_ms`]) so two replays of the
//! same sweep schedule identically while distinct jobs decorrelate.
//!
//! Two kinds of lease loss are deliberately distinct:
//!
//! * [`JobQueue::reclaim_expired`] — a live orchestrator notices a
//!   heartbeat deadline passed. The worker is presumed wedged; the job
//!   *failed an attempt* and retries with backoff (or quarantines).
//! * [`JobQueue::release_orphaned`] — a restarted orchestrator knows
//!   its in-process workers died with it. Leases are released without
//!   charging an attempt, and the job resumes from its last certified
//!   checkpoint step (the `Progress` heartbeats double as step
//!   accounting).

use std::collections::BTreeMap;

/// Retry/backoff policy for failed jobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts before a job is quarantined (≥ 1).
    pub max_attempts: u32,
    /// Backoff after the first failure, in logical ms.
    pub base_backoff_ms: u64,
    /// Upper bound on the exponential backoff, in logical ms.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 1_000,
            max_backoff_ms: 60_000,
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 finalizer (the repo's standard seed mixer).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based: the wait after
    /// the `attempt`-th failure) of `job_id`: exponential doubling from
    /// `base_backoff_ms`, capped, plus up to 50% seeded jitter keyed on
    /// (seed, job, attempt) so identical replays schedule identically.
    pub fn backoff_ms(&self, job_id: u64, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(32);
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << doublings)
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        let jitter_span = exp / 2 + 1;
        let mix = splitmix64(self.jitter_seed ^ job_id.rotate_left(17) ^ (attempt as u64) << 48);
        exp + mix % jitter_span
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Defined and runnable (subject to its backoff gate).
    Pending,
    /// Handed to a worker; must start or the lease expires.
    Leased { attempt: u32, deadline_ms: u64 },
    /// Worker confirmed execution; heartbeats extend the deadline.
    Running { attempt: u32, deadline_ms: u64 },
    /// Finished; result payload recorded.
    Done,
    /// Attempt failed; eligible for retry after backoff.
    Failed,
    /// Poisoned: failed `max_attempts` times, never retried again.
    Quarantined,
}

impl JobState {
    /// Short lowercase name (for errors, logs and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Leased { .. } => "leased",
            JobState::Running { .. } => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Quarantined => "quarantined",
        }
    }
}

/// One job's replayed state.
#[derive(Debug, Clone)]
pub struct Job {
    /// Stable identity (grid index for sweep jobs).
    pub id: u64,
    /// Fingerprint of the job's spec; replay cross-checks it so a
    /// journal from a *different* sweep is rejected, not misapplied.
    pub fingerprint: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Failed attempts so far.
    pub attempts: u32,
    /// Highest certified checkpoint step heartbeated by a worker; a
    /// resumed run must not recompute physics at or before this step.
    pub certified_step: u64,
    /// Logical time before which the job may not be (re)leased.
    pub ready_at_ms: u64,
    /// Result payload from the `Done` event.
    pub result: Option<Vec<u8>>,
    /// Most recent failure/quarantine cause.
    pub last_cause: Option<String>,
}

/// A journaled state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// Job exists with this spec fingerprint.
    Defined { id: u64, fingerprint: u64 },
    /// Job handed to a worker until `deadline_ms`.
    Leased {
        id: u64,
        attempt: u32,
        deadline_ms: u64,
    },
    /// Worker confirmed execution.
    Started { id: u64, attempt: u32 },
    /// Heartbeat: checkpoint certified at `certified_step`; lease
    /// extended to `deadline_ms`.
    Progress {
        id: u64,
        certified_step: u64,
        deadline_ms: u64,
    },
    /// Job finished with an opaque result payload.
    Done { id: u64, result: Vec<u8> },
    /// Attempt `attempt` failed; retry after `ready_at_ms`.
    Failed {
        id: u64,
        attempt: u32,
        ready_at_ms: u64,
        cause: String,
    },
    /// Job is poison: out of attempts, never retried.
    Quarantined { id: u64, cause: String },
    /// Lease released without charging an attempt: a restarted
    /// orchestrator journals this for every lease its dead predecessor
    /// held (the predecessor cannot journal its own death). The job
    /// returns to `Pending` with its certified step intact.
    Released { id: u64 },
}

impl JobEvent {
    /// Job this event belongs to.
    pub fn id(&self) -> u64 {
        match *self {
            JobEvent::Defined { id, .. }
            | JobEvent::Leased { id, .. }
            | JobEvent::Started { id, .. }
            | JobEvent::Progress { id, .. }
            | JobEvent::Done { id, .. }
            | JobEvent::Failed { id, .. }
            | JobEvent::Quarantined { id, .. }
            | JobEvent::Released { id } => id,
        }
    }

    /// Event name (for errors and logs).
    pub fn name(&self) -> &'static str {
        match self {
            JobEvent::Defined { .. } => "defined",
            JobEvent::Leased { .. } => "leased",
            JobEvent::Started { .. } => "started",
            JobEvent::Progress { .. } => "progress",
            JobEvent::Done { .. } => "done",
            JobEvent::Failed { .. } => "failed",
            JobEvent::Quarantined { .. } => "quarantined",
            JobEvent::Released { .. } => "released",
        }
    }

    /// Compact little-endian encoding (journal record payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            JobEvent::Defined { id, fingerprint } => {
                out.push(0);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&fingerprint.to_le_bytes());
            }
            JobEvent::Leased {
                id,
                attempt,
                deadline_ms,
            } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            JobEvent::Started { id, attempt } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
            }
            JobEvent::Progress {
                id,
                certified_step,
                deadline_ms,
            } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&certified_step.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            JobEvent::Done { id, result } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(result.len() as u32).to_le_bytes());
                out.extend_from_slice(result);
            }
            JobEvent::Failed {
                id,
                attempt,
                ready_at_ms,
                cause,
            } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&ready_at_ms.to_le_bytes());
                out.extend_from_slice(&(cause.len() as u32).to_le_bytes());
                out.extend_from_slice(cause.as_bytes());
            }
            JobEvent::Quarantined { id, cause } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(cause.len() as u32).to_le_bytes());
                out.extend_from_slice(cause.as_bytes());
            }
            JobEvent::Released { id } => {
                out.push(7);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    /// Decode an event payload. Any defect (short buffer, bad tag,
    /// trailing garbage, invalid UTF-8) is a typed [`QueueError`].
    pub fn decode(bytes: &[u8]) -> Result<JobEvent, QueueError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let ev = match tag {
            0 => JobEvent::Defined {
                id: r.u64()?,
                fingerprint: r.u64()?,
            },
            1 => JobEvent::Leased {
                id: r.u64()?,
                attempt: r.u32()?,
                deadline_ms: r.u64()?,
            },
            2 => JobEvent::Started {
                id: r.u64()?,
                attempt: r.u32()?,
            },
            3 => JobEvent::Progress {
                id: r.u64()?,
                certified_step: r.u64()?,
                deadline_ms: r.u64()?,
            },
            4 => JobEvent::Done {
                id: r.u64()?,
                result: r.blob()?,
            },
            5 => JobEvent::Failed {
                id: r.u64()?,
                attempt: r.u32()?,
                ready_at_ms: r.u64()?,
                cause: r.string()?,
            },
            6 => JobEvent::Quarantined {
                id: r.u64()?,
                cause: r.string()?,
            },
            7 => JobEvent::Released { id: r.u64()? },
            t => return Err(QueueError::Malformed(format!("unknown job event tag {t}"))),
        };
        if r.pos != bytes.len() {
            return Err(QueueError::Malformed(format!(
                "{} trailing bytes after {} event",
                bytes.len() - r.pos,
                ev.name()
            )));
        }
        Ok(ev)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], QueueError> {
        if self.bytes.len() - self.pos < n {
            return Err(QueueError::Malformed(format!(
                "event truncated at byte {} (need {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, QueueError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, QueueError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, QueueError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn blob(&mut self) -> Result<Vec<u8>, QueueError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, QueueError> {
        String::from_utf8(self.blob()?)
            .map_err(|e| QueueError::Malformed(format!("invalid UTF-8 in event string: {e}")))
    }
}

/// Typed queue failure.
#[derive(Debug)]
pub enum QueueError {
    /// An event payload failed to decode.
    Malformed(String),
    /// An event referenced a job the queue has never seen defined.
    UnknownJob(u64),
    /// An event is illegal from the job's current state.
    IllegalTransition {
        id: u64,
        from: &'static str,
        event: &'static str,
    },
    /// A `Defined` event's fingerprint contradicts the existing job:
    /// the journal belongs to a different sweep.
    FingerprintMismatch { id: u64, expected: u64, got: u64 },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Malformed(msg) => write!(f, "malformed job event: {msg}"),
            QueueError::UnknownJob(id) => write!(f, "event for undefined job {id}"),
            QueueError::IllegalTransition { id, from, event } => {
                write!(f, "job {id}: illegal `{event}` event from state `{from}`")
            }
            QueueError::FingerprintMismatch { id, expected, got } => write!(
                f,
                "job {id}: spec fingerprint {got:#018x} contradicts journal's {expected:#018x} \
                 (journal belongs to a different sweep)"
            ),
        }
    }
}

impl std::error::Error for QueueError {}

/// Aggregate counters over the whole queue (for progress reporting and
/// the service-level bench record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    pub pending: usize,
    pub leased: usize,
    pub running: usize,
    pub done: usize,
    pub failed: usize,
    pub quarantined: usize,
    /// Total failed attempts across all jobs (retries + quarantines).
    pub total_failures: u64,
}

/// Replayable in-memory job queue.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: BTreeMap<u64, Job>,
}

impl JobQueue {
    /// Empty queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Look up a job.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Number of defined jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are defined.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Apply one event (live or replayed). Transitions are validated;
    /// an event a correct orchestrator could never journal is an error,
    /// not a silent state change. `Done` is idempotent: a duplicate
    /// `Done` for an already-done job is accepted and ignored, because
    /// deterministic jobs make duplicate results identical by
    /// construction.
    pub fn apply(&mut self, event: &JobEvent) -> Result<(), QueueError> {
        let id = event.id();
        if let JobEvent::Defined { id, fingerprint } = *event {
            match self.jobs.get(&id) {
                None => {
                    self.jobs.insert(
                        id,
                        Job {
                            id,
                            fingerprint,
                            state: JobState::Pending,
                            attempts: 0,
                            certified_step: 0,
                            ready_at_ms: 0,
                            result: None,
                            last_cause: None,
                        },
                    );
                    return Ok(());
                }
                Some(existing) if existing.fingerprint == fingerprint => return Ok(()),
                Some(existing) => {
                    return Err(QueueError::FingerprintMismatch {
                        id,
                        expected: existing.fingerprint,
                        got: fingerprint,
                    })
                }
            }
        }
        let job = self.jobs.get_mut(&id).ok_or(QueueError::UnknownJob(id))?;
        let illegal = |job: &Job, event: &JobEvent| QueueError::IllegalTransition {
            id,
            from: job.state.name(),
            event: event.name(),
        };
        match event {
            JobEvent::Defined { .. } => unreachable!("handled above"),
            JobEvent::Leased {
                attempt,
                deadline_ms,
                ..
            } => match job.state {
                JobState::Pending | JobState::Failed => {
                    job.state = JobState::Leased {
                        attempt: *attempt,
                        deadline_ms: *deadline_ms,
                    };
                }
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Started { attempt, .. } => match job.state {
                JobState::Leased { deadline_ms, .. } => {
                    job.state = JobState::Running {
                        attempt: *attempt,
                        deadline_ms,
                    };
                }
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Progress {
                certified_step,
                deadline_ms,
                ..
            } => match job.state {
                JobState::Running { attempt, .. } => {
                    job.state = JobState::Running {
                        attempt,
                        deadline_ms: *deadline_ms,
                    };
                    job.certified_step = job.certified_step.max(*certified_step);
                }
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Done { result, .. } => match job.state {
                JobState::Running { .. } | JobState::Leased { .. } => {
                    job.state = JobState::Done;
                    job.result = Some(result.clone());
                }
                // Exactly-once aggregation tolerates duplicate Done
                // records: deterministic jobs yield identical payloads.
                JobState::Done => {}
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Failed {
                attempt,
                ready_at_ms,
                cause,
                ..
            } => match job.state {
                JobState::Leased { .. } | JobState::Running { .. } => {
                    job.state = JobState::Failed;
                    job.attempts = (*attempt).max(job.attempts + 1);
                    job.ready_at_ms = *ready_at_ms;
                    job.last_cause = Some(cause.clone());
                }
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Quarantined { cause, .. } => match job.state {
                JobState::Failed | JobState::Leased { .. } | JobState::Running { .. } => {
                    job.state = JobState::Quarantined;
                    job.last_cause = Some(cause.clone());
                }
                _ => return Err(illegal(job, event)),
            },
            JobEvent::Released { .. } => match job.state {
                JobState::Leased { .. } | JobState::Running { .. } => {
                    job.state = JobState::Pending;
                    job.ready_at_ms = 0;
                }
                _ => return Err(illegal(job, event)),
            },
        }
        Ok(())
    }

    /// Lowest-id job that may be leased at logical time `now_ms`
    /// (pending or failed-and-past-backoff). Deterministic: the same
    /// queue state and clock always picks the same job.
    pub fn next_ready(&self, now_ms: u64) -> Option<u64> {
        self.jobs
            .values()
            .find(|j| {
                matches!(j.state, JobState::Pending | JobState::Failed) && j.ready_at_ms <= now_ms
            })
            .map(|j| j.id)
    }

    /// Earliest `ready_at_ms` among retry-gated jobs (so an idle
    /// orchestrator knows how far to advance its logical clock).
    pub fn next_ready_at(&self) -> Option<u64> {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Pending | JobState::Failed))
            .map(|j| j.ready_at_ms)
            .min()
    }

    /// Jobs whose lease deadline has passed at `now_ms`: a live
    /// orchestrator turns each into a `Failed` event (the worker is
    /// wedged; the attempt is charged).
    pub fn expired_leases(&self, now_ms: u64) -> Vec<u64> {
        self.jobs
            .values()
            .filter(|j| match j.state {
                JobState::Leased { deadline_ms, .. } | JobState::Running { deadline_ms, .. } => {
                    deadline_ms < now_ms
                }
                _ => false,
            })
            .map(|j| j.id)
            .collect()
    }

    /// Release every lease without charging an attempt: a *restarted*
    /// orchestrator's in-process workers died with the old process, so
    /// leased/running jobs return to `Pending` and resume from their
    /// certified checkpoint. Returns the released ids.
    pub fn release_orphaned(&mut self) -> Vec<u64> {
        let mut released = Vec::new();
        for job in self.jobs.values_mut() {
            if matches!(
                job.state,
                JobState::Leased { .. } | JobState::Running { .. }
            ) {
                job.state = JobState::Pending;
                job.ready_at_ms = 0;
                released.push(job.id);
            }
        }
        released
    }

    /// True when no job can make further progress (everything is done
    /// or quarantined).
    pub fn is_settled(&self) -> bool {
        self.jobs
            .values()
            .all(|j| matches!(j.state, JobState::Done | JobState::Quarantined))
    }

    /// Aggregate counters.
    pub fn stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for j in self.jobs.values() {
            match j.state {
                JobState::Pending => s.pending += 1,
                JobState::Leased { .. } => s.leased += 1,
                JobState::Running { .. } => s.running += 1,
                JobState::Done => s.done += 1,
                JobState::Failed => s.failed += 1,
                JobState::Quarantined => s.quarantined += 1,
            }
            s.total_failures += j.attempts as u64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: JobEvent) {
        let bytes = ev.encode();
        let back = JobEvent::decode(&bytes).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn every_event_roundtrips() {
        roundtrip(JobEvent::Defined {
            id: 3,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        });
        roundtrip(JobEvent::Leased {
            id: 3,
            attempt: 1,
            deadline_ms: 30_000,
        });
        roundtrip(JobEvent::Started { id: 3, attempt: 1 });
        roundtrip(JobEvent::Progress {
            id: 3,
            certified_step: 75,
            deadline_ms: 60_000,
        });
        roundtrip(JobEvent::Done {
            id: 3,
            result: vec![1, 2, 3, 255],
        });
        roundtrip(JobEvent::Failed {
            id: 3,
            attempt: 2,
            ready_at_ms: 12_345,
            cause: "sentinel verdict: non-finite energy".into(),
        });
        roundtrip(JobEvent::Quarantined {
            id: 3,
            cause: "out of attempts".into(),
        });
        roundtrip(JobEvent::Released { id: 3 });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobEvent::decode(&[]).is_err());
        assert!(JobEvent::decode(&[9]).is_err());
        assert!(JobEvent::decode(&[0, 1, 2]).is_err());
        // Trailing bytes after a well-formed event.
        let mut bytes = JobEvent::Started { id: 1, attempt: 1 }.encode();
        bytes.push(0);
        assert!(JobEvent::decode(&bytes).is_err());
        // String length pointing past the buffer.
        let mut bytes = JobEvent::Quarantined {
            id: 1,
            cause: "x".into(),
        }
        .encode();
        let n = bytes.len();
        bytes[n - 2] = 0xFF;
        assert!(JobEvent::decode(&bytes).is_err());
    }

    #[test]
    fn happy_path_walks_the_state_machine() {
        let mut q = JobQueue::new();
        q.apply(&JobEvent::Defined {
            id: 0,
            fingerprint: 42,
        })
        .unwrap();
        assert_eq!(q.next_ready(0), Some(0));
        q.apply(&JobEvent::Leased {
            id: 0,
            attempt: 1,
            deadline_ms: 100,
        })
        .unwrap();
        q.apply(&JobEvent::Started { id: 0, attempt: 1 }).unwrap();
        q.apply(&JobEvent::Progress {
            id: 0,
            certified_step: 25,
            deadline_ms: 200,
        })
        .unwrap();
        q.apply(&JobEvent::Done {
            id: 0,
            result: b"r".to_vec(),
        })
        .unwrap();
        let job = q.job(0).unwrap();
        assert_eq!(job.state, JobState::Done);
        assert_eq!(job.certified_step, 25);
        assert!(q.is_settled());
        // Duplicate Done is benign.
        q.apply(&JobEvent::Done {
            id: 0,
            result: b"r".to_vec(),
        })
        .unwrap();
    }

    #[test]
    fn illegal_transitions_are_typed_errors() {
        let mut q = JobQueue::new();
        q.apply(&JobEvent::Defined {
            id: 7,
            fingerprint: 1,
        })
        .unwrap();
        // Start without a lease.
        assert!(matches!(
            q.apply(&JobEvent::Started { id: 7, attempt: 1 }),
            Err(QueueError::IllegalTransition { .. })
        ));
        // Progress without running.
        assert!(matches!(
            q.apply(&JobEvent::Progress {
                id: 7,
                certified_step: 1,
                deadline_ms: 1
            }),
            Err(QueueError::IllegalTransition { .. })
        ));
        // Event for a job never defined.
        assert!(matches!(
            q.apply(&JobEvent::Started { id: 99, attempt: 1 }),
            Err(QueueError::UnknownJob(99))
        ));
        // Re-define with a different fingerprint.
        assert!(matches!(
            q.apply(&JobEvent::Defined {
                id: 7,
                fingerprint: 2
            }),
            Err(QueueError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn retry_backoff_gates_and_quarantine_closes() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            jitter_seed: 9,
        };
        let mut q = JobQueue::new();
        q.apply(&JobEvent::Defined {
            id: 1,
            fingerprint: 5,
        })
        .unwrap();
        let mut now = 0u64;
        for attempt in 1..=policy.max_attempts {
            q.apply(&JobEvent::Leased {
                id: 1,
                attempt,
                deadline_ms: now + 1_000,
            })
            .unwrap();
            q.apply(&JobEvent::Started { id: 1, attempt }).unwrap();
            let ready_at = now + policy.backoff_ms(1, attempt);
            q.apply(&JobEvent::Failed {
                id: 1,
                attempt,
                ready_at_ms: ready_at,
                cause: format!("boom {attempt}"),
            })
            .unwrap();
            assert_eq!(q.job(1).unwrap().attempts, attempt);
            if attempt < policy.max_attempts {
                // Backoff gate holds until ready_at.
                assert_eq!(q.next_ready(now), None);
                assert_eq!(q.next_ready_at(), Some(ready_at));
                now = ready_at;
                assert_eq!(q.next_ready(now), Some(1));
            }
        }
        q.apply(&JobEvent::Quarantined {
            id: 1,
            cause: "out of attempts".into(),
        })
        .unwrap();
        assert!(q.is_settled());
        assert_eq!(q.next_ready(u64::MAX), None);
        let stats = q.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.total_failures, 3);
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 100,
            max_backoff_ms: 1_600,
            jitter_seed: 7,
        };
        let mut prev_base = 0;
        for attempt in 1..=6 {
            let b = policy.backoff_ms(4, attempt);
            let base = 100u64 * (1 << (attempt - 1).min(4));
            let base = base.min(1_600);
            assert!(
                b >= base && b <= base + base / 2 + 1,
                "attempt {attempt}: {b} outside [{base}, {}]",
                base + base / 2 + 1
            );
            assert_eq!(b, policy.backoff_ms(4, attempt), "jitter not deterministic");
            assert!(base >= prev_base);
            prev_base = base;
        }
        // Different jobs decorrelate.
        assert_ne!(policy.backoff_ms(4, 1), policy.backoff_ms(5, 1));
    }

    #[test]
    fn orphan_release_keeps_certified_step_and_charges_no_attempt() {
        let mut q = JobQueue::new();
        q.apply(&JobEvent::Defined {
            id: 2,
            fingerprint: 3,
        })
        .unwrap();
        q.apply(&JobEvent::Leased {
            id: 2,
            attempt: 1,
            deadline_ms: 500,
        })
        .unwrap();
        q.apply(&JobEvent::Started { id: 2, attempt: 1 }).unwrap();
        q.apply(&JobEvent::Progress {
            id: 2,
            certified_step: 50,
            deadline_ms: 900,
        })
        .unwrap();
        // Live path: deadline passes, lease is expired (attempt charged
        // by the Failed event the orchestrator writes).
        assert_eq!(q.expired_leases(899), Vec::<u64>::new());
        assert_eq!(q.expired_leases(901), vec![2]);
        // Crash path: restart releases without charging.
        let released = q.clone().release_orphaned();
        assert_eq!(released, vec![2]);
        let mut q2 = q.clone();
        q2.release_orphaned();
        let job = q2.job(2).unwrap();
        assert_eq!(job.state, JobState::Pending);
        assert_eq!(job.attempts, 0);
        assert_eq!(job.certified_step, 50, "resume point must survive restart");
        // The journaled form of the same release: `Released` replays to
        // the identical state, and a re-lease is then legal again.
        let mut q3 = q.clone();
        q3.apply(&JobEvent::Released { id: 2 }).unwrap();
        let job = q3.job(2).unwrap();
        assert_eq!(job.state, JobState::Pending);
        assert_eq!(job.attempts, 0);
        assert_eq!(job.certified_step, 50);
        q3.apply(&JobEvent::Leased {
            id: 2,
            attempt: 1,
            deadline_ms: 2_000,
        })
        .unwrap();
        // Released from a settled state is illegal.
        let mut q4 = JobQueue::new();
        q4.apply(&JobEvent::Defined {
            id: 9,
            fingerprint: 1,
        })
        .unwrap();
        assert!(matches!(
            q4.apply(&JobEvent::Released { id: 9 }),
            Err(QueueError::IllegalTransition { .. })
        ));
    }
}
