//! Numerical-integrity sentinel: tiered invariant monitors, an anomaly
//! classifier and an escalating self-healing ladder.
//!
//! The paper's trillion-particle campaigns die as easily from numerical
//! blow-up as from node loss — a NaN injected by a cosmic ray or a
//! mis-set deck propagates through the whole mesh within a few light
//! crossings. The sentinel watches the invariants PIC gives us for free:
//!
//! * **NaN/Inf sweeps** over field components, particles and current
//!   accumulators (the cheapest canaries; a single non-finite value is
//!   always fatal if left alone);
//! * **Gauss-law residual** `∇·E − ρ/ε0` and `∇·B` RMS via the existing
//!   Marder machinery (only meaningful when *every* charge species is
//!   explicitly represented — decks using an implicit neutralizing
//!   background, like the LPI decks, must leave these monitors off);
//! * an **energy ledger**: total field + kinetic energy against the
//!   campaign-start baseline plus any externally injected (laser,
//!   boundary) budget;
//! * **per-particle momentum and position-bound checks**;
//! * **CFL validation** at setup ([`validate_cfl`]).
//!
//! Every monitor folds into a flat [`HealthSample`] whose metrics are
//! all *sums or counts*, so a distributed world can combine per-rank
//! samples with a single `allreduce_sum` and every rank classifies the
//! identical global sample — the determinism contract the campaign
//! runtime relies on (see `vpic-parallel::campaign`).
//!
//! When the classifier trips, the escalation ladder runs:
//!
//! 1. **log** — every sample lands in the [`FlightRecorder`] ring;
//! 2. **Marder burst** — repairable anomalies (divergence residuals) get
//!    a cleaning burst whose pass count doubles with each consecutive
//!    escalation, up to `max_marder_bursts`;
//! 3. **rollback** — unrepairable or unhealed anomalies surface as a
//!    structured [`HealthVerdict`] for the campaign runtime to roll back;
//! 4. **degradation** — when recovery is exhausted the flight recorder
//!    serializes the last N samples as JSON next to the partial dump.
//!
//! [`CorruptionPlan`] provides the matching fault injector: seeded,
//! one-shot field corruption (a transient SEU model — the same bit does
//! not re-flip on replay, so a post-rollback run is clean).

use crate::accumulator::AccumulatorSet;
use crate::field::FieldArray;
use crate::field_solver::{clean_div_b, clean_div_e, compute_div_b_err, compute_div_e_err};
use crate::grid::Grid;
use crate::sim::Simulation;
use crate::species::Species;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Sentinel thresholds and cadence. A threshold of `0` disables its
/// monitor; `health_interval = 0` disables the sentinel entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SentinelConfig {
    /// Check every this many steps (0 disables).
    pub health_interval: u64,
    /// Flag when total energy exceeds this multiple of the baseline plus
    /// injected budget (0 disables).
    pub max_energy_growth: f64,
    /// Flag when the Gauss-law residual RMS `∇·E − ρ/ε0` exceeds this
    /// (0 disables). Only valid when all charge species are explicit.
    pub max_div_e_rms: f64,
    /// Flag when the `∇·B` RMS exceeds this (0 disables).
    pub max_div_b_rms: f64,
    /// Flag any particle with `|u| = |p/mc|` above this (0 disables).
    pub max_momentum: f64,
    /// Allowed fractional macroparticle-count drift from the baseline:
    /// negative disables the monitor, `0.0` demands exact conservation
    /// (periodic worlds), positive tolerates losses (absorbing walls).
    pub max_particle_drift: f64,
    /// Base pass count of a Marder healing burst (doubles per
    /// consecutive escalation).
    pub marder_passes: u32,
    /// Consecutive healing bursts to attempt before escalating to
    /// rollback (0 disables in-place healing).
    pub max_marder_bursts: u32,
    /// Health samples retained by the flight recorder.
    pub recorder_len: usize,
}

impl Default for SentinelConfig {
    /// Disabled cadence with sane thresholds: callers opt in by setting
    /// `health_interval` (or via [`SentinelConfig::enabled`]).
    fn default() -> Self {
        SentinelConfig {
            health_interval: 0,
            max_energy_growth: 10.0,
            max_div_e_rms: 0.0,
            max_div_b_rms: 0.0,
            max_momentum: 0.0,
            max_particle_drift: -1.0,
            marder_passes: 4,
            max_marder_bursts: 3,
            recorder_len: 32,
        }
    }
}

impl SentinelConfig {
    /// Defaults with the sentinel armed at a 10-step cadence.
    pub fn enabled() -> Self {
        SentinelConfig {
            health_interval: 10,
            ..Default::default()
        }
    }

    /// True when any check would ever run.
    pub fn active(&self) -> bool {
        self.health_interval > 0
    }
}

/// Run configuration that must survive a checkpoint/restore round-trip:
/// the divergence-cleaning cadence and the sentinel thresholds. Carried
/// by both the serial (v2) and distributed (v3) dump formats.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimConfig {
    /// Marder-clean `∇·E` every this many steps (0 = never).
    pub clean_div_e_interval: usize,
    /// Marder-clean `∇·B` every this many steps (0 = never).
    pub clean_div_b_interval: usize,
    /// Sentinel cadence and thresholds.
    pub sentinel: SentinelConfig,
}

/// One health observation. Every metric is a sum or a count over the
/// local domain, so per-rank samples combine into the global sample by
/// plain addition — one `allreduce_sum` and every rank holds the same
/// numbers (bit-identical: float summation order is fixed by the
/// reduction, not by the physics).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthSample {
    /// Step at which the sample was taken (not reduced; identical on
    /// every rank by construction).
    pub step: u64,
    /// Non-finite values in `E`/`cB` field components.
    pub nonfinite_fields: f64,
    /// Non-finite particle coordinates/momenta/weights.
    pub nonfinite_particles: f64,
    /// Non-finite current-accumulator entries.
    pub nonfinite_accums: f64,
    /// Total field + kinetic energy.
    pub energy: f64,
    /// Macroparticle count.
    pub particles: f64,
    /// `Σ (∇·E − ρ/ε0)²` over live nodes (0 when the monitor is off).
    pub div_e_sum2: f64,
    /// `Σ (∇·B)²` over live cells (0 when the monitor is off).
    pub div_b_sum2: f64,
    /// Live nodes contributing to the divergence sums.
    pub live_nodes: f64,
    /// Net momentum `m c Σ w u` per axis (telemetry; recorded, not
    /// thresholded).
    pub momentum: [f64; 3],
    /// Particles with `|u| > max_momentum`.
    pub over_momentum: f64,
    /// Particles with an out-of-range voxel index or cell offset.
    pub out_of_bounds: f64,
}

impl HealthSample {
    /// Number of reducible metrics in the [`HealthSample::to_vec`]
    /// layout.
    pub const LEN: usize = 13;

    /// Flatten the reducible metrics for an `allreduce_sum`.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.nonfinite_fields,
            self.nonfinite_particles,
            self.nonfinite_accums,
            self.energy,
            self.particles,
            self.div_e_sum2,
            self.div_b_sum2,
            self.live_nodes,
            self.momentum[0],
            self.momentum[1],
            self.momentum[2],
            self.over_momentum,
            self.out_of_bounds,
        ]
    }

    /// Rebuild a (global) sample from a reduced metric vector.
    ///
    /// # Panics
    /// When `v` is shorter than [`HealthSample::LEN`].
    pub fn from_vec(step: u64, v: &[f64]) -> Self {
        assert!(v.len() >= Self::LEN, "short health vector: {}", v.len());
        HealthSample {
            step,
            nonfinite_fields: v[0],
            nonfinite_particles: v[1],
            nonfinite_accums: v[2],
            energy: v[3],
            particles: v[4],
            div_e_sum2: v[5],
            div_b_sum2: v[6],
            live_nodes: v[7],
            momentum: [v[8], v[9], v[10]],
            over_momentum: v[11],
            out_of_bounds: v[12],
        }
    }

    /// Gauss-law residual RMS implied by the sums (0 when no nodes
    /// contributed).
    pub fn div_e_rms(&self) -> f64 {
        if self.live_nodes > 0.0 {
            (self.div_e_sum2 / self.live_nodes).sqrt()
        } else {
            0.0
        }
    }

    /// `∇·B` RMS implied by the sums.
    pub fn div_b_rms(&self) -> f64 {
        if self.live_nodes > 0.0 {
            (self.div_b_sum2 / self.live_nodes).sqrt()
        } else {
            0.0
        }
    }
}

/// What kind of invariant was violated. The taxonomy is shared between
/// serial runs and the distributed campaign runtime — rank faults and
/// numerical faults report through the same channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    NonFiniteFields,
    NonFiniteParticles,
    NonFiniteAccumulators,
    EnergyBlowup,
    GaussLawResidual,
    DivBResidual,
    MomentumBound,
    ParticleBounds,
    ParticleDrift,
    CflViolation,
    /// Ranks disagreed on a collective confirmation (campaign runtime).
    Confirmation,
}

impl AnomalyKind {
    /// Anomalies a Marder cleaning burst can plausibly repair in place.
    /// Everything else needs rollback (or was never a field problem).
    pub fn repairable(self) -> bool {
        matches!(
            self,
            AnomalyKind::GaussLawResidual | AnomalyKind::DivBResidual
        )
    }

    /// Stable snake_case name (flight-recorder JSON, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::NonFiniteFields => "nonfinite_fields",
            AnomalyKind::NonFiniteParticles => "nonfinite_particles",
            AnomalyKind::NonFiniteAccumulators => "nonfinite_accumulators",
            AnomalyKind::EnergyBlowup => "energy_blowup",
            AnomalyKind::GaussLawResidual => "gauss_law_residual",
            AnomalyKind::DivBResidual => "div_b_residual",
            AnomalyKind::MomentumBound => "momentum_bound",
            AnomalyKind::ParticleBounds => "particle_bounds",
            AnomalyKind::ParticleDrift => "particle_drift",
            AnomalyKind::CflViolation => "cfl_violation",
            AnomalyKind::Confirmation => "confirmation",
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed health check: which invariant broke, by how much, and when.
/// Classified from the *globally reduced* sample, so in a distributed
/// world every rank constructs a bit-identical verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthVerdict {
    pub kind: AnomalyKind,
    /// Observed value of the violated metric.
    pub metric: f64,
    /// Threshold it violated.
    pub threshold: f64,
    /// Step at which it was observed.
    pub step: u64,
}

impl std::fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at step {}: {:.6e} vs threshold {:.6e}",
            self.kind, self.step, self.metric, self.threshold
        )
    }
}

/// Classify a (global) health sample against the thresholds. `baseline`
/// is the `(budgeted energy, particle count)` reference — `None` until
/// the first healthy sample arms it, which skips the ledger checks.
/// Ordered most-severe-first so the verdict is the worst anomaly; the
/// repairable divergence residuals deliberately come last.
pub fn classify(
    s: &HealthSample,
    cfg: &SentinelConfig,
    baseline: Option<(f64, f64)>,
) -> Option<HealthVerdict> {
    let v = |kind, metric, threshold| {
        Some(HealthVerdict {
            kind,
            metric,
            threshold,
            step: s.step,
        })
    };
    if s.nonfinite_fields > 0.0 {
        return v(AnomalyKind::NonFiniteFields, s.nonfinite_fields, 0.0);
    }
    if s.nonfinite_particles > 0.0 {
        return v(AnomalyKind::NonFiniteParticles, s.nonfinite_particles, 0.0);
    }
    if s.nonfinite_accums > 0.0 {
        return v(AnomalyKind::NonFiniteAccumulators, s.nonfinite_accums, 0.0);
    }
    if s.out_of_bounds > 0.0 {
        return v(AnomalyKind::ParticleBounds, s.out_of_bounds, 0.0);
    }
    if let Some((e0, n0)) = baseline {
        if cfg.max_energy_growth > 0.0 && e0 > 0.0 && s.energy > cfg.max_energy_growth * e0 {
            return v(
                AnomalyKind::EnergyBlowup,
                s.energy,
                cfg.max_energy_growth * e0,
            );
        }
        if cfg.max_particle_drift >= 0.0 {
            let drift = (s.particles - n0).abs();
            if drift > cfg.max_particle_drift * n0 {
                return v(AnomalyKind::ParticleDrift, s.particles, n0);
            }
        }
    }
    if cfg.max_momentum > 0.0 && s.over_momentum > 0.0 {
        return v(AnomalyKind::MomentumBound, s.over_momentum, 0.0);
    }
    if cfg.max_div_e_rms > 0.0 && s.div_e_rms() > cfg.max_div_e_rms {
        return v(
            AnomalyKind::GaussLawResidual,
            s.div_e_rms(),
            cfg.max_div_e_rms,
        );
    }
    if cfg.max_div_b_rms > 0.0 && s.div_b_rms() > cfg.max_div_b_rms {
        return v(AnomalyKind::DivBResidual, s.div_b_rms(), cfg.max_div_b_rms);
    }
    None
}

/// Courant number `c Δt √(1/Δx² + 1/Δy² + 1/Δz²)` of a grid.
pub fn courant_number(g: &Grid) -> f64 {
    let inv2 =
        1.0 / (g.dx as f64).powi(2) + 1.0 / (g.dy as f64).powi(2) + 1.0 / (g.dz as f64).powi(2);
    g.cvac as f64 * g.dt as f64 * inv2.sqrt()
}

/// Setup-time CFL validation: the explicit FDTD/Boris pairing requires a
/// Courant number strictly below 1. Returns the Courant number, or a
/// [`HealthVerdict`] (kind [`AnomalyKind::CflViolation`], step 0).
pub fn validate_cfl(g: &Grid) -> Result<f64, HealthVerdict> {
    let c = courant_number(g);
    if c.is_finite() && c > 0.0 && c < 1.0 {
        Ok(c)
    } else {
        Err(HealthVerdict {
            kind: AnomalyKind::CflViolation,
            metric: c,
            threshold: 1.0,
            step: 0,
        })
    }
}

/// Count non-finite values in the six `E`/`cB` components.
pub fn count_nonfinite_fields(f: &FieldArray) -> u64 {
    [&f.ex, &f.ey, &f.ez, &f.cbx, &f.cby, &f.cbz]
        .iter()
        .map(|a| a.iter().filter(|v| !v.is_finite()).count() as u64)
        .sum()
}

/// Count particles with any non-finite coordinate, momentum or weight.
pub fn count_nonfinite_particles(species: &[Species]) -> u64 {
    species
        .iter()
        .flat_map(|sp| sp.iter())
        .filter(|p| {
            !(p.dx.is_finite()
                && p.dy.is_finite()
                && p.dz.is_finite()
                && p.ux.is_finite()
                && p.uy.is_finite()
                && p.uz.is_finite()
                && p.w.is_finite())
        })
        .count() as u64
}

/// Count non-finite entries in the per-pipeline current accumulators
/// (dirty ranges only — cleared ranges are zero by construction).
pub fn count_nonfinite_accums(acc: &AccumulatorSet) -> u64 {
    let mut n = 0u64;
    for arr in &acc.arrays {
        for a in &arr.data[arr.dirty_range()] {
            for v in a.jx.iter().chain(&a.jy).chain(&a.jz) {
                if !v.is_finite() {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Build the local (this-domain) portion of a health sample. The caller
/// is responsible for `rho` being fresh when the Gauss monitor is on
/// (`Simulation::refresh_rho` / `DistributedSim::refresh_rho`) and for
/// ghost planes being valid. Distributed callers then sum-reduce
/// [`HealthSample::to_vec`] across ranks.
pub fn local_sample(
    step: u64,
    fields: &FieldArray,
    grid: &Grid,
    species: &[Species],
    accums: &AccumulatorSet,
    cfg: &SentinelConfig,
    scratch: &mut Vec<f32>,
) -> HealthSample {
    let mut s = HealthSample {
        step,
        nonfinite_fields: count_nonfinite_fields(fields) as f64,
        nonfinite_particles: count_nonfinite_particles(species) as f64,
        nonfinite_accums: count_nonfinite_accums(accums) as f64,
        particles: species.iter().map(Species::len).sum::<usize>() as f64,
        live_nodes: grid.n_live() as f64,
        ..Default::default()
    };
    s.energy = fields.energy_e(grid)
        + fields.energy_b(grid)
        + species
            .iter()
            .map(|sp| sp.kinetic_energy(grid))
            .sum::<f64>();
    for sp in species {
        let m = sp.momentum(grid);
        for (acc, comp) in s.momentum.iter_mut().zip(m) {
            *acc += comp;
        }
    }
    let n_voxels = grid.n_voxels() as u32;
    let u2_max = cfg.max_momentum * cfg.max_momentum;
    for sp in species {
        for p in sp.iter() {
            if cfg.max_momentum > 0.0 {
                let u2 = (p.ux as f64).powi(2) + (p.uy as f64).powi(2) + (p.uz as f64).powi(2);
                if u2 > u2_max {
                    s.over_momentum += 1.0;
                }
            }
            if p.i >= n_voxels || p.dx.abs() > 1.001 || p.dy.abs() > 1.001 || p.dz.abs() > 1.001 {
                s.out_of_bounds += 1.0;
            }
        }
    }
    // Divergence residuals only when asked: they walk the whole mesh and
    // the Gauss one needs a fresh rho deposit.
    if cfg.max_div_e_rms > 0.0 {
        let rms = compute_div_e_err(fields, grid, scratch);
        s.div_e_sum2 = rms * rms * grid.n_live() as f64;
    }
    if cfg.max_div_b_rms > 0.0 {
        let rms = compute_div_b_err(fields, grid, scratch);
        s.div_b_sum2 = rms * rms * grid.n_live() as f64;
    }
    s
}

/// One in-place healing episode.
#[derive(Clone, Copy, Debug)]
pub struct HealEvent {
    /// Step at which the burst ran.
    pub step: u64,
    /// Anomaly that triggered it.
    pub kind: AnomalyKind,
    /// Marder passes applied.
    pub passes: u32,
    /// Residual RMS before the burst.
    pub rms_before: f64,
    /// Residual RMS after the burst.
    pub rms_after: f64,
    /// True when the re-check came back clean.
    pub healed: bool,
}

/// Ring buffer of the last N health samples plus their verdicts, with a
/// hand-rolled JSON serializer (no external dependencies) so a degraded
/// campaign leaves a machine-readable post-mortem next to its partial
/// dump.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    samples: VecDeque<(HealthSample, Option<HealthVerdict>)>,
}

/// JSON number: finite floats in exponent form, non-finite as `null`
/// (JSON has no NaN/Inf literals).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:e}");
    } else {
        out.push_str("null");
    }
}

impl FlightRecorder {
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Append a sample (dropping the oldest past capacity).
    pub fn record(&mut self, s: HealthSample, verdict: Option<HealthVerdict>) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back((s, verdict));
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Latest recorded sample.
    pub fn last(&self) -> Option<&(HealthSample, Option<HealthVerdict>)> {
        self.samples.back()
    }

    /// Iterate oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(HealthSample, Option<HealthVerdict>)> {
        self.samples.iter()
    }

    /// Serialize as a single JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 * self.samples.len() + 64);
        let _ = write!(
            out,
            "{{\"version\":1,\"n_samples\":{},\"samples\":[",
            self.samples.len()
        );
        for (i, (s, verdict)) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"step\":{}", s.step);
            for (key, val) in [
                ("nonfinite_fields", s.nonfinite_fields),
                ("nonfinite_particles", s.nonfinite_particles),
                ("nonfinite_accumulators", s.nonfinite_accums),
                ("energy", s.energy),
                ("particles", s.particles),
                ("div_e_rms", s.div_e_rms()),
                ("div_b_rms", s.div_b_rms()),
                ("momentum_x", s.momentum[0]),
                ("momentum_y", s.momentum[1]),
                ("momentum_z", s.momentum[2]),
                ("over_momentum", s.over_momentum),
                ("out_of_bounds", s.out_of_bounds),
            ] {
                let _ = write!(out, ",\"{key}\":");
                json_f64(&mut out, val);
            }
            match verdict {
                Some(v) => {
                    let _ = write!(
                        out,
                        ",\"verdict\":{{\"kind\":\"{}\",\"metric\":",
                        v.kind.as_str()
                    );
                    json_f64(&mut out, v.metric);
                    out.push_str(",\"threshold\":");
                    json_f64(&mut out, v.threshold);
                    let _ = write!(out, ",\"step\":{}}}", v.step);
                }
                None => out.push_str(",\"verdict\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON document to `path` (best effort, atomic-ish: plain
    /// create+write — the recorder is a post-mortem artifact, not state).
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escalated pass count for the `burst`-th consecutive healing attempt
/// (0-based): `base << burst`, saturating.
pub fn burst_passes(base: u32, burst: u32) -> u32 {
    base.max(1).saturating_mul(1u32 << burst.min(16))
}

/// The serial sentinel driver: owns the thresholds, flight recorder,
/// baseline ledger and escalation state, and runs the check-and-heal
/// ladder against a [`Simulation`]. Distributed worlds reuse the pieces
/// ([`local_sample`], [`classify`], [`FlightRecorder`]) from the
/// campaign runtime instead, where healing must be collective.
#[derive(Clone, Debug)]
pub struct Sentinel {
    pub cfg: SentinelConfig,
    pub recorder: FlightRecorder,
    /// Healing episodes so far.
    pub heals: Vec<HealEvent>,
    /// `(energy, particles)` reference, armed on the first healthy
    /// sample (or explicitly via [`Sentinel::arm`]).
    baseline: Option<(f64, f64)>,
    /// Externally injected energy budget added to the baseline (lasers,
    /// boundary drives).
    injected: f64,
    /// Consecutive healing bursts without an intervening healthy check.
    bursts: u32,
    /// Verdict of the most recent check (None = healthy or healed).
    last_verdict: Option<HealthVerdict>,
    scratch: Vec<f32>,
}

impl Sentinel {
    pub fn new(cfg: SentinelConfig) -> Self {
        Sentinel {
            cfg,
            recorder: FlightRecorder::new(cfg.recorder_len),
            heals: Vec::new(),
            baseline: None,
            injected: 0.0,
            bursts: 0,
            last_verdict: None,
            scratch: Vec::new(),
        }
    }

    /// True when a check is scheduled for `step`.
    pub fn due(&self, step: u64) -> bool {
        self.cfg.health_interval > 0 && step.is_multiple_of(self.cfg.health_interval)
    }

    /// Explicitly set the energy/particle baseline from the current
    /// state (otherwise the first healthy sample arms it).
    pub fn arm(&mut self, sim: &Simulation) {
        let e = sim.energies().total();
        self.baseline = Some((e, sim.n_particles() as f64));
    }

    /// Account externally injected energy (laser antennas, boundary
    /// drives) into the ledger budget.
    pub fn note_injected_energy(&mut self, de: f64) {
        if de.is_finite() && de > 0.0 {
            self.injected += de;
        }
    }

    /// The `(energy, particles)` baseline, if armed.
    pub fn baseline(&self) -> Option<(f64, f64)> {
        self.baseline
    }

    /// Verdict of the most recent check (`None` = healthy or healed in
    /// place).
    pub fn tripped(&self) -> Option<&HealthVerdict> {
        self.last_verdict.as_ref()
    }

    /// Budgeted baseline for the classifier: energy plus injected
    /// budget.
    fn classify_baseline(&self) -> Option<(f64, f64)> {
        self.baseline.map(|(e0, n0)| (e0 + self.injected, n0))
    }

    fn sample(&mut self, sim: &mut Simulation) -> HealthSample {
        if self.cfg.max_div_e_rms > 0.0 {
            sim.refresh_rho();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let s = local_sample(
            sim.step_count,
            &sim.fields,
            &sim.grid,
            &sim.species,
            &sim.accumulators,
            &self.cfg,
            &mut scratch,
        );
        self.scratch = scratch;
        s
    }

    /// Run one check-and-heal cycle. Returns the surviving verdict (the
    /// caller's cue to roll back or degrade); `None` means healthy or
    /// healed in place. Every sample — including post-heal re-checks —
    /// lands in the flight recorder.
    pub fn check(&mut self, sim: &mut Simulation) -> Option<HealthVerdict> {
        let s = self.sample(sim);
        let verdict = classify(&s, &self.cfg, self.classify_baseline());
        match verdict {
            None => {
                if self.baseline.is_none() {
                    self.baseline = Some((s.energy, s.particles));
                }
                self.bursts = 0;
                self.recorder.record(s, None);
                self.last_verdict = None;
                None
            }
            Some(v) if v.kind.repairable() && self.bursts < self.cfg.max_marder_bursts => {
                self.recorder.record(s, Some(v));
                let passes = burst_passes(self.cfg.marder_passes, self.bursts);
                self.bursts += 1;
                let (before, after) = self.marder_burst(sim, v.kind, passes);
                let s2 = self.sample(sim);
                let v2 = classify(&s2, &self.cfg, self.classify_baseline());
                self.heals.push(HealEvent {
                    step: s.step,
                    kind: v.kind,
                    passes,
                    rms_before: before,
                    rms_after: after,
                    healed: v2.is_none(),
                });
                self.recorder.record(s2, v2);
                self.last_verdict = v2;
                v2
            }
            Some(v) => {
                self.recorder.record(s, Some(v));
                self.last_verdict = Some(v);
                Some(v)
            }
        }
    }

    /// Apply a Marder cleaning burst for a repairable anomaly; returns
    /// the residual RMS (before first pass, after last pass).
    fn marder_burst(&mut self, sim: &mut Simulation, kind: AnomalyKind, passes: u32) -> (f64, f64) {
        let mut before = f64::NAN;
        let mut after = f64::NAN;
        match kind {
            AnomalyKind::GaussLawResidual => {
                sim.refresh_rho();
                for p in 0..passes {
                    let rms = clean_div_e(&mut sim.fields, &sim.grid, &mut self.scratch);
                    if p == 0 {
                        before = rms;
                    }
                }
                after = compute_div_e_err(&sim.fields, &sim.grid, &mut self.scratch);
            }
            AnomalyKind::DivBResidual => {
                for p in 0..passes {
                    let rms = clean_div_b(&mut sim.fields, &sim.grid, &mut self.scratch);
                    if p == 0 {
                        before = rms;
                    }
                }
                after = compute_div_b_err(&sim.fields, &sim.grid, &mut self.scratch);
            }
            _ => {}
        }
        (before, after)
    }
}

/// What an injected corruption writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Write NaN (caught by the non-finite sweep).
    Nan,
    /// Write a huge finite value (caught by the energy ledger or the
    /// divergence monitors).
    Huge,
}

/// One seeded corruption event.
#[derive(Clone, Copy, Debug)]
pub struct CorruptionEvent {
    /// Fire when `step_count` reaches this value.
    pub step: u64,
    /// Restrict to one rank (`None` = every rank).
    pub rank: Option<usize>,
    pub mode: CorruptionMode,
    /// Field values to clobber.
    pub count: usize,
}

/// Seeded, **one-shot** field-corruption injector modeling a transient
/// upset: each event fires at most once per plan instance, so a replay
/// after rollback runs clean and the campaign can finish bit-identically
/// with an unfaulted run. Which values are hit is a pure function of the
/// seed and the event index.
#[derive(Clone, Debug)]
pub struct CorruptionPlan {
    pub seed: u64,
    pub events: Vec<CorruptionEvent>,
    fired: Vec<bool>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl CorruptionPlan {
    pub fn new(seed: u64) -> Self {
        CorruptionPlan {
            seed,
            events: Vec::new(),
            fired: Vec::new(),
        }
    }

    pub fn with_event(mut self, ev: CorruptionEvent) -> Self {
        self.events.push(ev);
        self.fired.push(false);
        self
    }

    /// True when every event has fired.
    pub fn exhausted(&self) -> bool {
        self.fired.iter().all(|&f| f)
    }

    /// Fire any pending events matching `(step, rank)` into the fields.
    /// Returns the number of values corrupted (0 = nothing fired).
    /// Targets interior voxels only: ghost planes are rewritten by the
    /// per-step sync before anything reads them, so an upset there models
    /// nothing observable.
    pub fn apply(&mut self, step: u64, rank: usize, f: &mut FieldArray, g: &Grid) -> usize {
        let mut hit = 0usize;
        for (idx, ev) in self.events.iter().enumerate() {
            if self.fired[idx] || ev.step != step || ev.rank.is_some_and(|r| r != rank) {
                continue;
            }
            self.fired[idx] = true;
            let mut state = self
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(idx as u64);
            for _ in 0..ev.count {
                let comp = (splitmix64(&mut state) % 6) as usize;
                let i = 1 + (splitmix64(&mut state) as usize) % g.nx;
                let j = 1 + (splitmix64(&mut state) as usize) % g.ny;
                let k = 1 + (splitmix64(&mut state) as usize) % g.nz;
                let v = g.voxel(i, j, k);
                let target = match comp {
                    0 => &mut f.ex,
                    1 => &mut f.ey,
                    2 => &mut f.ez,
                    3 => &mut f.cbx,
                    4 => &mut f.cby,
                    _ => &mut f.cbz,
                };
                target[v] = match ev.mode {
                    CorruptionMode::Nan => f32::NAN,
                    CorruptionMode::Huge => 1.0e30,
                };
                hit += 1;
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::{bcs_of, sync_e};
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::rng::Rng;

    fn neutral_plasma(pipelines: usize) -> Simulation {
        let dx = 0.2f32;
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.7);
        let g = Grid::periodic((8, 8, 8), (dx, dx, dx), dt);
        let mut sim = Simulation::new(g, pipelines);
        // Ions loaded from the same stream land on the same positions as
        // the electrons, so rho is exactly zero node-by-node and the
        // Gauss monitor sees pure numerical residual.
        let mut e = Species::new("e", -1.0, 1.0);
        load_uniform(
            &mut e,
            &sim.grid,
            &mut Rng::seeded(7),
            1.0,
            8,
            Momentum::thermal(0.02),
        );
        let mut i = Species::new("i", 1.0, 1836.0);
        load_uniform(
            &mut i,
            &sim.grid,
            &mut Rng::seeded(7),
            1.0,
            8,
            Momentum::thermal(0.02),
        );
        sim.add_species(e);
        sim.add_species(i);
        sim
    }

    #[test]
    fn sample_vector_roundtrip() {
        let s = HealthSample {
            step: 42,
            nonfinite_fields: 1.0,
            nonfinite_particles: 2.0,
            nonfinite_accums: 3.0,
            energy: 4.5,
            particles: 6.0,
            div_e_sum2: 7.5,
            div_b_sum2: 8.5,
            live_nodes: 9.0,
            momentum: [0.1, 0.2, 0.3],
            over_momentum: 10.0,
            out_of_bounds: 11.0,
        };
        let v = s.to_vec();
        assert_eq!(v.len(), HealthSample::LEN);
        assert_eq!(HealthSample::from_vec(42, &v), s);
    }

    #[test]
    fn classifier_severity_order_and_thresholds() {
        let cfg = SentinelConfig {
            health_interval: 1,
            max_div_e_rms: 0.5,
            max_momentum: 10.0,
            max_particle_drift: 0.0,
            ..Default::default()
        };
        let clean = HealthSample {
            step: 5,
            energy: 1.0,
            particles: 100.0,
            live_nodes: 10.0,
            ..Default::default()
        };
        assert_eq!(classify(&clean, &cfg, Some((1.0, 100.0))), None);

        // Non-finite outranks everything else present.
        let mut s = clean;
        s.nonfinite_fields = 2.0;
        s.div_e_sum2 = 1e6;
        let v = classify(&s, &cfg, Some((1.0, 100.0))).unwrap();
        assert_eq!(v.kind, AnomalyKind::NonFiniteFields);
        assert!(!v.kind.repairable());

        // Gauss residual alone is repairable.
        let mut s = clean;
        s.div_e_sum2 = 10.0 * 10.0; // rms 1.0 over 10 nodes? sum2 = rms^2 * n
        s.div_e_sum2 = 1.0 * 1.0 * 10.0;
        let v = classify(&s, &cfg, Some((1.0, 100.0))).unwrap();
        assert_eq!(v.kind, AnomalyKind::GaussLawResidual);
        assert!(v.kind.repairable());
        assert!((v.metric - 1.0).abs() < 1e-12);

        // Energy blow-up against the baseline.
        let mut s = clean;
        s.energy = 11.0;
        let v = classify(&s, &cfg, Some((1.0, 100.0))).unwrap();
        assert_eq!(v.kind, AnomalyKind::EnergyBlowup);
        // Unarmed baseline skips the ledger checks.
        assert_eq!(classify(&s, &cfg, None), None);

        // Exact particle conservation demanded by drift = 0.
        let mut s = clean;
        s.particles = 99.0;
        let v = classify(&s, &cfg, Some((1.0, 100.0))).unwrap();
        assert_eq!(v.kind, AnomalyKind::ParticleDrift);
        // A tolerant drift threshold lets it pass.
        let mut loose = cfg;
        loose.max_particle_drift = 0.05;
        assert_eq!(classify(&s, &loose, Some((1.0, 100.0))), None);
    }

    #[test]
    fn cfl_validation() {
        let dx = 0.2f32;
        let ok = Grid::periodic(
            (8, 8, 8),
            (dx, dx, dx),
            Grid::courant_dt(1.0, (dx, dx, dx), 0.7),
        );
        let c = validate_cfl(&ok).expect("stable grid");
        assert!((c - 0.7).abs() < 1e-3, "courant {c}");
        let bad = Grid::periodic(
            (8, 8, 8),
            (dx, dx, dx),
            Grid::courant_dt(1.0, (dx, dx, dx), 1.3),
        );
        let v = validate_cfl(&bad).unwrap_err();
        assert_eq!(v.kind, AnomalyKind::CflViolation);
    }

    #[test]
    fn recorder_rolls_and_serializes_valid_json_shape() {
        let mut rec = FlightRecorder::new(3);
        for step in 0..5u64 {
            let s = HealthSample {
                step,
                energy: step as f64,
                ..Default::default()
            };
            let verdict = (step == 4).then_some(HealthVerdict {
                kind: AnomalyKind::EnergyBlowup,
                metric: 4.0,
                threshold: 1.0,
                step,
            });
            rec.record(s, verdict);
        }
        assert_eq!(rec.len(), 3);
        let json = rec.to_json();
        // Structure sanity: balanced braces/brackets, expected keys, no
        // bare NaN/Infinity tokens (invalid JSON).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"version\":1"));
        assert!(json.contains("\"n_samples\":3"));
        assert!(json.contains("\"verdict\":{\"kind\":\"energy_blowup\""));
        assert!(json.contains("\"verdict\":null"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // Non-finite metrics serialize as null, keeping the JSON valid.
        let mut rec = FlightRecorder::new(2);
        rec.record(
            HealthSample {
                energy: f64::NAN,
                ..Default::default()
            },
            None,
        );
        let json = rec.to_json();
        assert!(json.contains("\"energy\":null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn corruption_plan_is_seeded_and_one_shot() {
        let g = Grid::periodic((8, 8, 8), (0.2, 0.2, 0.2), 0.01);
        let mk = || {
            CorruptionPlan::new(99).with_event(CorruptionEvent {
                step: 3,
                rank: None,
                mode: CorruptionMode::Nan,
                count: 4,
            })
        };
        let mut a = mk();
        let mut b = mk();
        let mut fa = FieldArray::new(&g);
        let mut fb = FieldArray::new(&g);
        assert_eq!(a.apply(2, 0, &mut fa, &g), 0, "wrong step must not fire");
        assert_eq!(a.apply(3, 0, &mut fa, &g), 4);
        assert_eq!(b.apply(3, 0, &mut fb, &g), 4);
        // Deterministic: both instances clobbered identical locations.
        assert_eq!(count_nonfinite_fields(&fa), count_nonfinite_fields(&fb));
        for (x, y) in fa.ex.iter().zip(&fb.ex) {
            assert_eq!(x.is_nan(), y.is_nan());
        }
        // One-shot: replaying the same step fires nothing.
        assert_eq!(a.apply(3, 0, &mut fa, &g), 0);
        assert!(a.exhausted());
        // Rank filters hold.
        let mut c = CorruptionPlan::new(1).with_event(CorruptionEvent {
            step: 0,
            rank: Some(2),
            mode: CorruptionMode::Huge,
            count: 1,
        });
        assert_eq!(c.apply(0, 1, &mut fa, &g), 0);
        assert_eq!(c.apply(0, 2, &mut fa, &g), 1);
    }

    #[test]
    fn sentinel_detects_and_heals_seeded_divergence() {
        let mut sim = neutral_plasma(1);
        let mut sentinel = Sentinel::new(SentinelConfig {
            health_interval: 1,
            max_div_e_rms: 0.05,
            marder_passes: 16,
            max_marder_bursts: 4,
            ..Default::default()
        });
        sentinel.arm(&sim);
        // Healthy at rest.
        assert_eq!(sentinel.check(&mut sim), None);
        assert!(sentinel.tripped().is_none());
        // Seed a divergence error: a lone E spike violates Gauss's law.
        let g = sim.grid.clone();
        let v = g.voxel(4, 4, 4);
        sim.fields.ex[v] += 2.0;
        sync_e(&mut sim.fields, &g, bcs_of(&g));
        let verdict = sentinel.check(&mut sim);
        // Either healed in one burst (None) or needs another; drive the
        // ladder until it settles (Marder relaxation is diffusive, so a
        // spiky error needs several escalating bursts).
        let mut verdict = verdict;
        let mut rounds = 0;
        while verdict.is_some() && rounds < 4 {
            verdict = sentinel.check(&mut sim);
            rounds += 1;
        }
        assert_eq!(verdict, None, "Marder ladder failed to heal");
        assert!(!sentinel.heals.is_empty());
        let h = &sentinel.heals[0];
        assert_eq!(h.kind, AnomalyKind::GaussLawResidual);
        assert!(h.rms_after < h.rms_before, "{h:?}");
        // Escalation doubled the pass count on consecutive bursts.
        if sentinel.heals.len() > 1 {
            assert!(sentinel.heals[1].passes >= 2 * sentinel.heals[0].passes);
        }
        assert!(sentinel.recorder.len() >= 2);
    }

    #[test]
    fn sentinel_flags_nan_as_unrepairable() {
        let mut sim = neutral_plasma(1);
        let mut sentinel = Sentinel::new(SentinelConfig {
            health_interval: 1,
            ..Default::default()
        });
        sentinel.arm(&sim);
        sim.fields.ey[100] = f32::NAN;
        let v = sentinel.check(&mut sim).expect("must trip");
        assert_eq!(v.kind, AnomalyKind::NonFiniteFields);
        assert!(!v.kind.repairable());
        assert_eq!(sentinel.tripped().map(|v| v.kind), Some(v.kind));
        assert!(sentinel.heals.is_empty(), "no heal for non-finite fields");
    }

    #[test]
    fn burst_passes_escalate_and_saturate() {
        assert_eq!(burst_passes(4, 0), 4);
        assert_eq!(burst_passes(4, 1), 8);
        assert_eq!(burst_passes(4, 2), 16);
        assert_eq!(burst_passes(0, 0), 1);
        assert_eq!(burst_passes(u32::MAX, 5), u32::MAX);
    }
}
