//! The particle inner loop: relativistic Boris push, streak-midpoint
//! current deposition, and `move_p` cell-crossing segmentation.
//!
//! This is the code whose rate the SC'08 paper reports as 0.488 Pflop/s on
//! Roadrunner; see `roadrunner-model::flops` for the per-particle flop
//! accounting used to convert our measured particle-advance rates into the
//! same figure of merit.

use crate::accumulator::AccumulatorArray;
use crate::cadence::PushTally;
use crate::grid::{decode_migrate, Grid, NEIGHBOR_ABSORB, NEIGHBOR_REFLECT};
use crate::interpolator::InterpolatorArray;
use crate::particle::{Mover, Particle};
use crate::store::ParticleStore;
use rayon::prelude::*;

/// Where a particle ended up after `move_p` exhausted its displacement or
/// hit a domain boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveOutcome {
    /// Displacement fully used; particle is inside a live voxel.
    Done,
    /// Particle hit an absorbing boundary; caller must delete it.
    Absorbed,
    /// Particle left the local domain through `face` with displacement
    /// remaining in the mover; caller must migrate it.
    Exit { face: usize },
}

/// A particle that needs cross-domain handling: its index, the exit face,
/// and the unfinished mover (remaining half-displacement).
#[derive(Clone, Copy, Debug)]
pub struct Exile {
    pub idx: u32,
    pub face: usize,
    pub mover: Mover,
}

/// Species-level constants needed by the push, bundled so the kernel
/// signature stays small.
#[derive(Clone, Copy, Debug)]
pub struct PushCoefficients {
    /// `q·dt / (2·m·c)` — half-kick factor applied to `E`.
    pub qdt_2mc: f32,
    /// `c·dt/dx` etc — converts `v/c` into half-displacements in offsets.
    pub cdt_dx: f32,
    pub cdt_dy: f32,
    pub cdt_dz: f32,
    /// Species charge (multiplies the particle weight in deposition).
    pub qsp: f32,
}

impl PushCoefficients {
    /// Build from species charge/mass and the grid.
    pub fn new(q: f32, m: f32, g: &Grid) -> Self {
        PushCoefficients {
            qdt_2mc: q * g.dt / (2.0 * m * g.cvac),
            cdt_dx: g.cvac * g.dt / g.dx,
            cdt_dy: g.cvac * g.dt / g.dy,
            cdt_dz: g.cvac * g.dt / g.dz,
            qsp: q,
        }
    }
}

/// Upper bound on `move_p` boundary segments per step; a particle obeying
/// the CFL limit crosses at most one face per axis, so 16 is generous and
/// exists only to turn a (physically impossible) runaway into a clean stop.
const MAX_SEGMENTS: usize = 16;

/// Which body runs the AoSoA inner loop. Both kernels are bit-identical
/// by contract (the `kernel_oracle` and `determinism` suites pin it), so
/// the choice is purely a performance/diagnosis knob. The AoS layout has
/// only the scalar body; it ignores this knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PushKernel {
    /// Per-particle scalar arithmetic ([`push_one`]) — the pinned oracle.
    Scalar,
    /// 8-lane-wide gather → Boris push → masked write-back with a scalar
    /// spill-out for cell-crossers (the production hot path).
    #[default]
    Lane,
}

impl PushKernel {
    /// Parse a kernel name as written in bench flags / artifacts.
    pub fn parse(s: &str) -> Option<PushKernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(PushKernel::Scalar),
            "lane" => Some(PushKernel::Lane),
            _ => None,
        }
    }

    /// Canonical lowercase name (inverse of [`Self::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            PushKernel::Scalar => "scalar",
            PushKernel::Lane => "lane",
        }
    }
}

impl std::fmt::Display for PushKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Advance every particle of one species by one time step, depositing
/// currents into per-pipeline accumulators. Returns the particles that
/// left the local domain (absorbed particles are deleted in place).
///
/// `accumulators` must contain at least one array; the particle sequence
/// is cut into `accumulators.len()` contiguous index blocks processed in
/// parallel, one pipeline (and private accumulator) per block — VPIC's
/// pipeline scheme. Dispatches on the store's layout; both backends use
/// the identical index partition and per-pipeline deposit order, so AoS
/// and AoSoA runs are bit-identical for any fixed pipeline count.
pub fn advance_p(
    store: &mut ParticleStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
) -> Vec<Exile> {
    advance_p_with(
        store,
        coeffs,
        interp,
        accumulators,
        g,
        PushKernel::default(),
    )
}

/// [`advance_p`] with an explicit kernel choice for the AoSoA backend
/// ([`PushKernel::Scalar`] forces every lane through [`push_one`], which
/// is what the differential-oracle harness compares against).
pub fn advance_p_with(
    store: &mut ParticleStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
    kernel: PushKernel,
) -> Vec<Exile> {
    advance_p_tallied(store, coeffs, interp, accumulators, g, kernel).0
}

/// [`advance_p_with`] that also returns the coherence telemetry of the
/// step: per-pipeline [`PushTally`]s summed in pipeline order (plain
/// integer adds, so the totals are identical at any worker count). The
/// tally feeds the sort-cadence controller; callers that don't care use
/// [`advance_p_with`] and drop it.
pub fn advance_p_tallied(
    store: &mut ParticleStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
    kernel: PushKernel,
) -> (Vec<Exile>, PushTally) {
    match store {
        ParticleStore::Aos(particles) => advance_p_aos(particles, coeffs, interp, accumulators, g),
        ParticleStore::Aosoa(s) => {
            crate::aosoa::advance_p_aosoa_pipelined_with(s, coeffs, interp, accumulators, g, kernel)
        }
    }
}

/// AoS backend of [`advance_p`].
fn advance_p_aos(
    particles: &mut Vec<Particle>,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
) -> (Vec<Exile>, PushTally) {
    let n_pipes = accumulators.len();
    assert!(n_pipes >= 1);
    let n = particles.len();
    let block = n.div_ceil(n_pipes).max(1);

    // Each pipeline returns (absorbed indices, exiles, tally) for its block.
    let results: Vec<(Vec<u32>, Vec<Exile>, PushTally)> = particles
        .par_chunks_mut(block)
        .zip(accumulators.par_iter_mut())
        .enumerate()
        .map(|(pipe, (chunk, acc))| {
            let base = (pipe * block) as u32;
            advance_block(chunk, base, coeffs, interp, acc, g)
        })
        .collect();

    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    let mut tally = PushTally::default();
    for (a, e, t) in results {
        absorbed.extend(a);
        exiles.extend(e);
        tally.absorb(&t);
    }
    delete_absorbed(particles, absorbed, &mut exiles);
    (exiles, tally)
}

/// Swap-remove every absorbed particle and retarget exiles whose particle
/// was moved by a swap.
fn delete_absorbed(particles: &mut Vec<Particle>, absorbed: Vec<u32>, exiles: &mut [Exile]) {
    let len = particles.len();
    retarget_and_delete(len, absorbed, exiles, |i| {
        particles.swap_remove(i);
    });
}

/// Layout-agnostic absorbed-particle deletion: swap-remove every index in
/// `absorbed` (via the caller's `swap_remove`, which must mirror
/// `Vec::swap_remove` on a sequence initially `len` long) and retarget
/// exiles whose particle was moved by a swap. An index map built once
/// keeps this O(absorbed + exiles) instead of rescanning the exile list
/// per removal. Both storage backends run this exact algorithm, so the
/// post-deletion particle order is identical across layouts.
pub(crate) fn retarget_and_delete(
    len: usize,
    mut absorbed: Vec<u32>,
    exiles: &mut [Exile],
    mut swap_remove: impl FnMut(usize),
) {
    if absorbed.is_empty() {
        return;
    }
    // A particle exits the domain at most once, so indices map to at most
    // one exile each.
    let mut exile_of: std::collections::HashMap<u32, usize> =
        exiles.iter().enumerate().map(|(n, e)| (e.idx, n)).collect();
    // Descending order keeps pending indices valid across swap_removes.
    absorbed.sort_unstable_by(|a, b| b.cmp(a));
    let mut cur = len;
    for idx in absorbed {
        let last = (cur - 1) as u32;
        swap_remove(idx as usize);
        cur -= 1;
        // If an exile pointed at the swapped-in particle, retarget it.
        if idx != last {
            if let Some(n) = exile_of.remove(&last) {
                exiles[n].idx = idx;
                exiles[n].mover.idx = idx;
                exile_of.insert(idx, n);
            }
        }
    }
}

/// Sequential single-pipeline variant (used by tests and the layout
/// ablation baseline).
pub fn advance_p_serial(
    particles: &mut Vec<Particle>,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) -> Vec<Exile> {
    let (absorbed, mut exiles, _tally) = {
        let chunk: &mut [Particle] = particles;
        advance_block(chunk, 0, coeffs, interp, acc, g)
    };
    delete_absorbed(particles, absorbed, &mut exiles);
    exiles
}

/// What happened to one particle in [`push_one`].
pub(crate) enum PushedFate {
    /// Still resident in the local domain. `crossed` is true when the
    /// particle entered `move_p` (left its voxel this step) — the signal
    /// the sort-cadence controller counts, identical across layouts and
    /// kernels because both branch on the same in-bounds test.
    Stayed { crossed: bool },
    /// Hit an absorbing boundary; caller must delete it. (Necessarily a
    /// crosser: absorption happens on a face.)
    Absorbed,
    /// Left the local domain; caller must migrate it. (Also a crosser.)
    Exiled(Exile),
}

/// Push a single particle (global index `idx`): Boris kick/rotate,
/// displacement, current deposition, and cell-crossing handling. This is
/// the one copy of the scalar per-particle arithmetic — the AoS pipeline
/// loops it over chunks and the AoSoA backend calls it for lanes of
/// blocks straddling a pipeline boundary, which is what keeps the two
/// layouts bit-identical.
#[inline(always)]
pub(crate) fn push_one(
    p: &mut Particle,
    idx: u32,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) -> PushedFate {
    const ONE: f32 = 1.0;
    const ONE_THIRD: f32 = 1.0 / 3.0;
    const TWO_FIFTEENTHS: f32 = 2.0 / 15.0;
    let f = &interp.data[p.i as usize];
    let (dx, dy, dz) = (p.dx, p.dy, p.dz);

    // Interpolate E (premultiplied by the half-kick factor) and cB.
    let hax = c.qdt_2mc * ((f.ex + dy * f.dexdy) + dz * (f.dexdz + dy * f.d2exdydz));
    let hay = c.qdt_2mc * ((f.ey + dz * f.deydz) + dx * (f.deydx + dz * f.d2eydzdx));
    let haz = c.qdt_2mc * ((f.ez + dx * f.dezdx) + dy * (f.dezdy + dx * f.d2ezdxdy));
    let cbx = f.cbx + dx * f.dcbxdx;
    let cby = f.cby + dy * f.dcbydy;
    let cbz = f.cbz + dz * f.dcbzdz;

    // Half E acceleration.
    let mut ux = p.ux + hax;
    let mut uy = p.uy + hay;
    let mut uz = p.uz + haz;

    // Boris rotation with the VPIC tan(θ/2)/θ correction polynomial.
    let v0 = c.qdt_2mc / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
    let v1 = cbx * cbx + (cby * cby + cbz * cbz);
    let v2 = (v0 * v0) * v1;
    let v3 = v0 * (ONE + v2 * (ONE_THIRD + v2 * TWO_FIFTEENTHS));
    let mut v4 = v3 / (ONE + v1 * (v3 * v3));
    v4 += v4;
    let w0 = ux + v3 * (uy * cbz - uz * cby);
    let w1 = uy + v3 * (uz * cbx - ux * cbz);
    let w2 = uz + v3 * (ux * cby - uy * cbx);
    ux += v4 * (w1 * cbz - w2 * cby);
    uy += v4 * (w2 * cbx - w0 * cbz);
    uz += v4 * (w0 * cby - w1 * cbx);

    // Second half E acceleration; store momentum.
    ux += hax;
    uy += hay;
    uz += haz;
    p.ux = ux;
    p.uy = uy;
    p.uz = uz;

    // Half displacement in voxel-offset units: h = (v/c)·(c·dt/Δ).
    let rg = ONE / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
    let hx = ux * rg * c.cdt_dx;
    let hy = uy * rg * c.cdt_dy;
    let hz = uz * rg * c.cdt_dz;

    let mx = dx + hx; // streak midpoint (if in bounds)
    let my = dy + hy;
    let mz = dz + hz;
    let nx = mx + hx; // new position
    let ny = my + hy;
    let nz = mz + hz;

    if nx.abs() <= ONE && ny.abs() <= ONE && nz.abs() <= ONE {
        // Common case: no cell crossing.
        p.dx = nx;
        p.dy = ny;
        p.dz = nz;
        acc.deposit(p.i as usize, c.qsp * p.w, (mx, my, mz), (hx, hy, hz));
        PushedFate::Stayed { crossed: false }
    } else {
        let mut pm = Mover {
            dispx: hx,
            dispy: hy,
            dispz: hz,
            idx,
        };
        match move_p_local(p, &mut pm, acc, g, c.qsp) {
            MoveOutcome::Done => PushedFate::Stayed { crossed: true },
            MoveOutcome::Absorbed => PushedFate::Absorbed,
            MoveOutcome::Exit { face } => PushedFate::Exiled(Exile {
                idx,
                face,
                mover: pm,
            }),
        }
    }
}

/// Push one contiguous block of particles (one pipeline).
fn advance_block(
    chunk: &mut [Particle],
    base_idx: u32,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) -> (Vec<u32>, Vec<Exile>, PushTally) {
    let mut absorbed = Vec::new();
    let mut exiles = Vec::new();
    let mut tally = PushTally {
        pushed: chunk.len() as u64,
        ..Default::default()
    };
    for (local, p) in chunk.iter_mut().enumerate() {
        let idx = base_idx + local as u32;
        match push_one(p, idx, c, interp, acc, g) {
            PushedFate::Stayed { crossed: false } => {}
            PushedFate::Stayed { crossed: true } => tally.crossers += 1,
            PushedFate::Absorbed => {
                tally.crossers += 1;
                absorbed.push(idx);
            }
            PushedFate::Exiled(e) => {
                tally.crossers += 1;
                exiles.push(e);
            }
        }
    }
    (absorbed, exiles, tally)
}

/// Finish the move of one particle that crosses voxel boundaries,
/// depositing the charge-conserving current of every sub-segment.
/// This is VPIC's `move_p`, operating on a single particle in place.
pub fn move_p_local(
    p: &mut Particle,
    pm: &mut Mover,
    acc: &mut AccumulatorArray,
    g: &Grid,
    qsp: f32,
) -> MoveOutcome {
    let q = qsp * p.w;
    for _ in 0..MAX_SEGMENTS {
        let s_mid = [p.dx, p.dy, p.dz];
        let s_disp = [pm.dispx, pm.dispy, pm.dispz];
        let dir = [
            if s_disp[0] > 0.0 { 1.0f32 } else { -1.0 },
            if s_disp[1] > 0.0 { 1.0 } else { -1.0 },
            if s_disp[2] > 0.0 { 1.0 } else { -1.0 },
        ];

        // Twice the fraction of the remaining displacement needed to reach
        // the first face along each axis (s_disp is a half-displacement).
        let mut t = [0.0f32; 3];
        for a in 0..3 {
            t[a] = if s_disp[a] == 0.0 {
                3.4e38
            } else {
                (dir[a] - s_mid[a]) / s_disp[a]
            };
        }

        // The streak ends at the nearest face, or (axis 3) at the natural
        // end of the move.
        let mut frac = 2.0f32;
        let mut axis = 3usize;
        for (a, &ta) in t.iter().enumerate() {
            if ta < frac {
                frac = ta;
                axis = a;
            }
        }
        frac *= 0.5;

        // Half-displacement and midpoint of this sub-segment.
        let seg = [s_disp[0] * frac, s_disp[1] * frac, s_disp[2] * frac];
        let mid = [s_mid[0] + seg[0], s_mid[1] + seg[1], s_mid[2] + seg[2]];

        acc.deposit(
            p.i as usize,
            q,
            (mid[0], mid[1], mid[2]),
            (seg[0], seg[1], seg[2]),
        );

        // Consume the segment.
        pm.dispx -= seg[0];
        pm.dispy -= seg[1];
        pm.dispz -= seg[2];
        p.dx += seg[0] + seg[0];
        p.dy += seg[1] + seg[1];
        p.dz += seg[2] + seg[2];

        if axis == 3 {
            return MoveOutcome::Done;
        }

        // Put the particle exactly on the face to avoid roundoff drift.
        let d = dir[axis];
        p.set_offset(axis, d);
        let face = axis + if d > 0.0 { 3 } else { 0 };
        let neighbor = g.neighbor(p.i as usize, face);

        if neighbor == NEIGHBOR_REFLECT {
            pm.set_disp(axis, -pm.disp(axis));
            p.set_momentum(axis, -p.momentum(axis));
            continue;
        }
        if neighbor == NEIGHBOR_ABSORB {
            return MoveOutcome::Absorbed;
        }
        if let Some(face) = decode_migrate(neighbor) {
            return MoveOutcome::Exit { face };
        }
        debug_assert!(neighbor >= 0, "invalid neighbor {neighbor}");
        p.i = neighbor as u32;
        p.set_offset(axis, -d); // enter the neighbor from the opposite face
    }
    // Unreachable for CFL-respecting moves; stop the particle where it is.
    debug_assert!(false, "move_p segment limit hit");
    MoveOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldArray;
    use crate::field_solver::{bcs_of, sync_b, sync_e};
    use crate::grid::ParticleBc;

    fn uniform_e_setup(ex: f32, g: &Grid) -> InterpolatorArray {
        let mut f = FieldArray::new(g);
        for v in f.ex.iter_mut() {
            *v = ex;
        }
        sync_e(&mut f, g, bcs_of(g));
        sync_b(&mut f, g, bcs_of(g));
        let mut ia = InterpolatorArray::new(g);
        ia.load(&f, g);
        ia
    }

    #[test]
    fn uniform_e_accelerates_unit_charge() {
        let g = Grid::periodic((8, 8, 8), (1.0, 1.0, 1.0), 0.01);
        let ia = uniform_e_setup(2.0, &g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let mut parts = vec![Particle {
            i: g.voxel(4, 4, 4) as u32,
            w: 1.0,
            ..Default::default()
        }];
        let exiles = advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert!(exiles.is_empty());
        // du = qE dt (non-relativistic limit): 2.0 * 0.01.
        assert!((parts[0].ux - 0.02).abs() < 1e-6, "ux = {}", parts[0].ux);
        assert_eq!(parts[0].uy, 0.0);
        assert_eq!(parts[0].uz, 0.0);
        // Moved by ~ half a kick's worth (starts from rest): dx_off ≈ u·dt/dx·2... just sign/plausibility:
        assert!(parts[0].dx > 0.0 && parts[0].dx < 0.05);
    }

    #[test]
    fn magnetic_field_rotates_without_energy_change() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.05);
        let mut f = FieldArray::new(&g);
        for v in f.cbz.iter_mut() {
            *v = 3.0;
        }
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);
        let u0 = 0.1f32;
        let mut parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: u0,
            w: 1.0,
            ..Default::default()
        }];
        let gamma_before = parts[0].gamma();
        for _ in 0..100 {
            // Keep the particle from drifting out: re-center each step.
            parts[0].dx = 0.0;
            parts[0].dy = 0.0;
            parts[0].dz = 0.0;
            parts[0].i = g.voxel(2, 2, 2) as u32;
            advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        }
        let gamma_after = parts[0].gamma();
        assert!(
            (gamma_after - gamma_before).abs() < 1e-6,
            "B field changed energy: {gamma_before} -> {gamma_after}"
        );
        // It must actually rotate.
        let u_perp = (parts[0].ux.powi(2) + parts[0].uy.powi(2)).sqrt();
        assert!((u_perp - u0).abs() < 1e-5);
        assert!(parts[0].uy.abs() > 1e-3, "no rotation: {:?}", parts[0]);
    }

    #[test]
    fn boris_gyrofrequency_matches_theory() {
        // A particle in a uniform Bz gyrates at ω_c = qB/(γm); with the
        // tan(θ/2) correction the *discrete* rotation angle per step is
        // exactly ω_c·dt to the polynomial's accuracy.
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.02);
        let b0 = 1.5f32;
        let mut f = FieldArray::new(&g);
        for v in f.cbz.iter_mut() {
            *v = b0;
        }
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let u0 = 0.01f32; // non-relativistic
        let mut parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: u0,
            w: 1.0,
            ..Default::default()
        }];
        let n_steps = 50;
        for _ in 0..n_steps {
            parts[0].dx = 0.0;
            parts[0].dy = 0.0;
            parts[0].dz = 0.0;
            parts[0].i = g.voxel(2, 2, 2) as u32;
            advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        }
        let angle = (-parts[0].uy).atan2(parts[0].ux); // q>0 in Bz>0 rotates u clockwise
        let want = (b0 * g.dt * n_steps as f32) % (2.0 * std::f32::consts::PI);
        assert!((angle - want).abs() < 1e-3, "angle {angle} want {want}");
    }

    #[test]
    fn crossing_updates_voxel_index() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.25);
        let ia = InterpolatorArray::new(&g); // zero fields
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        // Fast particle near the +x face: crosses into voxel (3,2,2).
        let mut parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            dx: 0.9,
            ux: 2.0, // v ≈ 0.894c
            w: 1.0,
            ..Default::default()
        }];
        let exiles = advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert!(exiles.is_empty());
        assert_eq!(parts[0].i, g.voxel(3, 2, 2) as u32);
        assert!(parts[0].dx >= -1.0 && parts[0].dx <= 1.0);
    }

    #[test]
    fn periodic_wrap_across_domain() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.25);
        let ia = InterpolatorArray::new(&g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let mut parts = vec![Particle {
            i: g.voxel(4, 2, 2) as u32,
            dx: 0.95,
            ux: 3.0,
            w: 1.0,
            ..Default::default()
        }];
        advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert_eq!(parts[0].i, g.voxel(1, 2, 2) as u32);
    }

    #[test]
    fn reflecting_wall_flips_momentum() {
        let bc = [
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((4, 4, 4), (1.0, 1.0, 1.0), 0.25, bc);
        let ia = InterpolatorArray::new(&g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let mut parts = vec![Particle {
            i: g.voxel(4, 2, 2) as u32,
            dx: 0.95,
            ux: 3.0,
            w: 1.0,
            ..Default::default()
        }];
        advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert_eq!(parts[0].i, g.voxel(4, 2, 2) as u32);
        assert!(parts[0].ux < 0.0, "momentum not flipped: {:?}", parts[0]);
        assert!(parts[0].dx < 0.95);
    }

    #[test]
    fn absorbing_wall_removes_particle() {
        let bc = [
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Absorb,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((4, 4, 4), (1.0, 1.0, 1.0), 0.25, bc);
        let ia = InterpolatorArray::new(&g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let mut parts = vec![
            Particle {
                i: g.voxel(4, 2, 2) as u32,
                dx: 0.95,
                ux: 3.0,
                w: 1.0,
                ..Default::default()
            },
            Particle {
                i: g.voxel(2, 2, 2) as u32,
                w: 1.0,
                ..Default::default()
            },
        ];
        let exiles = advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert!(exiles.is_empty());
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].i, g.voxel(2, 2, 2) as u32);
    }

    #[test]
    fn migrate_boundary_reports_exile() {
        let bc = [
            ParticleBc::Migrate,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Migrate,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((4, 4, 4), (1.0, 1.0, 1.0), 0.25, bc);
        let ia = InterpolatorArray::new(&g);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(1.0, 1.0, &g);
        let mut parts = vec![Particle {
            i: g.voxel(4, 2, 2) as u32,
            dx: 0.95,
            ux: 3.0,
            w: 1.0,
            ..Default::default()
        }];
        let exiles = advance_p_serial(&mut parts, c, &ia, &mut acc, &g);
        assert_eq!(exiles.len(), 1);
        assert_eq!(exiles[0].face, crate::grid::FACE_HIGH_X);
        // Particle parked exactly on the face with remaining displacement.
        assert_eq!(parts[exiles[0].idx as usize].dx, 1.0);
        assert!(exiles[0].mover.dispx > 0.0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        use crate::rng::Rng;
        let g = Grid::periodic((6, 6, 6), (1.0, 1.0, 1.0), 0.2);
        let ia = uniform_e_setup(0.5, &g);
        let mut rng = Rng::seeded(9);
        let mk = |rng: &mut Rng| {
            let i = g.voxel(1 + rng.index(6), 1 + rng.index(6), 1 + rng.index(6)) as u32;
            Particle {
                i,
                dx: rng.uniform_in(-0.99, 0.99) as f32,
                dy: rng.uniform_in(-0.99, 0.99) as f32,
                dz: rng.uniform_in(-0.99, 0.99) as f32,
                ux: rng.normal() as f32 * 0.5,
                uy: rng.normal() as f32 * 0.5,
                uz: rng.normal() as f32 * 0.5,
                w: 1.0,
            }
        };
        let parts: Vec<Particle> = (0..500).map(|_| mk(&mut rng)).collect();

        let mut serial = parts.clone();
        let mut acc_s = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);
        advance_p_serial(&mut serial, c, &ia, &mut acc_s, &g);

        let mut par = ParticleStore::Aos(parts.clone());
        let mut accs: Vec<AccumulatorArray> = (0..4).map(|_| AccumulatorArray::new(&g)).collect();
        advance_p(&mut par, c, &ia, &mut accs, &g);

        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(par.iter()) {
            assert_eq!(*a, b);
        }
        // Reduced accumulators must match too.
        let mut total = AccumulatorArray::new(&g);
        for a in &accs {
            total.reduce_from(a);
        }
        for (x, y) in acc_s.data.iter().zip(total.data.iter()) {
            for n in 0..4 {
                assert!((x.jx[n] - y.jx[n]).abs() < 1e-4);
                assert!((x.jy[n] - y.jy[n]).abs() < 1e-4);
                assert!((x.jz[n] - y.jz[n]).abs() < 1e-4);
            }
        }
    }
}
