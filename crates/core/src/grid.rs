//! Grid geometry, voxel indexing and particle boundary topology.
//!
//! The domain is a regular brick of `nx × ny × nz` cells ("voxels" in VPIC
//! terminology) surrounded by a one-voxel ghost ring, so each field/voxel
//! array has `(nx+2)(ny+2)(nz+2)` entries and live voxels have indices
//! `1..=nx` along each axis. Particles store the index of the voxel that
//! contains them plus a cell-relative offset in `[-1, 1]³` (one voxel spans
//! two offset units per axis), exactly as in VPIC: this keeps positions
//! accurate in single precision regardless of the global domain size.

/// Particle boundary condition attached to one face of the domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParticleBc {
    /// Particle wraps around to the opposite side of the local domain.
    Periodic,
    /// Particle specularly reflects (normal momentum flips).
    Reflect,
    /// Particle is removed from the simulation.
    Absorb,
    /// Particle is handed to the owner of the adjacent domain
    /// (used by `vpic-parallel`; single-domain runs treat it like `Absorb`
    /// plus a report so misconfigurations are loud).
    Migrate,
}

/// Face indices follow VPIC's convention: `0,1,2` are the low `-x,-y,-z`
/// faces and `3,4,5` the high `+x,+y,+z` faces (`face = axis + 3·(dir>0)`).
pub const FACE_LOW_X: usize = 0;
pub const FACE_LOW_Y: usize = 1;
pub const FACE_LOW_Z: usize = 2;
pub const FACE_HIGH_X: usize = 3;
pub const FACE_HIGH_Y: usize = 4;
pub const FACE_HIGH_Z: usize = 5;

/// Sentinel neighbor ids stored in the per-voxel neighbor map.
pub const NEIGHBOR_REFLECT: i64 = -1;
pub const NEIGHBOR_ABSORB: i64 = -2;

/// Encode "leaves the local domain through `face`" as a sentinel neighbor.
#[inline]
pub fn neighbor_migrate(face: usize) -> i64 {
    -(16 + face as i64)
}

/// Decode a migrate sentinel back into the exit face, if it is one.
#[inline]
pub fn decode_migrate(neighbor: i64) -> Option<usize> {
    if (-21..=-16).contains(&neighbor) {
        Some((-neighbor - 16) as usize)
    } else {
        None
    }
}

/// Regular Yee grid with ghost ring and particle-boundary topology.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Live cells along x/y/z (ghosts excluded).
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Cell sizes.
    pub dx: f32,
    pub dy: f32,
    pub dz: f32,
    /// Time step.
    pub dt: f32,
    /// Speed of light (normalized units default to 1).
    pub cvac: f32,
    /// Vacuum permittivity (normalized units default to 1).
    pub eps0: f32,
    /// Coordinates of the low corner of the live region.
    pub x0: f32,
    pub y0: f32,
    pub z0: f32,
    /// Array strides including ghosts: `sx = nx + 2`, etc.
    sx: usize,
    sy: usize,
    sz: usize,
    /// Per-face particle boundary conditions.
    pub bc: [ParticleBc; 6],
    /// Neighbor map: `neighbors[6*v + face]` is the voxel a particle enters
    /// when it leaves live voxel `v` through `face`, or a sentinel.
    neighbors: Vec<i64>,
}

impl Grid {
    /// Build a grid with the given live cell counts, cell sizes, time step
    /// and per-face particle boundary conditions.
    pub fn new(
        (nx, ny, nz): (usize, usize, usize),
        (dx, dy, dz): (f32, f32, f32),
        dt: f32,
        bc: [ParticleBc; 6],
    ) -> Self {
        assert!(
            nx >= 1 && ny >= 1 && nz >= 1,
            "grid needs at least one cell per axis"
        );
        assert!(dx > 0.0 && dy > 0.0 && dz > 0.0 && dt > 0.0);
        let mut g = Grid {
            nx,
            ny,
            nz,
            dx,
            dy,
            dz,
            dt,
            cvac: 1.0,
            eps0: 1.0,
            x0: 0.0,
            y0: 0.0,
            z0: 0.0,
            sx: nx + 2,
            sy: ny + 2,
            sz: nz + 2,
            bc,
            neighbors: Vec::new(),
        };
        g.rebuild_neighbors();
        g
    }

    /// Convenience constructor: fully periodic box.
    pub fn periodic(
        (nx, ny, nz): (usize, usize, usize),
        (dx, dy, dz): (f32, f32, f32),
        dt: f32,
    ) -> Self {
        Self::new((nx, ny, nz), (dx, dy, dz), dt, [ParticleBc::Periodic; 6])
    }

    /// The largest stable time step for the vacuum FDTD solver times `frac`
    /// (`frac < 1`; VPIC-style runs typically use ~0.95–0.99 of Courant).
    pub fn courant_dt(cvac: f32, (dx, dy, dz): (f32, f32, f32), frac: f32) -> f32 {
        let inv = 1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz);
        frac / (cvac * inv.sqrt())
    }

    /// Number of array entries per field component, ghosts included.
    #[inline]
    pub fn n_voxels(&self) -> usize {
        self.sx * self.sy * self.sz
    }

    /// Number of live (non-ghost) cells.
    #[inline]
    pub fn n_live(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Strides (including ghosts) along each axis.
    #[inline]
    pub fn strides(&self) -> (usize, usize, usize) {
        (self.sx, self.sy, self.sz)
    }

    /// Linear voxel index from (i, j, k) including ghosts (`0..=n+1`).
    #[inline]
    pub fn voxel(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.sx && j < self.sy && k < self.sz);
        i + self.sx * (j + self.sy * k)
    }

    /// Inverse of [`Grid::voxel`].
    #[inline]
    pub fn voxel_coords(&self, v: usize) -> (usize, usize, usize) {
        let i = v % self.sx;
        let j = (v / self.sx) % self.sy;
        let k = v / (self.sx * self.sy);
        (i, j, k)
    }

    /// Whether a voxel index refers to a live (non-ghost) cell.
    #[inline]
    pub fn is_live(&self, v: usize) -> bool {
        let (i, j, k) = self.voxel_coords(v);
        (1..=self.nx).contains(&i) && (1..=self.ny).contains(&j) && (1..=self.nz).contains(&k)
    }

    /// Neighbor id for leaving live voxel `v` through `face` (see the
    /// sentinels [`NEIGHBOR_REFLECT`], [`NEIGHBOR_ABSORB`], [`neighbor_migrate`]).
    #[inline]
    pub fn neighbor(&self, v: usize, face: usize) -> i64 {
        debug_assert!(face < 6);
        self.neighbors[6 * v + face]
    }

    /// Global x coordinate of a particle at offset `ox ∈ [-1,1]` within
    /// voxel x-index `i` (live indices start at 1).
    #[inline]
    pub fn particle_x(&self, i: usize, ox: f32) -> f32 {
        self.x0 + ((i as f32 - 1.0) + 0.5 * (ox + 1.0)) * self.dx
    }

    /// Global y coordinate (see [`Grid::particle_x`]).
    #[inline]
    pub fn particle_y(&self, j: usize, oy: f32) -> f32 {
        self.y0 + ((j as f32 - 1.0) + 0.5 * (oy + 1.0)) * self.dy
    }

    /// Global z coordinate (see [`Grid::particle_x`]).
    #[inline]
    pub fn particle_z(&self, k: usize, oz: f32) -> f32 {
        self.z0 + ((k as f32 - 1.0) + 0.5 * (oz + 1.0)) * self.dz
    }

    /// Find the live voxel and offset containing global position `x` along
    /// the x axis. Positions exactly on the high edge land in the last cell.
    pub fn locate_x(&self, x: f32) -> (usize, f32) {
        Self::locate(x, self.x0, self.dx, self.nx)
    }

    /// See [`Grid::locate_x`].
    pub fn locate_y(&self, y: f32) -> (usize, f32) {
        Self::locate(y, self.y0, self.dy, self.ny)
    }

    /// See [`Grid::locate_x`].
    pub fn locate_z(&self, z: f32) -> (usize, f32) {
        Self::locate(z, self.z0, self.dz, self.nz)
    }

    fn locate(x: f32, x0: f32, dx: f32, n: usize) -> (usize, f32) {
        let r = (x - x0) / dx;
        let mut cell = r.floor() as isize;
        if cell < 0 {
            cell = 0;
        }
        if cell >= n as isize {
            cell = n as isize - 1;
        }
        let off = 2.0 * (r - cell as f32) - 1.0;
        ((cell + 1) as usize, off.clamp(-1.0, 1.0))
    }

    /// Physical extents of the live region.
    #[inline]
    pub fn extent(&self) -> (f32, f32, f32) {
        (
            self.nx as f32 * self.dx,
            self.ny as f32 * self.dy,
            self.nz as f32 * self.dz,
        )
    }

    /// Volume of one cell.
    #[inline]
    pub fn dv(&self) -> f32 {
        self.dx * self.dy * self.dz
    }

    /// Recompute the neighbor map; call after changing `bc`.
    pub fn rebuild_neighbors(&mut self) {
        let nv = self.n_voxels();
        self.neighbors = vec![NEIGHBOR_ABSORB; 6 * nv];
        for k in 1..=self.nz {
            for j in 1..=self.ny {
                for i in 1..=self.nx {
                    let v = self.voxel(i, j, k);
                    let coords = [i, j, k];
                    let lims = [self.nx, self.ny, self.nz];
                    for axis in 0..3 {
                        // Low face.
                        let face = axis;
                        self.neighbors[6 * v + face] = if coords[axis] > 1 {
                            let mut c = coords;
                            c[axis] -= 1;
                            self.voxel(c[0], c[1], c[2]) as i64
                        } else {
                            match self.bc[face] {
                                ParticleBc::Periodic => {
                                    let mut c = coords;
                                    c[axis] = lims[axis];
                                    self.voxel(c[0], c[1], c[2]) as i64
                                }
                                ParticleBc::Reflect => NEIGHBOR_REFLECT,
                                ParticleBc::Absorb => NEIGHBOR_ABSORB,
                                ParticleBc::Migrate => neighbor_migrate(face),
                            }
                        };
                        // High face.
                        let face = axis + 3;
                        self.neighbors[6 * v + face] = if coords[axis] < lims[axis] {
                            let mut c = coords;
                            c[axis] += 1;
                            self.voxel(c[0], c[1], c[2]) as i64
                        } else {
                            match self.bc[face] {
                                ParticleBc::Periodic => {
                                    let mut c = coords;
                                    c[axis] = 1;
                                    self.voxel(c[0], c[1], c[2]) as i64
                                }
                                ParticleBc::Reflect => NEIGHBOR_REFLECT,
                                ParticleBc::Absorb => NEIGHBOR_ABSORB,
                                ParticleBc::Migrate => neighbor_migrate(face),
                            }
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::periodic((4, 3, 2), (1.0, 1.0, 1.0), 0.1)
    }

    #[test]
    fn voxel_roundtrip() {
        let g = grid();
        for v in 0..g.n_voxels() {
            let (i, j, k) = g.voxel_coords(v);
            assert_eq!(g.voxel(i, j, k), v);
        }
    }

    #[test]
    fn live_count() {
        let g = grid();
        let live = (0..g.n_voxels()).filter(|&v| g.is_live(v)).count();
        assert_eq!(live, 4 * 3 * 2);
        assert_eq!(g.n_live(), 24);
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let g = grid();
        let v = g.voxel(1, 2, 1);
        assert_eq!(g.neighbor(v, FACE_LOW_X), g.voxel(4, 2, 1) as i64);
        let v = g.voxel(4, 2, 1);
        assert_eq!(g.neighbor(v, FACE_HIGH_X), g.voxel(1, 2, 1) as i64);
        let v = g.voxel(2, 3, 2);
        assert_eq!(g.neighbor(v, FACE_HIGH_Y), g.voxel(2, 1, 2) as i64);
        assert_eq!(g.neighbor(v, FACE_HIGH_Z), g.voxel(2, 3, 1) as i64);
    }

    #[test]
    fn interior_neighbors_step_by_one() {
        let g = grid();
        let v = g.voxel(2, 2, 1);
        assert_eq!(g.neighbor(v, FACE_HIGH_X), g.voxel(3, 2, 1) as i64);
        assert_eq!(g.neighbor(v, FACE_LOW_Y), g.voxel(2, 1, 1) as i64);
    }

    #[test]
    fn reflect_absorb_migrate_sentinels() {
        let bc = [
            ParticleBc::Reflect,
            ParticleBc::Absorb,
            ParticleBc::Migrate,
            ParticleBc::Reflect,
            ParticleBc::Absorb,
            ParticleBc::Migrate,
        ];
        let g = Grid::new((2, 2, 2), (1.0, 1.0, 1.0), 0.1, bc);
        let v = g.voxel(1, 1, 1);
        assert_eq!(g.neighbor(v, FACE_LOW_X), NEIGHBOR_REFLECT);
        assert_eq!(g.neighbor(v, FACE_LOW_Y), NEIGHBOR_ABSORB);
        assert_eq!(g.neighbor(v, FACE_LOW_Z), neighbor_migrate(FACE_LOW_Z));
        assert_eq!(decode_migrate(g.neighbor(v, FACE_LOW_Z)), Some(FACE_LOW_Z));
        assert_eq!(decode_migrate(NEIGHBOR_REFLECT), None);
    }

    #[test]
    fn locate_inverts_particle_position() {
        let mut g = grid();
        g.x0 = -2.0;
        for &(x, want_i) in &[(-1.99_f32, 1_usize), (-1.01, 1), (-0.5, 2), (1.999, 4)] {
            let (i, off) = g.locate_x(x);
            assert_eq!(i, want_i, "x = {x}");
            let back = g.particle_x(i, off);
            assert!((back - x).abs() < 1e-5, "x = {x}, back = {back}");
        }
    }

    #[test]
    fn courant_dt_is_stable_bound() {
        let dt = Grid::courant_dt(1.0, (1.0, 1.0, 1.0), 1.0);
        assert!((dt - 1.0 / 3f32.sqrt()).abs() < 1e-6);
    }
}
