//! Particle and mover types.
//!
//! VPIC's 32-byte single-precision particle: voxel-relative offsets keep
//! positions accurate in `f32` no matter how large the domain is, and the
//! 32-byte size means two particles per cache line — the layout the SC'08
//! paper credits for much of its memory-bandwidth efficiency.

/// One macroparticle. Offsets `dx,dy,dz ∈ [-1,1]` are relative to the
/// center of voxel `i`; `ux,uy,uz` are normalized momentum `p/(m c)`
/// (so `γ = √(1+u²)`); `w` is the statistical weight (number of physical
/// particles represented).
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Particle {
    pub dx: f32,
    pub dy: f32,
    pub dz: f32,
    pub i: u32,
    pub ux: f32,
    pub uy: f32,
    pub uz: f32,
    pub w: f32,
}

const _: () = assert!(
    std::mem::size_of::<Particle>() == 32,
    "VPIC particle layout"
);

impl Particle {
    /// Lorentz factor.
    #[inline]
    pub fn gamma(&self) -> f32 {
        (1.0 + self.ux * self.ux + self.uy * self.uy + self.uz * self.uz).sqrt()
    }

    /// Kinetic energy per unit `m c²`, times the weight: `w (γ − 1)`.
    /// The `u²/(γ+1)` form is exact and avoids cancellation for cold
    /// particles.
    #[inline]
    pub fn kinetic_w(&self) -> f64 {
        let u2 = (self.ux as f64).powi(2) + (self.uy as f64).powi(2) + (self.uz as f64).powi(2);
        self.w as f64 * u2 / (1.0 + (1.0 + u2).sqrt())
    }

    /// Offset component along `axis` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn offset(&self, axis: usize) -> f32 {
        debug_assert!(axis < 3, "offset axis {axis} out of range");
        match axis {
            0 => self.dx,
            1 => self.dy,
            2 => self.dz,
            _ => f32::NAN,
        }
    }

    /// Set the offset component along `axis`.
    #[inline]
    pub fn set_offset(&mut self, axis: usize, v: f32) {
        debug_assert!(axis < 3, "set_offset axis {axis} out of range");
        match axis {
            0 => self.dx = v,
            1 => self.dy = v,
            2 => self.dz = v,
            _ => {}
        }
    }

    /// Momentum component along `axis`.
    #[inline]
    pub fn momentum(&self, axis: usize) -> f32 {
        debug_assert!(axis < 3, "momentum axis {axis} out of range");
        match axis {
            0 => self.ux,
            1 => self.uy,
            2 => self.uz,
            _ => f32::NAN,
        }
    }

    /// Set the momentum component along `axis`.
    #[inline]
    pub fn set_momentum(&mut self, axis: usize, v: f32) {
        debug_assert!(axis < 3, "set_momentum axis {axis} out of range");
        match axis {
            0 => self.ux = v,
            1 => self.uy = v,
            2 => self.uz = v,
            _ => {}
        }
    }
}

/// An unfinished particle move: the remaining *half* displacement in
/// voxel-offset units (VPIC convention — see `move_p`) plus the index of
/// the particle in its species array.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mover {
    pub dispx: f32,
    pub dispy: f32,
    pub dispz: f32,
    pub idx: u32,
}

impl Mover {
    /// Displacement component along `axis`.
    #[inline]
    pub fn disp(&self, axis: usize) -> f32 {
        debug_assert!(axis < 3, "disp axis {axis} out of range");
        match axis {
            0 => self.dispx,
            1 => self.dispy,
            2 => self.dispz,
            _ => f32::NAN,
        }
    }

    /// Set the displacement component along `axis`.
    #[inline]
    pub fn set_disp(&mut self, axis: usize, v: f32) {
        debug_assert!(axis < 3, "set_disp axis {axis} out of range");
        match axis {
            0 => self.dispx = v,
            1 => self.dispy = v,
            2 => self.dispz = v,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_and_kinetic() {
        let p = Particle {
            ux: 3.0,
            uy: 0.0,
            uz: 4.0,
            w: 2.0,
            ..Default::default()
        };
        assert!((p.gamma() - (26.0f32).sqrt()).abs() < 1e-6);
        let want = 2.0 * ((26.0f64).sqrt() - 1.0);
        assert!((p.kinetic_w() - want).abs() < 1e-6);
    }

    #[test]
    fn kinetic_is_accurate_when_cold() {
        let p = Particle {
            ux: 1e-4,
            w: 1.0,
            ..Default::default()
        };
        // (γ-1) ≈ u²/2 for small u; direct f32 sqrt would lose all digits.
        let want = 0.5e-8;
        assert!((p.kinetic_w() - want).abs() / want < 1e-3);
    }

    #[test]
    fn axis_accessors_roundtrip() {
        let mut p = Particle::default();
        for a in 0..3 {
            p.set_offset(a, 0.25 * (a as f32 + 1.0));
            p.set_momentum(a, -0.5 * (a as f32 + 1.0));
        }
        assert_eq!((p.dx, p.dy, p.dz), (0.25, 0.5, 0.75));
        assert_eq!((p.ux, p.uy, p.uz), (-0.5, -1.0, -1.5));
        for a in 0..3 {
            assert_eq!(p.offset(a), 0.25 * (a as f32 + 1.0));
            assert_eq!(p.momentum(a), -0.5 * (a as f32 + 1.0));
        }
        let mut m = Mover::default();
        for a in 0..3 {
            m.set_disp(a, a as f32);
            assert_eq!(m.disp(a), a as f32);
        }
    }
}
