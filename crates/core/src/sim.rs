//! Single-domain simulation driver.
//!
//! One [`Simulation::step`] performs, in order (times at loop entry:
//! `E, B` at step `n`, momenta at `n−½`, positions at `n`):
//!
//! 1. occasional voxel sort of each species;
//! 2. interpolator load from `E(n), B(n)`;
//! 3. particle advance: momenta → `n+½`, positions → `n+1`, currents
//!    deposited at `n+½` into per-pipeline accumulators;
//! 4. accumulator reduce + unload into `J`, ghost folding;
//! 5. the caller's current drive hook (laser antennas add to `J` here);
//! 6. field advance: `B` half, `E` full, `B` half → `E(n+1), B(n+1)`;
//! 7. optional sponge damping and occasional Marder divergence cleaning.
//!
//! Phase wall-times are accumulated in [`StepTimings`] — the breakdown the
//! paper reports when separating "inner loop" (0.488 Pflop/s) from
//! sustained whole-step (0.374 Pflop/s) performance.

use crate::accumulator::AccumulatorSet;
use crate::collision::CollisionOperator;
use crate::deposit::deposit_rho;
use crate::field::FieldArray;
use crate::field_solver::{
    advance_b, advance_e, bcs_of, clean_div_b, clean_div_e, sync_j, sync_rho,
};
use crate::grid::Grid;
use crate::interpolator::InterpolatorArray;
use crate::push::{advance_p_tallied, Exile, PushCoefficients, PushKernel};
use crate::rng::Rng;
use crate::sentinel::{HealthVerdict, Sentinel, SimConfig};
use crate::species::Species;
use crate::sponge::Sponge;
use crate::store::Layout;
use std::time::Instant;

/// Accumulated per-phase wall time in seconds, plus advance counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// Interpolator load.
    pub interpolate: f64,
    /// Particle push + current accumulation (the "inner loop").
    pub push: f64,
    /// Accumulator reduction + unload + ghost folding.
    pub current: f64,
    /// Maxwell solve (B half / E full / B half + ghost sync).
    pub field: f64,
    /// Particle sorting.
    pub sort: f64,
    /// Sponge, divergence cleaning, drive hooks.
    pub other: f64,
    /// Diagnostics observation: probe sampling + snapshot publication
    /// (the async pipeline's residual on-hot-path cost; the FFT/artifact
    /// work itself runs on the worker and never lands here).
    pub diag: f64,
    /// Total particle advances performed.
    pub particle_steps: u64,
    /// Total voxel updates performed by the field solver (live cells ×
    /// steps).
    pub voxel_steps: u64,
    /// Steps taken.
    pub steps: u64,
}

impl StepTimings {
    /// Total accounted wall time.
    pub fn total(&self) -> f64 {
        self.interpolate
            + self.push
            + self.current
            + self.field
            + self.sort
            + self.other
            + self.diag
    }

    /// Fraction of time in the particle inner loop.
    pub fn inner_loop_fraction(&self) -> f64 {
        if self.total() > 0.0 {
            self.push / self.total()
        } else {
            0.0
        }
    }
}

/// A single-domain PIC simulation.
pub struct Simulation {
    pub grid: Grid,
    pub fields: FieldArray,
    pub interp: InterpolatorArray,
    pub species: Vec<Species>,
    pub accumulators: AccumulatorSet,
    /// Optional damping layers.
    pub sponge: Option<Sponge>,
    /// Marder-clean `∇·E` every this many steps (0 = never).
    pub clean_div_e_interval: usize,
    /// Marder-clean `∇·B` every this many steps (0 = never).
    pub clean_div_b_interval: usize,
    /// Completed steps.
    pub step_count: u64,
    /// Particles lost through `Migrate` faces (a configuration smell in
    /// single-domain runs; the distributed driver handles them properly).
    pub lost_particles: u64,
    /// Phase timings.
    pub timings: StepTimings,
    /// Binary-collision operators: `(species index, operator)`; applied
    /// every `operator.interval` steps on voxel-sorted particles.
    pub collisions: Vec<(usize, CollisionOperator)>,
    /// Optional numerical-integrity sentinel; when present, its checks
    /// run at the end of each step on its `health_interval` cadence and
    /// repairable anomalies are Marder-healed in place. Inspect
    /// [`Simulation::sentinel_verdict`] after stepping.
    pub sentinel: Option<Sentinel>,
    /// Particle storage layout applied to every species (the `layout`
    /// deck knob); species added later are converted on entry.
    layout: Layout,
    /// Which AoSoA push body runs (bit-identical either way; see
    /// [`PushKernel`]). Ignored by the AoS layout.
    kernel: PushKernel,
    collision_rng: Rng,
    scratch: Vec<f32>,
}

impl Simulation {
    /// Build a simulation with `n_pipelines` push pipelines (use the Rayon
    /// thread count for production, 1 for strictly deterministic runs).
    pub fn new(grid: Grid, n_pipelines: usize) -> Self {
        let fields = FieldArray::new(&grid);
        let interp = InterpolatorArray::new(&grid);
        let accumulators = AccumulatorSet::new(&grid, n_pipelines);
        Simulation {
            grid,
            fields,
            interp,
            species: Vec::new(),
            accumulators,
            sponge: None,
            clean_div_e_interval: 0,
            clean_div_b_interval: 0,
            step_count: 0,
            lost_particles: 0,
            timings: StepTimings::default(),
            collisions: Vec::new(),
            sentinel: None,
            layout: Layout::default(),
            kernel: PushKernel::default(),
            collision_rng: Rng::seeded(0xC0111D0),
            scratch: Vec::new(),
        }
    }

    /// The particle storage layout in use.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The AoSoA push kernel in use.
    pub fn kernel(&self) -> PushKernel {
        self.kernel
    }

    /// Select the AoSoA push kernel. Both kernels are bit-identical (the
    /// determinism and kernel-oracle suites pin it), so this can be
    /// switched at any point of a run without changing the trajectory.
    pub fn set_kernel(&mut self, kernel: PushKernel) {
        self.kernel = kernel;
    }

    /// Switch every species (present and future) to `layout`. Lossless;
    /// AoS and AoSoA runs are bit-identical, so this can be called at any
    /// point of a run — including right after a checkpoint restore.
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
        for sp in &mut self.species {
            sp.set_layout(layout);
        }
    }

    /// The checkpoint-portable run configuration (cleaning cadence +
    /// sentinel thresholds).
    pub fn config(&self) -> SimConfig {
        SimConfig {
            clean_div_e_interval: self.clean_div_e_interval,
            clean_div_b_interval: self.clean_div_b_interval,
            sentinel: self.sentinel.as_ref().map(|s| s.cfg).unwrap_or_default(),
        }
    }

    /// Apply a restored [`SimConfig`]: sets the cleaning cadence and
    /// (re)creates the sentinel when its cadence is non-zero. A freshly
    /// created sentinel re-arms its baseline on the first healthy check.
    pub fn set_config(&mut self, c: &SimConfig) {
        self.clean_div_e_interval = c.clean_div_e_interval;
        self.clean_div_b_interval = c.clean_div_b_interval;
        self.sentinel = c.sentinel.active().then(|| Sentinel::new(c.sentinel));
    }

    /// Verdict of the most recent sentinel check, if the sentinel is
    /// armed and tripped (healthy and healed-in-place states are `None`).
    pub fn sentinel_verdict(&self) -> Option<HealthVerdict> {
        self.sentinel.as_ref().and_then(|s| s.tripped().copied())
    }

    /// Enable TA77 binary collisions for species `si`.
    pub fn add_collisions(&mut self, si: usize, op: CollisionOperator) {
        assert!(si < self.species.len(), "species {si} does not exist");
        self.collisions.push((si, op));
    }

    /// Add a species (converted to the simulation's layout); returns its
    /// index.
    pub fn add_species(&mut self, mut sp: Species) -> usize {
        sp.set_layout(self.layout);
        self.species.push(sp);
        self.species.len() - 1
    }

    /// Total macroparticles across species.
    pub fn n_particles(&self) -> usize {
        self.species.iter().map(Species::len).sum()
    }

    /// One step with no external drive.
    pub fn step(&mut self) {
        self.step_with(|_, _, _| {});
    }

    /// One step with a drive hook plus a diagnostics observer. The
    /// observer runs after the step completes (fields at `n+1`, the
    /// completed-step count passed in) and its wall time is charged to
    /// `timings.diag` — this is the snapshot-publication seam of the
    /// diagnostics pipeline, kept out of every physics phase's budget.
    pub fn step_with_observed(
        &mut self,
        drive: impl FnOnce(&mut FieldArray, &Grid, u64),
        observe: impl FnOnce(&FieldArray, &Grid, &[Species], u64),
    ) {
        self.step_with(drive);
        let t0 = Instant::now();
        observe(&self.fields, &self.grid, &self.species, self.step_count);
        self.timings.diag += t0.elapsed().as_secs_f64();
    }

    /// One step; `drive` is called right before the field advance and may
    /// add external currents (e.g. a laser antenna) into `fields.j*`.
    pub fn step_with(&mut self, drive: impl FnOnce(&mut FieldArray, &Grid, u64)) {
        let g = &self.grid;
        let bcs = bcs_of(g);

        // 1. Occasional sort, under the per-species cadence controller
        // (fixed interval or auto-tuned from coherence telemetry). The
        // controller skips the counting sort when the store is provably
        // still in voxel order, and never fires on step 0.
        let t0 = Instant::now();
        for sp in &mut self.species {
            if sp.sort_due(self.step_count) {
                sp.sort_on_cadence(g);
            }
        }
        self.timings.sort += t0.elapsed().as_secs_f64();

        // 2. Interpolator from E(n), B(n).
        let t0 = Instant::now();
        self.interp.load(&self.fields, g);
        self.timings.interpolate += t0.elapsed().as_secs_f64();

        // 3. Particle advance.
        let t0 = Instant::now();
        self.accumulators.clear();
        let mut lost = 0u64;
        let mut advanced = 0u64;
        for sp in &mut self.species {
            let coeffs = PushCoefficients::new(sp.q, sp.m, g);
            advanced += sp.len() as u64;
            let (exiles, tally): (Vec<Exile>, _) = advance_p_tallied(
                sp.store_mut(),
                coeffs,
                &self.interp,
                &mut self.accumulators.arrays,
                g,
                self.kernel,
            );
            // Single-domain: migrate faces should not appear; drop & count.
            if !exiles.is_empty() {
                let mut idxs: Vec<u32> = exiles.iter().map(|e| e.idx).collect();
                idxs.sort_unstable_by(|a, b| b.cmp(a));
                for idx in idxs {
                    sp.swap_remove(idx as usize);
                    lost += 1;
                }
            }
            sp.note_push_tally(&tally);
        }
        self.lost_particles += lost;
        self.timings.push += t0.elapsed().as_secs_f64();
        self.timings.particle_steps += advanced;

        // Binary collisions (TA77), on voxel-sorted particles.
        if !self.collisions.is_empty() {
            let t0 = Instant::now();
            for (si, op) in self.collisions.clone() {
                if self.step_count.is_multiple_of(op.interval as u64) {
                    let sp = &mut self.species[si];
                    sp.sort(g);
                    op.apply(sp, g, &mut self.collision_rng);
                }
            }
            self.timings.other += t0.elapsed().as_secs_f64();
        }

        // 4. Currents to the grid (range-parallel reduce + slab-parallel
        // unload; see `AccumulatorSet::reduce_and_unload`).
        let t0 = Instant::now();
        self.fields.clear_currents();
        self.accumulators.reduce_and_unload(&mut self.fields, g);
        sync_j(&mut self.fields, g, bcs);
        self.timings.current += t0.elapsed().as_secs_f64();

        // 5. External drive.
        let t0 = Instant::now();
        drive(&mut self.fields, g, self.step_count);
        self.timings.other += t0.elapsed().as_secs_f64();

        // 6. Field advance.
        let t0 = Instant::now();
        advance_b(&mut self.fields, g, 0.5);
        advance_e(&mut self.fields, g);
        advance_b(&mut self.fields, g, 0.5);
        self.timings.field += t0.elapsed().as_secs_f64();
        self.timings.voxel_steps += g.n_live() as u64;

        // 7. Sponge + divergence cleaning.
        let t0 = Instant::now();
        if let Some(sponge) = self.sponge {
            sponge.apply(&mut self.fields, g);
        }
        self.step_count += 1;
        if self.clean_div_e_interval > 0
            && self
                .step_count
                .is_multiple_of(self.clean_div_e_interval as u64)
        {
            self.refresh_rho();
            clean_div_e(&mut self.fields, &self.grid, &mut self.scratch);
        }
        if self.clean_div_b_interval > 0
            && self
                .step_count
                .is_multiple_of(self.clean_div_b_interval as u64)
        {
            clean_div_b(&mut self.fields, &self.grid, &mut self.scratch);
        }
        // Sentinel check-and-heal on its own cadence (take/put so the
        // sentinel can borrow the whole simulation mutably).
        if let Some(mut sentinel) = self.sentinel.take() {
            if sentinel.due(self.step_count) {
                sentinel.check(self);
            }
            self.sentinel = Some(sentinel);
        }
        self.timings.other += t0.elapsed().as_secs_f64();
        self.timings.steps += 1;
    }

    /// Recompute the diagnostic charge density from the particles.
    pub fn refresh_rho(&mut self) {
        self.fields.clear_rho();
        for sp in &self.species {
            deposit_rho(&mut self.fields, &self.grid, sp.iter(), sp.q);
        }
        sync_rho(&mut self.fields, &self.grid, bcs_of(&self.grid));
    }

    /// Establish a self-consistent initial `E` from the loaded particles by
    /// iterated Marder cleaning (Poisson solve by relaxation). Call once
    /// after loading when the initial charge is not neutral everywhere.
    pub fn solve_initial_e(&mut self, passes: usize) {
        self.refresh_rho();
        for _ in 0..passes {
            clean_div_e(&mut self.fields, &self.grid, &mut self.scratch);
        }
    }

    /// Field + kinetic energy snapshot (f64).
    pub fn energies(&self) -> EnergySnapshot {
        EnergySnapshot {
            field_e: self.fields.energy_e(&self.grid),
            field_b: self.fields.energy_b(&self.grid),
            kinetic: self
                .species
                .iter()
                .map(|s| s.kinetic_energy(&self.grid))
                .collect(),
        }
    }
}

/// Energy bookkeeping for conservation checks.
#[derive(Clone, Debug)]
pub struct EnergySnapshot {
    pub field_e: f64,
    pub field_b: f64,
    pub kinetic: Vec<f64>,
}

impl EnergySnapshot {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.field_e + self.field_b + self.kinetic.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::sync_e;
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::rng::Rng;

    fn small_plasma(ppc: usize, pipelines: usize) -> Simulation {
        let dx = 0.2f32;
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.7);
        let g = Grid::periodic((8, 8, 8), (dx, dx, dx), dt);
        let mut sim = Simulation::new(g, pipelines);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(7);
        load_uniform(
            &mut e,
            &sim.grid,
            &mut rng,
            1.0,
            ppc,
            Momentum::thermal(0.02),
        );
        sim.add_species(e);
        // Neutralizing immobile background: in normalized units a uniform
        // ion background just cancels the mean electron charge, which our
        // periodic field solve does implicitly (only charge *fluctuations*
        // drive E through J). Nothing to add.
        sim
    }

    #[test]
    fn quiet_plasma_stays_quiet() {
        let mut sim = small_plasma(8, 1);
        let e0 = sim.energies();
        for _ in 0..20 {
            sim.step();
        }
        let e1 = sim.energies();
        // Thermal noise generates small fields, but nothing should blow up.
        assert!(e1.total().is_finite());
        assert!(e1.field_e < 0.05 * e1.kinetic[0], "E blew up: {e1:?}");
        assert!(sim.lost_particles == 0);
        assert!((e1.total() - e0.total()).abs() / e0.total() < 0.05);
        assert_eq!(sim.step_count, 20);
        assert_eq!(sim.timings.steps, 20);
        assert!(sim.timings.particle_steps > 0);
    }

    #[test]
    fn energy_conservation_over_langmuir_oscillation() {
        // Seed a longitudinal E perturbation and verify total energy is
        // conserved to ~1% while it sloshes between field and particles.
        let mut sim = small_plasma(32, 1);
        let g = sim.grid.clone();
        let kx = 2.0 * std::f32::consts::PI / g.extent().0;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let x = g.x0 + (i as f32 - 0.5) * g.dx;
                    sim.fields.ex[g.voxel(i, j, k)] = 0.01 * (kx * x).sin();
                }
            }
        }
        sync_e(&mut sim.fields, &g, bcs_of(&g));
        let e0 = sim.energies().total();
        let mut min_field = f64::INFINITY;
        let mut max_field: f64 = 0.0;
        for _ in 0..60 {
            sim.step();
            let e = sim.energies();
            min_field = min_field.min(e.field_e);
            max_field = max_field.max(e.field_e);
        }
        let e1 = sim.energies().total();
        assert!((e1 - e0).abs() / e0 < 0.02, "energy drift {e0} -> {e1}");
        // The field energy must actually oscillate (energy exchange).
        assert!(
            min_field < 0.5 * max_field,
            "no oscillation: {min_field} vs {max_field}"
        );
    }

    #[test]
    fn pipelines_do_not_change_physics() {
        let mut a = small_plasma(8, 1);
        let mut b = small_plasma(8, 4);
        for _ in 0..5 {
            a.step();
            b.step();
        }
        // Particle state must agree exactly (same seed, same order — only
        // the accumulator partitioning differs; J reduce order can differ
        // at float level, so compare loosely via energies).
        let (ea, eb) = (a.energies(), b.energies());
        assert!((ea.total() - eb.total()).abs() / ea.total() < 1e-4);
        assert_eq!(a.n_particles(), b.n_particles());
    }

    #[test]
    fn solve_initial_e_reduces_divergence_error() {
        // A *neutral* plasma with charge fluctuations: electrons + ions from
        // different random streams. (A net-charged periodic box would have
        // an irreducible DC divergence error by Gauss's law.)
        let mut sim = small_plasma(4, 1);
        let mut ions = Species::new("i", 1.0, 1836.0);
        let mut rng = Rng::seeded(99);
        load_uniform(
            &mut ions,
            &sim.grid,
            &mut rng,
            1.0,
            4,
            Momentum::thermal(0.001),
        );
        sim.add_species(ions);
        sim.refresh_rho();
        let mut scratch = Vec::new();
        let before = crate::field_solver::compute_div_e_err(&sim.fields, &sim.grid, &mut scratch);
        sim.solve_initial_e(50);
        sim.refresh_rho();
        let after = crate::field_solver::compute_div_e_err(&sim.fields, &sim.grid, &mut scratch);
        assert!(after < 0.5 * before, "{before} -> {after}");
    }
}
