//! Tracer particles: zero-weight particles that feel the fields and move
//! like ordinary particles but deposit **nothing** (the deposition charge
//! is `q·w = 0`), exactly VPIC's tracer convention. Keep tracers in their
//! own species with `sort_interval = 0` so array order (= tracer id) is
//! stable, and record trajectories with [`TrajectoryRecorder`].

use crate::grid::Grid;
use crate::particle::Particle;
use crate::species::Species;

/// Build a tracer species (zero weight, unsorted) for the given
/// charge/mass.
pub fn tracer_species(name: impl Into<String>, q: f32, m: f32) -> Species {
    Species::new(name, q, m).with_sort_interval(0)
}

/// Add one tracer at global position `(x, y, z)` with momentum `u`.
/// Returns its stable index within the species.
pub fn add_tracer(
    sp: &mut Species,
    g: &Grid,
    (x, y, z): (f32, f32, f32),
    u: (f32, f32, f32),
) -> usize {
    let (i, dx) = g.locate_x(x);
    let (j, dy) = g.locate_y(y);
    let (k, dz) = g.locate_z(z);
    sp.push(Particle {
        dx,
        dy,
        dz,
        i: g.voxel(i, j, k) as u32,
        ux: u.0,
        uy: u.1,
        uz: u.2,
        w: 0.0,
    });
    sp.len() - 1
}

/// One recorded trajectory sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackPoint {
    pub step: u64,
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub ux: f32,
    pub uy: f32,
    pub uz: f32,
}

/// Records the trajectories of every particle in a tracer species.
#[derive(Clone, Debug, Default)]
pub struct TrajectoryRecorder {
    pub tracks: Vec<Vec<TrackPoint>>,
}

impl TrajectoryRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample every tracer of `sp` at `step`.
    pub fn sample(&mut self, sp: &Species, g: &Grid, step: u64) {
        if self.tracks.len() < sp.len() {
            self.tracks.resize(sp.len(), Vec::new());
        }
        for (t, p) in sp.iter().enumerate() {
            let (i, j, k) = g.voxel_coords(p.i as usize);
            self.tracks[t].push(TrackPoint {
                step,
                x: g.particle_x(i, p.dx),
                y: g.particle_y(j, p.dy),
                z: g.particle_z(k, p.dz),
                ux: p.ux,
                uy: p.uy,
                uz: p.uz,
            });
        }
    }

    /// Path length of track `t` (sum of straight segments; periodic wraps
    /// show up as long segments — use for non-wrapping tracks).
    pub fn path_length(&self, t: usize) -> f64 {
        self.tracks[t]
            .windows(2)
            .map(|w| {
                let (a, b) = (&w[0], &w[1]);
                (((b.x - a.x) as f64).powi(2)
                    + ((b.y - a.y) as f64).powi(2)
                    + ((b.z - a.z) as f64).powi(2))
                .sqrt()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::{bcs_of, sync_b};
    use crate::sim::Simulation;

    #[test]
    fn tracers_deposit_nothing() {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut sim = Simulation::new(g, 1);
        let mut tr = tracer_species("tracer", -1.0, 1.0);
        add_tracer(&mut tr, &sim.grid, (1.0, 1.0, 1.0), (0.5, 0.0, 0.0));
        sim.add_species(tr);
        for _ in 0..10 {
            sim.step();
        }
        // Fields stay exactly zero: the tracer carries no charge.
        assert!(sim.fields.jx.iter().all(|&v| v == 0.0));
        assert!(sim.fields.ex.iter().all(|&v| v == 0.0));
        assert_eq!(sim.species[0].len(), 1);
    }

    #[test]
    fn ballistic_tracer_track_is_straight() {
        let g = Grid::periodic((16, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut sim = Simulation::new(g, 1);
        let mut tr = tracer_species("tracer", -1.0, 1.0);
        let u = 0.6f32;
        add_tracer(&mut tr, &sim.grid, (0.5, 1.0, 1.0), (u, 0.0, 0.0));
        let si = sim.add_species(tr);
        let mut rec = TrajectoryRecorder::new();
        let g = sim.grid.clone();
        for s in 0..20u64 {
            rec.sample(&sim.species[si], &g, s);
            sim.step();
        }
        let v = u / (1.0 + u * u).sqrt();
        let track = &rec.tracks[0];
        for w in track.windows(2) {
            let dx = w[1].x - w[0].x;
            assert!(
                (dx - v * g.dt).abs() < 1e-5,
                "step dx = {dx}, want {}",
                v * g.dt
            );
            assert_eq!(w[1].y, w[0].y);
        }
        let expect_len = (track.len() - 1) as f64 * (v * g.dt) as f64;
        assert!((rec.path_length(0) - expect_len).abs() < 1e-4);
    }

    #[test]
    fn tracer_gyrates_in_uniform_b() {
        // Uniform Bz: the tracer's transverse speed is constant and the
        // gyro-radius matches ρ = u⊥/(qB/m)·(1/γ)·γ = u⊥ m c/(q B) → in
        // normalized units ρ = u⊥/B.
        let g = Grid::periodic((16, 16, 4), (0.25, 0.25, 0.25), 0.02);
        let mut sim = Simulation::new(g, 1);
        let b0 = 2.0f32;
        for v in sim.fields.cbz.iter_mut() {
            *v = b0;
        }
        let gg = sim.grid.clone();
        sync_b(&mut sim.fields, &gg, bcs_of(&gg));
        let mut tr = tracer_species("tracer", 1.0, 1.0);
        let u = 0.1f32;
        add_tracer(&mut tr, &sim.grid, (2.0, 2.0, 0.5), (u, 0.0, 0.0));
        let si = sim.add_species(tr);
        let mut rec = TrajectoryRecorder::new();
        // One gyro-period T = 2πγ/(qB/m) ≈ 2π/2 (γ≈1).
        let period = 2.0 * std::f32::consts::PI * (1.0 + u * u).sqrt() / b0;
        let steps = (period / sim.grid.dt) as u64;
        for s in 0..=steps {
            rec.sample(&sim.species[si], &gg, s);
            sim.step();
        }
        let track = &rec.tracks[0];
        // Returned near the start after one period.
        let (a, b) = (track[0], track[track.len() - 1]);
        assert!(
            (a.x - b.x).abs() < 0.02 && (a.y - b.y).abs() < 0.02,
            "not periodic: {a:?} vs {b:?}"
        );
        // Radius: max y-excursion ≈ 2ρ = 2u/B (circle diameter).
        let ymin = track.iter().map(|p| p.y).fold(f32::INFINITY, f32::min);
        let ymax = track.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max);
        let want = 2.0 * u / b0;
        assert!(
            ((ymax - ymin) - want).abs() < 0.15 * want,
            "diameter {} want {want}",
            ymax - ymin
        );
    }
}
