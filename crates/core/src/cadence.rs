//! Adaptive sort-cadence control for lane coherence.
//!
//! The 8-lane AoSoA push (PR 7) pays for itself only while blocks stay
//! voxel-coherent: cell-crossers and mixed-voxel blocks fall to the
//! `#[cold]` scalar spill path. How coherent blocks stay between sorts is
//! workload-dependent — a cold thermal plasma drifts slowly, a laser-heated
//! one scrambles in a few steps — so a fixed `sort_interval` is either
//! wasted sorting or wasted spilling. This module closes the loop:
//!
//! * [`CoherenceCounters`] — cheap per-species telemetry from the push
//!   (crossers, lane spills, mixed blocks, straddled lanes) folded
//!   bit-identically across pipelines the way the sentinel folds
//!   [`HealthSample`](crate::sentinel::HealthSample)s: integer counters,
//!   summed in pipeline order, with a flat `to_vec`/`from_vec` codec for
//!   cross-rank reduction.
//! * [`CadenceState`] + [`auto_sort_interval`] — an amortized cost model in
//!   the style of the Young/Daly checkpoint-interval solver
//!   (`roadrunner-model`): sorting costs `S` once per interval, incoherence
//!   costs `C_MIX · n · r` per step and grows linearly with the steps since
//!   the last sort, so the optimum interval is `τ* = sqrt(2S / (C_MIX·n·r))`.
//! * [`SortPolicy`] — `Fixed(n)` (the historical knob, `0` = never) or
//!   `Auto` (the controller above).
//!
//! ## Determinism contract
//!
//! Every input to a cadence decision is bitwise-deterministic: crosser
//! counts are exact integers identical across layouts, kernels and worker
//! counts (a particle either enters `move_p` or it does not), and the model
//! constants are compile-time fixed. Wall-clock time never feeds a
//! decision. The f64 solver arithmetic is a fixed expression tree, so every
//! pipeline count computes the same interval, and [`CadenceState`] rides
//! checkpoints bit-exactly (the EWMA rate is stored as raw f64 bits).

use std::fmt;

/// Historical default cadence (steps between sorts) — also the `Auto`
/// controller's starting interval before its first measurement window.
pub const DEFAULT_SORT_INTERVAL: u32 = 25;

/// Floor for the auto-tuned interval: below this the sort itself dominates
/// even a fully scrambled species.
pub const MIN_AUTO_INTERVAL: u32 = 4;

/// Ceiling for the auto-tuned interval: a quiescent species (zero measured
/// crossing rate) still re-sorts occasionally so the controller keeps
/// getting measurement windows after a workload change.
pub const MAX_AUTO_INTERVAL: u32 = 250;

/// Relative cost of one incoherent particle-step versus one sorted
/// particle-step: the scalar spill path re-derives the interpolator and
/// runs `move_p` per particle, roughly the cost of touching the particle
/// once more. Deliberately a compile-time constant — measuring it at run
/// time would make the cadence depend on the host.
const C_MIX: f64 = 1.0;

/// EWMA smoothing for the measured crossing rate. `0.5` reacts within two
/// windows while riding out single-window noise.
const RATE_ALPHA: f64 = 0.5;

/// When a species should be counting-sorted back into voxel order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortPolicy {
    /// Sort every `n` steps; `0` disables sorting entirely (tracers).
    Fixed(u32),
    /// Auto-tune the interval from measured coherence telemetry.
    Auto,
}

impl Default for SortPolicy {
    fn default() -> Self {
        SortPolicy::Fixed(DEFAULT_SORT_INTERVAL)
    }
}

impl SortPolicy {
    /// Parse a deck value: `auto` or a step count.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim().trim_matches('"');
        if s.eq_ignore_ascii_case("auto") {
            return Some(SortPolicy::Auto);
        }
        s.parse::<u32>().ok().map(SortPolicy::Fixed)
    }

    /// Stable name for bench records and reports (`auto` / `fixed-25`).
    pub fn name(&self) -> String {
        match self {
            SortPolicy::Auto => "auto".to_string(),
            SortPolicy::Fixed(n) => format!("fixed-{n}"),
        }
    }
}

impl fmt::Display for SortPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Per-push-call telemetry, returned per pipeline and summed in pipeline
/// order (integer adds commute, so any worker count folds to the same
/// totals — the same argument the accumulator merge makes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushTally {
    /// Particles advanced.
    pub pushed: u64,
    /// Particles that entered `move_p` (crossed a cell face this step).
    pub crossers: u64,
    /// Fully-owned AoSoA blocks taken by the lane kernel.
    pub lane_blocks: u64,
    /// Lanes spilled from the lane kernel to the scalar `move_p` path.
    pub lane_spills: u64,
    /// Lane-kernel blocks whose live lanes span more than one voxel.
    pub mixed_blocks: u64,
    /// Lanes pushed scalar because their block straddled a pipeline
    /// partition boundary.
    pub straddle_lanes: u64,
}

impl PushTally {
    /// Fold another tally into this one (plain integer sums).
    pub fn absorb(&mut self, other: &PushTally) {
        self.pushed += other.pushed;
        self.crossers += other.crossers;
        self.lane_blocks += other.lane_blocks;
        self.lane_spills += other.lane_spills;
        self.mixed_blocks += other.mixed_blocks;
        self.straddle_lanes += other.straddle_lanes;
    }
}

/// Lifetime coherence telemetry for one species: push tallies plus sort
/// events. Reducible across ranks through the same flat-vector codec the
/// sentinel uses for [`HealthSample`](crate::sentinel::HealthSample).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoherenceCounters {
    /// Summed push telemetry since the species was created.
    pub tally: PushTally,
    /// Counting sorts actually performed.
    pub sorts: u64,
    /// Cadence-due sorts skipped because the species was provably still
    /// coherent (zero crossers and unchanged length since the last sort).
    pub skipped_sorts: u64,
}

impl CoherenceCounters {
    /// Number of reducible metrics in [`CoherenceCounters::to_vec`].
    pub const LEN: usize = 8;

    /// Flatten to an f64 vector for a sum-allreduce. Counter values stay
    /// exact through f64 up to 2^53 events — beyond any run we take.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.tally.pushed as f64,
            self.tally.crossers as f64,
            self.tally.lane_blocks as f64,
            self.tally.lane_spills as f64,
            self.tally.mixed_blocks as f64,
            self.tally.straddle_lanes as f64,
            self.sorts as f64,
            self.skipped_sorts as f64,
        ]
    }

    /// Rebuild from a reduced vector.
    ///
    /// # Panics
    ///
    /// When `v` is shorter than [`CoherenceCounters::LEN`].
    pub fn from_vec(v: &[f64]) -> Self {
        assert!(v.len() >= Self::LEN, "short coherence vector: {}", v.len());
        CoherenceCounters {
            tally: PushTally {
                pushed: v[0] as u64,
                crossers: v[1] as u64,
                lane_blocks: v[2] as u64,
                lane_spills: v[3] as u64,
                mixed_blocks: v[4] as u64,
                straddle_lanes: v[5] as u64,
            },
            sorts: v[6] as u64,
            skipped_sorts: v[7] as u64,
        }
    }

    /// Fold another rank's counters into this one.
    pub fn merge(&mut self, other: &CoherenceCounters) {
        self.tally.absorb(&other.tally);
        self.sorts += other.sorts;
        self.skipped_sorts += other.skipped_sorts;
    }

    /// Crossers per particle-step over the species' lifetime.
    pub fn crosser_rate(&self) -> f64 {
        if self.tally.pushed == 0 {
            0.0
        } else {
            self.tally.crossers as f64 / self.tally.pushed as f64
        }
    }

    /// Lanes spilled per lane-kernel block pushed (8 lanes per block).
    pub fn spill_rate(&self) -> f64 {
        let lanes = self.tally.lane_blocks.saturating_mul(8);
        if lanes == 0 {
            0.0
        } else {
            self.tally.lane_spills as f64 / lanes as f64
        }
    }

    /// Fraction of lane-kernel blocks whose live lanes spanned more than
    /// one voxel.
    pub fn mixed_block_fraction(&self) -> f64 {
        if self.tally.lane_blocks == 0 {
            0.0
        } else {
            self.tally.mixed_blocks as f64 / self.tally.lane_blocks as f64
        }
    }
}

/// Optimal steps-between-sorts from the amortized cost model.
///
/// Per Young/Daly: let `S = 2n + n_voxels` be the counting-sort cost in
/// particle-touch units (one counting pass + one permute pass over `n`
/// particles, one prefix-sum pass over the voxels), and let the
/// incoherence penalty grow linearly after a sort — `t` steps after
/// sorting, roughly `n · r · t` particles sit displaced from voxel order
/// (rate `r` = crossers per particle-step), each costing `C_MIX` extra.
/// Amortized cost per step of sorting every `τ` steps:
///
/// ```text
/// cost(τ) = S/τ + C_MIX · n · r · τ / 2
/// d/dτ = 0  ⇒  τ* = sqrt(2S / (C_MIX · n · r))
/// ```
///
/// A fixed f64 expression tree over exact integer inputs: every pipeline
/// count, layout and kernel computes the same interval. A zero measured
/// rate maps to [`MAX_AUTO_INTERVAL`], not "never", so the controller keeps
/// sampling after a quiet phase.
pub fn auto_sort_interval(n_particles: u64, n_voxels: u64, rate: f64) -> u32 {
    if n_particles == 0 || rate.is_nan() || rate <= 0.0 {
        return MAX_AUTO_INTERVAL;
    }
    let n = n_particles as f64;
    let sort_cost = 2.0 * n + n_voxels as f64;
    let tau = (2.0 * sort_cost / (C_MIX * n * rate)).sqrt();
    if !tau.is_finite() {
        return MAX_AUTO_INTERVAL;
    }
    (tau as u32).clamp(MIN_AUTO_INTERVAL, MAX_AUTO_INTERVAL)
}

/// Mutable controller state for one species. Rides v2/v3 checkpoints
/// bit-exactly (see `checkpoint::encode_species`) so resume and rollback
/// replay the same cadence decisions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CadenceState {
    /// Current steps-between-sorts the controller is operating at.
    pub interval: u32,
    /// Steps pushed since the last (real or skipped-as-coherent) sort.
    pub steps_since_sort: u32,
    /// Crossers counted since the last real sort.
    pub crossers_since_sort: u64,
    /// Species length when coherence was last established; any change
    /// (migrant appends, injection, absorption swap-removes) dirties the
    /// voxel order.
    pub len_at_sort: u64,
    /// True only while the store is provably in voxel order: a sort
    /// happened, and zero crossers / no length change since.
    pub coherent: bool,
    /// EWMA of the measured crossing rate (crossers per particle-step).
    pub rate: f64,
    /// Whether at least one measurement window has completed.
    pub measured: bool,
}

impl CadenceState {
    /// Fresh state for a species governed by `policy`.
    pub fn new(policy: SortPolicy) -> Self {
        CadenceState {
            interval: match policy {
                SortPolicy::Fixed(n) => n,
                SortPolicy::Auto => DEFAULT_SORT_INTERVAL,
            },
            steps_since_sort: 0,
            crossers_since_sort: 0,
            len_at_sort: 0,
            coherent: false,
            rate: 0.0,
            measured: false,
        }
    }

    /// Account one step's push telemetry. `len_after` is the species
    /// length after the push (and any migrate/inject that followed).
    pub fn note_push(&mut self, crossers: u64, len_after: u64) {
        self.steps_since_sort = self.steps_since_sort.saturating_add(1);
        self.crossers_since_sort += crossers;
        if crossers > 0 || len_after != self.len_at_sort {
            self.coherent = false;
        }
    }

    /// Something outside the push mutated the store (direct voxel edits);
    /// drop the coherence proof.
    pub fn invalidate(&mut self) {
        self.coherent = false;
    }

    /// Whether the cadence calls for a sort at `step`. Never fires on
    /// step 0 (a fresh load has nothing to measure and loaders emit voxel
    /// order anyway), and `Fixed(0)` disables sorting entirely.
    pub fn sort_due(&self, step: u64) -> bool {
        step > 0 && self.interval > 0 && self.steps_since_sort >= self.interval
    }

    /// A real sort just ran: close the measurement window, fold the window
    /// rate into the EWMA, re-solve the interval under `policy`, and mark
    /// the store coherent.
    pub fn on_sorted(&mut self, policy: SortPolicy, len: u64, n_voxels: u64) {
        if self.steps_since_sort > 0 && len > 0 {
            let window =
                self.crossers_since_sort as f64 / (self.steps_since_sort as f64 * len as f64);
            self.fold_rate(window);
        }
        self.retune(policy, len, n_voxels);
        self.steps_since_sort = 0;
        self.crossers_since_sort = 0;
        self.len_at_sort = len;
        self.coherent = true;
    }

    /// A cadence-due sort was skipped because the store is provably still
    /// coherent. Treat it as a virtual sort with a measured rate of zero:
    /// reset the window (so the cadence keeps its phase) and let the EWMA
    /// decay toward quiescence.
    pub fn on_skipped(&mut self, policy: SortPolicy, len: u64, n_voxels: u64) {
        self.fold_rate(0.0);
        self.retune(policy, len, n_voxels);
        self.steps_since_sort = 0;
        self.crossers_since_sort = 0;
        self.len_at_sort = len;
    }

    fn fold_rate(&mut self, window: f64) {
        self.rate = if self.measured {
            RATE_ALPHA * window + (1.0 - RATE_ALPHA) * self.rate
        } else {
            window
        };
        self.measured = true;
    }

    fn retune(&mut self, policy: SortPolicy, len: u64, n_voxels: u64) {
        self.interval = match policy {
            SortPolicy::Fixed(n) => n,
            SortPolicy::Auto => auto_sort_interval(len, n_voxels, self.rate),
        };
    }
}

impl Default for CadenceState {
    fn default() -> Self {
        CadenceState::new(SortPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_auto_and_fixed() {
        assert_eq!(SortPolicy::parse("auto"), Some(SortPolicy::Auto));
        assert_eq!(SortPolicy::parse("\"auto\""), Some(SortPolicy::Auto));
        assert_eq!(SortPolicy::parse("25"), Some(SortPolicy::Fixed(25)));
        assert_eq!(SortPolicy::parse("0"), Some(SortPolicy::Fixed(0)));
        assert_eq!(SortPolicy::parse("-3"), None);
        assert_eq!(SortPolicy::parse("fast"), None);
        assert_eq!(SortPolicy::Auto.name(), "auto");
        assert_eq!(SortPolicy::Fixed(25).name(), "fixed-25");
    }

    #[test]
    fn solver_clamps_and_is_monotone_in_rate() {
        // Quiescent species: ceiling.
        assert_eq!(auto_sort_interval(1000, 64, 0.0), MAX_AUTO_INTERVAL);
        assert_eq!(auto_sort_interval(0, 64, 0.5), MAX_AUTO_INTERVAL);
        assert_eq!(auto_sort_interval(1000, 64, f64::NAN), MAX_AUTO_INTERVAL);
        // Fully scrambled: floor.
        assert_eq!(auto_sort_interval(1000, 64, 1.0), MIN_AUTO_INTERVAL);
        // Higher rate never lengthens the interval.
        let mut prev = u32::MAX;
        for i in 1..=20 {
            let r = i as f64 / 20.0;
            let tau = auto_sort_interval(100_000, 4096, r);
            assert!(tau <= prev, "rate {r}: {tau} > {prev}");
            prev = tau;
        }
    }

    #[test]
    fn solver_matches_closed_form() {
        // n = 10_000, n_voxels = 1_000, r = 0.01:
        // S = 21_000, tau = sqrt(2*21000/(10000*0.01)) = sqrt(420) ≈ 20.49
        assert_eq!(auto_sort_interval(10_000, 1_000, 0.01), 20);
    }

    #[test]
    fn solver_is_bit_stable() {
        // Same inputs, same output — run it a few times to make the
        // determinism claim executable, not just asserted.
        let a = auto_sort_interval(123_456, 8_192, 0.003);
        for _ in 0..100 {
            assert_eq!(auto_sort_interval(123_456, 8_192, 0.003), a);
        }
    }

    #[test]
    fn cadence_never_fires_on_step_zero() {
        let st = CadenceState::new(SortPolicy::Fixed(1));
        assert!(!st.sort_due(0));
    }

    #[test]
    fn fixed_cadence_fires_every_n_steps() {
        let policy = SortPolicy::Fixed(3);
        let mut st = CadenceState::new(policy);
        let mut sorted_at = Vec::new();
        for step in 0..10u64 {
            if st.sort_due(step) {
                st.on_sorted(policy, 100, 64);
                sorted_at.push(step);
            }
            st.note_push(5, 100);
        }
        assert_eq!(sorted_at, vec![3, 6, 9]);
    }

    #[test]
    fn fixed_zero_never_sorts() {
        let mut st = CadenceState::new(SortPolicy::Fixed(0));
        for step in 0..100u64 {
            assert!(!st.sort_due(step));
            st.note_push(50, 100);
        }
    }

    #[test]
    fn coherence_survives_quiet_pushes_and_dies_on_crossers() {
        let policy = SortPolicy::Fixed(2);
        let mut st = CadenceState::new(policy);
        st.on_sorted(policy, 100, 64);
        assert!(st.coherent);
        st.note_push(0, 100);
        assert!(st.coherent, "zero crossers, same len: still coherent");
        st.note_push(1, 100);
        assert!(!st.coherent, "a crosser dirties the order");
    }

    #[test]
    fn coherence_dies_on_length_change() {
        let policy = SortPolicy::Fixed(2);
        let mut st = CadenceState::new(policy);
        st.on_sorted(policy, 100, 64);
        st.note_push(0, 101); // a migrant appended
        assert!(!st.coherent);
    }

    #[test]
    fn skip_keeps_phase_and_decays_rate() {
        let policy = SortPolicy::Auto;
        let mut st = CadenceState::new(policy);
        st.on_sorted(policy, 1000, 64);
        // One noisy window.
        for _ in 0..10 {
            st.note_push(20, 1000);
        }
        st.on_sorted(policy, 1000, 64);
        let rate_after_window = st.rate;
        assert!(rate_after_window > 0.0);
        // A coherent skip folds a zero window: rate halves.
        st.on_skipped(policy, 1000, 64);
        assert_eq!(st.rate, rate_after_window * 0.5);
        assert_eq!(st.steps_since_sort, 0);
    }

    #[test]
    fn auto_converges_on_steady_rate() {
        let policy = SortPolicy::Auto;
        let mut st = CadenceState::new(policy);
        let (len, voxels) = (100_000u64, 4_096u64);
        let rate = 0.002; // crossers per particle-step
        let mut last = Vec::new();
        let mut step = 0u64;
        for _ in 0..40 {
            // Run one window at the current interval, then sort.
            for _ in 0..st.interval.max(1) {
                step += 1;
                st.note_push((rate * len as f64) as u64, len);
            }
            st.sort_due(step);
            st.on_sorted(policy, len, voxels);
            last.push(st.interval);
        }
        let tail = &last[last.len() - 5..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "cadence should stabilize, got {tail:?}"
        );
        let expected = auto_sort_interval(len, voxels, rate);
        let got = *tail.last().unwrap();
        assert!(
            got.abs_diff(expected) <= 1,
            "converged interval {got} far from closed form {expected}"
        );
    }

    #[test]
    fn counters_roundtrip_and_merge() {
        let a = CoherenceCounters {
            tally: PushTally {
                pushed: 1000,
                crossers: 17,
                lane_blocks: 125,
                lane_spills: 9,
                mixed_blocks: 3,
                straddle_lanes: 8,
            },
            sorts: 4,
            skipped_sorts: 2,
        };
        let v = a.to_vec();
        assert_eq!(v.len(), CoherenceCounters::LEN);
        assert_eq!(CoherenceCounters::from_vec(&v), a);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.tally.pushed, 2000);
        assert_eq!(b.sorts, 8);
        assert!((a.crosser_rate() - 0.017).abs() < 1e-12);
        assert!((a.spill_rate() - 9.0 / 1000.0).abs() < 1e-12);
        assert!((a.mixed_block_fraction() - 3.0 / 125.0).abs() < 1e-12);
    }

    #[test]
    fn tally_absorb_sums_fields() {
        let mut a = PushTally {
            pushed: 1,
            crossers: 2,
            lane_blocks: 3,
            lane_spills: 4,
            mixed_blocks: 5,
            straddle_lanes: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(
            a,
            PushTally {
                pushed: 2,
                crossers: 4,
                lane_blocks: 6,
                lane_spills: 8,
                mixed_blocks: 10,
                straddle_lanes: 12,
            }
        );
    }
}
