//! Takizuka–Abe (1977) binary Monte-Carlo Coulomb collisions — VPIC's
//! particle collision operator. Hohlraum LPI runs use it to set realistic
//! electron distributions; here it also provides the classic relaxation
//! benchmarks (anisotropy relaxation, beam slowing).
//!
//! Within each cell, particles of the colliding species are paired at
//! random and each pair's relative velocity is rotated by a random
//! small-angle deflection whose variance follows the TA77 prescription:
//!
//! ```text
//! ⟨δ²⟩ = ν0 · n · Δt / u³        (δ = tan(θ/2), u = |relative velocity|)
//! ```
//!
//! with `ν0` absorbing `q²q'²lnΛ/(8πε0²m_r²)` in normalized units. Each
//! scattering event conserves momentum and energy *exactly* (to float
//! roundoff) — the property the tests pin down.

use crate::grid::Grid;
use crate::rng::Rng;
use crate::species::Species;
use crate::store::ParticleStore;

/// Intra-species TA77 collision operator.
#[derive(Clone, Copy, Debug)]
pub struct CollisionOperator {
    /// Base collisionality `ν0` (normalized; larger = more collisional).
    pub nu0: f64,
    /// Apply every this many steps (Δt is scaled accordingly).
    pub interval: usize,
}

impl CollisionOperator {
    /// New operator.
    pub fn new(nu0: f64, interval: usize) -> Self {
        assert!(nu0 >= 0.0 && interval >= 1);
        CollisionOperator { nu0, interval }
    }

    /// Apply one collisional step to a species (pairs particles within
    /// each voxel; the species must be voxel-sorted — call `sp.sort(g)`
    /// first or rely on the simulation's sort interval).
    ///
    /// Number density per cell is estimated from the resident statistical
    /// weight over the cell volume, so loaders with any weight convention
    /// work.
    pub fn apply(&self, sp: &mut Species, g: &Grid, rng: &mut Rng) {
        if self.nu0 == 0.0 || sp.len() < 2 {
            return;
        }
        let dt_coll = g.dt as f64 * self.interval as f64;
        let dv = g.dv() as f64;
        // Walk runs of equal voxel index (requires sorted particles).
        let parts = sp.store_mut();
        let n = parts.len();
        debug_assert!(
            (1..n).all(|k| parts.voxel(k - 1) <= parts.voxel(k)),
            "collision operator needs voxel-sorted particles"
        );
        let mut start = 0usize;
        while start < n {
            let voxel = parts.voxel(start);
            let mut end = start + 1;
            while end < n && parts.voxel(end) == voxel {
                end += 1;
            }
            let count = end - start;
            if count >= 2 {
                let weight: f64 = (start..end).map(|k| parts.get(k).w as f64).sum();
                let density = weight / dv;
                // Random pairing: Fisher-Yates a local index permutation.
                let mut idx: Vec<usize> = (start..end).collect();
                for i in (1..count).rev() {
                    idx.swap(i, rng.index(i + 1));
                }
                let mut k = 0;
                while k + 1 < count {
                    let (a, b) = (idx[k], idx[k + 1]);
                    self.scatter_pair(parts, a, b, density, dt_coll, rng);
                    k += 2;
                }
                // Odd particle out: collide it with the first (TA77's
                // triplet trick, halving its effective Δt, approximated
                // here by a plain extra pairing at half weight).
                if count % 2 == 1 && count >= 3 {
                    let (a, b) = (idx[count - 1], idx[0]);
                    self.scatter_pair(parts, a, b, 0.5 * density, dt_coll, rng);
                }
            }
            start = end;
        }
    }

    /// Scatter one pair (non-relativistic center-of-momentum rotation;
    /// valid for the thermal plasmas the benchmark targets).
    fn scatter_pair(
        &self,
        parts: &mut ParticleStore,
        a: usize,
        b: usize,
        density: f64,
        dt: f64,
        rng: &mut Rng,
    ) {
        let (mut pa, mut pb) = (parts.get(a), parts.get(b));
        let (ux, uy, uz) = (
            pa.ux as f64 - pb.ux as f64,
            pa.uy as f64 - pb.uy as f64,
            pa.uz as f64 - pb.uz as f64,
        );
        let u2 = ux * ux + uy * uy + uz * uz;
        if u2 < 1e-24 {
            return;
        }
        let u = u2.sqrt();
        let u_perp = (ux * ux + uy * uy).sqrt();

        // TA77 deflection: δ = tan(θ/2), Gaussian with the 1/u³ variance.
        let var = self.nu0 * density * dt / (u * u2);
        let delta = rng.normal() * var.sqrt();
        let sin_t = 2.0 * delta / (1.0 + delta * delta);
        let one_m_cos = 2.0 * delta * delta / (1.0 + delta * delta);
        let phi = 2.0 * std::f64::consts::PI * rng.uniform();
        let (sp, cp) = phi.sin_cos();

        // Rotate the relative velocity (TA77 eq. 4a-c).
        let (dux, duy, duz) = if u_perp > 1e-12 * u {
            (
                (ux / u_perp) * uz * sin_t * cp - (uy / u_perp) * u * sin_t * sp - ux * one_m_cos,
                (uy / u_perp) * uz * sin_t * cp + (ux / u_perp) * u * sin_t * sp - uy * one_m_cos,
                -u_perp * sin_t * cp - uz * one_m_cos,
            )
        } else {
            // u along z: rotate directly.
            (u * sin_t * cp, u * sin_t * sp, -uz * one_m_cos)
        };

        // Equal masses (intra-species): each particle takes half the
        // relative-velocity change, which conserves both momentum and
        // kinetic energy exactly.
        pa.ux += (0.5 * dux) as f32;
        pa.uy += (0.5 * duy) as f32;
        pa.uz += (0.5 * duz) as f32;
        pb.ux -= (0.5 * dux) as f32;
        pb.uy -= (0.5 * duy) as f32;
        pb.uz -= (0.5 * duz) as f32;
        parts.set(a, pa);
        parts.set(b, pb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};

    fn collisional_plasma(
        uth: [f32; 3],
        nu0: f64,
        seed: u64,
    ) -> (Species, Grid, CollisionOperator, Rng) {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.05);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(seed);
        load_uniform(
            &mut sp,
            &g,
            &mut rng,
            1.0,
            64,
            Momentum {
                uth,
                drift: [0.0; 3],
            },
        );
        sp.sort(&g);
        (sp, g, CollisionOperator::new(nu0, 1), rng)
    }

    #[test]
    fn conserves_momentum_and_energy() {
        let (mut sp, g, op, mut rng) = collisional_plasma([0.05, 0.05, 0.05], 1e-4, 1);
        let p0 = sp.momentum(&g);
        let e0 = sp.kinetic_energy(&g);
        for _ in 0..10 {
            op.apply(&mut sp, &g, &mut rng);
        }
        let p1 = sp.momentum(&g);
        let e1 = sp.kinetic_energy(&g);
        let pscale = sp.len() as f64 * 0.05 * sp.get(0).w as f64;
        for ax in 0..3 {
            assert!(
                (p1[ax] - p0[ax]).abs() < 1e-4 * pscale,
                "momentum drifted: {p0:?} -> {p1:?}"
            );
        }
        assert!((e1 - e0).abs() / e0 < 1e-4, "energy drifted: {e0} -> {e1}");
    }

    #[test]
    fn relaxes_temperature_anisotropy() {
        // Tx ≫ Ty, Tz: collisions must push the ratio toward 1.
        let (mut sp, g, op, mut rng) = collisional_plasma([0.1, 0.02, 0.02], 0.02, 2);
        let t = |sp: &Species, ax: usize| {
            let n = sp.len() as f64;
            sp.iter()
                .map(|p| (p.momentum(ax) as f64).powi(2))
                .sum::<f64>()
                / n
        };
        let ratio0 = t(&sp, 0) / t(&sp, 1);
        for _ in 0..200 {
            op.apply(&mut sp, &g, &mut rng);
        }
        let ratio1 = t(&sp, 0) / t(&sp, 1);
        assert!(ratio0 > 15.0, "setup broken: {ratio0}");
        assert!(
            ratio1 < 0.6 * ratio0,
            "no isotropization: {ratio0} -> {ratio1}"
        );
        // Total energy unchanged while redistributing.
        let total0 = 0.1f64.powi(2) + 2.0 * 0.02f64.powi(2);
        let total1 = t(&sp, 0) + t(&sp, 1) + t(&sp, 2);
        assert!((total1 - total0).abs() / total0 < 0.05);
    }

    #[test]
    fn collisionless_limit_is_identity() {
        let (mut sp, g, _, mut rng) = collisional_plasma([0.05; 3], 0.0, 3);
        let before = sp.to_particles();
        CollisionOperator::new(0.0, 1).apply(&mut sp, &g, &mut rng);
        assert_eq!(sp.to_particles(), before);
    }

    #[test]
    fn rate_scales_with_nu0() {
        // Twice the collisionality → anisotropy decays roughly twice as
        // fast (compare after the same number of applications).
        let decay = |nu0: f64, seed: u64| {
            let (mut sp, g, op, mut rng) = collisional_plasma([0.1, 0.02, 0.02], nu0, seed);
            let t = |sp: &Species, ax: usize| {
                sp.iter()
                    .map(|p| (p.momentum(ax) as f64).powi(2))
                    .sum::<f64>()
                    / sp.len() as f64
            };
            let r0: f64 = t(&sp, 0) / t(&sp, 1);
            for _ in 0..20 {
                op.apply(&mut sp, &g, &mut rng);
            }
            (t(&sp, 0) / t(&sp, 1) / r0).ln()
        };
        // Weak enough that neither case fully isotropizes in 20 passes.
        let slow = decay(1e-4, 4);
        let fast = decay(4e-4, 4);
        assert!(
            fast < 2.0 * slow,
            "faster nu0 must decay anisotropy faster: {slow} vs {fast}"
        );
        assert!(fast < -0.1, "fast case barely relaxed: {fast}");
        assert!(slow > -1.0, "slow case relaxed too fast to compare: {slow}");
    }

    #[test]
    fn beam_slows_against_bulk() {
        // A weak fast beam through a dense cold bulk: directed momentum of
        // the beam particles decays (dynamical friction).
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.05);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(5);
        load_uniform(&mut sp, &g, &mut rng, 1.0, 256, Momentum::thermal(0.01));
        let n_bulk = sp.len();
        // Tag beam particles by loading them afterwards (stable tail of
        // the array as long as we do not sort between measurements).
        for _ in 0..n_bulk / 16 {
            let i = sp.get(rng.index(n_bulk)).i;
            let w = sp.get(0).w;
            sp.push(crate::particle::Particle {
                i,
                ux: 0.08,
                w,
                ..Default::default()
            });
        }
        sp.sort(&g);
        // After sorting identity is lost; instead track the mean ux of the
        // whole distribution's fast tail.
        let beam_mean = |sp: &Species| {
            let tail: Vec<f64> = sp
                .iter()
                .filter(|p| p.ux > 0.05)
                .map(|p| p.ux as f64)
                .collect();
            (
                tail.iter().sum::<f64>() / tail.len().max(1) as f64,
                tail.len(),
            )
        };
        let (m0, c0) = beam_mean(&sp);
        let op = CollisionOperator::new(0.01, 1);
        for _ in 0..150 {
            op.apply(&mut sp, &g, &mut rng);
        }
        let (_, c1) = beam_mean(&sp);
        // The beam population above the threshold shrinks as it scatters
        // into the bulk.
        assert!(
            c1 < (c0 as f64 * 0.8) as usize,
            "beam did not slow: {c0} -> {c1} (mean0 {m0})"
        );
    }
}
