//! Binary checkpointing of a single-domain simulation.
//!
//! Hand-rolled little-endian format (magic `VPICRS02`): VPIC production
//! runs at trillion-particle scale live or die by restart dumps, so the
//! reproduction carries the same capability — hardened. The v2 format is
//! sectioned: after the magic and a version word, the header, field and
//! species payloads are each written length-prefixed with a CRC-32
//! trailer, so a truncated or bit-flipped dump fails loudly with a typed
//! [`CheckpointError`] instead of silently seeding a corrupt resumed run.
//! Fields and particles are written verbatim; phase timings are not
//! persisted (they are measurements, not state).
//!
//! [`save_to_path`] writes through a buffered writer to a temporary file
//! and renames it into place, so a crash mid-dump never destroys the
//! previous good checkpoint.
//!
//! The module also provides *encoded* sections ([`write_section_encoded`] /
//! [`read_section_encoded`]): the same CRC-framed shape, plus an encoding
//! byte and an XOR-delta + zero-RLE compressor ([`compress_delta_rle`])
//! that the distributed v3 dump format uses to keep trillion-particle-scale
//! restart I/O inside its write budget. Each section independently stores
//! whichever of raw/compressed is smaller, so compression can never make a
//! dump larger than the raw format by more than the fixed framing bytes.

use crate::cadence::{CadenceState, CoherenceCounters, PushTally, SortPolicy};
use crate::crc32::{crc32, Crc32};
use crate::field::FieldArray;
use crate::grid::{Grid, ParticleBc};
use crate::particle::Particle;
use crate::sentinel::{SentinelConfig, SimConfig};
use crate::sim::Simulation;
use crate::species::Species;
use crate::store::Layout;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"VPICRS02";
const VERSION: u32 = 2;

/// Largest section payload this implementation will read (guards the
/// section-length word against corruption-driven allocation).
const MAX_SECTION: u64 = 1 << 32;

/// Typed checkpoint failure. Every load-path defect in the dump — wrong
/// file, wrong version, truncation, bit rot, or a header that fails
/// plausibility — maps to a distinct variant.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// The file is a VPIC dump of a version this build cannot read.
    UnsupportedVersion(u32),
    /// The named section ended before its declared length.
    Truncated {
        section: &'static str,
    },
    /// The named section's CRC-32 does not match its payload.
    CrcMismatch {
        section: &'static str,
        expected: u32,
        got: u32,
    },
    /// A distributed dump belongs to a different rank.
    RankMismatch {
        expected: u64,
        got: u64,
    },
    /// A distributed dump was written for a different domain decomposition.
    SpecMismatch {
        expected: u64,
        got: u64,
    },
    /// The payload decoded but failed a plausibility/validity check.
    Malformed(String),
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a VPIC restart dump (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CheckpointError::Truncated { section } => {
                write!(f, "checkpoint truncated in section `{section}`")
            }
            CheckpointError::CrcMismatch { section, expected, got } => write!(
                f,
                "checkpoint section `{section}` failed CRC-32 (expected {expected:#010x}, got {got:#010x})"
            ),
            CheckpointError::RankMismatch { expected, got } => {
                write!(f, "checkpoint belongs to rank {got}, not rank {expected}")
            }
            CheckpointError::SpecMismatch { expected, got } => write!(
                f,
                "checkpoint domain fingerprint {got:#018x} does not match this run's {expected:#018x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Write one framed section: `u64` payload length, payload bytes, `u32`
/// CRC-32 of the payload.
pub fn write_section(w: &mut impl Write, payload: &[u8]) -> Result<(), CheckpointError> {
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Read one framed section written by [`write_section`], verifying length
/// and CRC. The declared length is never trusted for preallocation: a
/// truncated file fails at EOF, not by exhausting memory.
pub fn read_section(r: &mut impl Read, section: &'static str) -> Result<Vec<u8>, CheckpointError> {
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_SECTION {
        return Err(CheckpointError::Malformed(format!(
            "section `{section}` declares implausible length {len}"
        )));
    }
    let mut payload = Vec::new();
    let read = r.take(len).read_to_end(&mut payload)?;
    if read as u64 != len {
        return Err(CheckpointError::Truncated { section });
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let expected = u32::from_le_bytes(crc_bytes);
    let got = crc32(&payload);
    if got != expected {
        return Err(CheckpointError::CrcMismatch {
            section,
            expected,
            got,
        });
    }
    Ok(payload)
}

/// Section payload stored verbatim.
pub const ENCODING_RAW: u8 = 0;
/// Section payload stored XOR-delta'd (u32 stride) then zero-run-length
/// encoded. Field arrays and particle records are f32/u32 streams whose
/// neighboring words share high bytes, so the delta pass manufactures long
/// zero runs for the RLE pass to collapse.
pub const ENCODING_DELTA_RLE: u8 = 1;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for (k, &b) in data.iter().enumerate().take(10) {
        v |= ((b & 0x7f) as u64) << (7 * k);
        if b & 0x80 == 0 {
            return Some((v, k + 1));
        }
    }
    None
}

/// Bound on the record stride a compressed stream may declare (guards the
/// decoder against corruption-driven strides).
const MAX_RECORD_STRIDE: u64 = 4096;

/// Byte-plane shuffle with record stride `r`: transpose the payload's
/// complete `r`-byte records so that byte `k` of every record is
/// contiguous, leaving tail bytes in place. `r = 4` groups the same byte
/// of consecutive f32/u32 words (field arrays); `r = 32` groups the same
/// byte of the same *component* of consecutive particle records.
fn shuffle(payload: &[u8], r: usize) -> Vec<u8> {
    let n = payload.len() / r;
    let mut out = Vec::with_capacity(payload.len());
    for k in 0..r {
        for t in 0..n {
            out.push(payload[t * r + k]);
        }
    }
    out.extend_from_slice(&payload[n * r..]);
    out
}

fn unshuffle(shuf: &[u8], r: usize) -> Vec<u8> {
    let n = shuf.len() / r;
    let mut out = Vec::with_capacity(shuf.len());
    for t in 0..n {
        for k in 0..r {
            out.push(shuf[k * n + t]);
        }
    }
    out.extend_from_slice(&shuf[n * r..]);
    out
}

/// RLE-encode `delta` into `varint(stride)` + a token stream:
/// `0x00, varint(n)` for a run of `n` zero bytes, `0x01, varint(n), bytes`
/// for `n` literals. Zero runs shorter than 4 bytes are folded into
/// literals so the token overhead can never blow up incompressible data by
/// more than a few bytes per kilobyte.
fn rle_encode(delta: &[u8], stride: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(delta.len() / 4 + 16);
    push_varint(&mut out, stride as u64);
    let mut i = 0;
    while i < delta.len() {
        if delta[i] == 0 {
            let mut j = i;
            while j < delta.len() && delta[j] == 0 {
                j += 1;
            }
            if j - i >= 4 {
                out.push(0x00);
                push_varint(&mut out, (j - i) as u64);
                i = j;
                continue;
            }
        }
        let start = i;
        let mut zrun = 0usize;
        while i < delta.len() {
            if delta[i] == 0 {
                zrun += 1;
                if zrun == 4 {
                    i -= 3; // literal ends where the zero run begins
                    break;
                }
            } else {
                zrun = 0;
            }
            i += 1;
        }
        out.push(0x01);
        push_varint(&mut out, (i - start) as u64);
        out.extend_from_slice(&delta[start..i]);
    }
    out
}

/// Compress a section payload in three fully reversible passes: a
/// byte-plane [`shuffle`], an XOR-delta with the previous byte (after the
/// shuffle, that is the same byte position of the neighboring word or
/// particle record — field values and particle components share
/// sign/exponent bits, so the high planes collapse to near-zero), and a
/// zero-run-length encode. The stream leads with the record stride; the
/// compressor tries the word stride and the particle-record stride and
/// keeps whichever encodes smaller.
pub fn compress_delta_rle(payload: &[u8]) -> Vec<u8> {
    let mut best: Option<Vec<u8>> = None;
    for stride in [4usize, 32] {
        let mut delta = shuffle(payload, stride);
        for i in (1..delta.len()).rev() {
            delta[i] ^= delta[i - 1];
        }
        let enc = rle_encode(&delta, stride);
        if best.as_ref().is_none_or(|b| enc.len() < b.len()) {
            best = Some(enc);
        }
    }
    best.unwrap_or_default()
}

/// Invert [`compress_delta_rle`]. `raw_len` is the declared decompressed
/// size and bounds every allocation; any token-stream defect — bad tag,
/// truncated literal, over- or under-run — is a typed error, never a panic.
pub fn decompress_delta_rle(
    data: &[u8],
    raw_len: usize,
    section: &'static str,
) -> Result<Vec<u8>, CheckpointError> {
    let (stride, mut i) = read_varint(data).ok_or_else(|| {
        CheckpointError::Malformed(format!("bad record stride in section `{section}`"))
    })?;
    if stride == 0 || stride > MAX_RECORD_STRIDE {
        return Err(CheckpointError::Malformed(format!(
            "implausible record stride {stride} in section `{section}`"
        )));
    }
    let mut out = Vec::with_capacity(raw_len.min(1 << 20));
    while i < data.len() {
        let tag = data[i];
        i += 1;
        let (n, adv) = read_varint(&data[i..]).ok_or_else(|| {
            CheckpointError::Malformed(format!("bad run length in section `{section}`"))
        })?;
        i += adv;
        let n = n as usize;
        if out.len() + n > raw_len {
            return Err(CheckpointError::Malformed(format!(
                "decompressed data overruns declared length in section `{section}`"
            )));
        }
        match tag {
            0x00 => out.resize(out.len() + n, 0), // zero run
            0x01 => {
                if i + n > data.len() {
                    return Err(CheckpointError::Truncated { section });
                }
                out.extend_from_slice(&data[i..i + n]);
                i += n;
            }
            _ => {
                return Err(CheckpointError::Malformed(format!(
                    "bad RLE tag {tag:#04x} in section `{section}`"
                )))
            }
        }
    }
    if out.len() != raw_len {
        return Err(CheckpointError::Malformed(format!(
            "decompressed {} bytes, section `{section}` declared {raw_len}",
            out.len()
        )));
    }
    for i in 1..out.len() {
        let prev = out[i - 1];
        out[i] ^= prev;
    }
    Ok(unshuffle(&out, stride as usize))
}

/// Write one encoded section: `u64` stored length, `u8` encoding, `u64`
/// raw (decompressed) length, stored bytes, `u32` CRC-32 over the encoding
/// byte, raw length, and stored bytes (so a flipped encoding byte cannot
/// steer the decoder). With `compress`, the smaller of raw and delta+RLE
/// is stored; pass `false` for sections that must stay byte-inspectable.
pub fn write_section_encoded(
    w: &mut impl Write,
    payload: &[u8],
    compress: bool,
) -> Result<(), CheckpointError> {
    let compressed = if compress {
        Some(compress_delta_rle(payload))
    } else {
        None
    };
    let (encoding, stored): (u8, &[u8]) = match &compressed {
        Some(c) if c.len() < payload.len() => (ENCODING_DELTA_RLE, c.as_slice()),
        _ => (ENCODING_RAW, payload),
    };
    let raw_len = (payload.len() as u64).to_le_bytes();
    w.write_all(&(stored.len() as u64).to_le_bytes())?;
    w.write_all(&[encoding])?;
    w.write_all(&raw_len)?;
    w.write_all(stored)?;
    let mut crc = Crc32::new();
    crc.update(&[encoding]);
    crc.update(&raw_len);
    crc.update(stored);
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(())
}

/// Read one section written by [`write_section_encoded`], verifying the
/// CRC before decompressing and bounding both lengths against
/// [`MAX_SECTION`].
pub fn read_section_encoded(
    r: &mut impl Read,
    section: &'static str,
) -> Result<Vec<u8>, CheckpointError> {
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let stored_len = u64::from_le_bytes(len_bytes);
    let mut enc_byte = [0u8; 1];
    r.read_exact(&mut enc_byte)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let mut raw_bytes = [0u8; 8];
    r.read_exact(&mut raw_bytes)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let raw_len = u64::from_le_bytes(raw_bytes);
    if stored_len > MAX_SECTION || raw_len > MAX_SECTION {
        return Err(CheckpointError::Malformed(format!(
            "section `{section}` declares implausible length (stored {stored_len}, raw {raw_len})"
        )));
    }
    let mut stored = Vec::new();
    let read = r.take(stored_len).read_to_end(&mut stored)?;
    if read as u64 != stored_len {
        return Err(CheckpointError::Truncated { section });
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|_| CheckpointError::Truncated { section })?;
    let expected = u32::from_le_bytes(crc_bytes);
    let mut crc = Crc32::new();
    crc.update(&enc_byte);
    crc.update(&raw_bytes);
    crc.update(&stored);
    let got = crc.finish();
    if got != expected {
        return Err(CheckpointError::CrcMismatch {
            section,
            expected,
            got,
        });
    }
    match enc_byte[0] {
        ENCODING_RAW => {
            if stored_len != raw_len {
                return Err(CheckpointError::Malformed(format!(
                    "raw section `{section}` stored {stored_len} bytes but declares {raw_len}"
                )));
            }
            Ok(stored)
        }
        ENCODING_DELTA_RLE => decompress_delta_rle(&stored, raw_len as usize, section),
        e => Err(CheckpointError::Malformed(format!(
            "unknown encoding {e:#04x} in section `{section}`"
        ))),
    }
}

/// In-memory little-endian payload encoder for section bodies.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed bulk f32 slice.
    pub fn f32_slice(&mut self, s: &[f32]) {
        self.u64(s.len() as u64);
        self.buf.reserve(4 * s.len());
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Typed little-endian decoder over a section payload.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        PayloadReader {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated {
                section: self.section,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// Length-prefixed bulk f32 slice whose length must equal `expect`.
    pub fn f32_vec(&mut self, expect: usize) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()? as usize;
        if n != expect {
            return Err(CheckpointError::Malformed(format!(
                "field length {n} != expected {expect} in section `{}`",
                self.section
            )));
        }
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// The decoder must have consumed the whole payload.
    pub fn done(&self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes in section `{}`",
                self.buf.len() - self.pos,
                self.section
            )));
        }
        Ok(())
    }
}

fn bc_code(bc: ParticleBc) -> u32 {
    match bc {
        ParticleBc::Periodic => 0,
        ParticleBc::Reflect => 1,
        ParticleBc::Absorb => 2,
        ParticleBc::Migrate => 3,
    }
}

fn bc_from(code: u32) -> Result<ParticleBc, CheckpointError> {
    Ok(match code {
        0 => ParticleBc::Periodic,
        1 => ParticleBc::Reflect,
        2 => ParticleBc::Absorb,
        3 => ParticleBc::Migrate,
        _ => {
            return Err(CheckpointError::Malformed(format!(
                "bad boundary code {code}"
            )))
        }
    })
}

/// Encode the ten field arrays as one section payload.
pub fn encode_fields(f: &FieldArray) -> Vec<u8> {
    let mut p = PayloadWriter::new();
    for arr in [
        &f.ex, &f.ey, &f.ez, &f.cbx, &f.cby, &f.cbz, &f.jx, &f.jy, &f.jz, &f.rho,
    ] {
        p.f32_slice(arr);
    }
    p.finish()
}

/// Decode a fields section payload into `fields` (all arrays must have
/// exactly `n` entries).
pub fn decode_fields(
    payload: &[u8],
    n: usize,
    fields: &mut FieldArray,
) -> Result<(), CheckpointError> {
    let mut r = PayloadReader::new(payload, "fields");
    for arr in [
        &mut fields.ex,
        &mut fields.ey,
        &mut fields.ez,
        &mut fields.cbx,
        &mut fields.cby,
        &mut fields.cbz,
        &mut fields.jx,
        &mut fields.jy,
        &mut fields.jz,
        &mut fields.rho,
    ] {
        *arr = r.f32_vec(n)?;
    }
    r.done()
}

/// Encode a species list as one section payload.
pub fn encode_species(species: &[Species]) -> Vec<u8> {
    let mut p = PayloadWriter::new();
    p.u32(species.len() as u32);
    for sp in species {
        let name = sp.name.as_bytes();
        p.u32(name.len() as u32);
        p.bytes(name);
        p.f32(sp.q);
        p.f32(sp.m);
        // Sort policy + cadence-controller state + the layout-independent
        // coherence counters: the controller's decisions must replay
        // bit-identically after a resume or rollback, so everything that
        // feeds a decision rides the dump (the EWMA rate as raw f64 bits
        // through `f64`). The lane-telemetry counters (lane blocks/spills,
        // mixed blocks, straddled lanes) describe which kernel executed,
        // not the physics — persisting them would make dump bytes differ
        // across layouts, breaking the canonical-AoS fingerprint contract.
        // They reset on restore.
        match sp.sort_policy {
            SortPolicy::Fixed(n) => {
                p.u32(0);
                p.u32(n);
            }
            SortPolicy::Auto => {
                p.u32(1);
                p.u32(0);
            }
        }
        let cad = sp.cadence();
        p.u32(cad.interval);
        p.u32(cad.steps_since_sort);
        p.u64(cad.crossers_since_sort);
        p.u64(cad.len_at_sort);
        p.u32(cad.coherent as u32 | (cad.measured as u32) << 1);
        p.f64(cad.rate);
        let co = sp.coherence();
        p.u64(co.tally.pushed);
        p.u64(co.tally.crossers);
        p.u64(co.sorts);
        p.u64(co.skipped_sorts);
        // Always the canonical AoS byte stream, whatever the in-memory
        // layout — dumps are layout-independent by construction.
        p.u64(sp.len() as u64);
        for part in sp.iter() {
            p.f32(part.dx);
            p.f32(part.dy);
            p.f32(part.dz);
            p.u32(part.i);
            p.f32(part.ux);
            p.f32(part.uy);
            p.f32(part.uz);
            p.f32(part.w);
        }
    }
    p.finish()
}

/// Decode a species section payload; every particle's voxel must be below
/// `n_voxels`.
pub fn decode_species(payload: &[u8], n_voxels: usize) -> Result<Vec<Species>, CheckpointError> {
    let mut r = PayloadReader::new(payload, "species");
    let n_species = r.u32()? as usize;
    if n_species > 1024 {
        return Err(CheckpointError::Malformed(format!(
            "implausible species count {n_species}"
        )));
    }
    let mut out = Vec::with_capacity(n_species);
    for _ in 0..n_species {
        let name_len = r.u32()? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Malformed(format!(
                "implausible species name length {name_len}"
            )));
        }
        let name = String::from_utf8(r.bytes(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Malformed("species name is not UTF-8".into()))?;
        let q = r.f32()?;
        let m = r.f32()?;
        let policy = match r.u32()? {
            0 => SortPolicy::Fixed(r.u32()?),
            1 => {
                r.u32()?; // reserved
                SortPolicy::Auto
            }
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "bad sort policy tag {other}"
                )))
            }
        };
        let mut cad = CadenceState::new(policy);
        cad.interval = r.u32()?;
        cad.steps_since_sort = r.u32()?;
        cad.crossers_since_sort = r.u64()?;
        cad.len_at_sort = r.u64()?;
        let flags = r.u32()?;
        if flags & !0b11 != 0 {
            return Err(CheckpointError::Malformed(format!(
                "bad cadence flags {flags:#x}"
            )));
        }
        cad.coherent = flags & 1 != 0;
        cad.measured = flags & 2 != 0;
        cad.rate = r.f64()?;
        if !cad.rate.is_finite() || cad.rate < 0.0 {
            return Err(CheckpointError::Malformed(format!(
                "bad cadence rate {}",
                cad.rate
            )));
        }
        // Kernel-telemetry counters (lane blocks/spills, mixed blocks,
        // straddled lanes) are not in the dump — they restart at zero and
        // re-describe whatever kernel runs after the restore.
        let counters = CoherenceCounters {
            tally: PushTally {
                pushed: r.u64()?,
                crossers: r.u64()?,
                ..PushTally::default()
            },
            sorts: r.u64()?,
            skipped_sorts: r.u64()?,
        };
        let count = r.u64()? as usize;
        let mut sp = Species::new(name, q, m).with_sort_policy(policy);
        // Do not trust the header for a big up-front reservation: a
        // corrupted count should fail on decode, not on allocation.
        sp.store_mut().reserve(count.min(1 << 20));
        for _ in 0..count {
            let dx = r.f32()?;
            let dy = r.f32()?;
            let dz = r.f32()?;
            let i = r.u32()?;
            let ux = r.f32()?;
            let uy = r.f32()?;
            let uz = r.f32()?;
            let w = r.f32()?;
            if i as usize >= n_voxels {
                return Err(CheckpointError::Malformed(format!(
                    "particle voxel {i} out of range (< {n_voxels})"
                )));
            }
            sp.push(Particle {
                dx,
                dy,
                dz,
                i,
                ux,
                uy,
                uz,
                w,
            });
        }
        sp.set_cadence(cad);
        sp.set_coherence(counters);
        out.push(sp);
    }
    r.done()?;
    Ok(out)
}

/// Encode the portable run configuration (cleaning cadence + sentinel
/// thresholds) as a section payload. Shared by the serial (v2) and
/// distributed (v3) dump formats so the knobs survive a restart.
pub fn encode_sim_config(c: &SimConfig) -> Vec<u8> {
    let s = &c.sentinel;
    let mut w = PayloadWriter::new();
    w.u32(1); // config payload layout version
    w.u64(c.clean_div_e_interval as u64);
    w.u64(c.clean_div_b_interval as u64);
    w.u64(s.health_interval);
    w.f64(s.max_energy_growth);
    w.f64(s.max_div_e_rms);
    w.f64(s.max_div_b_rms);
    w.f64(s.max_momentum);
    w.f64(s.max_particle_drift);
    w.u32(s.marder_passes);
    w.u32(s.max_marder_bursts);
    w.u32(s.recorder_len as u32);
    w.finish()
}

/// Decode a configuration section written by [`encode_sim_config`].
pub fn decode_sim_config(payload: &[u8]) -> Result<SimConfig, CheckpointError> {
    let mut r = PayloadReader::new(payload, "config");
    let layout = r.u32()?;
    if layout != 1 {
        return Err(CheckpointError::Malformed(format!(
            "unknown config layout {layout}"
        )));
    }
    let clean_div_e_interval = r.u64()? as usize;
    let clean_div_b_interval = r.u64()? as usize;
    let sentinel = SentinelConfig {
        health_interval: r.u64()?,
        max_energy_growth: r.f64()?,
        max_div_e_rms: r.f64()?,
        max_div_b_rms: r.f64()?,
        max_momentum: r.f64()?,
        max_particle_drift: r.f64()?,
        marder_passes: r.u32()?,
        max_marder_bursts: r.u32()?,
        recorder_len: r.u32()? as usize,
    };
    r.done()?;
    Ok(SimConfig {
        clean_div_e_interval,
        clean_div_b_interval,
        sentinel,
    })
}

/// Write a restart dump of `sim` to `w`.
pub fn save(sim: &Simulation, w: &mut impl Write) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    // Header section.
    let g = &sim.grid;
    let mut h = PayloadWriter::new();
    for v in [g.nx as u32, g.ny as u32, g.nz as u32] {
        h.u32(v);
    }
    for v in [g.dx, g.dy, g.dz, g.dt, g.cvac, g.eps0, g.x0, g.y0, g.z0] {
        h.f32(v);
    }
    for face in 0..6 {
        h.u32(bc_code(g.bc[face]));
    }
    h.u64(sim.step_count);
    write_section(w, &h.finish())?;
    write_section(w, &encode_fields(&sim.fields))?;
    write_section(w, &encode_species(&sim.species))?;
    write_section(w, &encode_sim_config(&sim.config()))?;
    Ok(())
}

/// Restore a simulation from a restart dump. `n_pipelines` is a runtime
/// choice and need not match the saving run.
pub fn load(r: &mut impl Read, n_pipelines: usize) -> Result<Simulation, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| CheckpointError::BadMagic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut vb = [0u8; 4];
    r.read_exact(&mut vb)
        .map_err(|_| CheckpointError::Truncated { section: "version" })?;
    let version = u32::from_le_bytes(vb);
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }

    let header = read_section(r, "header")?;
    let mut hr = PayloadReader::new(&header, "header");
    let nx = hr.u32()? as usize;
    let ny = hr.u32()? as usize;
    let nz = hr.u32()? as usize;
    // Plausibility bound before any grid-sized allocation happens.
    if nx == 0
        || ny == 0
        || nz == 0
        || nx > 1 << 16
        || ny > 1 << 16
        || nz > 1 << 16
        || (nx + 2).saturating_mul(ny + 2).saturating_mul(nz + 2) > 1 << 31
    {
        return Err(CheckpointError::Malformed(format!(
            "implausible grid dims {nx}x{ny}x{nz}"
        )));
    }
    let mut f9 = [0.0f32; 9];
    for v in &mut f9 {
        *v = hr.f32()?;
    }
    let mut bc = [ParticleBc::Periodic; 6];
    for b in &mut bc {
        *b = bc_from(hr.u32()?)?;
    }
    let step_count = hr.u64()?;
    hr.done()?;

    let mut grid = Grid::new((nx, ny, nz), (f9[0], f9[1], f9[2]), f9[3], bc);
    grid.cvac = f9[4];
    grid.eps0 = f9[5];
    grid.x0 = f9[6];
    grid.y0 = f9[7];
    grid.z0 = f9[8];

    let mut sim = Simulation::new(grid, n_pipelines);
    sim.step_count = step_count;
    let n = sim.grid.n_voxels();

    let fields_payload = read_section(r, "fields")?;
    let mut fields = FieldArray::new(&sim.grid);
    decode_fields(&fields_payload, n, &mut fields)?;
    sim.fields = fields;

    let species_payload = read_section(r, "species")?;
    for sp in decode_species(&species_payload, n)? {
        sim.add_species(sp);
    }
    let config_payload = read_section(r, "config")?;
    let config = decode_sim_config(&config_payload)?;
    sim.set_config(&config);
    Ok(sim)
}

/// [`load`], then convert every species to `layout`. The dump format is
/// canonical AoS regardless of the writer's layout, so any checkpoint
/// restores into either backend (and the restart is bit-identical either
/// way, since conversion is a lossless copy).
pub fn load_with_layout(
    r: &mut impl Read,
    n_pipelines: usize,
    layout: Layout,
) -> Result<Simulation, CheckpointError> {
    let mut sim = load(r, n_pipelines)?;
    sim.set_layout(layout);
    Ok(sim)
}

/// Atomically write a restart dump to `path`: buffered write to a `.tmp`
/// sibling, fsync, rename. A crash mid-dump leaves the previous checkpoint
/// (if any) untouched.
pub fn save_to_path(sim: &Simulation, path: &Path) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        save(sim, &mut w)?;
        let file = w
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a restart dump from `path`.
pub fn load_from_path(path: &Path, n_pipelines: usize) -> Result<Simulation, CheckpointError> {
    let file = std::fs::File::open(path)?;
    let mut r = io::BufReader::new(file);
    load(&mut r, n_pipelines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::rng::Rng;

    fn make_sim() -> Simulation {
        let g = Grid::periodic((4, 4, 4), (0.25, 0.25, 0.25), 0.05);
        let mut sim = Simulation::new(g, 2);
        let mut e = Species::new("electron", -1.0, 1.0);
        let mut rng = Rng::seeded(17);
        load_uniform(
            &mut e,
            &sim.grid,
            &mut rng,
            1.0,
            16,
            Momentum::thermal(0.03),
        );
        sim.add_species(e);
        for _ in 0..3 {
            sim.step();
        }
        sim
    }

    #[test]
    fn roundtrip_preserves_state() {
        let sim = make_sim();
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice(), 4).unwrap();
        assert_eq!(restored.step_count, sim.step_count);
        assert_eq!(restored.species.len(), 1);
        assert_eq!(restored.species[0].name, "electron");
        assert_eq!(restored.species[0].store(), sim.species[0].store());
        assert_eq!(restored.fields.ex, sim.fields.ex);
        assert_eq!(restored.fields.cbz, sim.fields.cbz);
        assert_eq!(restored.grid.nx, sim.grid.nx);
        assert_eq!(restored.grid.dt, sim.grid.dt);
    }

    #[test]
    fn restart_continues_identically() {
        // A restored run must produce bit-identical physics to the
        // uninterrupted one (single pipeline for deterministic reduction).
        let g = Grid::periodic((4, 4, 4), (0.25, 0.25, 0.25), 0.05);
        let mut sim = Simulation::new(g, 1);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(23);
        load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 8, Momentum::thermal(0.05));
        sim.add_species(e);
        for _ in 0..2 {
            sim.step();
        }
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        let mut restored = load(&mut buf.as_slice(), 1).unwrap();
        for _ in 0..3 {
            sim.step();
            restored.step();
        }
        assert_eq!(sim.species[0].store(), restored.species[0].store());
        assert_eq!(sim.fields.ex, restored.fields.ex);
    }

    #[test]
    fn dump_bytes_are_layout_independent_and_restore_into_either_layout() {
        // An AoSoA-resident run must write the exact same bytes as its AoS
        // twin (canonical AoS on disk), and any dump must restore into
        // either layout and continue bit-identically.
        let sim_aos = make_sim();
        let mut sim_soa = make_sim();
        sim_soa.set_layout(Layout::Aosoa);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        save(&sim_aos, &mut a).unwrap();
        save(&sim_soa, &mut b).unwrap();
        assert_eq!(a, b, "dump bytes depend on the in-memory layout");

        let mut into_aos = load_with_layout(&mut a.as_slice(), 1, Layout::Aos).unwrap();
        let mut into_soa = load_with_layout(&mut a.as_slice(), 1, Layout::Aosoa).unwrap();
        assert_eq!(into_aos.species[0].layout(), Layout::Aos);
        assert_eq!(into_soa.species[0].layout(), Layout::Aosoa);
        for _ in 0..3 {
            into_aos.step();
            into_soa.step();
        }
        assert_eq!(into_aos.species[0].store(), into_soa.species[0].store());
        assert_eq!(into_aos.fields.ex, into_soa.fields.ex);
        assert_eq!(into_aos.fields.cbz, into_soa.fields.cbz);
    }

    #[test]
    fn rejects_bad_magic() {
        match load(&mut &b"NOTADUMPxxxx"[..], 1) {
            Err(CheckpointError::BadMagic) => {}
            Err(e) => panic!("wrong error for bad magic: {e}"),
            Ok(_) => panic!("bad magic accepted"),
        }
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"VPICRS02");
        buf.extend_from_slice(&99u32.to_le_bytes());
        match load(&mut buf.as_slice(), 1) {
            Err(CheckpointError::UnsupportedVersion(99)) => {}
            Err(e) => panic!("wrong error for future version: {e}"),
            Ok(_) => panic!("future version accepted"),
        }
    }

    #[test]
    fn rejects_truncated_dump() {
        let sim = make_sim();
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        for frac in [2, 3, 5] {
            let mut cut = buf.clone();
            cut.truncate(cut.len() / frac);
            match load(&mut cut.as_slice(), 1) {
                Err(CheckpointError::Truncated { .. })
                | Err(CheckpointError::CrcMismatch { .. }) => {}
                Err(e) => panic!("unexpected error for truncation: {e}"),
                Ok(_) => panic!("truncated dump accepted"),
            }
        }
    }

    #[test]
    fn detects_every_payload_bit_flip_region() {
        // Flip one byte in each section's payload: CRC must catch it.
        let sim = make_sim();
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        // Probe several positions spread across the dump (past the magic
        // and version words, which have their own checks).
        let n = buf.len();
        for pos in [16, n / 4, n / 2, (3 * n) / 4, n - 8] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                load(&mut bad.as_slice(), 1).is_err(),
                "bit flip at byte {pos} of {n} went undetected"
            );
        }
    }

    #[test]
    fn delta_rle_roundtrips_structured_and_adversarial_payloads() {
        let sim = make_sim();
        let fields = encode_fields(&sim.fields);
        let species = encode_species(&sim.species);
        let mut patterned = Vec::new();
        for i in 0..4096u32 {
            patterned.extend_from_slice(&(i / 7).to_le_bytes());
        }
        // xorshift byte noise: the incompressible worst case.
        let mut x = 0x9E37_79B9u32;
        let noise: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        for payload in [
            &[] as &[u8],
            &[0u8; 3],
            &[7u8; 1],
            &vec![0u8; 4096][..],
            &fields,
            &species,
            &patterned,
            &noise,
        ] {
            let c = compress_delta_rle(payload);
            let back = decompress_delta_rle(&c, payload.len(), "test").unwrap();
            assert_eq!(
                back,
                payload,
                "roundtrip failed for {} bytes",
                payload.len()
            );
        }
    }

    #[test]
    fn delta_rle_shrinks_dump_payloads() {
        let sim = make_sim();
        let fields = encode_fields(&sim.fields);
        let cf = compress_delta_rle(&fields);
        let species = encode_species(&sim.species);
        let cs = compress_delta_rle(&species);
        eprintln!(
            "fields {} -> {}, species {} -> {}",
            fields.len(),
            cf.len(),
            species.len(),
            cs.len()
        );
        // Thermal-plasma fields are shot-noise dominated; only the zeroed
        // arrays, ghost planes and shared exponent bytes compress (and the
        // periodic ghost mirrors hold live copies, not zeros). Particle
        // records (constant weights, clustered momenta, sorted voxels) do
        // better.
        assert!(
            cf.len() < fields.len() * 23 / 25,
            "field section barely compressed: {} -> {}",
            fields.len(),
            cf.len()
        );
        assert!(
            cs.len() < species.len() * 4 / 5,
            "species section barely compressed: {} -> {}",
            species.len(),
            cs.len()
        );
    }

    #[test]
    fn decompress_rejects_garbage_without_panicking() {
        // Zero stride, bad tag, truncated literal, overrun, underrun,
        // unterminated varint.
        assert!(decompress_delta_rle(&[0x00, 0x01, 0x01, 7], 1, "t").is_err());
        assert!(decompress_delta_rle(&[0x04, 0x77, 0x01], 4, "t").is_err());
        assert!(decompress_delta_rle(&[0x04, 0x01, 0x08, 1, 2], 8, "t").is_err());
        assert!(decompress_delta_rle(&[0x04, 0x00, 0x7f], 4, "t").is_err());
        assert!(decompress_delta_rle(&[0x04, 0x00, 0x02], 4, "t").is_err());
        assert!(
            decompress_delta_rle(&[0x04, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff], 4, "t").is_err(),
            "unterminated varint accepted"
        );
        let mut x = 1u32;
        for len in [1usize, 7, 64, 513] {
            let junk: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 24) as u8
                })
                .collect();
            let _ = decompress_delta_rle(&junk, 256, "t"); // must not panic
        }
    }

    #[test]
    fn encoded_section_roundtrip_and_single_bit_flips_detected() {
        let sim = make_sim();
        let payload = encode_fields(&sim.fields);
        for compress in [false, true] {
            let mut buf = Vec::new();
            write_section_encoded(&mut buf, &payload, compress).unwrap();
            let back = read_section_encoded(&mut buf.as_slice(), "fields").unwrap();
            assert_eq!(back, payload);
            if compress {
                assert!(buf.len() < payload.len(), "compressed section not smaller");
            }
            // Every single-bit flip anywhere in the framing or body —
            // including the encoding byte and raw-length word, which the
            // CRC deliberately covers — must yield a typed error.
            for pos in 0..buf.len() {
                let mut bad = buf.clone();
                bad[pos] ^= 1;
                assert!(
                    read_section_encoded(&mut bad.as_slice(), "fields").is_err(),
                    "bit flip at byte {pos}/{} (compress={compress}) went undetected",
                    buf.len()
                );
            }
            // And every truncation.
            for cut in 0..buf.len() {
                assert!(
                    read_section_encoded(&mut &buf[..cut], "fields").is_err(),
                    "truncation to {cut}/{} (compress={compress}) accepted",
                    buf.len()
                );
            }
        }
    }

    #[test]
    fn atomic_path_roundtrip_and_no_tmp_left_behind() {
        let dir = std::env::temp_dir().join(format!("vpic_test_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.vpic");
        let sim = make_sim();
        save_to_path(&sim, &path).unwrap();
        assert!(!dir.join("dump.tmp").exists(), "temp file left behind");
        let restored = load_from_path(&path, 1).unwrap();
        assert_eq!(restored.species[0].store(), sim.species[0].store());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
