//! Binary checkpointing of a single-domain simulation.
//!
//! Hand-rolled little-endian format (magic `VPICRS01`): VPIC production
//! runs at trillion-particle scale live or die by restart dumps, so the
//! reproduction carries the same capability. Fields and particles are
//! written verbatim; phase timings are not persisted (they are
//! measurements, not state).

use crate::field::FieldArray;
use crate::grid::{Grid, ParticleBc};
use crate::particle::Particle;
use crate::sim::Simulation;
use crate::species::Species;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"VPICRS01";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_f32_slice(w: &mut impl Write, s: &[f32]) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_f32(w, v)?;
    }
    Ok(())
}

/// Read a length-prefixed f32 vector whose length must equal `expect`
/// (corrupted/hostile headers must not drive allocation).
fn read_f32_vec(r: &mut impl Read, expect: usize) -> io::Result<Vec<f32>> {
    let n = read_u64(r)? as usize;
    if n != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("field length {n} != expected {expect}"),
        ));
    }
    let mut out = vec![0.0f32; n];
    for v in &mut out {
        *v = read_f32(r)?;
    }
    Ok(out)
}

fn bc_code(bc: ParticleBc) -> u32 {
    match bc {
        ParticleBc::Periodic => 0,
        ParticleBc::Reflect => 1,
        ParticleBc::Absorb => 2,
        ParticleBc::Migrate => 3,
    }
}

fn bc_from(code: u32) -> io::Result<ParticleBc> {
    Ok(match code {
        0 => ParticleBc::Periodic,
        1 => ParticleBc::Reflect,
        2 => ParticleBc::Absorb,
        3 => ParticleBc::Migrate,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad boundary code")),
    })
}

/// Write a restart dump of `sim` to `w`.
pub fn save(sim: &Simulation, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let g = &sim.grid;
    for v in [g.nx as u32, g.ny as u32, g.nz as u32] {
        write_u32(w, v)?;
    }
    for v in [g.dx, g.dy, g.dz, g.dt, g.cvac, g.eps0, g.x0, g.y0, g.z0] {
        write_f32(w, v)?;
    }
    for face in 0..6 {
        write_u32(w, bc_code(g.bc[face]))?;
    }
    write_u64(w, sim.step_count)?;
    // Fields.
    let f = &sim.fields;
    for arr in [&f.ex, &f.ey, &f.ez, &f.cbx, &f.cby, &f.cbz, &f.jx, &f.jy, &f.jz, &f.rho] {
        write_f32_slice(w, arr)?;
    }
    // Species.
    write_u32(w, sim.species.len() as u32)?;
    for sp in &sim.species {
        let name = sp.name.as_bytes();
        write_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        write_f32(w, sp.q)?;
        write_f32(w, sp.m)?;
        write_u32(w, sp.sort_interval as u32)?;
        write_u64(w, sp.particles.len() as u64)?;
        for p in &sp.particles {
            for v in [p.dx, p.dy, p.dz] {
                write_f32(w, v)?;
            }
            write_u32(w, p.i)?;
            for v in [p.ux, p.uy, p.uz, p.w] {
                write_f32(w, v)?;
            }
        }
    }
    Ok(())
}

/// Restore a simulation from a restart dump. `n_pipelines` is a runtime
/// choice and need not match the saving run.
pub fn load(r: &mut impl Read, n_pipelines: usize) -> io::Result<Simulation> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a VPICRS01 dump"));
    }
    let nx = read_u32(r)? as usize;
    let ny = read_u32(r)? as usize;
    let nz = read_u32(r)? as usize;
    // Plausibility bound before any grid-sized allocation happens.
    if nx == 0 || ny == 0 || nz == 0 || nx > 1 << 16 || ny > 1 << 16 || nz > 1 << 16
        || (nx + 2).saturating_mul(ny + 2).saturating_mul(nz + 2) > 1 << 31
    {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible grid dims"));
    }
    let mut f9 = [0.0f32; 9];
    for v in &mut f9 {
        *v = read_f32(r)?;
    }
    let mut bc = [ParticleBc::Periodic; 6];
    for b in &mut bc {
        *b = bc_from(read_u32(r)?)?;
    }
    let mut grid = Grid::new((nx, ny, nz), (f9[0], f9[1], f9[2]), f9[3], bc);
    grid.cvac = f9[4];
    grid.eps0 = f9[5];
    grid.x0 = f9[6];
    grid.y0 = f9[7];
    grid.z0 = f9[8];
    let step_count = read_u64(r)?;

    let mut sim = Simulation::new(grid, n_pipelines);
    sim.step_count = step_count;
    let n = sim.grid.n_voxels();
    let mut fields = FieldArray::new(&sim.grid);
    for arr in [
        &mut fields.ex,
        &mut fields.ey,
        &mut fields.ez,
        &mut fields.cbx,
        &mut fields.cby,
        &mut fields.cbz,
        &mut fields.jx,
        &mut fields.jy,
        &mut fields.jz,
        &mut fields.rho,
    ] {
        *arr = read_f32_vec(r, n)?;
    }
    sim.fields = fields;

    let n_species = read_u32(r)? as usize;
    if n_species > 1024 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible species count"));
    }
    for _ in 0..n_species {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad species name"))?;
        let q = read_f32(r)?;
        let m = read_f32(r)?;
        let sort_interval = read_u32(r)? as usize;
        let count = read_u64(r)? as usize;
        let mut sp = Species::new(name, q, m).with_sort_interval(sort_interval);
        // Do not trust the header for a big up-front reservation: a
        // corrupted count should fail at EOF, not on allocation.
        sp.particles.reserve_exact(count.min(1 << 20));
        for _ in 0..count {
            let dx = read_f32(r)?;
            let dy = read_f32(r)?;
            let dz = read_f32(r)?;
            let i = read_u32(r)?;
            let ux = read_f32(r)?;
            let uy = read_f32(r)?;
            let uz = read_f32(r)?;
            let w = read_f32(r)?;
            if i as usize >= sim.grid.n_voxels() {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "voxel out of range"));
            }
            sp.particles.push(Particle { dx, dy, dz, i, ux, uy, uz, w });
        }
        sim.add_species(sp);
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::rng::Rng;

    fn make_sim() -> Simulation {
        let g = Grid::periodic((4, 4, 4), (0.25, 0.25, 0.25), 0.05);
        let mut sim = Simulation::new(g, 2);
        let mut e = Species::new("electron", -1.0, 1.0);
        let mut rng = Rng::seeded(17);
        load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 16, Momentum::thermal(0.03));
        sim.add_species(e);
        for _ in 0..3 {
            sim.step();
        }
        sim
    }

    #[test]
    fn roundtrip_preserves_state() {
        let sim = make_sim();
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        let restored = load(&mut buf.as_slice(), 4).unwrap();
        assert_eq!(restored.step_count, sim.step_count);
        assert_eq!(restored.species.len(), 1);
        assert_eq!(restored.species[0].name, "electron");
        assert_eq!(restored.species[0].particles, sim.species[0].particles);
        assert_eq!(restored.fields.ex, sim.fields.ex);
        assert_eq!(restored.fields.cbz, sim.fields.cbz);
        assert_eq!(restored.grid.nx, sim.grid.nx);
        assert_eq!(restored.grid.dt, sim.grid.dt);
    }

    #[test]
    fn restart_continues_identically() {
        // A restored run must produce bit-identical physics to the
        // uninterrupted one (single pipeline for deterministic reduction).
        let g = Grid::periodic((4, 4, 4), (0.25, 0.25, 0.25), 0.05);
        let mut sim = Simulation::new(g, 1);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(23);
        load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 8, Momentum::thermal(0.05));
        sim.add_species(e);
        for _ in 0..2 {
            sim.step();
        }
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        let mut restored = load(&mut buf.as_slice(), 1).unwrap();
        for _ in 0..3 {
            sim.step();
            restored.step();
        }
        assert_eq!(sim.species[0].particles, restored.species[0].particles);
        assert_eq!(sim.fields.ex, restored.fields.ex);
    }

    #[test]
    fn rejects_bad_magic() {
        match load(&mut &b"NOTADUMPxxxx"[..], 1) {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData),
            Ok(_) => panic!("bad magic accepted"),
        }
    }

    #[test]
    fn rejects_truncated_dump() {
        let sim = make_sim();
        let mut buf = Vec::new();
        save(&sim, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&mut buf.as_slice(), 1).is_err());
    }
}
