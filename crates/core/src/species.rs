//! A particle species: charge, mass and its macroparticle list.

use crate::grid::Grid;
use crate::particle::Particle;
use crate::sort::sort_by_voxel_with;

/// One kinetic species (e.g. electrons, helium ions).
#[derive(Clone, Debug)]
pub struct Species {
    /// Display name.
    pub name: String,
    /// Charge per physical particle (electron = −1 in normalized units).
    pub q: f32,
    /// Mass per physical particle (electron = 1 in normalized units).
    pub m: f32,
    /// Macroparticles.
    pub particles: Vec<Particle>,
    /// Sort every this many steps (0 = never); VPIC defaults to a few
    /// tens of steps.
    pub sort_interval: usize,
    scratch: Vec<Particle>,
    /// Persistent sort histogram, so steady-state sorting allocates
    /// nothing (see [`sort_by_voxel_with`]).
    sort_counts: Vec<u32>,
}

impl Species {
    /// New empty species.
    pub fn new(name: impl Into<String>, q: f32, m: f32) -> Self {
        assert!(m > 0.0, "mass must be positive");
        Species {
            name: name.into(),
            q,
            m,
            particles: Vec::new(),
            sort_interval: 25,
            scratch: Vec::new(),
            sort_counts: Vec::new(),
        }
    }

    /// Builder-style sort interval override.
    pub fn with_sort_interval(mut self, interval: usize) -> Self {
        self.sort_interval = interval;
        self
    }

    /// Number of macroparticles.
    #[inline]
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the species holds no macroparticles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Counting-sort the particles by voxel (Rayon-parallel; scratch and
    /// histogram buffers persist across calls).
    pub fn sort(&mut self, g: &Grid) {
        sort_by_voxel_with(
            &mut self.particles,
            g.n_voxels(),
            &mut self.scratch,
            &mut self.sort_counts,
        );
    }

    /// Total kinetic energy `Σ w·m·c²·(γ−1)` in double precision.
    pub fn kinetic_energy(&self, g: &Grid) -> f64 {
        let mc2 = (self.m * g.cvac * g.cvac) as f64;
        mc2 * self.particles.iter().map(Particle::kinetic_w).sum::<f64>()
    }

    /// Total momentum `Σ w·m·c·u` per axis in double precision.
    pub fn momentum(&self, g: &Grid) -> [f64; 3] {
        let mc = (self.m * g.cvac) as f64;
        let mut s = [0.0f64; 3];
        for p in &self.particles {
            s[0] += p.w as f64 * p.ux as f64;
            s[1] += p.w as f64 * p.uy as f64;
            s[2] += p.w as f64 * p.uz as f64;
        }
        [mc * s[0], mc * s[1], mc * s[2]]
    }

    /// Total statistical weight (number of physical particles).
    pub fn total_weight(&self) -> f64 {
        self.particles.iter().map(|p| p.w as f64).sum()
    }

    /// Mean velocity `⟨v⟩/c` per axis (weight-averaged).
    pub fn mean_velocity(&self) -> [f64; 3] {
        let mut s = [0.0f64; 3];
        let mut wtot = 0.0f64;
        for p in &self.particles {
            let rg = 1.0 / p.gamma() as f64;
            let w = p.w as f64;
            s[0] += w * p.ux as f64 * rg;
            s[1] += w * p.uy as f64 * rg;
            s[2] += w * p.uz as f64 * rg;
            wtot += w;
        }
        if wtot > 0.0 {
            for v in &mut s {
                *v /= wtot;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_momentum_sums() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut s = Species::new("e", -1.0, 1.0);
        s.particles.push(Particle {
            ux: 3.0,
            uy: 0.0,
            uz: 4.0,
            w: 2.0,
            i: 9,
            ..Default::default()
        });
        s.particles.push(Particle {
            ux: -1.0,
            w: 1.0,
            i: 9,
            ..Default::default()
        });
        let ke = s.kinetic_energy(&g);
        let want = 2.0 * ((26.0f64).sqrt() - 1.0) + ((2.0f64).sqrt() - 1.0);
        assert!((ke - want).abs() < 1e-6);
        let p = s.momentum(&g);
        assert!((p[0] - (2.0 * 3.0 - 1.0)).abs() < 1e-6);
        assert!((p[2] - 8.0).abs() < 1e-6);
        assert!((s.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_velocity_of_opposite_streams_is_zero() {
        let mut s = Species::new("e", -1.0, 1.0);
        s.particles.push(Particle {
            ux: 0.5,
            w: 1.0,
            ..Default::default()
        });
        s.particles.push(Particle {
            ux: -0.5,
            w: 1.0,
            ..Default::default()
        });
        let v = s.mean_velocity();
        assert!(v[0].abs() < 1e-12);
    }

    #[test]
    fn sort_orders_particles() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut s = Species::new("e", -1.0, 1.0);
        for i in [40u32, 7, 99, 7, 3] {
            s.particles.push(Particle {
                i,
                ..Default::default()
            });
        }
        s.sort(&g);
        assert!(s.particles.windows(2).all(|w| w[0].i <= w[1].i));
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
