//! A particle species: charge, mass and its macroparticle storage.
//!
//! Storage goes through [`ParticleStore`] — AoS or AoSoA — and is private
//! so every consumer works against the layout-agnostic API; the layout is
//! a runtime knob (`layout = aos|aosoa` in decks) and both backends are
//! bit-identical.

use crate::aosoa::{sort_aosoa_with, Block};
use crate::cadence::{CadenceState, CoherenceCounters, PushTally, SortPolicy};
use crate::grid::Grid;
use crate::particle::Particle;
use crate::sort::sort_by_voxel_with;
use crate::store::{Layout, ParticleStore, StoreIter};

/// One kinetic species (e.g. electrons, helium ions).
#[derive(Clone, Debug)]
pub struct Species {
    /// Display name.
    pub name: String,
    /// Charge per physical particle (electron = −1 in normalized units).
    pub q: f32,
    /// Mass per physical particle (electron = 1 in normalized units).
    pub m: f32,
    /// When to counting-sort back into voxel order: a fixed interval
    /// (VPIC defaults to a few tens of steps; 0 = never) or the adaptive
    /// cadence controller.
    pub sort_policy: SortPolicy,
    /// Cadence controller state (rides checkpoints bit-exactly).
    cadence: CadenceState,
    /// Lifetime coherence telemetry (crossers, spills, mixed blocks,
    /// sorts performed/skipped).
    counters: CoherenceCounters,
    /// Macroparticles, in either layout.
    store: ParticleStore,
    scratch: Vec<Particle>,
    scratch_blocks: Vec<Block>,
    /// Persistent sort histogram, so steady-state sorting allocates
    /// nothing (see [`sort_by_voxel_with`]).
    sort_counts: Vec<u32>,
}

impl Species {
    /// New empty species (AoS layout).
    pub fn new(name: impl Into<String>, q: f32, m: f32) -> Self {
        assert!(m > 0.0, "mass must be positive");
        let sort_policy = SortPolicy::default();
        Species {
            name: name.into(),
            q,
            m,
            sort_policy,
            cadence: CadenceState::new(sort_policy),
            counters: CoherenceCounters::default(),
            store: ParticleStore::default(),
            scratch: Vec::new(),
            scratch_blocks: Vec::new(),
            sort_counts: Vec::new(),
        }
    }

    /// Builder-style fixed sort interval override (`0` = never sort —
    /// tracer species use that).
    pub fn with_sort_interval(mut self, interval: usize) -> Self {
        self.set_sort_policy(SortPolicy::Fixed(interval as u32));
        self
    }

    /// Builder-style sort policy override.
    pub fn with_sort_policy(mut self, policy: SortPolicy) -> Self {
        self.set_sort_policy(policy);
        self
    }

    /// Swap the sort policy, resetting the cadence controller.
    pub fn set_sort_policy(&mut self, policy: SortPolicy) {
        self.sort_policy = policy;
        self.cadence = CadenceState::new(policy);
    }

    /// The cadence controller's current state (interval, coherence flag,
    /// measured crossing rate).
    pub fn cadence(&self) -> &CadenceState {
        &self.cadence
    }

    /// Overwrite the cadence controller state (checkpoint restore).
    pub fn set_cadence(&mut self, state: CadenceState) {
        self.cadence = state;
    }

    /// Lifetime coherence counters.
    pub fn coherence(&self) -> &CoherenceCounters {
        &self.counters
    }

    /// Overwrite the coherence counters (checkpoint restore).
    pub fn set_coherence(&mut self, counters: CoherenceCounters) {
        self.counters = counters;
    }

    /// Account one step's push telemetry to the cadence controller and
    /// the lifetime counters. Call after the push (and any migration /
    /// injection that follows it), so the length check sees the final
    /// population of the step.
    pub fn note_push_tally(&mut self, tally: &PushTally) {
        self.counters.tally.absorb(tally);
        self.cadence
            .note_push(tally.crossers, self.store.len() as u64);
    }

    /// Whether the cadence calls for a sort at `step` (never on step 0).
    pub fn sort_due(&self, step: u64) -> bool {
        self.cadence.sort_due(step)
    }

    /// Run the cadence-due sort, skipping the counting sort entirely when
    /// the store is provably still in voxel order (a sort happened, and
    /// zero crossers / no length change since — a stable counting sort of
    /// sorted input is the identity permutation, so skipping is bitwise
    /// free). Returns true when a real sort ran.
    pub fn sort_on_cadence(&mut self, g: &Grid) -> bool {
        if self.cadence.coherent {
            self.counters.skipped_sorts += 1;
            self.cadence
                .on_skipped(self.sort_policy, self.len() as u64, g.n_voxels() as u64);
            false
        } else {
            self.sort(g);
            true
        }
    }

    /// Builder-style layout override (converts existing particles).
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.set_layout(layout);
        self
    }

    /// The storage layout in use.
    pub fn layout(&self) -> Layout {
        self.store.layout()
    }

    /// Convert the particle storage to `layout` in place (lossless; a
    /// no-op when already there).
    pub fn set_layout(&mut self, layout: Layout) {
        self.store.convert(layout);
    }

    /// The underlying store (for the pushers and checkpoint layer).
    #[inline]
    pub fn store(&self) -> &ParticleStore {
        &self.store
    }

    /// Mutable access to the underlying store.
    #[inline]
    pub fn store_mut(&mut self) -> &mut ParticleStore {
        &mut self.store
    }

    /// Number of macroparticles.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the species holds no macroparticles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Append a macroparticle.
    #[inline]
    pub fn push(&mut self, p: Particle) {
        self.store.push(p);
    }

    /// Append every particle of `it`.
    pub fn extend(&mut self, it: impl IntoIterator<Item = Particle>) {
        self.store.extend(it);
    }

    /// Copy out particle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        self.store.get(i)
    }

    /// Overwrite particle `i`.
    #[inline]
    pub fn set(&mut self, i: usize, p: Particle) {
        self.store.set(i, p);
    }

    /// Remove particle `i` by swapping in the last one; returns it.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        self.store.swap_remove(i)
    }

    /// Drop every particle (keeps capacity and layout).
    pub fn clear_particles(&mut self) {
        self.store.clear();
    }

    /// Iterate particles by value in index order.
    pub fn iter(&self) -> StoreIter<'_> {
        self.store.iter()
    }

    /// Copy out the canonical AoS view.
    pub fn to_particles(&self) -> Vec<Particle> {
        self.store.to_particles()
    }

    /// Replace the particle contents (keeps the current layout).
    pub fn set_particles(&mut self, parts: Vec<Particle>) {
        let layout = self.store.layout();
        self.store = ParticleStore::from_particles(parts, layout);
    }

    /// Counting-sort the particles by voxel (Rayon-parallel; scratch and
    /// histogram buffers persist across calls). Both layouts produce the
    /// identical stable permutation. Closes the cadence controller's
    /// measurement window (every caller — cadence, collisions, tests —
    /// re-establishes coherence the same way, so the controller's view of
    /// the store stays truthful).
    pub fn sort(&mut self, g: &Grid) {
        match &mut self.store {
            ParticleStore::Aos(parts) => {
                sort_by_voxel_with(
                    parts,
                    g.n_voxels(),
                    &mut self.scratch,
                    &mut self.sort_counts,
                );
            }
            ParticleStore::Aosoa(s) => {
                sort_aosoa_with(
                    s,
                    g.n_voxels(),
                    &mut self.scratch_blocks,
                    &mut self.sort_counts,
                );
            }
        }
        self.counters.sorts += 1;
        self.cadence.on_sorted(
            self.sort_policy,
            self.store.len() as u64,
            g.n_voxels() as u64,
        );
    }

    /// Total kinetic energy `Σ w·m·c²·(γ−1)` in double precision.
    pub fn kinetic_energy(&self, g: &Grid) -> f64 {
        let mc2 = (self.m * g.cvac * g.cvac) as f64;
        mc2 * self.iter().map(|p| p.kinetic_w()).sum::<f64>()
    }

    /// Total momentum `Σ w·m·c·u` per axis in double precision.
    pub fn momentum(&self, g: &Grid) -> [f64; 3] {
        let mc = (self.m * g.cvac) as f64;
        let mut s = [0.0f64; 3];
        for p in self.iter() {
            s[0] += p.w as f64 * p.ux as f64;
            s[1] += p.w as f64 * p.uy as f64;
            s[2] += p.w as f64 * p.uz as f64;
        }
        [mc * s[0], mc * s[1], mc * s[2]]
    }

    /// Total statistical weight (number of physical particles).
    pub fn total_weight(&self) -> f64 {
        self.iter().map(|p| p.w as f64).sum()
    }

    /// Mean velocity `⟨v⟩/c` per axis (weight-averaged).
    pub fn mean_velocity(&self) -> [f64; 3] {
        let mut s = [0.0f64; 3];
        let mut wtot = 0.0f64;
        for p in self.iter() {
            let rg = 1.0 / p.gamma() as f64;
            let w = p.w as f64;
            s[0] += w * p.ux as f64 * rg;
            s[1] += w * p.uy as f64 * rg;
            s[2] += w * p.uz as f64 * rg;
            wtot += w;
        }
        if wtot > 0.0 {
            for v in &mut s {
                *v /= wtot;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_momentum_sums() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push(Particle {
            ux: 3.0,
            uy: 0.0,
            uz: 4.0,
            w: 2.0,
            i: 9,
            ..Default::default()
        });
        s.push(Particle {
            ux: -1.0,
            w: 1.0,
            i: 9,
            ..Default::default()
        });
        let ke = s.kinetic_energy(&g);
        let want = 2.0 * ((26.0f64).sqrt() - 1.0) + ((2.0f64).sqrt() - 1.0);
        assert!((ke - want).abs() < 1e-6);
        let p = s.momentum(&g);
        assert!((p[0] - (2.0 * 3.0 - 1.0)).abs() < 1e-6);
        assert!((p[2] - 8.0).abs() < 1e-6);
        assert!((s.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_velocity_of_opposite_streams_is_zero() {
        let mut s = Species::new("e", -1.0, 1.0);
        s.push(Particle {
            ux: 0.5,
            w: 1.0,
            ..Default::default()
        });
        s.push(Particle {
            ux: -0.5,
            w: 1.0,
            ..Default::default()
        });
        let v = s.mean_velocity();
        assert!(v[0].abs() < 1e-12);
    }

    #[test]
    fn sort_orders_particles() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut s = Species::new("e", -1.0, 1.0);
        for i in [40u32, 7, 99, 7, 3] {
            s.push(Particle {
                i,
                ..Default::default()
            });
        }
        s.sort(&g);
        let sorted = s.to_particles();
        assert!(sorted.windows(2).all(|w| w[0].i <= w[1].i));
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn layout_conversion_preserves_contents_and_diagnostics() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut s = Species::new("e", -1.0, 1.0);
        for k in 0..17u32 {
            s.push(Particle {
                i: 21 + k,
                ux: 0.1 * k as f32,
                w: 1.0,
                ..Default::default()
            });
        }
        let parts = s.to_particles();
        let (ke, mom) = (s.kinetic_energy(&g), s.momentum(&g));
        s.set_layout(Layout::Aosoa);
        assert_eq!(s.layout(), Layout::Aosoa);
        assert_eq!(s.to_particles(), parts);
        assert_eq!(s.kinetic_energy(&g).to_bits(), ke.to_bits());
        assert_eq!(s.momentum(&g)[0].to_bits(), mom[0].to_bits());
        // Sort works in the AoSoA layout too, same permutation.
        let mut aos_twin = Species::new("e", -1.0, 1.0);
        aos_twin.extend(parts);
        aos_twin.sort(&g);
        s.sort(&g);
        assert_eq!(s.to_particles(), aos_twin.to_particles());
        s.set_layout(Layout::Aos);
        assert_eq!(s.layout(), Layout::Aos);
    }
}
