//! Worker-thread introspection.
//!
//! Every phase of the step loop fans work out over Rayon's global pool, so
//! benchmarks and run summaries need to report how many workers actually
//! execute it. Rayon sizes its default pool from `RAYON_NUM_THREADS` (when
//! set to a positive integer) and otherwise from the hardware parallelism;
//! this helper reproduces that policy without depending on pool
//! introspection APIs, so it works identically against the real crate and
//! the offline sequential stand-in.

/// Number of worker threads the global Rayon pool uses for parallel
/// phases: `RAYON_NUM_THREADS` if set to a positive integer, else the
/// available hardware parallelism, else 1.
pub fn worker_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_at_least_one_worker() {
        assert!(worker_threads() >= 1);
    }
}
