//! Harris current-sheet equilibrium loading — the setup behind VPIC's
//! other flagship application, collisionless magnetic reconnection (the
//! same code base the SC'08 paper scaled was used for the landmark
//! trillion-particle reconnection studies).
//!
//! The kinetic Harris equilibrium in the (x, z) plane:
//!
//! ```text
//! B_x(z)  = B0·tanh(z/L)
//! n(z)    = n0·sech²(z/L) + n_b
//! ```
//!
//! with counter-drifting sheet populations carrying the current
//! `J_y = −B0/L·sech²(z/L)` (Ampère), split between species in proportion
//! to their temperatures. Pressure balance fixes
//! `n0·(T_e + T_i) = B0²/2`, and the drift speeds satisfy
//! `u_{d,s} = 2·T_s/(q_s·B0·L)` (in normalized units).

use crate::field::FieldArray;
use crate::field_solver::{bcs_of, sync_b};
use crate::grid::Grid;
use crate::maxwellian::{load_profile, Momentum};
use crate::rng::Rng;
use crate::species::Species;

/// Harris sheet parameters (normalized units; the sheet normal is z and
/// the field reverses along x).
#[derive(Clone, Copy, Debug)]
pub struct HarrisSheet {
    /// Asymptotic reconnecting field `B0` (in `cB` units).
    pub b0: f32,
    /// Sheet half-thickness `L`.
    pub l: f32,
    /// Peak sheet density `n0`.
    pub n0: f32,
    /// Uniform background density.
    pub nb: f32,
    /// Ion-to-electron temperature ratio `T_i/T_e`.
    pub ti_over_te: f32,
    /// Ion mass (electron masses).
    pub mi: f32,
    /// Center of the sheet in z.
    pub z_center: f32,
}

impl HarrisSheet {
    /// GEM-challenge-flavored defaults (reduced mass ratio 25,
    /// `Ti/Te = 5`, `L = 0.5·di`).
    pub fn gem_like(b0: f32, z_center: f32) -> Self {
        HarrisSheet {
            b0,
            l: 1.0,
            n0: 1.0,
            nb: 0.2,
            ti_over_te: 5.0,
            mi: 25.0,
            z_center,
        }
    }

    /// Electron temperature from pressure balance
    /// `n0(T_e + T_i) = B0²/2`.
    pub fn te(&self) -> f32 {
        self.b0 * self.b0 / (2.0 * self.n0 * (1.0 + self.ti_over_te))
    }

    /// Ion temperature.
    pub fn ti(&self) -> f32 {
        self.ti_over_te * self.te()
    }

    /// Electron/ion drift speeds along ∓y (`u_d = 2T/(|q|·B0·L)`,
    /// electron drift opposes the ion drift).
    pub fn drifts(&self) -> (f32, f32) {
        let ude = -2.0 * self.te() / (self.b0 * self.l);
        let udi = 2.0 * self.ti() / (self.b0 * self.l);
        (ude, udi)
    }

    /// Density profile of the sheet population at height z.
    pub fn sheet_density(&self, z: f32) -> f32 {
        let s = ((z - self.z_center) / self.l).cosh();
        1.0 / (s * s)
    }

    /// The reversing field at height z.
    pub fn bx(&self, z: f32) -> f32 {
        self.b0 * ((z - self.z_center) / self.l).tanh()
    }

    /// Initialize `cbx` on the grid (call before loading particles) and
    /// synchronize ghosts.
    pub fn init_field(&self, f: &mut FieldArray, g: &Grid) {
        let (sx, sy, sz) = g.strides();
        for k in 0..sz {
            // cbx is face-registered at node plane i, cell-centered in z:
            // evaluate at the z cell center.
            let z = g.z0 + (k as f32 - 0.5) * g.dz;
            let b = self.bx(z);
            for j in 0..sy {
                for i in 0..sx {
                    f.cbx[g.voxel(i, j, k)] = b;
                }
            }
        }
        sync_b(f, g, bcs_of(g));
    }

    /// Load the Harris sheet + background populations into electron and
    /// ion species (`ppc` at peak density). Drifts go into ±y.
    pub fn load(
        &self,
        electrons: &mut Species,
        ions: &mut Species,
        g: &Grid,
        rng: &mut Rng,
        ppc: usize,
    ) {
        assert!((electrons.m - 1.0).abs() < 1e-6, "electron mass must be 1");
        assert!((ions.m - self.mi).abs() < 1e-3, "ion mass mismatch");
        let vth_e = self.te().sqrt();
        let vth_i = (self.ti() / self.mi).sqrt();
        let (ude, udi) = self.drifts();
        // Sheet populations (drifting).
        load_profile(
            electrons,
            g,
            rng,
            ppc,
            Momentum {
                uth: [vth_e; 3],
                drift: [0.0, ude, 0.0],
            },
            self.n0,
            |_, _, z| self.sheet_density(z),
        );
        load_profile(
            ions,
            g,
            rng,
            ppc,
            Momentum {
                uth: [vth_i; 3],
                drift: [0.0, udi, 0.0],
            },
            self.n0,
            |_, _, z| self.sheet_density(z),
        );
        // Background (non-drifting) populations.
        if self.nb > 0.0 {
            let ppc_b = ((ppc as f32 * self.nb / self.n0).ceil() as usize).max(1);
            load_profile(
                electrons,
                g,
                rng,
                ppc_b,
                Momentum::thermal(vth_e),
                self.nb,
                |_, _, _| 1.0,
            );
            load_profile(
                ions,
                g,
                rng,
                ppc_b,
                Momentum::thermal(vth_i),
                self.nb,
                |_, _, _| 1.0,
            );
        }
    }

    /// Seed the GEM-style magnetic island perturbation
    /// `δψ = ψ0·cos(2πx/Lx)·cos(πz/Lz)` by adding the corresponding
    /// `δB = ẑ×∇ψ`-like fields (amplitude `psi0·B0`).
    pub fn perturb(&self, f: &mut FieldArray, g: &Grid, psi0: f32) {
        let (lx, _, lz) = g.extent();
        let kx = 2.0 * std::f32::consts::PI / lx;
        let kz = std::f32::consts::PI / lz;
        let amp = psi0 * self.b0;
        let (sx, sy, sz) = g.strides();
        for k in 0..sz {
            let zc = g.z0 + (k as f32 - 0.5) * g.dz;
            let zn = g.z0 + (k as f32 - 1.0) * g.dz;
            for j in 0..sy {
                for i in 0..sx {
                    let xc = g.x0 + (i as f32 - 0.5) * g.dx;
                    let xn = g.x0 + (i as f32 - 1.0) * g.dx;
                    let v = g.voxel(i, j, k);
                    // δBx = −ψ0 kz cos(kx·x) sin(kz·z); δBz = ψ0 kx sin·cos…
                    f.cbx[v] += -amp * kz * (kx * (xn - g.x0)).cos() * (kz * (zc - g.z0)).sin();
                    f.cbz[v] += amp * kx * (kx * (xc - g.x0)).sin() * (kz * (zn - g.z0)).cos();
                }
            }
        }
        sync_b(f, g, bcs_of(g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    fn sheet_grid() -> Grid {
        // Periodic in x/y; reflecting walls in z (far from the sheet).
        use crate::grid::ParticleBc;
        let mut g = Grid::new(
            (16, 2, 32),
            (0.5, 0.5, 0.5),
            Grid::courant_dt(1.0, (0.5, 0.5, 0.5), 0.9),
            [
                ParticleBc::Periodic,
                ParticleBc::Periodic,
                ParticleBc::Reflect,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
                ParticleBc::Reflect,
            ],
        );
        g.z0 = -8.0;
        g.rebuild_neighbors();
        g
    }

    #[test]
    fn pressure_balance_and_drifts() {
        let h = HarrisSheet::gem_like(0.5, 0.0);
        // n0(Te+Ti) = B0²/2.
        let lhs = h.n0 * (h.te() + h.ti());
        assert!((lhs - 0.125).abs() < 1e-6);
        let (ude, udi) = h.drifts();
        assert!(ude < 0.0 && udi > 0.0);
        // Current balance: n0·(q_i·udi + q_e·ude) = n0·(udi − ude) matches
        // Ampère: ∇×B at center = B0/L.
        let j_y = h.n0 * (udi - ude);
        assert!(
            (j_y - h.b0 / h.l).abs() < 1e-6,
            "J = {j_y}, want {}",
            h.b0 / h.l
        );
    }

    #[test]
    fn field_profile_reverses_across_sheet() {
        let g = sheet_grid();
        let h = HarrisSheet::gem_like(0.5, 0.0);
        let mut f = FieldArray::new(&g);
        h.init_field(&mut f, &g);
        let below = f.cbx[g.voxel(4, 1, 4)];
        let above = f.cbx[g.voxel(4, 1, 29)];
        assert!(
            below < -0.4 && above > 0.4,
            "no reversal: {below} vs {above}"
        );
        // Near-zero at the center.
        let mid = f.cbx[g.voxel(4, 1, 16)];
        assert!(mid.abs() < 0.2, "center field {mid}");
    }

    #[test]
    fn loaded_sheet_carries_the_right_current() {
        let g = sheet_grid();
        let h = HarrisSheet::gem_like(0.5, 0.0);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut i = Species::new("i", 1.0, 25.0);
        let mut rng = Rng::seeded(5);
        h.load(&mut e, &mut i, &g, &mut rng, 64);
        assert!(!e.is_empty() && !i.is_empty());
        // Total y-current = ∫ n0 sech²·(udi − ude) dV > 0 and matches the
        // analytic integral within sampling noise.
        let jy = |sp: &Species| -> f64 {
            sp.iter()
                .map(|p| (sp.q * p.w) as f64 * (p.uy as f64 / p.gamma() as f64))
                .sum()
        };
        let total = jy(&e) + jy(&i);
        let (ude, udi) = h.drifts();
        // ∫ sech²(z/L) dz = 2L over a wide box; area Lx·Ly.
        let (lx, ly, _) = g.extent();
        let want = (h.n0 * (udi - ude) * 2.0 * h.l * lx * ly) as f64;
        assert!(
            (total - want).abs() / want < 0.1,
            "J = {total}, want {want}"
        );
    }

    #[test]
    fn sheet_equilibrium_is_quasi_stable() {
        // Unperturbed Harris sheet: runs without blowing up and keeps the
        // field energy within a factor of ~2 over a short window (PIC
        // noise nibbles at it; an unstable setup would explode).
        let g = sheet_grid();
        let h = HarrisSheet::gem_like(0.3, 0.0);
        let mut sim = Simulation::new(g, 1);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut i = Species::new("i", 1.0, 25.0);
        let mut rng = Rng::seeded(6);
        h.load(&mut e, &mut i, &sim.grid, &mut rng, 16);
        sim.add_species(e);
        sim.add_species(i);
        h.init_field(&mut sim.fields, &sim.grid.clone());
        let b0 = sim.energies().field_b;
        for _ in 0..60 {
            sim.step();
        }
        let en = sim.energies();
        assert!(en.total().is_finite());
        assert!(
            en.field_b > 0.5 * b0 && en.field_b < 2.0 * b0,
            "field energy wandered: {b0} -> {}",
            en.field_b
        );
    }

    #[test]
    fn perturbation_adds_island_flux() {
        let g = sheet_grid();
        let h = HarrisSheet::gem_like(0.5, 0.0);
        let mut f = FieldArray::new(&g);
        h.init_field(&mut f, &g);
        let bz_before: f32 = f.cbz.iter().map(|v| v.abs()).sum();
        h.perturb(&mut f, &g, 0.1);
        let bz_after: f32 = f.cbz.iter().map(|v| v.abs()).sum();
        assert!(bz_before < 1e-6);
        assert!(bz_after > 0.01, "no perturbation applied");
    }
}
