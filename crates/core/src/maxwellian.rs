//! Particle loading: spatial profiles and (drifting) Maxwellian momenta.
//!
//! Loads fixed-weight macroparticles: the expected particle count per cell
//! is proportional to the local density, so weights stay uniform (VPIC's
//! convention, which keeps the push free of per-particle weight surprises
//! and makes trapping diagnostics unbiased).

use crate::grid::Grid;
use crate::particle::Particle;
use crate::rng::Rng;
use crate::species::Species;

/// Thermal spread and drift for a loader, in normalized momentum `p/(mc)`.
///
/// For a non-relativistic temperature `T`, `uth = sqrt(kT/(m c²))`.
#[derive(Clone, Copy, Debug)]
pub struct Momentum {
    /// Per-axis thermal momentum spread.
    pub uth: [f32; 3],
    /// Drift momentum added to every particle.
    pub drift: [f32; 3],
}

impl Momentum {
    /// Isotropic thermal spread, no drift.
    pub fn thermal(uth: f32) -> Self {
        Momentum {
            uth: [uth; 3],
            drift: [0.0; 3],
        }
    }

    /// Isotropic thermal spread with an x-drift.
    pub fn drifting_x(uth: f32, ud: f32) -> Self {
        Momentum {
            uth: [uth; 3],
            drift: [ud, 0.0, 0.0],
        }
    }
}

/// Load a uniform density `n0` with `ppc` macroparticles per cell.
/// Every macroparticle gets weight `n0·dV/ppc`.
pub fn load_uniform(sp: &mut Species, g: &Grid, rng: &mut Rng, n0: f32, ppc: usize, mom: Momentum) {
    load_profile(sp, g, rng, ppc, mom, n0, |_, _, _| 1.0);
}

/// Load macroparticles with density `n_ref·profile(x,y,z)` (profile in
/// `[0,1]`), using `ppc` particles per cell where `profile = 1`. Weights
/// are uniform (`n_ref·dV/ppc`); cell counts follow the profile with
/// stochastic rounding so the expected charge matches exactly.
pub fn load_profile(
    sp: &mut Species,
    g: &Grid,
    rng: &mut Rng,
    ppc: usize,
    mom: Momentum,
    n_ref: f32,
    profile: impl Fn(f32, f32, f32) -> f32,
) {
    assert!(ppc > 0);
    let w = n_ref * g.dv() / ppc as f32;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                // Profile sampled at the cell center.
                let xc = g.particle_x(i, 0.0);
                let yc = g.particle_y(j, 0.0);
                let zc = g.particle_z(k, 0.0);
                let p = profile(xc, yc, zc).clamp(0.0, 1.0);
                let expect = ppc as f64 * p as f64;
                let mut count = expect.floor() as usize;
                if rng.uniform() < expect - count as f64 {
                    count += 1;
                }
                let v = g.voxel(i, j, k) as u32;
                for _ in 0..count {
                    sp.push(Particle {
                        dx: rng.uniform_in(-1.0, 1.0) as f32,
                        dy: rng.uniform_in(-1.0, 1.0) as f32,
                        dz: rng.uniform_in(-1.0, 1.0) as f32,
                        i: v,
                        ux: mom.drift[0] + mom.uth[0] * rng.normal() as f32,
                        uy: mom.drift[1] + mom.uth[1] * rng.normal() as f32,
                        uz: mom.drift[2] + mom.uth[2] * rng.normal() as f32,
                        w,
                    });
                }
            }
        }
    }
}

/// Load two counter-streaming beams along x (the classic two-stream
/// instability setup): each beam has density `n0/2`, drift `±ud` and
/// thermal spread `uth`.
pub fn load_two_stream(
    sp: &mut Species,
    g: &Grid,
    rng: &mut Rng,
    n0: f32,
    ppc: usize,
    ud: f32,
    uth: f32,
) {
    assert!(ppc.is_multiple_of(2), "two-stream loader wants an even ppc");
    load_uniform(sp, g, rng, 0.5 * n0, ppc / 2, Momentum::drifting_x(uth, ud));
    load_uniform(
        sp,
        g,
        rng,
        0.5 * n0,
        ppc / 2,
        Momentum::drifting_x(uth, -ud),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_counts_and_weight() {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(1);
        load_uniform(&mut sp, &g, &mut rng, 1.0, 32, Momentum::thermal(0.05));
        assert_eq!(sp.len(), 64 * 32);
        // Total physical particles = n0 · V.
        let v_tot = 64.0 * 0.125;
        assert!((sp.total_weight() - v_tot).abs() / v_tot < 1e-6);
        // All offsets in range, all voxels live.
        for p in sp.iter() {
            assert!(p.dx.abs() <= 1.0 && p.dy.abs() <= 1.0 && p.dz.abs() <= 1.0);
            assert!(g.is_live(p.i as usize));
        }
    }

    #[test]
    fn thermal_spread_matches_request() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(2);
        let uth = 0.1f64;
        load_uniform(
            &mut sp,
            &g,
            &mut rng,
            1.0,
            500,
            Momentum::thermal(uth as f32),
        );
        let n = sp.len() as f64;
        let var: f64 = sp.iter().map(|p| (p.ux as f64).powi(2)).sum::<f64>() / n;
        assert!(
            (var.sqrt() - uth).abs() / uth < 0.02,
            "std = {}",
            var.sqrt()
        );
        let mean: f64 = sp.iter().map(|p| p.uy as f64).sum::<f64>() / n;
        assert!(mean.abs() < 0.01 * uth.max(0.01));
    }

    #[test]
    fn profile_load_follows_density() {
        let g = Grid::periodic((10, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(3);
        // Step profile: zero in the left half, one in the right half.
        load_profile(
            &mut sp,
            &g,
            &mut rng,
            100,
            Momentum::thermal(0.0),
            1.0,
            |x, _, _| {
                if x > 5.0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let left = sp
            .iter()
            .filter(|p| {
                let (i, _, _) = g.voxel_coords(p.i as usize);
                i <= 5
            })
            .count();
        assert_eq!(left, 0);
        let right = sp.len();
        // 5·2·2 = 20 cells at full density → 2000 expected.
        assert!((right as f64 - 2000.0).abs() < 200.0, "right = {right}");
    }

    #[test]
    fn two_stream_has_zero_net_drift() {
        let g = Grid::periodic((8, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(4);
        load_two_stream(&mut sp, &g, &mut rng, 1.0, 64, 0.2, 0.01);
        assert_eq!(sp.len(), 8 * 2 * 2 * 64);
        let v = sp.mean_velocity();
        assert!(v[0].abs() < 0.01, "net drift {v:?}");
        // Bimodal: essentially no particle near ux = 0.
        let near_zero = sp.iter().filter(|p| p.ux.abs() < 0.05).count() as f64 / sp.len() as f64;
        assert!(near_zero < 0.01);
    }
}
