//! Conversions between the code's normalized units (`c = ε0 = mₑ = e = 1`,
//! time in `1/ωpe`) and laboratory units — so LPI setups can be specified
//! the way the paper does ("a 351 nm laser at 10¹⁵ W/cm² in a 0.1 n_cr,
//! 2.6 keV hohlraum plasma") and results can be quoted back in
//! experimentally meaningful numbers.

/// Physical constants (SI).
pub mod consts {
    /// Speed of light (m/s).
    pub const C: f64 = 2.997_924_58e8;
    /// Electron mass (kg).
    pub const M_E: f64 = 9.109_383_7e-31;
    /// Elementary charge (C).
    pub const Q_E: f64 = 1.602_176_63e-19;
    /// Vacuum permittivity (F/m).
    pub const EPS_0: f64 = 8.854_187_81e-12;
    /// Electron-volt (J).
    pub const EV: f64 = 1.602_176_63e-19;
}

/// A laboratory reference frame: everything derives from the laser
/// wavelength and the plasma density relative to critical.
#[derive(Clone, Copy, Debug)]
pub struct LabFrame {
    /// Laser vacuum wavelength (m).
    pub lambda0: f64,
    /// Plasma density over critical.
    pub n_over_ncr: f64,
}

impl LabFrame {
    /// NIF-like frame: 351 nm (3ω) light.
    pub fn nif(n_over_ncr: f64) -> Self {
        LabFrame {
            lambda0: 351e-9,
            n_over_ncr,
        }
    }

    /// Laser angular frequency ω0 (rad/s).
    pub fn omega0(&self) -> f64 {
        2.0 * std::f64::consts::PI * consts::C / self.lambda0
    }

    /// Critical density n_cr (m⁻³): `ε0 mₑ ω0²/e²`.
    pub fn n_critical(&self) -> f64 {
        consts::EPS_0 * consts::M_E * self.omega0().powi(2) / consts::Q_E.powi(2)
    }

    /// Electron density (m⁻³).
    pub fn n_e(&self) -> f64 {
        self.n_over_ncr * self.n_critical()
    }

    /// Plasma frequency ωpe (rad/s) — the code's unit of inverse time.
    pub fn omega_pe(&self) -> f64 {
        (self.n_e() * consts::Q_E.powi(2) / (consts::EPS_0 * consts::M_E)).sqrt()
    }

    /// The code's unit of length, the skin depth `c/ωpe` (m).
    pub fn skin_depth(&self) -> f64 {
        consts::C / self.omega_pe()
    }

    /// The code's unit of time `1/ωpe` (s).
    pub fn time_unit(&self) -> f64 {
        1.0 / self.omega_pe()
    }

    /// Convert a temperature in eV into the code's thermal velocity
    /// `vth/c = √(kT/mₑc²)` (non-relativistic thermal momentum spread).
    pub fn vth_of_ev(&self, t_ev: f64) -> f64 {
        (t_ev * consts::EV / (consts::M_E * consts::C * consts::C)).sqrt()
    }

    /// Inverse of [`LabFrame::vth_of_ev`].
    pub fn ev_of_vth(&self, vth: f64) -> f64 {
        vth * vth * consts::M_E * consts::C * consts::C / consts::EV
    }

    /// Laser intensity (W/cm²) for a given `a0`:
    /// `I·λ²[µm] = 1.37e18 · a0²` (linear polarization).
    pub fn intensity_of_a0(&self, a0: f64) -> f64 {
        let lambda_um = self.lambda0 * 1e6;
        1.37e18 * a0 * a0 / (lambda_um * lambda_um)
    }

    /// `a0` of a laser intensity (W/cm²).
    pub fn a0_of_intensity(&self, i_wcm2: f64) -> f64 {
        let lambda_um = self.lambda0 * 1e6;
        (i_wcm2 * lambda_um * lambda_um / 1.37e18).sqrt()
    }

    /// Convert a length in code units (`c/ωpe`) to microns.
    pub fn microns_of(&self, code_length: f64) -> f64 {
        code_length * self.skin_depth() * 1e6
    }

    /// Convert a duration in code units (`1/ωpe`) to picoseconds.
    pub fn ps_of(&self, code_time: f64) -> f64 {
        code_time * self.time_unit() * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nif_critical_density() {
        // n_cr(351 nm) ≈ 9.05e27 m⁻³ (9.05e21 cm⁻³) — a standard number.
        let f = LabFrame::nif(0.1);
        let ncr_cm3 = f.n_critical() * 1e-6;
        assert!(
            (ncr_cm3 - 9.05e21).abs() / 9.05e21 < 0.01,
            "n_cr = {ncr_cm3:.3e} cm^-3"
        );
    }

    #[test]
    fn omega0_over_omega_pe_matches_density() {
        let f = LabFrame::nif(0.1);
        let ratio = f.omega0() / f.omega_pe();
        // ω0/ωpe = 1/√(n/ncr) = √10.
        assert!((ratio - 10f64.sqrt()).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn temperature_roundtrip() {
        let f = LabFrame::nif(0.1);
        // 2.6 keV hohlraum electrons → vth/c ≈ 0.0713.
        let vth = f.vth_of_ev(2600.0);
        assert!((vth - 0.0713).abs() < 0.001, "vth = {vth}");
        assert!((f.ev_of_vth(vth) - 2600.0).abs() < 1.0);
    }

    #[test]
    fn intensity_roundtrip_and_scale() {
        let f = LabFrame::nif(0.1);
        // a0 = 0.03 at 351 nm → ~1e16 W/cm².
        let i = f.intensity_of_a0(0.03);
        assert!((1e15..2e16).contains(&i), "I = {i:.3e}");
        assert!((f.a0_of_intensity(i) - 0.03).abs() < 1e-12);
        // Quadratic in a0.
        assert!((f.intensity_of_a0(0.06) / i - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lengths_and_times_are_lpi_scale() {
        let f = LabFrame::nif(0.1);
        // Skin depth at 0.1 n_cr of 351 nm light: c/ωpe = λ0·√(n_cr/n)/(2π).
        let want_um = 0.351 * 10f64.sqrt() / (2.0 * std::f64::consts::PI);
        assert!((f.microns_of(1.0) - want_um).abs() / want_um < 1e-9);
        // A 1000/ωpe run is sub-picosecond at these densities.
        let ps = f.ps_of(1000.0);
        assert!((0.05..5.0).contains(&ps), "t = {ps} ps");
    }
}
