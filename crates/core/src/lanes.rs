//! Vendored lane-math: fixed-width `[f32; 8]` / `[f64; 8]` wrappers whose
//! operators are element-wise loops LLVM reliably turns into packed
//! instructions — no nightly `std::simd`, no intrinsics, consistent with
//! the offline `shims/` approach.
//!
//! The wrappers exist to express the AoSoA push (`aosoa::advance_full_block`)
//! as straight-line lane arithmetic while keeping the bitwise-determinism
//! contract with the scalar oracle (`push::push_one`):
//!
//! * every operator is element-wise — lane `l` of the result depends only on
//!   lane `l` of the operands, with the exact IEEE-754 operation the scalar
//!   code performs (no reassociation, no horizontal ops);
//! * [`F32x8::mul_add`] is deliberately **unfused** (`a*b + c` as two
//!   rounded operations). The scalar oracle never emits an FMA — rustc does
//!   not contract float expressions — so a fused variant would change bits;
//! * `sqrt`/`div` lower to `vsqrtps`/`vdivps`-class instructions, which are
//!   correctly rounded per IEEE-754 and therefore bit-identical to their
//!   scalar forms;
//! * comparisons return a [`Mask8`]; NaN compares false on every ordered
//!   predicate, exactly like the scalar `<=`, so NaN lanes fall off the
//!   branchless common path into the scalar spill-out just as the scalar
//!   kernel's `if` would.

/// Lanes per AoSoA block (the Cell SPE was 4-wide; 8 suits AVX hosts).
pub const LANES: usize = 8;

/// Eight-lane boolean mask (result of lane comparisons).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Mask8(pub [bool; LANES]);

impl Mask8 {
    /// True mask.
    #[inline(always)]
    pub fn splat(v: bool) -> Self {
        Mask8([v; LANES])
    }

    /// Value of lane `l`.
    #[inline(always)]
    pub fn test(self, l: usize) -> bool {
        self.0[l]
    }

    /// True when every lane is set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// True when any lane is set.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }
}

impl std::ops::BitAnd for Mask8 {
    type Output = Mask8;
    #[inline(always)]
    fn bitand(self, rhs: Mask8) -> Mask8 {
        Mask8(std::array::from_fn(|l| self.0[l] & rhs.0[l]))
    }
}

impl std::ops::BitOr for Mask8 {
    type Output = Mask8;
    #[inline(always)]
    fn bitor(self, rhs: Mask8) -> Mask8 {
        Mask8(std::array::from_fn(|l| self.0[l] | rhs.0[l]))
    }
}

impl std::ops::Not for Mask8 {
    type Output = Mask8;
    #[inline(always)]
    fn not(self) -> Mask8 {
        Mask8(std::array::from_fn(|l| !self.0[l]))
    }
}

macro_rules! lane_vector {
    ($name:ident, $elem:ty) => {
        #[doc = concat!("Eight lanes of `", stringify!($elem), "`; element-wise ops, no fusion.")]
        #[derive(Clone, Copy, Debug, Default, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$elem; LANES]);

        impl $name {
            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                $name([v; LANES])
            }

            /// Lane-wise IEEE square root (correctly rounded, so identical
            /// bits to the scalar `sqrt` of each lane).
            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l].sqrt();
                }
                $name(out)
            }

            /// Lane-wise absolute value (sign-bit clear; NaN payload kept).
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l].abs();
                }
                $name(out)
            }

            /// **Unfused** multiply-add: `self*b + c` as two rounded IEEE
            /// operations per lane. The scalar push never emits an FMA
            /// (rustc does not contract float math), so the lane kernel
            /// must not either — a fused product would change bits.
            #[inline(always)]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] * b.0[l] + c.0[l];
                }
                $name(out)
            }

            /// Lane-wise `self <= rhs` (false on NaN, like scalar `<=`).
            #[inline(always)]
            pub fn le(self, rhs: Self) -> Mask8 {
                let mut out = [false; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] <= rhs.0[l];
                }
                Mask8(out)
            }

            /// Lane-wise `self < rhs` (false on NaN).
            #[inline(always)]
            pub fn lt(self, rhs: Self) -> Mask8 {
                let mut out = [false; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] < rhs.0[l];
                }
                Mask8(out)
            }

            /// Per-lane blend: lane `l` of the result is `t` where the mask
            /// is set, else `f`. Bits pass through untouched (NaNs and
            /// signed zeros survive), so select-based write-back is exact.
            #[inline(always)]
            pub fn select(m: Mask8, t: Self, f: Self) -> Self {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = if m.0[l] { t.0[l] } else { f.0[l] };
                }
                $name(out)
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            #[inline(always)]
            fn add(self, rhs: $name) -> $name {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] + rhs.0[l];
                }
                $name(out)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline(always)]
            fn sub(self, rhs: $name) -> $name {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] - rhs.0[l];
                }
                $name(out)
            }
        }

        impl std::ops::Mul for $name {
            type Output = $name;
            #[inline(always)]
            fn mul(self, rhs: $name) -> $name {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] * rhs.0[l];
                }
                $name(out)
            }
        }

        impl std::ops::Div for $name {
            type Output = $name;
            #[inline(always)]
            fn div(self, rhs: $name) -> $name {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = self.0[l] / rhs.0[l];
                }
                $name(out)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            #[inline(always)]
            fn neg(self) -> $name {
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = -self.0[l];
                }
                $name(out)
            }
        }
    };
}

lane_vector!(F32x8, f32);
lane_vector!(F64x8, f64);

impl F32x8 {
    /// Interleave the low halves of two vectors:
    /// `[a0 b0 a1 b1 a2 b2 a3 b3]`. Pure data movement (bits pass
    /// through), written as a fixed-index rebuild so LLVM lowers it to a
    /// single shuffle.
    #[inline(always)]
    pub fn zip_lo(self, rhs: Self) -> Self {
        let (a, b) = (self.0, rhs.0);
        F32x8([a[0], b[0], a[1], b[1], a[2], b[2], a[3], b[3]])
    }

    /// Interleave the high halves: `[a4 b4 a5 b5 a6 b6 a7 b7]`.
    #[inline(always)]
    pub fn zip_hi(self, rhs: Self) -> Self {
        let (a, b) = (self.0, rhs.0);
        F32x8([a[4], b[4], a[5], b[5], a[6], b[6], a[7], b[7]])
    }
}

/// 8×8 transpose via three rounds of the perfect shuffle:
/// `s[2i] = zip_lo(r[i], r[i+4])`, `s[2i+1] = zip_hi(r[i], r[i+4])`.
/// One round maps flat element `p = 8·row + lane` to `2p mod 63`, a
/// left-rotate of the 6-bit index; three rotates swap the row/lane bit
/// triples, which is exactly the transpose. Pure data movement — no
/// arithmetic, every bit passes through — so gather/scatter paths built
/// on it cannot perturb the kernel's bitwise-determinism contract. LLVM
/// turns each zip into one `vunpck`/`vperm` class shuffle, replacing the
/// 64-element scalar transpose the structure-of-lanes conversion would
/// otherwise need.
#[inline(always)]
pub fn transpose8(m: [F32x8; 8]) -> [F32x8; 8] {
    let mut t = m;
    for _ in 0..3 {
        t = [
            t[0].zip_lo(t[4]),
            t[0].zip_hi(t[4]),
            t[1].zip_lo(t[5]),
            t[1].zip_hi(t[5]),
            t[2].zip_lo(t[6]),
            t[2].zip_hi(t[6]),
            t[3].zip_lo(t[7]),
            t[3].zip_hi(t[7]),
        ];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> F32x8 {
        F32x8([-3.5, -1.0, -0.0, 0.0, 0.25, 1.0, 2.5, 8.0])
    }

    #[test]
    fn operators_match_scalar_bitwise() {
        let a = ramp();
        let b = F32x8([1.5, -2.0, 4.0, -0.5, 3.0, 7.0, -1.25, 0.125]);
        let sum = a + b;
        let dif = a - b;
        let prd = a * b;
        let quo = a / b;
        for l in 0..LANES {
            assert_eq!(sum.0[l].to_bits(), (a.0[l] + b.0[l]).to_bits());
            assert_eq!(dif.0[l].to_bits(), (a.0[l] - b.0[l]).to_bits());
            assert_eq!(prd.0[l].to_bits(), (a.0[l] * b.0[l]).to_bits());
            assert_eq!(quo.0[l].to_bits(), (a.0[l] / b.0[l]).to_bits());
            assert_eq!((-a).0[l].to_bits(), (-a.0[l]).to_bits());
        }
    }

    #[test]
    fn transpose8_moves_every_bit_in_place() {
        // Distinct bit patterns in every slot, including a NaN payload, a
        // signed zero and a denormal — the transpose must move bits, not
        // values.
        let mut m = [F32x8::splat(0.0); LANES];
        for (r, row) in m.iter_mut().enumerate() {
            for l in 0..LANES {
                row.0[l] = f32::from_bits(0x7f80_0001 + (r * LANES + l) as u32);
            }
        }
        m[0].0[0] = f32::from_bits(0x8000_0000); // -0.0
        m[3].0[5] = f32::from_bits(0x0000_0001); // denormal
        m[7].0[2] = f32::from_bits(0x7fc0_dead); // NaN payload
        let t = transpose8(m);
        for (r, row) in m.iter().enumerate() {
            for (l, col) in t.iter().enumerate() {
                assert_eq!(col.0[r].to_bits(), row.0[l].to_bits());
            }
        }
    }

    #[test]
    fn mul_add_is_unfused() {
        // Pick operands where fused and unfused results differ: with an
        // FMA, a*b + c keeps the full product 1 + 2^-50 before the add;
        // unfused, a*b rounds back to 1.0f32 and the sum is exactly 0.
        let a = F32x8::splat(1.0 + f32::EPSILON);
        let b = F32x8::splat(1.0 - f32::EPSILON);
        let c = F32x8::splat(-1.0);
        let unfused = (1.0f32 + f32::EPSILON) * (1.0 - f32::EPSILON) - 1.0;
        let got = a.mul_add(b, c);
        for l in 0..LANES {
            assert_eq!(got.0[l].to_bits(), unfused.to_bits());
            let fused = (1.0f32 + f32::EPSILON).mul_add(1.0 - f32::EPSILON, -1.0);
            assert_ne!(
                got.0[l].to_bits(),
                fused.to_bits(),
                "test operands fail to distinguish fused from unfused"
            );
        }
    }

    #[test]
    fn sqrt_abs_match_scalar_bitwise() {
        let a = F32x8([0.0, 1.0, 2.0, 0.5, 1e-38, 3.4e38, 9.0, 0.1]);
        let s = a.sqrt();
        for l in 0..LANES {
            assert_eq!(s.0[l].to_bits(), a.0[l].sqrt().to_bits());
        }
        let n = ramp().abs();
        for l in 0..LANES {
            assert_eq!(n.0[l].to_bits(), ramp().0[l].abs().to_bits());
        }
    }

    #[test]
    fn nan_compares_false_and_select_passes_bits() {
        let nan = F32x8::splat(f32::NAN);
        let one = F32x8::splat(1.0);
        assert!(!nan.abs().le(one).any(), "NaN must fail <=");
        assert!(!nan.lt(one).any(), "NaN must fail <");
        let m = Mask8([true, false, true, false, true, false, true, false]);
        let picked = F32x8::select(m, nan, one);
        for l in 0..LANES {
            if m.test(l) {
                assert!(picked.0[l].is_nan());
            } else {
                assert_eq!(picked.0[l].to_bits(), 1.0f32.to_bits());
            }
        }
        // Signed zero survives a blend.
        let z = F32x8::select(m, F32x8::splat(-0.0), F32x8::splat(0.0));
        for l in 0..LANES {
            assert_eq!(
                z.0[l].to_bits(),
                if m.test(l) { (-0.0f32).to_bits() } else { 0 }
            );
        }
    }

    #[test]
    fn mask_logic() {
        let a = Mask8([true, true, false, false, true, false, true, false]);
        let b = Mask8([true, false, true, false, true, true, false, false]);
        assert_eq!(
            (a & b).0,
            [true, false, false, false, true, false, false, false]
        );
        assert_eq!(
            (a | b).0,
            [true, true, true, false, true, true, true, false]
        );
        assert_eq!((!a).0, [false, false, true, true, false, true, false, true]);
        assert!(Mask8::splat(true).all());
        assert!(!Mask8::splat(false).any());
    }

    #[test]
    fn f64_lanes_match_scalar_bitwise() {
        let a = F64x8([-2.0, 0.5, 3.25, 1e-300, 7.0, -0.0, 1.0, 1e300]);
        let b = F64x8::splat(3.0);
        let p = a * b + a;
        for l in 0..LANES {
            assert_eq!(p.0[l].to_bits(), (a.0[l] * 3.0 + a.0[l]).to_bits());
        }
        let s = a.abs().sqrt();
        for l in 0..LANES {
            assert_eq!(s.0[l].to_bits(), a.0[l].abs().sqrt().to_bits());
        }
    }
}
