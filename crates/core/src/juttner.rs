//! Relativistic thermal loading: the Maxwell–Jüttner distribution
//! `f(u) ∝ u² exp(−γ/θ)` with `θ = kT/(mc²)`, sampled by the
//! Sobol/Canfield et al. method (exact, rejection-based), plus a flat
//! boost for drifting relativistic plasmas. VPIC loads relativistic
//! species this way for astrophysical and high-intensity runs; the
//! non-relativistic loader in [`crate::maxwellian`] is its `θ ≪ 1` limit.

use crate::grid::Grid;
use crate::particle::Particle;
use crate::rng::Rng;
use crate::species::Species;

/// Sample one normalized momentum magnitude `u = γβ` from Maxwell–Jüttner
/// at temperature `theta = kT/(mc²)`.
///
/// Uses Sobol's rejection method for relativistic temperatures; its
/// acceptance probability collapses as `θ → 0` (Zenitani 2015), so cold
/// plasmas fall back to the Maxwellian limit `u ≈ √θ·|N(0,1)³|`, which is
/// what Maxwell–Jüttner converges to there.
pub fn sample_juttner_u(theta: f64, rng: &mut Rng) -> f64 {
    if theta < 0.05 {
        // Non-relativistic limit: three Gaussian components.
        let (a, b, c) = (rng.normal(), rng.normal(), rng.normal());
        return theta.sqrt() * (a * a + b * b + c * c).sqrt();
    }
    loop {
        // Envelope: u = −θ·ln(X1·X2·X3) samples u² e^{−u/θ} exactly.
        let x1 = rng.uniform().max(f64::MIN_POSITIVE);
        let x2 = rng.uniform().max(f64::MIN_POSITIVE);
        let x3 = rng.uniform().max(f64::MIN_POSITIVE);
        let u = -theta * (x1 * x2 * x3).ln();
        // Correction e^{(u−γ)/θ} via Sobol's trick (Zenitani 2015, eq. 5):
        // draw η = −θ·ln(X1·X2·X3·X4) ≥ u and accept iff η² − u² > 1,
        // i.e. η exceeds γ = √(1+u²).
        let x4 = rng.uniform().max(f64::MIN_POSITIVE);
        let eta = u - theta * x4.ln();
        if eta * eta - u * u > 1.0 {
            return u;
        }
    }
}

/// Sample an isotropic Maxwell–Jüttner momentum vector.
pub fn sample_juttner(theta: f64, rng: &mut Rng) -> (f64, f64, f64) {
    let u = sample_juttner_u(theta, rng);
    // Isotropic direction.
    let cos_t = rng.uniform_in(-1.0, 1.0);
    let sin_t = (1.0 - cos_t * cos_t).sqrt();
    let phi = 2.0 * std::f64::consts::PI * rng.uniform();
    (u * sin_t * phi.cos(), u * sin_t * phi.sin(), u * cos_t)
}

/// Load a uniform relativistic thermal plasma: density `n0`, `ppc`
/// macroparticles per cell, temperature `theta = kT/(mc²)`, optionally
/// boosted along x with drift Lorentz factor `gamma_drift`
/// (`1.0` = no drift). The boost is applied per particle:
/// `u_x' = γ_d(u_x + β_d·γ)`.
pub fn load_juttner(
    sp: &mut Species,
    g: &Grid,
    rng: &mut Rng,
    n0: f32,
    ppc: usize,
    theta: f64,
    gamma_drift: f64,
) {
    assert!(ppc > 0 && theta > 0.0 && gamma_drift >= 1.0);
    let w = n0 * g.dv() / ppc as f32;
    let beta_d = (1.0 - 1.0 / (gamma_drift * gamma_drift)).sqrt();
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k) as u32;
                for _ in 0..ppc {
                    let (mut ux, uy, uz) = sample_juttner(theta, rng);
                    if gamma_drift > 1.0 {
                        let gamma = (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
                        ux = gamma_drift * (ux + beta_d * gamma);
                    }
                    sp.push(Particle {
                        dx: rng.uniform_in(-1.0, 1.0) as f32,
                        dy: rng.uniform_in(-1.0, 1.0) as f32,
                        dz: rng.uniform_in(-1.0, 1.0) as f32,
                        i: v,
                        ux: ux as f32,
                        uy: uy as f32,
                        uz: uz as f32,
                        w,
                    });
                }
            }
        }
    }
}

/// Rough mean of `γ` for a Maxwell–Jüttner distribution (the exact value
/// is `⟨γ⟩ = 3θ + K₁(1/θ)/K₂(1/θ)`): asymptotics `1 + 3θ/2` for `θ ≪ 1`
/// and `3θ` for `θ ≫ 1`, bridged crudely in between. For diagnostics only;
/// the sampler itself is exact.
pub fn mean_gamma_estimate(theta: f64) -> f64 {
    if theta < 0.05 {
        1.0 + 1.5 * theta
    } else if theta > 5.0 {
        3.0 * theta
    } else {
        // Crude bridge; fine for diagnostics.
        (1.0 + 1.5 * theta).max(3.0 * theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};

    #[test]
    fn cold_limit_matches_maxwellian_spread() {
        // θ = vth² for small θ; compare u_x variances of the two loaders.
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let theta = 0.0025; // vth = 0.05
        let mut jut = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(1);
        load_juttner(&mut jut, &g, &mut rng, 1.0, 200, theta, 1.0);
        let mut max = Species::new("e", -1.0, 1.0);
        load_uniform(&mut max, &g, &mut rng, 1.0, 200, Momentum::thermal(0.05));
        let var =
            |sp: &Species| sp.iter().map(|p| (p.ux as f64).powi(2)).sum::<f64>() / sp.len() as f64;
        let (vj, vm) = (var(&jut), var(&max));
        assert!((vj - vm).abs() / vm < 0.05, "juttner {vj} vs maxwell {vm}");
    }

    #[test]
    fn relativistic_mean_gamma() {
        // θ = 1: strongly relativistic; ⟨γ⟩ = 3θ + K₁(1/θ)/K₂(1/θ)
        // = 3 + 0.6019/1.6248 ≈ 3.3704.
        let mut rng = Rng::seeded(2);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let (ux, uy, uz) = sample_juttner(1.0, &mut rng);
                (1.0 + ux * ux + uy * uy + uz * uz).sqrt()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.3704).abs() < 0.03, "⟨γ⟩ = {mean}");
    }

    #[test]
    fn isotropy_of_sampling() {
        let mut rng = Rng::seeded(3);
        let n = 50_000;
        let mut sums = [0.0f64; 3];
        let mut sq = [0.0f64; 3];
        for _ in 0..n {
            let (ux, uy, uz) = sample_juttner(0.3, &mut rng);
            for (i, u) in [ux, uy, uz].iter().enumerate() {
                sums[i] += u;
                sq[i] += u * u;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            assert!(s.abs() / (n as f64) < 0.01, "mean bias axis {i}");
        }
        // Equal variances across axes within a few percent.
        let v0 = sq[0] / n as f64;
        for &sqi in sq.iter().skip(1) {
            assert!(
                (sqi / n as f64 - v0).abs() / v0 < 0.05,
                "anisotropic sampling"
            );
        }
    }

    #[test]
    fn drift_boost_shifts_mean() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(4);
        let gamma_d = 3.0f64;
        load_juttner(&mut sp, &g, &mut rng, 1.0, 2000, 0.01, gamma_d);
        let mean_ux: f64 = sp.iter().map(|p| p.ux as f64).sum::<f64>() / sp.len() as f64;
        // Cold limit: ⟨u_x⟩ ≈ γ_d·β_d·⟨γ⟩ ≈ γ_d·β_d.
        let want = gamma_d * (1.0 - 1.0 / (gamma_d * gamma_d)).sqrt();
        assert!(
            (mean_ux - want).abs() / want < 0.05,
            "⟨ux⟩ = {mean_ux}, want {want}"
        );
    }
}
