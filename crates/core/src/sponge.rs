//! Graded damping layers ("sponges") along x used to emulate open
//! boundaries: outgoing waves entering the layer are attenuated a little
//! each step, so almost nothing returns from the PEC wall behind it.

use crate::field::FieldArray;
use crate::grid::Grid;

/// Damping layers at the low/high x ends of the domain.
#[derive(Clone, Copy, Debug)]
pub struct Sponge {
    /// Layer width in cells at the low-x end (0 disables).
    pub lo_cells: usize,
    /// Layer width in cells at the high-x end (0 disables).
    pub hi_cells: usize,
    /// Peak per-step damping rate at the wall (≈0.05–0.3 works well; the
    /// profile is cubic so the layer entry is gentle and reflections off
    /// the sponge itself stay small).
    pub strength: f32,
}

impl Sponge {
    /// Symmetric sponge.
    pub fn symmetric(cells: usize, strength: f32) -> Self {
        Sponge {
            lo_cells: cells,
            hi_cells: cells,
            strength,
        }
    }

    /// Per-step multiplier for x-plane `i` (1-based live index), or 1.0
    /// outside the layers.
    pub fn factor(&self, i: usize, nx: usize) -> f32 {
        let depth = if self.lo_cells > 0 && i <= self.lo_cells {
            (self.lo_cells - i + 1) as f32 / self.lo_cells as f32
        } else if self.hi_cells > 0 && i + self.hi_cells > nx {
            (i + self.hi_cells - nx) as f32 / self.hi_cells as f32
        } else {
            return 1.0;
        };
        let d = depth.min(1.0);
        1.0 - self.strength * d * d * d
    }

    /// Damp all field components in the layers (called once per step,
    /// after the field advance).
    pub fn apply(&self, f: &mut FieldArray, g: &Grid) {
        let (sx, sy, sz) = g.strides();
        for i in 1..sx {
            let fac = self.factor(i, g.nx);
            if fac == 1.0 {
                continue;
            }
            for k in 0..sz {
                for j in 0..sy {
                    let v = g.voxel(i, j, k);
                    f.ex[v] *= fac;
                    f.ey[v] *= fac;
                    f.ez[v] *= fac;
                    f.cbx[v] *= fac;
                    f.cby[v] *= fac;
                    f.cbz[v] *= fac;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_profile_shape() {
        let s = Sponge::symmetric(10, 0.2);
        let nx = 100;
        // Deepest at the walls.
        assert!((s.factor(1, nx) - 0.8).abs() < 1e-6);
        assert!((s.factor(100, nx) - 0.8).abs() < 1e-6);
        // Gentle at the layer entry.
        assert!(s.factor(10, nx) > 0.999);
        assert!(s.factor(91, nx) > 0.999);
        // Identity in the interior.
        assert_eq!(s.factor(50, nx), 1.0);
        // Monotone within the layer.
        for i in 1..10 {
            assert!(s.factor(i, nx) <= s.factor(i + 1, nx));
        }
    }

    #[test]
    fn apply_damps_only_layer_fields() {
        let g = Grid::periodic((20, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        for v in f.ey.iter_mut() {
            *v = 1.0;
        }
        let s = Sponge {
            lo_cells: 5,
            hi_cells: 0,
            strength: 0.5,
        };
        s.apply(&mut f, &g);
        assert!(f.ey[g.voxel(1, 1, 1)] < 0.6);
        assert_eq!(f.ey[g.voxel(10, 1, 1)], 1.0);
        assert_eq!(f.ey[g.voxel(20, 1, 1)], 1.0);
    }

    #[test]
    fn one_sided_sponge() {
        let s = Sponge {
            lo_cells: 0,
            hi_cells: 4,
            strength: 0.1,
        };
        assert_eq!(s.factor(1, 16), 1.0);
        assert!(s.factor(16, 16) < 1.0);
    }
}
