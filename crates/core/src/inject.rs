//! Open-boundary particle injection: a thermal bath behind an absorbing
//! wall. Absorbing faces drain plasma; re-injecting the half-Maxwellian
//! flux keeps the boundary plasma in equilibrium — VPIC's emitter
//! boundaries, reduced to the thermal-bath case LPI runs need so long
//! simulations don't slowly evacuate near the walls.
//!
//! The one-sided kinetic flux of a Maxwellian of density `n` and thermal
//! velocity `vth` is `Γ = n·vth/√(2π)` per unit area; each step we inject
//! `Γ·A·dt` macroparticles (Poisson-rounded) through the face with inward
//! velocities drawn from the flux-weighted half-Maxwellian
//! (`v ∝ v·exp(−v²/2vth²)`, i.e. Rayleigh-distributed normal component).

use crate::grid::{Grid, ParticleBc, FACE_HIGH_X, FACE_LOW_X};
use crate::particle::Particle;
use crate::rng::Rng;
use crate::species::Species;

/// Thermal-bath injector for one x-face.
#[derive(Clone, Copy, Debug)]
pub struct ThermalInjector {
    /// Which face to feed ([`FACE_LOW_X`] or [`FACE_HIGH_X`]).
    pub face: usize,
    /// Bath density.
    pub n0: f32,
    /// Bath thermal velocity (in c; non-relativistic).
    pub vth: f32,
    /// Macroparticle weight (use the same as the bulk loader:
    /// `n0·dV/ppc`).
    pub weight: f32,
}

impl ThermalInjector {
    /// Expected number of macroparticles injected per step.
    pub fn expected_per_step(&self, g: &Grid) -> f64 {
        let area = (g.ny as f64 * g.dy as f64) * (g.nz as f64 * g.dz as f64);
        let flux = self.n0 as f64 * self.vth as f64 / (2.0 * std::f64::consts::PI).sqrt();
        flux * area * g.dt as f64 / self.weight as f64
    }

    /// Inject this step's particles into `sp`. Particles appear just
    /// inside the wall, advanced by a random fraction of their first step
    /// (so the injected flux is time-uniform, not pulsed at cell edges).
    pub fn inject(&self, sp: &mut Species, g: &Grid, rng: &mut Rng) {
        assert!(
            self.face == FACE_LOW_X || self.face == FACE_HIGH_X,
            "only x faces are supported"
        );
        debug_assert_eq!(
            g.bc[self.face],
            ParticleBc::Absorb,
            "inject pairs with an absorbing face"
        );
        let expect = self.expected_per_step(g);
        let mut count = expect.floor() as usize;
        if rng.uniform() < expect - count as f64 {
            count += 1;
        }
        let inward = if self.face == FACE_LOW_X {
            1.0f64
        } else {
            -1.0
        };
        let i_cell = if self.face == FACE_LOW_X { 1 } else { g.nx };
        for _ in 0..count {
            // Flux-weighted normal speed: Rayleigh.
            let vn = self.vth as f64 * (-2.0 * (1.0 - rng.uniform()).ln()).sqrt();
            let ux = inward * vn;
            let uy = self.vth as f64 * rng.normal();
            let uz = self.vth as f64 * rng.normal();
            // Entry position on the wall, advanced a random sub-step.
            let frac = rng.uniform();
            let dx_travel = (ux * g.dt as f64 * frac) / (0.5 * g.dx as f64); // offset units
            let mut dx = -inward + dx_travel;
            dx = dx.clamp(-0.999, 0.999);
            let j = 1 + rng.index(g.ny);
            let k = 1 + rng.index(g.nz);
            sp.push(Particle {
                dx: dx as f32,
                dy: rng.uniform_in(-1.0, 1.0) as f32,
                dz: rng.uniform_in(-1.0, 1.0) as f32,
                i: g.voxel(i_cell, j, k) as u32,
                ux: ux as f32,
                uy: uy as f32,
                uz: uz as f32,
                w: self.weight,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::sim::Simulation;

    fn absorbing_grid(nx: usize) -> Grid {
        Grid::new(
            (nx, 2, 2),
            (0.5, 0.5, 0.5),
            0.1,
            [
                ParticleBc::Absorb,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
                ParticleBc::Absorb,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
            ],
        )
    }

    #[test]
    fn injection_rate_matches_kinetic_flux() {
        let g = absorbing_grid(8);
        let inj = ThermalInjector {
            face: FACE_LOW_X,
            n0: 1.0,
            vth: 0.1,
            weight: 0.001,
        };
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(1);
        let steps = 2000;
        for _ in 0..steps {
            inj.inject(&mut sp, &g, &mut rng);
        }
        let got = sp.len() as f64 / steps as f64;
        let want = inj.expected_per_step(&g);
        assert!((got - want).abs() / want < 0.05, "rate {got} vs {want}");
        // All inward-moving, inside the first cell.
        for p in sp.iter() {
            assert!(p.ux > 0.0);
            let (i, _, _) = g.voxel_coords(p.i as usize);
            assert_eq!(i, 1);
            assert!(p.dx.abs() <= 1.0);
        }
    }

    #[test]
    fn high_face_injects_inward() {
        let g = absorbing_grid(8);
        let inj = ThermalInjector {
            face: FACE_HIGH_X,
            n0: 1.0,
            vth: 0.1,
            weight: 0.0005,
        };
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(2);
        for _ in 0..500 {
            inj.inject(&mut sp, &g, &mut rng);
        }
        assert!(sp.len() > 10);
        for p in sp.iter() {
            assert!(p.ux < 0.0);
            let (i, _, _) = g.voxel_coords(p.i as usize);
            assert_eq!(i, 8);
        }
    }

    /// Absorb + inject on both walls keeps a thermal plasma's particle
    /// count in statistical steady state instead of draining.
    #[test]
    fn steady_state_against_absorption() {
        let g = absorbing_grid(8);
        let mut sim = Simulation::new(g, 1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(3);
        let ppc = 64;
        let vth = 0.1f32;
        load_uniform(
            &mut sp,
            &sim.grid,
            &mut rng,
            1.0,
            ppc,
            Momentum::thermal(vth),
        );
        let weight = sim.grid.dv() / ppc as f32;
        sim.add_species(sp);
        let n0 = sim.n_particles() as f64;
        let inj_lo = ThermalInjector {
            face: FACE_LOW_X,
            n0: 1.0,
            vth,
            weight,
        };
        let inj_hi = ThermalInjector {
            face: FACE_HIGH_X,
            n0: 1.0,
            vth,
            weight,
        };
        // Drain-only control first.
        let drained;
        {
            let mut control = Simulation::new(absorbing_grid(8), 1);
            let mut sp = Species::new("e", -1.0, 1.0);
            sp.set_particles(sim.species[0].to_particles());
            control.add_species(sp);
            for _ in 0..150 {
                control.step();
            }
            drained = control.species[0].to_particles();
        }
        for _ in 0..150 {
            inj_lo.inject(&mut sim.species[0], &sim.grid.clone(), &mut rng);
            inj_hi.inject(&mut sim.species[0], &sim.grid.clone(), &mut rng);
            sim.step();
        }
        let with_inject = sim.n_particles() as f64;
        let drain_only = drained.len() as f64;
        assert!(
            drain_only < 0.95 * n0,
            "control did not drain: {drain_only} of {n0}"
        );
        assert!(
            (with_inject - n0).abs() / n0 < 0.05,
            "not steady: {n0} -> {with_inject} (drain-only: {drain_only})"
        );
    }
}
