//! Current accumulator arrays (VPIC's `accumulator_array`).
//!
//! The particle push never scatters straight into the Yee current arrays:
//! each *pipeline* (worker thread) owns a private accumulator array holding
//! twelve values per voxel — the charge flux through the four x-edges, four
//! y-edges and four z-edges of that voxel. After the push the pipelines'
//! arrays are reduced and "unloaded" (scattered with the proper geometric
//! scale factors) into `jx/jy/jz`. This is exactly how VPIC avoids write
//! conflicts between SPE pipelines on Roadrunner, and how we avoid them
//! between Rayon workers.
//!
//! Normalization: an accumulator entry holds `q·h·W` where `q` is the
//! macroparticle charge, `h` the half-displacement along the edge direction
//! in voxel-offset units, and `W` the (Villasenor–Buneman) quadrant weight
//! in `[-1,1]` coordinates; the four quadrant weights sum to 4, so the
//! unload scale for x-edges is `1/(4·dt·dy·dz)` (and cyclic).
//!
//! Each array tracks the half-open voxel range its deposits touched since
//! the last [`AccumulatorArray::clear`]. Because the push hands each
//! pipeline one contiguous block of voxel-sorted particles, a pipeline
//! dirties only ~`1/n_pipelines` of the grid — so range-aware clears and
//! reductions cost about one full array regardless of the pipeline count,
//! where the naive versions cost `n_pipelines` arrays of memory traffic
//! every step.

use crate::field::FieldArray;
use crate::grid::Grid;
use crate::lanes::F32x8;
use rayon::prelude::*;

/// Voxels per parallel task in the range reduction (whole `Accumulator`
/// entries, so chunk boundaries never split a voxel's 12 floats).
const REDUCE_CHUNK: usize = 8192;

/// Twelve-entry current accumulator for one voxel.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Accumulator {
    /// x-edge quadrants in `(j,k)`, `(j+1,k)`, `(j,k+1)`, `(j+1,k+1)` order.
    pub jx: [f32; 4],
    /// y-edge quadrants in `(k,i)`, `(k+1,i)`, `(k,i+1)`, `(k+1,i+1)` order.
    pub jy: [f32; 4],
    /// z-edge quadrants in `(i,j)`, `(i+1,j)`, `(i,j+1)`, `(i+1,j+1)` order.
    pub jz: [f32; 4],
}

/// One pipeline's accumulator array.
#[derive(Clone, Debug)]
pub struct AccumulatorArray {
    pub data: Vec<Accumulator>,
    /// First voxel touched since the last clear (`usize::MAX` when clean).
    dirty_lo: usize,
    /// One past the last voxel touched since the last clear.
    dirty_hi: usize,
}

impl AccumulatorArray {
    /// Zeroed array sized for `grid`.
    pub fn new(grid: &Grid) -> Self {
        AccumulatorArray {
            data: vec![Accumulator::default(); grid.n_voxels()],
            dirty_lo: usize::MAX,
            dirty_hi: 0,
        }
    }

    /// Half-open voxel range deposited into since the last clear. All
    /// entries outside it are zero (every mutation funnels through
    /// [`Self::deposit`] / [`Self::reduce_from`], which widen it).
    #[inline]
    pub fn dirty_range(&self) -> std::ops::Range<usize> {
        if self.dirty_lo >= self.dirty_hi {
            0..0
        } else {
            self.dirty_lo..self.dirty_hi
        }
    }

    /// Reset all touched entries to zero (cost scales with the dirty
    /// range, not the grid).
    pub fn clear(&mut self) {
        let r = self.dirty_range();
        self.data[r]
            .iter_mut()
            .for_each(|a| *a = Accumulator::default());
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
    }

    /// Accumulate the current of one straight-line particle streak that
    /// stays inside `voxel`.
    ///
    /// `q` is the macroparticle charge (`species charge × weight`);
    /// `(mx,my,mz)` is the streak midpoint in voxel offsets; `(hx,hy,hz)`
    /// is the *half* displacement of the streak in offset units.
    #[inline]
    pub fn deposit(
        &mut self,
        voxel: usize,
        q: f32,
        (mx, my, mz): (f32, f32, f32),
        (hx, hy, hz): (f32, f32, f32),
    ) {
        let v5 = q * hx * hy * hz * (1.0 / 3.0);
        self.dirty_lo = self.dirty_lo.min(voxel);
        self.dirty_hi = self.dirty_hi.max(voxel + 1);
        let a = &mut self.data[voxel];
        accumulate_quadrants(&mut a.jx, q * hx, my, mz, v5);
        accumulate_quadrants(&mut a.jy, q * hy, mz, mx, v5);
        accumulate_quadrants(&mut a.jz, q * hz, mx, my, v5);
    }

    /// Accumulate four precomputed quadrant contributions per edge
    /// direction into `voxel` — the scatter half of [`Self::deposit`]
    /// when the quadrant arithmetic was done lane-wide up front (see
    /// [`quadrants_lanes`]). Each entry is added with a single `+=`, the
    /// same final operation `deposit` performs, so a lane kernel that
    /// feeds this with bit-identical addends lands on bit-identical sums.
    #[inline]
    pub fn deposit_quadrants(&mut self, voxel: usize, jx: [f32; 4], jy: [f32; 4], jz: [f32; 4]) {
        self.dirty_lo = self.dirty_lo.min(voxel);
        self.dirty_hi = self.dirty_hi.max(voxel + 1);
        let a = &mut self.data[voxel];
        for n in 0..4 {
            a.jx[n] += jx[n];
            a.jy[n] += jy[n];
            a.jz[n] += jz[n];
        }
    }

    /// [`Self::deposit_quadrants`] with the addends pre-transposed into
    /// per-particle registers: `jxy` holds the four `jx` quadrants in
    /// lanes 0–3 and the four `jy` quadrants in lanes 4–7; `jz` holds the
    /// four `jz` quadrants in lanes 0–3 (4–7 ignored). Each accumulator
    /// entry still receives exactly one `+=` of the identical addend, so
    /// the sums are bit-identical to the quadrant-array form — but the
    /// addends are contiguous, so the twelve updates compile to a few
    /// packed load-add-stores instead of a scalar extract per entry.
    #[inline]
    pub fn deposit_lanes(&mut self, voxel: usize, jxy: F32x8, jz: F32x8) {
        self.dirty_lo = self.dirty_lo.min(voxel);
        self.dirty_hi = self.dirty_hi.max(voxel + 1);
        let a = &mut self.data[voxel];
        for n in 0..4 {
            a.jx[n] += jxy.0[n];
        }
        for n in 0..4 {
            a.jy[n] += jxy.0[4 + n];
        }
        for n in 0..4 {
            a.jz[n] += jz.0[n];
        }
    }

    /// Read one voxel's accumulator into lane registers for a run of
    /// register-resident deposits: `jxy` lanes 0–3/4–7 are the `jx`/`jy`
    /// quadrants, `jz` lanes 0–3 the `jz` quadrants (4–7 zero). Paired
    /// with [`Self::store_lanes`]; between the two, the caller adds one
    /// addend vector per particle in scatter order, which performs the
    /// exact per-entry `+=` sequence `deposit_quadrants` would have done
    /// through memory — same order, same addends, same bits — without a
    /// store-to-load round trip per particle.
    #[inline]
    pub fn load_lanes(&self, voxel: usize) -> (F32x8, F32x8) {
        let a = &self.data[voxel];
        (
            F32x8([
                a.jx[0], a.jx[1], a.jx[2], a.jx[3], a.jy[0], a.jy[1], a.jy[2], a.jy[3],
            ]),
            F32x8([a.jz[0], a.jz[1], a.jz[2], a.jz[3], 0.0, 0.0, 0.0, 0.0]),
        )
    }

    /// Write back a register-resident accumulator run begun by
    /// [`Self::load_lanes`], marking the voxel dirty.
    #[inline]
    pub fn store_lanes(&mut self, voxel: usize, jxy: F32x8, jz: F32x8) {
        self.dirty_lo = self.dirty_lo.min(voxel);
        self.dirty_hi = self.dirty_hi.max(voxel + 1);
        let a = &mut self.data[voxel];
        for n in 0..4 {
            a.jx[n] = jxy.0[n];
            a.jy[n] = jxy.0[4 + n];
            a.jz[n] = jz.0[n];
        }
    }

    /// Sum `other` into `self` (pipeline reduction); only `other`'s dirty
    /// range is walked.
    pub fn reduce_from(&mut self, other: &AccumulatorArray) {
        assert_eq!(self.data.len(), other.data.len());
        let r = other.dirty_range();
        if r.is_empty() {
            return;
        }
        self.dirty_lo = self.dirty_lo.min(r.start);
        self.dirty_hi = self.dirty_hi.max(r.end);
        for (a, b) in self.data[r.clone()].iter_mut().zip(other.data[r].iter()) {
            for n in 0..4 {
                a.jx[n] += b.jx[n];
                a.jy[n] += b.jy[n];
                a.jz[n] += b.jz[n];
            }
        }
    }

    /// Scatter the accumulated charge fluxes into the Yee current density,
    /// one Rayon task per z-slab of each current component. Each `f.jx[v]`
    /// (resp. `jy`/`jz`) is written by exactly one task with the same
    /// 4-term sum as [`Self::unload`], so the result is bitwise identical
    /// to the serial unload for any worker count.
    pub fn unload_parallel(&self, f: &mut FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        let cx = 0.25 / (g.dt * g.dy * g.dz);
        let cy = 0.25 / (g.dt * g.dz * g.dx);
        let cz = 0.25 / (g.dt * g.dx * g.dy);
        let a = &self.data;
        // jx on x-edges: i ∈ 1..=nx, j ∈ 1..=ny+1, k ∈ 1..=nz+1.
        f.jx.par_chunks_mut(dk)
            .enumerate()
            .skip(1)
            .take(g.nz + 1)
            .for_each(|(k, jx)| {
                for j in 1..=g.ny + 1 {
                    for i in 1..=g.nx {
                        let v = g.voxel(i, j, k);
                        jx[v - k * dk] += cx
                            * (a[v].jx[0]
                                + a[v - dj].jx[1]
                                + a[v - dk].jx[2]
                                + a[v - dj - dk].jx[3]);
                    }
                }
            });
        // jy on y-edges: i ∈ 1..=nx+1, j ∈ 1..=ny, k ∈ 1..=nz+1.
        f.jy.par_chunks_mut(dk)
            .enumerate()
            .skip(1)
            .take(g.nz + 1)
            .for_each(|(k, jy)| {
                for j in 1..=g.ny {
                    for i in 1..=g.nx + 1 {
                        let v = g.voxel(i, j, k);
                        jy[v - k * dk] += cy
                            * (a[v].jy[0] + a[v - dk].jy[1] + a[v - 1].jy[2] + a[v - dk - 1].jy[3]);
                    }
                }
            });
        // jz on z-edges: i ∈ 1..=nx+1, j ∈ 1..=ny+1, k ∈ 1..=nz.
        f.jz.par_chunks_mut(dk)
            .enumerate()
            .skip(1)
            .take(g.nz)
            .for_each(|(k, jz)| {
                for j in 1..=g.ny + 1 {
                    for i in 1..=g.nx + 1 {
                        let v = g.voxel(i, j, k);
                        jz[v - k * dk] += cz
                            * (a[v].jz[0] + a[v - 1].jz[1] + a[v - dj].jz[2] + a[v - 1 - dj].jz[3]);
                    }
                }
            });
    }

    /// Scatter the accumulated charge fluxes into the Yee current density
    /// (adds to `f.jx/jy/jz`; clear them first if they should start at 0).
    /// Serial reference for [`Self::unload_parallel`].
    pub fn unload(&self, f: &mut FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        let cx = 0.25 / (g.dt * g.dy * g.dz);
        let cy = 0.25 / (g.dt * g.dz * g.dx);
        let cz = 0.25 / (g.dt * g.dx * g.dy);
        let a = &self.data;
        // jx on x-edges: i ∈ 1..=nx, j ∈ 1..=ny+1, k ∈ 1..=nz+1.
        for k in 1..=g.nz + 1 {
            for j in 1..=g.ny + 1 {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    f.jx[v] += cx
                        * (a[v].jx[0] + a[v - dj].jx[1] + a[v - dk].jx[2] + a[v - dj - dk].jx[3]);
                }
            }
        }
        // jy on y-edges: i ∈ 1..=nx+1, j ∈ 1..=ny, k ∈ 1..=nz+1.
        for k in 1..=g.nz + 1 {
            for j in 1..=g.ny {
                for i in 1..=g.nx + 1 {
                    let v = g.voxel(i, j, k);
                    f.jy[v] +=
                        cy * (a[v].jy[0] + a[v - dk].jy[1] + a[v - 1].jy[2] + a[v - dk - 1].jy[3]);
                }
            }
        }
        // jz on z-edges: i ∈ 1..=nx+1, j ∈ 1..=ny+1, k ∈ 1..=nz.
        for k in 1..=g.nz {
            for j in 1..=g.ny + 1 {
                for i in 1..=g.nx + 1 {
                    let v = g.voxel(i, j, k);
                    f.jz[v] +=
                        cz * (a[v].jz[0] + a[v - 1].jz[1] + a[v - dj].jz[2] + a[v - 1 - dj].jz[3]);
                }
            }
        }
    }
}

/// Villasenor–Buneman quadrant accumulation (VPIC's `ACCUMULATE_J` macro):
/// given `qu = q·h_edge`, transverse midpoints `d1, d2 ∈ [-1,1]` and the
/// shared correction `v5 = q·hx·hy·hz/3`, add the four quadrant fluxes.
#[inline]
fn accumulate_quadrants(quad: &mut [f32; 4], qu: f32, d1: f32, d2: f32, v5: f32) {
    let v1 = qu * d1;
    let mut w0 = qu - v1; // qu(1-d1)
    let mut w1 = qu + v1; // qu(1+d1)
    let hi = 1.0 + d2;
    let lo = 1.0 - d2;
    let w2 = w0 * hi; // qu(1-d1)(1+d2)
    let w3 = w1 * hi; // qu(1+d1)(1+d2)
    w0 *= lo; // qu(1-d1)(1-d2)
    w1 *= lo; // qu(1+d1)(1-d2)
    quad[0] += w0 + v5;
    quad[1] += w1 - v5;
    quad[2] += w2 - v5;
    quad[3] += w3 + v5;
}

/// Lane-wide mirror of [`accumulate_quadrants`]: for eight particles at
/// once, compute the four quadrant *addends* `[w0+v5, w1-v5, w2-v5,
/// w3+v5]` without touching the array. Each lane runs the exact scalar
/// operation sequence element-wise (same products, same ordering, no
/// fusion), so lane `l` of the result is bit-identical to what the
/// scalar macro would have added for that particle; the caller scatters
/// the addends in lane index order via
/// [`AccumulatorArray::deposit_quadrants`].
#[inline(always)]
pub(crate) fn quadrants_lanes(qu: F32x8, d1: F32x8, d2: F32x8, v5: F32x8) -> [F32x8; 4] {
    let one = F32x8::splat(1.0);
    let v1 = qu * d1;
    let mut w0 = qu - v1; // qu(1-d1)
    let mut w1 = qu + v1; // qu(1+d1)
    let hi = one + d2;
    let lo = one - d2;
    let w2 = w0 * hi; // qu(1-d1)(1+d2)
    let w3 = w1 * hi; // qu(1+d1)(1+d2)
    w0 = w0 * lo; // qu(1-d1)(1-d2)
    w1 = w1 * lo; // qu(1+d1)(1-d2)
    [w0 + v5, w1 - v5, w2 - v5, w3 + v5]
}

/// A pool of per-pipeline accumulator arrays (index 0 is the reduction
/// target).
#[derive(Debug)]
pub struct AccumulatorSet {
    pub arrays: Vec<AccumulatorArray>,
}

impl AccumulatorSet {
    /// One array per pipeline.
    pub fn new(grid: &Grid, n_pipelines: usize) -> Self {
        assert!(n_pipelines >= 1);
        AccumulatorSet {
            arrays: (0..n_pipelines)
                .map(|_| AccumulatorArray::new(grid))
                .collect(),
        }
    }

    /// Number of pipelines.
    pub fn n_pipelines(&self) -> usize {
        self.arrays.len()
    }

    /// Clear every pipeline array (one Rayon task per array; each clear
    /// only walks that array's dirty range).
    pub fn clear(&mut self) {
        self.arrays.par_iter_mut().for_each(AccumulatorArray::clear);
    }

    /// Reduce all pipelines into array 0 and return a reference to it.
    /// Serial reference for [`Self::reduce_and_unload`].
    pub fn reduce(&mut self) -> &AccumulatorArray {
        let (first, rest) = self
            .arrays
            .split_first_mut()
            .expect("at least one pipeline");
        for r in rest {
            first.reduce_from(r);
        }
        first
    }

    /// Reduce all pipelines into array 0 and scatter the result into
    /// `f.jx/jy/jz`, both phases Rayon-parallel.
    ///
    /// The reduction fans out over fixed voxel chunks; within each chunk
    /// the pipelines are added in index order, so every voxel sums its
    /// twelve entries in pipeline order no matter which worker ran the
    /// chunk or how many workers exist — results are bitwise identical to
    /// the serial [`Self::reduce`] + [`AccumulatorArray::unload`] path.
    /// Only dirty voxel ranges are walked, so the whole call costs about
    /// one array of memory traffic regardless of the pipeline count.
    pub fn reduce_and_unload(&mut self, f: &mut FieldArray, g: &Grid) {
        let (first, rest) = self
            .arrays
            .split_first_mut()
            .expect("at least one pipeline");
        if !rest.is_empty() {
            // Union of the helper pipelines' dirty ranges: the only voxels
            // where array 0 needs updating.
            let touched = rest.iter().map(AccumulatorArray::dirty_range);
            let lo = touched
                .clone()
                .filter(|r| !r.is_empty())
                .map(|r| r.start)
                .min()
                .unwrap_or(0);
            let hi = touched.map(|r| r.end).max().unwrap_or(0);
            if lo < hi {
                let rest: &[AccumulatorArray] = rest;
                first.data[lo..hi]
                    .par_chunks_mut(REDUCE_CHUNK)
                    .enumerate()
                    .for_each(|(ci, chunk)| {
                        let base = lo + ci * REDUCE_CHUNK;
                        for r in rest {
                            let rr = r.dirty_range();
                            let (s, e) = (rr.start.max(base), rr.end.min(base + chunk.len()));
                            for v in s..e {
                                let (a, b) = (&mut chunk[v - base], &r.data[v]);
                                for n in 0..4 {
                                    a.jx[n] += b.jx[n];
                                    a.jy[n] += b.jy[n];
                                    a.jz[n] += b.jz[n];
                                }
                            }
                        }
                    });
                first.dirty_lo = first.dirty_lo.min(lo);
                first.dirty_hi = first.dirty_hi.max(hi);
            }
        }
        self.arrays[0].unload_parallel(f, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_weights_sum_to_four_qu() {
        let mut quad = [0.0f32; 4];
        accumulate_quadrants(&mut quad, 2.0, 0.3, -0.7, 0.05);
        let sum: f32 = quad.iter().sum();
        // Corrections cancel; weights sum to 4.
        assert!((sum - 8.0).abs() < 1e-6);
    }

    #[test]
    fn centered_streak_splits_evenly() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.5);
        let mut acc = AccumulatorArray::new(&g);
        let v = g.voxel(2, 2, 2);
        // Pure x motion at the voxel center: all four x-quadrants equal
        // (each quadrant weight (1±d1)(1±d2) is 1 at the center).
        acc.deposit(v, 1.0, (0.0, 0.0, 0.0), (0.25, 0.0, 0.0));
        for n in 0..4 {
            assert!(
                (acc.data[v].jx[n] - 0.25).abs() < 1e-7,
                "{:?}",
                acc.data[v].jx
            );
            assert_eq!(acc.data[v].jy[n], 0.0);
            assert_eq!(acc.data[v].jz[n], 0.0);
        }
    }

    #[test]
    fn unload_recovers_uniform_current_density() {
        // A particle of charge q moving +x at speed v deposits total
        // J·dV = q·v; check by summing jx·dV over the grid.
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.05);
        let mut acc = AccumulatorArray::new(&g);
        let q = 2.0f32;
        let vx = 0.3f32; // physical velocity
        let hx = vx * g.dt / g.dx; // half displacement in offset units
        acc.deposit(g.voxel(2, 3, 2), q, (0.1, -0.4, 0.6), (hx, 0.0, 0.0));
        let mut f = FieldArray::new(&g);
        acc.unload(&mut f, &g);
        let total: f64 =
            f.jx.iter()
                .enumerate()
                .filter(|(v, _)| {
                    // Count each physical edge once: live x range, node ranges
                    // 1..=n in y/z (plane n+1 is a periodic alias, but nothing
                    // was synced yet so all deposits are distinct entries).
                    let (i, j, k) = g.voxel_coords(*v);
                    (1..=g.nx).contains(&i)
                        && (1..=g.ny + 1).contains(&j)
                        && (1..=g.nz + 1).contains(&k)
                })
                .map(|(_, &j)| j as f64)
                .sum::<f64>()
                * g.dv() as f64;
        assert!(
            (total - (q * vx) as f64).abs() < 1e-5,
            "total = {total}, want {}",
            q * vx
        );
    }

    #[test]
    fn dirty_range_tracks_deposits_and_clear() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut acc = AccumulatorArray::new(&g);
        assert!(acc.dirty_range().is_empty());
        let (va, vb) = (g.voxel(1, 1, 1), g.voxel(3, 2, 2));
        acc.deposit(vb, 1.0, (0.0, 0.0, 0.0), (0.1, 0.0, 0.0));
        acc.deposit(va, 1.0, (0.0, 0.0, 0.0), (0.1, 0.0, 0.0));
        assert_eq!(acc.dirty_range(), va..vb + 1);
        acc.clear();
        assert!(acc.dirty_range().is_empty());
        assert!(acc
            .data
            .iter()
            .all(|a| a.jx == [0.0; 4] && a.jy == [0.0; 4] && a.jz == [0.0; 4]));
        // Deposits after a clear start a fresh range.
        acc.deposit(vb, 1.0, (0.0, 0.0, 0.0), (0.0, 0.1, 0.0));
        assert_eq!(acc.dirty_range(), vb..vb + 1);
    }

    #[test]
    fn reduce_and_unload_matches_serial_path() {
        use crate::rng::Rng;
        let g = Grid::periodic((6, 5, 4), (0.5, 0.5, 0.5), 0.05);
        let mut rng = Rng::seeded(42);
        let mut set = AccumulatorSet::new(&g, 4);
        for (pipe, arr) in set.arrays.iter_mut().enumerate() {
            for _ in 0..50 + 30 * pipe {
                let v = g.voxel(1 + rng.index(6), 1 + rng.index(5), 1 + rng.index(4));
                arr.deposit(
                    v,
                    rng.uniform_in(-1.0, 1.0) as f32,
                    (
                        rng.uniform_in(-0.9, 0.9) as f32,
                        rng.uniform_in(-0.9, 0.9) as f32,
                        rng.uniform_in(-0.9, 0.9) as f32,
                    ),
                    (
                        rng.uniform_in(-0.2, 0.2) as f32,
                        rng.uniform_in(-0.2, 0.2) as f32,
                        rng.uniform_in(-0.2, 0.2) as f32,
                    ),
                );
            }
        }
        let mut serial_set = AccumulatorSet {
            arrays: set.arrays.clone(),
        };
        let mut f_par = FieldArray::new(&g);
        let mut f_ser = FieldArray::new(&g);
        set.reduce_and_unload(&mut f_par, &g);
        let reduced = serial_set.reduce();
        reduced.unload(&mut f_ser, &g);
        // Bitwise: reduction order and unload arithmetic are identical.
        assert!(f_par.jx.iter().zip(f_ser.jx.iter()).all(|(a, b)| a == b));
        assert!(f_par.jy.iter().zip(f_ser.jy.iter()).all(|(a, b)| a == b));
        assert!(f_par.jz.iter().zip(f_ser.jz.iter()).all(|(a, b)| a == b));
        for (a, b) in set.arrays[0]
            .data
            .iter()
            .zip(serial_set.arrays[0].data.iter())
        {
            assert_eq!(a.jx, b.jx);
            assert_eq!(a.jy, b.jy);
            assert_eq!(a.jz, b.jz);
        }
    }

    #[test]
    fn lane_quadrants_match_scalar_deposit_bitwise() {
        use crate::lanes::LANES;
        use crate::rng::Rng;
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut rng = Rng::seeded(11);
        // Eight random streaks, two of which share a voxel so the scatter
        // order matters; deposited via the scalar path and via lane-wide
        // quadrant precompute + deposit_quadrants, compared bitwise.
        let mut q = [0.0f32; LANES];
        let mut m = [(0.0f32, 0.0f32, 0.0f32); LANES];
        let mut h = [(0.0f32, 0.0f32, 0.0f32); LANES];
        let mut vox = [0usize; LANES];
        for l in 0..LANES {
            q[l] = rng.uniform_in(-1.0, 1.0) as f32;
            m[l] = (
                rng.uniform_in(-0.9, 0.9) as f32,
                rng.uniform_in(-0.9, 0.9) as f32,
                rng.uniform_in(-0.9, 0.9) as f32,
            );
            h[l] = (
                rng.uniform_in(-0.2, 0.2) as f32,
                rng.uniform_in(-0.2, 0.2) as f32,
                rng.uniform_in(-0.2, 0.2) as f32,
            );
            vox[l] = g.voxel(1 + l % 3, 2, 2);
        }
        let mut scalar = AccumulatorArray::new(&g);
        for l in 0..LANES {
            scalar.deposit(vox[l], q[l], m[l], h[l]);
        }

        let qv = F32x8(q);
        let mx = F32x8(std::array::from_fn(|l| m[l].0));
        let my = F32x8(std::array::from_fn(|l| m[l].1));
        let mz = F32x8(std::array::from_fn(|l| m[l].2));
        let hx = F32x8(std::array::from_fn(|l| h[l].0));
        let hy = F32x8(std::array::from_fn(|l| h[l].1));
        let hz = F32x8(std::array::from_fn(|l| h[l].2));
        let v5 = qv * hx * hy * hz * F32x8::splat(1.0 / 3.0);
        let jx = quadrants_lanes(qv * hx, my, mz, v5);
        let jy = quadrants_lanes(qv * hy, mz, mx, v5);
        let jz = quadrants_lanes(qv * hz, mx, my, v5);
        let mut lanes = AccumulatorArray::new(&g);
        for (l, &v) in vox.iter().enumerate() {
            lanes.deposit_quadrants(
                v,
                std::array::from_fn(|n| jx[n].0[l]),
                std::array::from_fn(|n| jy[n].0[l]),
                std::array::from_fn(|n| jz[n].0[l]),
            );
        }
        assert_eq!(scalar.dirty_range(), lanes.dirty_range());
        for (v, (a, b)) in scalar.data.iter().zip(lanes.data.iter()).enumerate() {
            for n in 0..4 {
                assert_eq!(a.jx[n].to_bits(), b.jx[n].to_bits(), "jx[{n}] at {v}");
                assert_eq!(a.jy[n].to_bits(), b.jy[n].to_bits(), "jy[{n}] at {v}");
                assert_eq!(a.jz[n].to_bits(), b.jz[n].to_bits(), "jz[{n}] at {v}");
            }
        }

        // The pre-transposed deposit_lanes form (what the production lane
        // scatter uses) must land on the same bits again.
        let zero = F32x8::splat(0.0);
        let txy =
            crate::lanes::transpose8([jx[0], jx[1], jx[2], jx[3], jy[0], jy[1], jy[2], jy[3]]);
        let tz = crate::lanes::transpose8([jz[0], jz[1], jz[2], jz[3], zero, zero, zero, zero]);
        let mut flat = AccumulatorArray::new(&g);
        for l in 0..LANES {
            flat.deposit_lanes(vox[l], txy[l], tz[l]);
        }
        assert_eq!(scalar.dirty_range(), flat.dirty_range());
        for (a, b) in scalar.data.iter().zip(flat.data.iter()) {
            for n in 0..4 {
                assert_eq!(a.jx[n].to_bits(), b.jx[n].to_bits());
                assert_eq!(a.jy[n].to_bits(), b.jy[n].to_bits());
                assert_eq!(a.jz[n].to_bits(), b.jz[n].to_bits());
            }
        }

        // Register-resident runs (the production lane scatter): group
        // consecutive same-voxel lanes between one load_lanes and one
        // store_lanes — identical add order, identical bits.
        let mut runs = AccumulatorArray::new(&g);
        let mut open: Option<(usize, F32x8, F32x8)> = None;
        for l in 0..LANES {
            match open.as_mut() {
                Some((v, axy, az)) if *v == vox[l] => {
                    *axy = *axy + txy[l];
                    *az = *az + tz[l];
                }
                _ => {
                    if let Some((v, axy, az)) = open.take() {
                        runs.store_lanes(v, axy, az);
                    }
                    let (axy, az) = runs.load_lanes(vox[l]);
                    open = Some((vox[l], axy + txy[l], az + tz[l]));
                }
            }
        }
        if let Some((v, axy, az)) = open.take() {
            runs.store_lanes(v, axy, az);
        }
        assert_eq!(scalar.dirty_range(), runs.dirty_range());
        for (a, b) in scalar.data.iter().zip(runs.data.iter()) {
            for n in 0..4 {
                assert_eq!(a.jx[n].to_bits(), b.jx[n].to_bits());
                assert_eq!(a.jy[n].to_bits(), b.jy[n].to_bits());
                assert_eq!(a.jz[n].to_bits(), b.jz[n].to_bits());
            }
        }
    }

    #[test]
    fn reduce_sums_pipelines() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut set = AccumulatorSet::new(&g, 3);
        let v = g.voxel(1, 1, 1);
        for (n, arr) in set.arrays.iter_mut().enumerate() {
            arr.deposit(v, (n + 1) as f32, (0.0, 0.0, 0.0), (0.1, 0.0, 0.0));
        }
        let reduced = set.reduce();
        let sum: f32 = reduced.data[v].jx.iter().sum();
        // Quadrant weights sum to 4·q·hx per deposit; total charge is 1+2+3.
        assert!((sum - 4.0 * 6.0 * 0.1).abs() < 1e-5, "sum = {sum}");
    }
}
