//! Current accumulator arrays (VPIC's `accumulator_array`).
//!
//! The particle push never scatters straight into the Yee current arrays:
//! each *pipeline* (worker thread) owns a private accumulator array holding
//! twelve values per voxel — the charge flux through the four x-edges, four
//! y-edges and four z-edges of that voxel. After the push the pipelines'
//! arrays are reduced and "unloaded" (scattered with the proper geometric
//! scale factors) into `jx/jy/jz`. This is exactly how VPIC avoids write
//! conflicts between SPE pipelines on Roadrunner, and how we avoid them
//! between Rayon workers.
//!
//! Normalization: an accumulator entry holds `q·h·W` where `q` is the
//! macroparticle charge, `h` the half-displacement along the edge direction
//! in voxel-offset units, and `W` the (Villasenor–Buneman) quadrant weight
//! in `[-1,1]` coordinates; the four quadrant weights sum to 4, so the
//! unload scale for x-edges is `1/(4·dt·dy·dz)` (and cyclic).

use crate::field::FieldArray;
use crate::grid::Grid;

/// Twelve-entry current accumulator for one voxel.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Accumulator {
    /// x-edge quadrants in `(j,k)`, `(j+1,k)`, `(j,k+1)`, `(j+1,k+1)` order.
    pub jx: [f32; 4],
    /// y-edge quadrants in `(k,i)`, `(k+1,i)`, `(k,i+1)`, `(k+1,i+1)` order.
    pub jy: [f32; 4],
    /// z-edge quadrants in `(i,j)`, `(i+1,j)`, `(i,j+1)`, `(i+1,j+1)` order.
    pub jz: [f32; 4],
}

/// One pipeline's accumulator array.
#[derive(Clone, Debug)]
pub struct AccumulatorArray {
    pub data: Vec<Accumulator>,
}

impl AccumulatorArray {
    /// Zeroed array sized for `grid`.
    pub fn new(grid: &Grid) -> Self {
        AccumulatorArray {
            data: vec![Accumulator::default(); grid.n_voxels()],
        }
    }

    /// Reset all entries to zero.
    pub fn clear(&mut self) {
        self.data
            .iter_mut()
            .for_each(|a| *a = Accumulator::default());
    }

    /// Accumulate the current of one straight-line particle streak that
    /// stays inside `voxel`.
    ///
    /// `q` is the macroparticle charge (`species charge × weight`);
    /// `(mx,my,mz)` is the streak midpoint in voxel offsets; `(hx,hy,hz)`
    /// is the *half* displacement of the streak in offset units.
    #[inline]
    pub fn deposit(
        &mut self,
        voxel: usize,
        q: f32,
        (mx, my, mz): (f32, f32, f32),
        (hx, hy, hz): (f32, f32, f32),
    ) {
        let v5 = q * hx * hy * hz * (1.0 / 3.0);
        let a = &mut self.data[voxel];
        accumulate_quadrants(&mut a.jx, q * hx, my, mz, v5);
        accumulate_quadrants(&mut a.jy, q * hy, mz, mx, v5);
        accumulate_quadrants(&mut a.jz, q * hz, mx, my, v5);
    }

    /// Sum `other` into `self` (pipeline reduction).
    pub fn reduce_from(&mut self, other: &AccumulatorArray) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            for n in 0..4 {
                a.jx[n] += b.jx[n];
                a.jy[n] += b.jy[n];
                a.jz[n] += b.jz[n];
            }
        }
    }

    /// Scatter the accumulated charge fluxes into the Yee current density
    /// (adds to `f.jx/jy/jz`; clear them first if they should start at 0).
    pub fn unload(&self, f: &mut FieldArray, g: &Grid) {
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        let cx = 0.25 / (g.dt * g.dy * g.dz);
        let cy = 0.25 / (g.dt * g.dz * g.dx);
        let cz = 0.25 / (g.dt * g.dx * g.dy);
        let a = &self.data;
        // jx on x-edges: i ∈ 1..=nx, j ∈ 1..=ny+1, k ∈ 1..=nz+1.
        for k in 1..=g.nz + 1 {
            for j in 1..=g.ny + 1 {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    f.jx[v] += cx
                        * (a[v].jx[0] + a[v - dj].jx[1] + a[v - dk].jx[2] + a[v - dj - dk].jx[3]);
                }
            }
        }
        // jy on y-edges: i ∈ 1..=nx+1, j ∈ 1..=ny, k ∈ 1..=nz+1.
        for k in 1..=g.nz + 1 {
            for j in 1..=g.ny {
                for i in 1..=g.nx + 1 {
                    let v = g.voxel(i, j, k);
                    f.jy[v] +=
                        cy * (a[v].jy[0] + a[v - dk].jy[1] + a[v - 1].jy[2] + a[v - dk - 1].jy[3]);
                }
            }
        }
        // jz on z-edges: i ∈ 1..=nx+1, j ∈ 1..=ny+1, k ∈ 1..=nz.
        for k in 1..=g.nz {
            for j in 1..=g.ny + 1 {
                for i in 1..=g.nx + 1 {
                    let v = g.voxel(i, j, k);
                    f.jz[v] +=
                        cz * (a[v].jz[0] + a[v - 1].jz[1] + a[v - dj].jz[2] + a[v - 1 - dj].jz[3]);
                }
            }
        }
    }
}

/// Villasenor–Buneman quadrant accumulation (VPIC's `ACCUMULATE_J` macro):
/// given `qu = q·h_edge`, transverse midpoints `d1, d2 ∈ [-1,1]` and the
/// shared correction `v5 = q·hx·hy·hz/3`, add the four quadrant fluxes.
#[inline]
fn accumulate_quadrants(quad: &mut [f32; 4], qu: f32, d1: f32, d2: f32, v5: f32) {
    let v1 = qu * d1;
    let mut w0 = qu - v1; // qu(1-d1)
    let mut w1 = qu + v1; // qu(1+d1)
    let hi = 1.0 + d2;
    let lo = 1.0 - d2;
    let w2 = w0 * hi; // qu(1-d1)(1+d2)
    let w3 = w1 * hi; // qu(1+d1)(1+d2)
    w0 *= lo; // qu(1-d1)(1-d2)
    w1 *= lo; // qu(1+d1)(1-d2)
    quad[0] += w0 + v5;
    quad[1] += w1 - v5;
    quad[2] += w2 - v5;
    quad[3] += w3 + v5;
}

/// A pool of per-pipeline accumulator arrays (index 0 is the reduction
/// target).
#[derive(Debug)]
pub struct AccumulatorSet {
    pub arrays: Vec<AccumulatorArray>,
}

impl AccumulatorSet {
    /// One array per pipeline.
    pub fn new(grid: &Grid, n_pipelines: usize) -> Self {
        assert!(n_pipelines >= 1);
        AccumulatorSet {
            arrays: (0..n_pipelines)
                .map(|_| AccumulatorArray::new(grid))
                .collect(),
        }
    }

    /// Number of pipelines.
    pub fn n_pipelines(&self) -> usize {
        self.arrays.len()
    }

    /// Clear every pipeline array.
    pub fn clear(&mut self) {
        self.arrays.iter_mut().for_each(AccumulatorArray::clear);
    }

    /// Reduce all pipelines into array 0 and return a reference to it.
    pub fn reduce(&mut self) -> &AccumulatorArray {
        let (first, rest) = self
            .arrays
            .split_first_mut()
            .expect("at least one pipeline");
        for r in rest {
            first.reduce_from(r);
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_weights_sum_to_four_qu() {
        let mut quad = [0.0f32; 4];
        accumulate_quadrants(&mut quad, 2.0, 0.3, -0.7, 0.05);
        let sum: f32 = quad.iter().sum();
        // Corrections cancel; weights sum to 4.
        assert!((sum - 8.0).abs() < 1e-6);
    }

    #[test]
    fn centered_streak_splits_evenly() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.5);
        let mut acc = AccumulatorArray::new(&g);
        let v = g.voxel(2, 2, 2);
        // Pure x motion at the voxel center: all four x-quadrants equal
        // (each quadrant weight (1±d1)(1±d2) is 1 at the center).
        acc.deposit(v, 1.0, (0.0, 0.0, 0.0), (0.25, 0.0, 0.0));
        for n in 0..4 {
            assert!(
                (acc.data[v].jx[n] - 0.25).abs() < 1e-7,
                "{:?}",
                acc.data[v].jx
            );
            assert_eq!(acc.data[v].jy[n], 0.0);
            assert_eq!(acc.data[v].jz[n], 0.0);
        }
    }

    #[test]
    fn unload_recovers_uniform_current_density() {
        // A particle of charge q moving +x at speed v deposits total
        // J·dV = q·v; check by summing jx·dV over the grid.
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.05);
        let mut acc = AccumulatorArray::new(&g);
        let q = 2.0f32;
        let vx = 0.3f32; // physical velocity
        let hx = vx * g.dt / g.dx; // half displacement in offset units
        acc.deposit(g.voxel(2, 3, 2), q, (0.1, -0.4, 0.6), (hx, 0.0, 0.0));
        let mut f = FieldArray::new(&g);
        acc.unload(&mut f, &g);
        let total: f64 =
            f.jx.iter()
                .enumerate()
                .filter(|(v, _)| {
                    // Count each physical edge once: live x range, node ranges
                    // 1..=n in y/z (plane n+1 is a periodic alias, but nothing
                    // was synced yet so all deposits are distinct entries).
                    let (i, j, k) = g.voxel_coords(*v);
                    (1..=g.nx).contains(&i)
                        && (1..=g.ny + 1).contains(&j)
                        && (1..=g.nz + 1).contains(&k)
                })
                .map(|(_, &j)| j as f64)
                .sum::<f64>()
                * g.dv() as f64;
        assert!(
            (total - (q * vx) as f64).abs() < 1e-5,
            "total = {total}, want {}",
            q * vx
        );
    }

    #[test]
    fn reduce_sums_pipelines() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut set = AccumulatorSet::new(&g, 3);
        let v = g.voxel(1, 1, 1);
        for (n, arr) in set.arrays.iter_mut().enumerate() {
            arr.deposit(v, (n + 1) as f32, (0.0, 0.0, 0.0), (0.1, 0.0, 0.0));
        }
        let reduced = set.reduce();
        let sum: f32 = reduced.data[v].jx.iter().sum();
        // Quadrant weights sum to 4·q·hx per deposit; total charge is 1+2+3.
        assert!((sum - 4.0 * 6.0 * 0.1).abs() < 1e-5, "sum = {sum}");
    }
}
