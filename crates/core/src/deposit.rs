//! Charge deposition (node-centered `rho`).
//!
//! Trilinear weighting to the eight corner nodes of the particle's voxel —
//! the scheme whose discrete continuity equation the Villasenor–Buneman
//! current deposition satisfies exactly. Used by divergence cleaning and
//! diagnostics (the dynamics never need `rho`).

use crate::field::FieldArray;
use crate::grid::Grid;
use crate::particle::Particle;

/// Accumulate `q_sp · w` of each particle onto the nodes of `f.rho`
/// (adds; callers clear and `sync_rho` as needed). Takes particles by
/// value so both storage layouts deposit through the same code
/// (`sp.iter()` for a species, `parts.iter().copied()` for a slice).
pub fn deposit_rho(
    f: &mut FieldArray,
    g: &Grid,
    particles: impl IntoIterator<Item = Particle>,
    qsp: f32,
) {
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let r8v = 1.0 / (8.0 * g.dv());
    for p in particles {
        let v = p.i as usize;
        let q = qsp * p.w * r8v;
        let (lx, hx) = (1.0 - p.dx, 1.0 + p.dx);
        let (ly, hy) = (1.0 - p.dy, 1.0 + p.dy);
        let (lz, hz) = (1.0 - p.dz, 1.0 + p.dz);
        f.rho[v] += q * lx * ly * lz;
        f.rho[v + 1] += q * hx * ly * lz;
        f.rho[v + dj] += q * lx * hy * lz;
        f.rho[v + 1 + dj] += q * hx * hy * lz;
        f.rho[v + dk] += q * lx * ly * hz;
        f.rho[v + 1 + dk] += q * hx * ly * hz;
        f.rho[v + dj + dk] += q * lx * hy * hz;
        f.rho[v + 1 + dj + dk] += q * hx * hy * hz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_solver::{bcs_of, sync_rho};

    #[test]
    fn total_charge_is_conserved_by_weighting() {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        let parts = [
            Particle {
                i: g.voxel(2, 3, 2) as u32,
                dx: 0.3,
                dy: -0.7,
                dz: 0.9,
                w: 2.0,
                ..Default::default()
            },
            Particle {
                i: g.voxel(4, 4, 4) as u32,
                dx: 0.99,
                dy: 0.99,
                dz: 0.99,
                w: 1.0,
                ..Default::default()
            },
        ];
        deposit_rho(&mut f, &g, parts.iter().copied(), -1.5);
        sync_rho(&mut f, &g, bcs_of(&g));
        let total = f.total_rho(&g);
        assert!((total - (-1.5 * 3.0)).abs() < 1e-5, "total = {total}");
    }

    #[test]
    fn centered_particle_splits_equally() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        let parts = [Particle {
            i: g.voxel(2, 2, 2) as u32,
            w: 8.0,
            ..Default::default()
        }];
        deposit_rho(&mut f, &g, parts.iter().copied(), 1.0);
        let v = g.voxel(2, 2, 2);
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        for off in [0, 1, dj, dk, 1 + dj, 1 + dk, dj + dk, 1 + dj + dk] {
            assert!((f.rho[v + off] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn corner_particle_hits_one_node() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        let parts = [Particle {
            i: g.voxel(2, 2, 2) as u32,
            dx: -1.0,
            dy: -1.0,
            dz: -1.0,
            w: 1.0,
            ..Default::default()
        }];
        deposit_rho(&mut f, &g, parts.iter().copied(), 1.0);
        assert!((f.rho[g.voxel(2, 2, 2)] - 1.0).abs() < 1e-6);
        assert_eq!(f.rho[g.voxel(3, 2, 2)], 0.0);
    }
}
