//! Voxel-order particle sorting.
//!
//! VPIC counting-sorts each species by voxel index every few dozen steps so
//! the gather of interpolator data and the scatter into accumulators walk
//! memory almost sequentially — the paper credits this for keeping the
//! Cell SPE pipelines fed. The sort is O(N) and stable.
//!
//! The sort runs in three phases, the histogram and scatter fanned out over
//! Rayon workers (VPIC's `sortp`): each worker histograms one contiguous
//! chunk of the particle list into a private per-voxel count array, a
//! serial prefix-sum over `(voxel, worker)` pairs turns the counts into
//! write offsets, and each worker scatters its chunk into its reserved
//! output slots. Same-voxel particles land in `(worker, within-chunk)`
//! order, i.e. original order — the output permutation is exactly the
//! stable serial counting sort, bitwise independent of the worker count.

use crate::particle::Particle;
use crate::threads::worker_threads;
use rayon::prelude::*;

/// Minimum particles per sort worker; below this the fan-out overhead
/// outweighs the work and fewer (or one) workers are used. Shared with the
/// AoSoA sort so both layouts pick identical worker counts.
pub(crate) const MIN_SORT_CHUNK: usize = 16 * 1024;

/// Raw output cursor for the scatter phase. Workers write disjoint index
/// sets (see the safety argument at the write site), so sharing the
/// pointer across threads is sound.
#[derive(Clone, Copy)]
struct ScatterPtr(*mut Particle);
// SAFETY: the pointer is only dereferenced at indices reserved exclusively
// for one worker by the prefix-sum (no two workers share an index), and the
// buffer outlives the scatter.
unsafe impl Send for ScatterPtr {}
unsafe impl Sync for ScatterPtr {}

/// Stable counting sort of `particles` by voxel index. `n_voxels` is the
/// array size of the grid (ghosts included); `scratch` is reused capacity.
/// Allocates a fresh histogram buffer; hot callers should hold one and use
/// [`sort_by_voxel_with`].
pub fn sort_by_voxel(particles: &mut Vec<Particle>, n_voxels: usize, scratch: &mut Vec<Particle>) {
    let mut counts = Vec::new();
    sort_by_voxel_with(particles, n_voxels, scratch, &mut counts);
}

/// [`sort_by_voxel`] with a caller-held histogram buffer, so steady-state
/// sorting allocates nothing (both `scratch` and `counts` retain their
/// capacity between calls).
pub fn sort_by_voxel_with(
    particles: &mut Vec<Particle>,
    n_voxels: usize,
    scratch: &mut Vec<Particle>,
    counts: &mut Vec<u32>,
) {
    let n = particles.len();
    let workers = worker_threads().min(n.div_ceil(MIN_SORT_CHUNK)).max(1);
    sort_with_workers(particles, n_voxels, scratch, counts, workers);
}

/// Worker-count-explicit body of the sort (tests call this directly to
/// exercise the multi-chunk path regardless of the host's thread count).
pub(crate) fn sort_with_workers(
    particles: &mut Vec<Particle>,
    n_voxels: usize,
    scratch: &mut Vec<Particle>,
    counts: &mut Vec<u32>,
    workers: usize,
) {
    let n = particles.len();
    if n <= 1 {
        return;
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);

    // Phase 1: per-worker histograms (worker w owns counts[w*n_voxels..]).
    counts.clear();
    counts.resize(workers * n_voxels, 0);
    counts
        .par_chunks_mut(n_voxels)
        .zip(particles.par_chunks(chunk))
        .for_each(|(hist, ps)| {
            for p in ps {
                hist[p.i as usize] += 1;
            }
        });

    // Phase 2: exclusive prefix-sum in (voxel, worker) order — worker w's
    // slots for voxel v start after every lower voxel and after workers
    // < w for the same voxel (this is what makes the sort stable).
    let mut running = 0u32;
    for v in 0..n_voxels {
        for w in 0..workers {
            let c = &mut counts[w * n_voxels + v];
            let t = *c;
            *c = running;
            running += t;
        }
    }

    // Phase 3: scatter. Worker w writes exactly the slots the prefix-sum
    // reserved for its (w, v) pairs.
    scratch.clear();
    scratch.resize(n, Particle::default());
    let out = ScatterPtr(scratch.as_mut_ptr());
    counts
        .par_chunks_mut(n_voxels)
        .zip(particles.par_chunks(chunk))
        .for_each(move |(offsets, ps)| {
            for p in ps {
                let slot = &mut offsets[p.i as usize];
                // SAFETY: `*slot` walks the half-open range reserved for
                // this (worker, voxel) pair by the exclusive prefix-sum;
                // those ranges partition [0, n), so no two writes (from
                // this or any other worker) target the same index, and
                // every index is in bounds of `scratch`.
                unsafe { out.0.add(*slot as usize).write(*p) };
                *slot += 1;
            }
        });
    std::mem::swap(particles, scratch);
}

/// Fraction of particles whose successor lives in the same or the next
/// voxel — a locality metric used by the sorting ablation (E8).
pub fn locality_fraction(particles: &[Particle]) -> f64 {
    if particles.len() < 2 {
        return 1.0;
    }
    let near = particles
        .windows(2)
        .filter(|w| {
            let (a, b) = (w[0].i as i64, w[1].i as i64);
            (b - a).abs() <= 1
        })
        .count();
    near as f64 / (particles.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn sorts_by_voxel_and_is_stable() {
        let mut rng = Rng::seeded(3);
        let mut parts: Vec<Particle> = (0..1000)
            .map(|n| Particle {
                i: rng.index(50) as u32,
                w: n as f32,
                ..Default::default()
            })
            .collect();
        let reference = parts.clone();
        let mut scratch = Vec::new();
        sort_by_voxel(&mut parts, 50, &mut scratch);
        assert!(parts.windows(2).all(|w| w[0].i <= w[1].i));
        // Stability: same-voxel particles keep their original (w) order.
        for w in parts.windows(2) {
            if w[0].i == w[1].i {
                assert!(w[0].w < w[1].w);
            }
        }
        // Same multiset.
        let mut a: Vec<u32> = reference.iter().map(|p| p.w as u32).collect();
        let mut b: Vec<u32> = parts.iter().map(|p| p.w as u32).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut scratch = Vec::new();
        let mut none: Vec<Particle> = vec![];
        sort_by_voxel(&mut none, 10, &mut scratch);
        assert!(none.is_empty());
        let mut one = vec![Particle {
            i: 7,
            ..Default::default()
        }];
        sort_by_voxel(&mut one, 10, &mut scratch);
        assert_eq!(one[0].i, 7);
    }

    /// Plain textbook stable counting sort, used as the reference
    /// permutation for the parallel path.
    fn reference_sort(particles: &[Particle], n_voxels: usize) -> Vec<Particle> {
        let mut counts = vec![0u32; n_voxels + 1];
        for p in particles {
            counts[p.i as usize + 1] += 1;
        }
        for v in 0..n_voxels {
            counts[v + 1] += counts[v];
        }
        let mut out = vec![Particle::default(); particles.len()];
        for p in particles {
            let slot = &mut counts[p.i as usize];
            out[*slot as usize] = *p;
            *slot += 1;
        }
        out
    }

    #[test]
    fn any_worker_count_matches_reference_permutation() {
        let mut rng = Rng::seeded(21);
        let nv = 300;
        let parts: Vec<Particle> = (0..10_000)
            .map(|n| Particle {
                i: rng.index(nv) as u32,
                w: n as f32, // unique tag → permutation comparable exactly
                ux: rng.normal() as f32,
                ..Default::default()
            })
            .collect();
        let want = reference_sort(&parts, nv);
        for workers in [1usize, 2, 3, 5, 8, 16] {
            let mut got = parts.clone();
            let (mut scratch, mut counts) = (Vec::new(), Vec::new());
            crate::sort::sort_with_workers(&mut got, nv, &mut scratch, &mut counts, workers);
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn persistent_buffers_are_reused() {
        let mut rng = Rng::seeded(5);
        let mk = |rng: &mut Rng| -> Vec<Particle> {
            (0..2000)
                .map(|_| Particle {
                    i: rng.index(64) as u32,
                    ..Default::default()
                })
                .collect()
        };
        let (mut scratch, mut counts) = (Vec::new(), Vec::new());
        let mut a = mk(&mut rng);
        sort_by_voxel_with(&mut a, 64, &mut scratch, &mut counts);
        let (sc, cc) = (scratch.capacity(), counts.capacity());
        assert!(sc >= 2000 && cc >= 64);
        let mut b = mk(&mut rng);
        sort_by_voxel_with(&mut b, 64, &mut scratch, &mut counts);
        // Same-size follow-up sorts must not grow either buffer.
        assert_eq!(scratch.capacity(), sc);
        assert_eq!(counts.capacity(), cc);
        assert!(b.windows(2).all(|w| w[0].i <= w[1].i));
    }

    #[test]
    fn locality_improves_after_sort() {
        let mut rng = Rng::seeded(11);
        let mut parts: Vec<Particle> = (0..5000)
            .map(|_| Particle {
                i: rng.index(1000) as u32,
                ..Default::default()
            })
            .collect();
        let before = locality_fraction(&parts);
        let mut scratch = Vec::new();
        sort_by_voxel(&mut parts, 1000, &mut scratch);
        let after = locality_fraction(&parts);
        assert!(after > 0.9, "after = {after}");
        assert!(after > before);
    }
}
