//! Voxel-order particle sorting.
//!
//! VPIC counting-sorts each species by voxel index every few dozen steps so
//! the gather of interpolator data and the scatter into accumulators walk
//! memory almost sequentially — the paper credits this for keeping the
//! Cell SPE pipelines fed. The sort is O(N) and stable.

use crate::particle::Particle;

/// Stable counting sort of `particles` by voxel index. `n_voxels` is the
/// array size of the grid (ghosts included); `scratch` is reused capacity.
pub fn sort_by_voxel(particles: &mut Vec<Particle>, n_voxels: usize, scratch: &mut Vec<Particle>) {
    let n = particles.len();
    if n <= 1 {
        return;
    }
    let mut counts = vec![0u32; n_voxels + 1];
    for p in particles.iter() {
        counts[p.i as usize + 1] += 1;
    }
    for v in 0..n_voxels {
        counts[v + 1] += counts[v];
    }
    scratch.clear();
    scratch.resize(n, Particle::default());
    for p in particles.iter() {
        let slot = &mut counts[p.i as usize];
        scratch[*slot as usize] = *p;
        *slot += 1;
    }
    std::mem::swap(particles, scratch);
}

/// Fraction of particles whose successor lives in the same or the next
/// voxel — a locality metric used by the sorting ablation (E8).
pub fn locality_fraction(particles: &[Particle]) -> f64 {
    if particles.len() < 2 {
        return 1.0;
    }
    let near = particles
        .windows(2)
        .filter(|w| {
            let (a, b) = (w[0].i as i64, w[1].i as i64);
            (b - a).abs() <= 1
        })
        .count();
    near as f64 / (particles.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn sorts_by_voxel_and_is_stable() {
        let mut rng = Rng::seeded(3);
        let mut parts: Vec<Particle> = (0..1000)
            .map(|n| Particle {
                i: rng.index(50) as u32,
                w: n as f32,
                ..Default::default()
            })
            .collect();
        let reference = parts.clone();
        let mut scratch = Vec::new();
        sort_by_voxel(&mut parts, 50, &mut scratch);
        assert!(parts.windows(2).all(|w| w[0].i <= w[1].i));
        // Stability: same-voxel particles keep their original (w) order.
        for w in parts.windows(2) {
            if w[0].i == w[1].i {
                assert!(w[0].w < w[1].w);
            }
        }
        // Same multiset.
        let mut a: Vec<u32> = reference.iter().map(|p| p.w as u32).collect();
        let mut b: Vec<u32> = parts.iter().map(|p| p.w as u32).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut scratch = Vec::new();
        let mut none: Vec<Particle> = vec![];
        sort_by_voxel(&mut none, 10, &mut scratch);
        assert!(none.is_empty());
        let mut one = vec![Particle {
            i: 7,
            ..Default::default()
        }];
        sort_by_voxel(&mut one, 10, &mut scratch);
        assert_eq!(one[0].i, 7);
    }

    #[test]
    fn locality_improves_after_sort() {
        let mut rng = Rng::seeded(11);
        let mut parts: Vec<Particle> = (0..5000)
            .map(|_| Particle {
                i: rng.index(1000) as u32,
                ..Default::default()
            })
            .collect();
        let before = locality_fraction(&parts);
        let mut scratch = Vec::new();
        sort_by_voxel(&mut parts, 1000, &mut scratch);
        let after = locality_fraction(&parts);
        assert!(after > 0.9, "after = {after}");
        assert!(after > before);
    }
}
