//! Swappable particle storage: AoS (`Vec<Particle>`) or AoSoA blocks.
//!
//! [`ParticleStore`] is the layout abstraction every production consumer
//! goes through — `Species` owns one, the pushers dispatch on it, and the
//! checkpoint layer always serializes the canonical AoS view so dumps stay
//! layout-independent. Both backends hold the *same logical sequence* of
//! particles; conversion is lossless (a pure f32/u32 copy), which is what
//! makes AoS and AoSoA runs bit-identical.

use crate::aosoa::AosoaStore;
use crate::particle::Particle;

/// Particle memory layout selector (the `layout = aos|aosoa` deck knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Layout {
    /// Array-of-structures: one 32-byte `Particle` per element.
    #[default]
    Aos,
    /// Array-of-structures-of-arrays: blocks of [`crate::aosoa::LANES`]
    /// particles with each field contiguous across the block.
    Aosoa,
}

impl Layout {
    /// Parse a deck value (`"aos"` / `"aosoa"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Layout> {
        match s.trim().to_ascii_lowercase().as_str() {
            "aos" => Some(Layout::Aos),
            "aosoa" => Some(Layout::Aosoa),
            _ => None,
        }
    }

    /// Canonical deck spelling.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Aos => "aos",
            Layout::Aosoa => "aosoa",
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Layout-tagged particle storage. The logical contents (a sequence of
/// particles, indexable 0..len) are identical in both variants; only the
/// memory layout differs.
#[derive(Clone, Debug)]
pub enum ParticleStore {
    Aos(Vec<Particle>),
    Aosoa(AosoaStore),
}

impl Default for ParticleStore {
    fn default() -> Self {
        ParticleStore::Aos(Vec::new())
    }
}

/// Equality is *logical*: same particle sequence, layout ignored — so an
/// AoS run can be compared against its AoSoA twin directly.
impl PartialEq for ParticleStore {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl ParticleStore {
    /// New empty store in the given layout.
    pub fn new(layout: Layout) -> Self {
        match layout {
            Layout::Aos => ParticleStore::Aos(Vec::new()),
            Layout::Aosoa => ParticleStore::Aosoa(AosoaStore::default()),
        }
    }

    /// Build from an AoS vector (AoS wraps without copying).
    pub fn from_particles(parts: Vec<Particle>, layout: Layout) -> Self {
        match layout {
            Layout::Aos => ParticleStore::Aos(parts),
            Layout::Aosoa => ParticleStore::Aosoa(AosoaStore::from_particles(&parts)),
        }
    }

    /// Which layout this store uses.
    pub fn layout(&self) -> Layout {
        match self {
            ParticleStore::Aos(_) => Layout::Aos,
            ParticleStore::Aosoa(_) => Layout::Aosoa,
        }
    }

    /// Convert in place to `layout` (no-op when already there).
    pub fn convert(&mut self, layout: Layout) {
        if self.layout() == layout {
            return;
        }
        let parts = self.to_particles();
        *self = ParticleStore::from_particles(parts, layout);
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ParticleStore::Aos(v) => v.len(),
            ParticleStore::Aosoa(s) => s.len(),
        }
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all particles (keeps capacity).
    pub fn clear(&mut self) {
        match self {
            ParticleStore::Aos(v) => v.clear(),
            ParticleStore::Aosoa(s) => s.clear(),
        }
    }

    /// Reserve room for `additional` more particles.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            ParticleStore::Aos(v) => v.reserve(additional),
            ParticleStore::Aosoa(s) => s.reserve(additional),
        }
    }

    /// Copy out particle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        match self {
            ParticleStore::Aos(v) => v[i],
            ParticleStore::Aosoa(s) => s.get(i),
        }
    }

    /// Overwrite particle `i`.
    #[inline]
    pub fn set(&mut self, i: usize, p: Particle) {
        match self {
            ParticleStore::Aos(v) => v[i] = p,
            ParticleStore::Aosoa(s) => s.set(i, p),
        }
    }

    /// Voxel index of particle `i` (cheaper than a full [`Self::get`]).
    #[inline]
    pub fn voxel(&self, i: usize) -> u32 {
        match self {
            ParticleStore::Aos(v) => v[i].i,
            ParticleStore::Aosoa(s) => s.voxel(i),
        }
    }

    /// Append a particle.
    #[inline]
    pub fn push(&mut self, p: Particle) {
        match self {
            ParticleStore::Aos(v) => v.push(p),
            ParticleStore::Aosoa(s) => s.push(p),
        }
    }

    /// Append every particle of `it`.
    pub fn extend(&mut self, it: impl IntoIterator<Item = Particle>) {
        match self {
            ParticleStore::Aos(v) => v.extend(it),
            ParticleStore::Aosoa(s) => {
                for p in it {
                    s.push(p);
                }
            }
        }
    }

    /// Remove particle `i` by swapping in the last one; returns it.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        match self {
            ParticleStore::Aos(v) => v.swap_remove(i),
            ParticleStore::Aosoa(s) => s.swap_remove(i),
        }
    }

    /// Iterate particles by value in index order.
    pub fn iter(&self) -> StoreIter<'_> {
        match self {
            ParticleStore::Aos(v) => StoreIter::Aos(v.iter()),
            ParticleStore::Aosoa(s) => StoreIter::Aosoa { store: s, idx: 0 },
        }
    }

    /// Copy out the canonical AoS view (what checkpoints serialize).
    pub fn to_particles(&self) -> Vec<Particle> {
        match self {
            ParticleStore::Aos(v) => v.clone(),
            ParticleStore::Aosoa(s) => s.to_particles(),
        }
    }
}

/// By-value particle iterator over either backend.
pub enum StoreIter<'a> {
    Aos(std::slice::Iter<'a, Particle>),
    Aosoa { store: &'a AosoaStore, idx: usize },
}

impl Iterator for StoreIter<'_> {
    type Item = Particle;

    #[inline]
    fn next(&mut self) -> Option<Particle> {
        match self {
            StoreIter::Aos(it) => it.next().copied(),
            StoreIter::Aosoa { store, idx } => {
                if *idx < store.len() {
                    let p = store.get(*idx);
                    *idx += 1;
                    Some(p)
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            StoreIter::Aos(it) => it.len(),
            StoreIter::Aosoa { store, idx } => store.len() - *idx,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for StoreIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_particles(n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = Rng::seeded(seed);
        (0..n)
            .map(|k| Particle {
                dx: rng.uniform_in(-1.0, 1.0) as f32,
                dy: rng.uniform_in(-1.0, 1.0) as f32,
                dz: rng.uniform_in(-1.0, 1.0) as f32,
                i: k as u32,
                ux: rng.normal() as f32,
                uy: rng.normal() as f32,
                uz: rng.normal() as f32,
                w: 1.0,
            })
            .collect()
    }

    #[test]
    fn layout_parse_and_name() {
        assert_eq!(Layout::parse("aos"), Some(Layout::Aos));
        assert_eq!(Layout::parse(" AoSoA "), Some(Layout::Aosoa));
        assert_eq!(Layout::parse("simd"), None);
        assert_eq!(Layout::Aosoa.name(), "aosoa");
        assert_eq!(Layout::default(), Layout::Aos);
    }

    #[test]
    fn element_ops_match_across_layouts() {
        let parts = random_particles(21, 7);
        for layout in [Layout::Aos, Layout::Aosoa] {
            let mut st = ParticleStore::from_particles(parts.clone(), layout);
            assert_eq!(st.layout(), layout);
            assert_eq!(st.len(), 21);
            assert_eq!(st.to_particles(), parts);
            assert_eq!(st.iter().collect::<Vec<_>>(), parts);
            for (k, p) in parts.iter().enumerate() {
                assert_eq!(st.get(k), *p);
                assert_eq!(st.voxel(k), p.i);
            }
            let extra = Particle {
                i: 999,
                w: 2.0,
                ..Default::default()
            };
            st.push(extra);
            assert_eq!(st.len(), 22);
            assert_eq!(st.get(21), extra);
            let mut changed = parts[3];
            changed.ux = -5.0;
            st.set(3, changed);
            assert_eq!(st.get(3), changed);
            // swap_remove mirrors Vec::swap_remove semantics.
            let removed = st.swap_remove(0);
            assert_eq!(removed.i, parts[0].i);
            assert_eq!(st.get(0), extra);
            assert_eq!(st.len(), 21);
        }
    }

    #[test]
    fn conversion_roundtrip_is_lossless_and_eq_is_logical() {
        let parts = random_particles(37, 11);
        let aos = ParticleStore::from_particles(parts.clone(), Layout::Aos);
        let mut soa = ParticleStore::from_particles(parts, Layout::Aosoa);
        assert_eq!(aos, soa);
        soa.convert(Layout::Aos);
        assert_eq!(soa.layout(), Layout::Aos);
        assert_eq!(aos, soa);
        soa.convert(Layout::Aosoa);
        soa.convert(Layout::Aosoa); // no-op
        assert_eq!(aos.to_particles(), soa.to_particles());
    }

    #[test]
    fn swap_remove_sequences_match_vec_semantics() {
        let parts = random_particles(19, 3);
        let mut vec_ref = parts.clone();
        let mut soa = ParticleStore::from_particles(parts, Layout::Aosoa);
        for i in [5usize, 0, 10, 3, 3, 0] {
            assert_eq!(vec_ref.swap_remove(i), soa.swap_remove(i));
            assert_eq!(soa.to_particles(), vec_ref);
        }
    }
}
