//! Yee-mesh field storage.
//!
//! All components are stored as structure-of-arrays over voxels (ghost ring
//! included), mirroring VPIC's `field_array`. The Yee staggering convention,
//! with `(i,j,k)` the node at the low corner of voxel `(i,j,k)`:
//!
//! * `ex(i,j,k)` lives on the x-edge from node `(i,j,k)` to `(i+1,j,k)`,
//!   i.e. at `(i+½, j, k)`; `ey` and `ez` by cyclic rotation.
//! * `cbx(i,j,k)` (which stores `c·Bx`) lives on the x-face at
//!   `(i, j+½, k+½)`; `cby`, `cbz` by cyclic rotation.
//! * `jx`, `jy`, `jz` are collocated with `ex`, `ey`, `ez`.
//! * `rho` (diagnostic charge density) lives on nodes.

use crate::grid::Grid;

/// Structure-of-arrays Yee field state for one domain.
#[derive(Clone, Debug)]
pub struct FieldArray {
    pub ex: Vec<f32>,
    pub ey: Vec<f32>,
    pub ez: Vec<f32>,
    /// `c·B` components (VPIC convention: magnetic field premultiplied by c
    /// so the particle kernels never multiply by the speed of light).
    pub cbx: Vec<f32>,
    pub cby: Vec<f32>,
    pub cbz: Vec<f32>,
    pub jx: Vec<f32>,
    pub jy: Vec<f32>,
    pub jz: Vec<f32>,
    /// Node-centered charge density; only filled by diagnostics /
    /// divergence cleaning passes.
    pub rho: Vec<f32>,
}

impl FieldArray {
    /// Zero-initialized fields for `grid`.
    pub fn new(grid: &Grid) -> Self {
        let n = grid.n_voxels();
        FieldArray {
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            ez: vec![0.0; n],
            cbx: vec![0.0; n],
            cby: vec![0.0; n],
            cbz: vec![0.0; n],
            jx: vec![0.0; n],
            jy: vec![0.0; n],
            jz: vec![0.0; n],
            rho: vec![0.0; n],
        }
    }

    /// Set the current density to zero (called before each deposition).
    pub fn clear_currents(&mut self) {
        self.jx.iter_mut().for_each(|v| *v = 0.0);
        self.jy.iter_mut().for_each(|v| *v = 0.0);
        self.jz.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Set the diagnostic charge density to zero.
    pub fn clear_rho(&mut self) {
        self.rho.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Electric field energy `½ε0 ∫E² dV`, summed over live Yee locations
    /// in double precision.
    pub fn energy_e(&self, g: &Grid) -> f64 {
        let mut sum = 0.0f64;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    sum += self.ex[v] as f64 * self.ex[v] as f64;
                    sum += self.ey[v] as f64 * self.ey[v] as f64;
                    sum += self.ez[v] as f64 * self.ez[v] as f64;
                }
            }
        }
        0.5 * g.eps0 as f64 * sum * g.dv() as f64
    }

    /// Magnetic field energy `½ ∫ B²/μ0 dV = ½ε0 ∫(cB)² dV`.
    pub fn energy_b(&self, g: &Grid) -> f64 {
        let mut sum = 0.0f64;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    sum += self.cbx[v] as f64 * self.cbx[v] as f64;
                    sum += self.cby[v] as f64 * self.cby[v] as f64;
                    sum += self.cbz[v] as f64 * self.cbz[v] as f64;
                }
            }
        }
        0.5 * g.eps0 as f64 * sum * g.dv() as f64
    }

    /// Total charge on live nodes (uses the diagnostic `rho`; call a charge
    /// deposition first).
    pub fn total_rho(&self, g: &Grid) -> f64 {
        let mut sum = 0.0f64;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    sum += self.rho[g.voxel(i, j, k)] as f64;
                }
            }
        }
        sum * g.dv() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn energies_of_uniform_fields() {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for k in 1..=4 {
            for j in 1..=4 {
                for i in 1..=4 {
                    let v = g.voxel(i, j, k);
                    f.ex[v] = 2.0;
                    f.cbz[v] = 3.0;
                }
            }
        }
        let vol = 64.0 * 0.125;
        assert!((f.energy_e(&g) - 0.5 * 4.0 * vol).abs() < 1e-9);
        assert!((f.energy_b(&g) - 0.5 * 9.0 * vol).abs() < 1e-9);
    }

    #[test]
    fn clear_currents_zeroes_only_j() {
        let g = Grid::periodic((2, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        f.jx[5] = 1.0;
        f.ex[5] = 1.0;
        f.clear_currents();
        assert_eq!(f.jx[5], 0.0);
        assert_eq!(f.ex[5], 1.0);
    }
}
