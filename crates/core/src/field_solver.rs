//! Explicit FDTD Maxwell solver on the Yee mesh, plus the ghost-plane
//! synchronization that implements field boundary conditions and the
//! Marder divergence-cleaning passes VPIC applies periodically.
//!
//! Update scheme per PIC step (see [`crate::sim`]):
//! `B` half step → particle advance (deposits `J`) → `B` half step →
//! `E` full step. Both `E` and `B` are then known at integer time levels
//! when the particle interpolation happens.
//!
//! All equations use VPIC's `cB` convention (`cbx = c·Bx`, …):
//!
//! ```text
//! ∂(cB)/∂t = −c ∇×E
//! ∂E/∂t    =  c ∇×(cB) − J/ε0
//! ```

use crate::field::FieldArray;
use crate::grid::Grid;
use rayon::prelude::*;

/// Field boundary condition on one domain face.
///
/// * `Periodic` identifies the `n+1` node plane with plane `1` (must be
///   set on *both* faces of an axis).
/// * `Pec` (perfect electric conductor) zeroes tangential `E` and normal
///   `B` on the wall plane. Combine with a [`Sponge`]
///   (see [`crate::sponge`]) to emulate an open boundary.
/// * `Exchange` leaves the face's ghost planes untouched; an external
///   layer (the `vpic-parallel` ghost exchange) fills them from the
///   adjacent domain after every field update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldBc {
    Periodic,
    Pec,
    Exchange,
}

/// Per-face field boundary conditions (VPIC face order: −x,−y,−z,+x,+y,+z).
pub type FieldBcs = [FieldBc; 6];

/// Advance `cB` by `frac·dt` (call with `frac = 0.5` twice per step).
///
/// The Yee update is parallelized over z-slabs: slab `k` writes only its
/// own `cB` entries and reads `E` at `v`, `v+1`, `v+dj`, `v+dk` (shared,
/// immutable during the update), so slabs are independent and the result
/// is bitwise identical to [`advance_b_serial`] for any worker count. The
/// ghost sync stays serial (it is a few planes of copies).
pub fn advance_b(f: &mut FieldArray, g: &Grid, frac: f32) {
    let (cdtx, cdty, cdtz) = (
        g.cvac * frac * g.dt / g.dx,
        g.cvac * frac * g.dt / g.dy,
        g.cvac * frac * g.dt / g.dz,
    );
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let FieldArray {
        ref ex,
        ref ey,
        ref ez,
        ref mut cbx,
        ref mut cby,
        ref mut cbz,
        ..
    } = *f;
    cbx.par_chunks_mut(dk)
        .zip(cby.par_chunks_mut(dk))
        .zip(cbz.par_chunks_mut(dk))
        .enumerate()
        .skip(1)
        .take(g.nz)
        .for_each(|(k, ((bx, by), bz))| {
            for j in 1..=g.ny {
                let row = g.voxel(1, j, k);
                for v in row..row + g.nx {
                    let l = v - k * dk;
                    // cbx -= cΔt[(∂y ez) − (∂z ey)]
                    bx[l] -= cdty * (ez[v + dj] - ez[v]) - cdtz * (ey[v + dk] - ey[v]);
                    // cby -= cΔt[(∂z ex) − (∂x ez)]
                    by[l] -= cdtz * (ex[v + dk] - ex[v]) - cdtx * (ez[v + 1] - ez[v]);
                    // cbz -= cΔt[(∂x ey) − (∂y ex)]
                    bz[l] -= cdtx * (ey[v + 1] - ey[v]) - cdty * (ex[v + dj] - ex[v]);
                }
            }
        });
    sync_b(f, g, bcs_of(g));
}

/// Serial reference for [`advance_b`].
pub fn advance_b_serial(f: &mut FieldArray, g: &Grid, frac: f32) {
    let (cdtx, cdty, cdtz) = (
        g.cvac * frac * g.dt / g.dx,
        g.cvac * frac * g.dt / g.dy,
        g.cvac * frac * g.dt / g.dz,
    );
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            let row = g.voxel(1, j, k);
            for v in row..row + g.nx {
                f.cbx[v] -= cdty * (f.ez[v + dj] - f.ez[v]) - cdtz * (f.ey[v + dk] - f.ey[v]);
                f.cby[v] -= cdtz * (f.ex[v + dk] - f.ex[v]) - cdtx * (f.ez[v + 1] - f.ez[v]);
                f.cbz[v] -= cdtx * (f.ey[v + 1] - f.ey[v]) - cdty * (f.ex[v + dj] - f.ex[v]);
            }
        }
    }
    sync_b(f, g, bcs_of(g));
}

/// Advance `E` by a full `dt` using the currents in `f.jx/jy/jz`.
///
/// Parallelized over z-slabs like [`advance_b`]: slab `k` writes its own
/// `E` entries and reads `cB` at `v`, `v-1`, `v-dj`, `v-dk` plus `J` at
/// `v`, so slabs are independent and results match [`advance_e_serial`]
/// bitwise.
pub fn advance_e(f: &mut FieldArray, g: &Grid) {
    let (cdtx, cdty, cdtz) = (
        g.cvac * g.dt / g.dx,
        g.cvac * g.dt / g.dy,
        g.cvac * g.dt / g.dz,
    );
    let dt_eps = g.dt / g.eps0;
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let FieldArray {
        ref mut ex,
        ref mut ey,
        ref mut ez,
        ref cbx,
        ref cby,
        ref cbz,
        ref jx,
        ref jy,
        ref jz,
        ..
    } = *f;
    ex.par_chunks_mut(dk)
        .zip(ey.par_chunks_mut(dk))
        .zip(ez.par_chunks_mut(dk))
        .enumerate()
        .skip(1)
        .take(g.nz)
        .for_each(|(k, ((exk, eyk), ezk))| {
            for j in 1..=g.ny {
                let row = g.voxel(1, j, k);
                for v in row..row + g.nx {
                    let l = v - k * dk;
                    exk[l] += cdty * (cbz[v] - cbz[v - dj])
                        - cdtz * (cby[v] - cby[v - dk])
                        - dt_eps * jx[v];
                    eyk[l] += cdtz * (cbx[v] - cbx[v - dk])
                        - cdtx * (cbz[v] - cbz[v - 1])
                        - dt_eps * jy[v];
                    ezk[l] += cdtx * (cby[v] - cby[v - 1])
                        - cdty * (cbx[v] - cbx[v - dj])
                        - dt_eps * jz[v];
                }
            }
        });
    sync_e(f, g, bcs_of(g));
}

/// Serial reference for [`advance_e`].
pub fn advance_e_serial(f: &mut FieldArray, g: &Grid) {
    let (cdtx, cdty, cdtz) = (
        g.cvac * g.dt / g.dx,
        g.cvac * g.dt / g.dy,
        g.cvac * g.dt / g.dz,
    );
    let dt_eps = g.dt / g.eps0;
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            let row = g.voxel(1, j, k);
            for v in row..row + g.nx {
                f.ex[v] += cdty * (f.cbz[v] - f.cbz[v - dj])
                    - cdtz * (f.cby[v] - f.cby[v - dk])
                    - dt_eps * f.jx[v];
                f.ey[v] += cdtz * (f.cbx[v] - f.cbx[v - dk])
                    - cdtx * (f.cbz[v] - f.cbz[v - 1])
                    - dt_eps * f.jy[v];
                f.ez[v] += cdtx * (f.cby[v] - f.cby[v - 1])
                    - cdty * (f.cbx[v] - f.cbx[v - dj])
                    - dt_eps * f.jz[v];
            }
        }
    }
    sync_e(f, g, bcs_of(g));
}

/// Derive the field BCs from the grid's particle BCs: periodic particle
/// faces get periodic fields, `Migrate` faces get `Exchange` (ghosts filled
/// by the distributed layer), everything else gets PEC walls (open
/// boundaries are built as PEC + sponge + antenna in `vpic-lpi`).
pub fn bcs_of(g: &Grid) -> FieldBcs {
    use crate::grid::ParticleBc;
    let bcs = g.bc.map(|b| match b {
        ParticleBc::Periodic => FieldBc::Periodic,
        ParticleBc::Migrate => FieldBc::Exchange,
        ParticleBc::Reflect | ParticleBc::Absorb => FieldBc::Pec,
    });
    for axis in 0..3 {
        let paired = (bcs[axis] == FieldBc::Periodic) == (bcs[axis + 3] == FieldBc::Periodic);
        assert!(
            paired,
            "periodic field BC must be set on both faces of axis {axis}"
        );
    }
    bcs
}

fn n_of(g: &Grid, axis: usize) -> usize {
    [g.nx, g.ny, g.nz][axis]
}

/// Copy the full (ghost-inclusive) plane `src` to plane `dst` along `axis`.
pub(crate) fn copy_plane(arr: &mut [f32], g: &Grid, axis: usize, src: usize, dst: usize) {
    let (sx, sy, sz) = g.strides();
    let dims = [sx, sy, sz];
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    for c2 in 0..dims[a2] {
        for c1 in 0..dims[a1] {
            let mut cs = [0usize; 3];
            cs[a1] = c1;
            cs[a2] = c2;
            cs[axis] = src;
            let s = g.voxel(cs[0], cs[1], cs[2]);
            cs[axis] = dst;
            let d = g.voxel(cs[0], cs[1], cs[2]);
            arr[d] = arr[s];
        }
    }
}

/// Add the full plane `src` into plane `dst` along `axis` (used to fold
/// ghost-deposited currents/charge back into live entries).
pub(crate) fn fold_plane(arr: &mut [f32], g: &Grid, axis: usize, src: usize, dst: usize) {
    let (sx, sy, sz) = g.strides();
    let dims = [sx, sy, sz];
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    for c2 in 0..dims[a2] {
        for c1 in 0..dims[a1] {
            let mut cs = [0usize; 3];
            cs[a1] = c1;
            cs[a2] = c2;
            cs[axis] = src;
            let s = g.voxel(cs[0], cs[1], cs[2]);
            cs[axis] = dst;
            let d = g.voxel(cs[0], cs[1], cs[2]);
            arr[d] += arr[s];
        }
    }
}

/// Zero the full plane `idx` along `axis`.
fn zero_plane(arr: &mut [f32], g: &Grid, axis: usize, idx: usize) {
    let (sx, sy, sz) = g.strides();
    let dims = [sx, sy, sz];
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    for c2 in 0..dims[a2] {
        for c1 in 0..dims[a1] {
            let mut cs = [0usize; 3];
            cs[a1] = c1;
            cs[a2] = c2;
            cs[axis] = idx;
            arr[g.voxel(cs[0], cs[1], cs[2])] = 0.0;
        }
    }
}

/// Re-establish `E` ghost/boundary planes after an `E` update.
///
/// Each `E` component lives on edges along its own axis and node planes on
/// the two transverse axes; periodic axes mirror node plane `1` to `n+1`,
/// PEC faces zero tangential `E` on their wall plane, `Exchange` faces are
/// left for the distributed ghost exchange.
pub fn sync_e(f: &mut FieldArray, g: &Grid, bcs: FieldBcs) {
    for axis in 0..3 {
        let n = n_of(g, axis);
        // Components transverse to `axis` are node-registered along it.
        let comps: [&mut Vec<f32>; 2] = match axis {
            0 => [&mut f.ey, &mut f.ez],
            1 => [&mut f.ex, &mut f.ez],
            _ => [&mut f.ex, &mut f.ey],
        };
        let (lo, hi) = (bcs[axis], bcs[axis + 3]);
        for c in comps {
            if lo == FieldBc::Periodic {
                copy_plane(c, g, axis, 1, n + 1);
                copy_plane(c, g, axis, n, 0);
                continue;
            }
            if lo == FieldBc::Pec {
                zero_plane(c, g, axis, 1);
                zero_plane(c, g, axis, 0);
            }
            if hi == FieldBc::Pec {
                zero_plane(c, g, axis, n + 1);
            }
        }
        // The component along `axis` is cell-registered along it; the
        // solver never reads its own-axis ghosts, but the Gauss-law
        // divergence stencil reads plane 0 at the first node plane, so
        // mirror the periodic images (as `sync_j` does for `J`).
        let own: &mut Vec<f32> = match axis {
            0 => &mut f.ex,
            1 => &mut f.ey,
            _ => &mut f.ez,
        };
        if lo == FieldBc::Periodic {
            copy_plane(own, g, axis, n, 0);
            copy_plane(own, g, axis, 1, n + 1);
        }
    }
}

/// Re-establish `cB` ghost/boundary planes after a `B` update.
///
/// Each `cB` component is face-registered (node plane) along its own axis
/// and cell-registered along the transverse axes: along its own axis a
/// periodic BC mirrors plane `1 → n+1`, along transverse axes the ghost-low
/// plane `0` is filled from plane `n` and ghost-high `n+1` from plane `1`.
/// `Exchange` faces are left for the distributed ghost exchange.
pub fn sync_b(f: &mut FieldArray, g: &Grid, bcs: FieldBcs) {
    for axis in 0..3 {
        let n = n_of(g, axis);
        let (lo, hi) = (bcs[axis], bcs[axis + 3]);
        let own: &mut Vec<f32> = match axis {
            0 => &mut f.cbx,
            1 => &mut f.cby,
            _ => &mut f.cbz,
        };
        if lo == FieldBc::Periodic {
            copy_plane(own, g, axis, 1, n + 1);
            copy_plane(own, g, axis, n, 0);
        } else {
            // Normal B vanishes on a conducting wall.
            if lo == FieldBc::Pec {
                zero_plane(own, g, axis, 1);
                zero_plane(own, g, axis, 0);
            }
            if hi == FieldBc::Pec {
                zero_plane(own, g, axis, n + 1);
            }
        }
        let transverse: [&mut Vec<f32>; 2] = match axis {
            0 => [&mut f.cby, &mut f.cbz],
            1 => [&mut f.cbx, &mut f.cbz],
            _ => [&mut f.cbx, &mut f.cby],
        };
        for c in transverse {
            if lo == FieldBc::Periodic {
                copy_plane(c, g, axis, n, 0);
                copy_plane(c, g, axis, 1, n + 1);
                continue;
            }
            // Mirror so tangential B has zero normal derivative at the
            // wall (image currents); adequate for the sponge-backed
            // walls used by the LPI setups.
            if lo == FieldBc::Pec {
                copy_plane(c, g, axis, 1, 0);
            }
            if hi == FieldBc::Pec {
                copy_plane(c, g, axis, n, n + 1);
            }
        }
    }
}

/// Fold ghost-plane current deposits into live entries and mirror the
/// periodic images so `J` is single-valued on identified edges.
pub fn sync_j(f: &mut FieldArray, g: &Grid, bcs: FieldBcs) {
    for axis in 0..3 {
        let n = n_of(g, axis);
        // Components transverse to `axis` are node-registered along it and
        // receive deposits on plane n+1 that alias plane 1 when periodic.
        let comps: [&mut Vec<f32>; 2] = match axis {
            0 => [&mut f.jy, &mut f.jz],
            1 => [&mut f.jx, &mut f.jz],
            _ => [&mut f.jx, &mut f.jy],
        };
        if bcs[axis] == FieldBc::Periodic && bcs[axis + 3] == FieldBc::Periodic {
            for c in comps {
                fold_plane(c, g, axis, n + 1, 1);
                copy_plane(c, g, axis, 1, n + 1);
                copy_plane(c, g, axis, n, 0);
            }
        }
        // The component along `axis` is cell-registered along it; particles
        // never deposit into its ghost planes, but divergence diagnostics
        // read plane 0, so mirror it for periodic axes.
        let own: &mut Vec<f32> = match axis {
            0 => &mut f.jx,
            1 => &mut f.jy,
            _ => &mut f.jz,
        };
        if bcs[axis] == FieldBc::Periodic && bcs[axis + 3] == FieldBc::Periodic {
            copy_plane(own, g, axis, n, 0);
            copy_plane(own, g, axis, 1, n + 1);
        }
    }
}

/// Fold ghost-plane charge deposits (node-centered `rho`) into live nodes
/// and mirror the periodic images.
pub fn sync_rho(f: &mut FieldArray, g: &Grid, bcs: FieldBcs) {
    for axis in 0..3 {
        let n = n_of(g, axis);
        if bcs[axis] == FieldBc::Periodic && bcs[axis + 3] == FieldBc::Periodic {
            fold_plane(&mut f.rho, g, axis, n + 1, 1);
            copy_plane(&mut f.rho, g, axis, 1, n + 1);
            copy_plane(&mut f.rho, g, axis, n, 0);
        }
    }
}

/// Node-centered divergence error `∇·E − ρ/ε0`; nodes `1..=n` along each
/// axis (periodic images are implied). Returns the RMS over live nodes.
pub fn compute_div_e_err(f: &FieldArray, g: &Grid, err: &mut Vec<f32>) -> f64 {
    err.clear();
    err.resize(g.n_voxels(), 0.0);
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
    let mut sum2 = 0.0f64;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                let d = rdx * (f.ex[v] - f.ex[v - 1])
                    + rdy * (f.ey[v] - f.ey[v - dj])
                    + rdz * (f.ez[v] - f.ez[v - dk])
                    - f.rho[v] / g.eps0;
                err[v] = d;
                sum2 += (d as f64) * (d as f64);
            }
        }
    }
    (sum2 / g.n_live() as f64).sqrt()
}

/// Mirror the node-centered `∇·E` error field on locally periodic axes so
/// the `n+1` ghost planes (read by [`apply_marder_e`]'s forward gradient)
/// are valid. Distributed domains fill `Exchange` axes via ghost exchange
/// instead.
pub fn mirror_div_e_err(err: &mut [f32], g: &Grid, bcs: FieldBcs) {
    for (axis, &bc) in bcs.iter().enumerate().take(3) {
        if bc == FieldBc::Periodic {
            let n = n_of(g, axis);
            copy_plane(err, g, axis, 1, n + 1);
        }
    }
}

/// The Marder correction `E += κ ∇err` over live voxels, with κ chosen
/// for diffusive stability. Does *not* refresh ghost planes afterwards —
/// callers follow with [`sync_e`] (serial) or a ghost exchange
/// (distributed).
pub fn apply_marder_e(f: &mut FieldArray, g: &Grid, err: &[f32]) {
    let inv2 = 1.0 / (g.dx * g.dx) + 1.0 / (g.dy * g.dy) + 1.0 / (g.dz * g.dz);
    // Half the diffusive-stability limit: at the limit (0.5/inv2) the
    // Nyquist checkerboard mode has amplification factor −1 and never
    // decays; at half, it is killed in one pass and every other mode is
    // strictly damped.
    let kappa = 0.25 / inv2;
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                f.ex[v] += kappa * (err[v + 1] - err[v]) / g.dx;
                f.ey[v] += kappa * (err[v + dj] - err[v]) / g.dy;
                f.ez[v] += kappa * (err[v + dk] - err[v]) / g.dz;
            }
        }
    }
}

/// One Marder pass: `E += κ ∇(∇·E − ρ/ε0)` with κ chosen for diffusive
/// stability. Requires `f.rho` to hold the current charge density (call a
/// charge deposition + [`sync_rho`] first). Returns the pre-pass RMS error.
pub fn clean_div_e(f: &mut FieldArray, g: &Grid, scratch: &mut Vec<f32>) -> f64 {
    let bcs = bcs_of(g);
    let rms = compute_div_e_err(f, g, scratch);
    mirror_div_e_err(scratch, g, bcs);
    apply_marder_e(f, g, scratch);
    sync_e(f, g, bcs);
    rms
}

/// Cell-centered `∇·B` (in `cB` units); returns the RMS over live cells.
/// FDTD preserves `∇·B = 0` to roundoff, so this is a structural check and
/// the repair pass below exists for parity with VPIC's `clean_div_b`.
pub fn compute_div_b_err(f: &FieldArray, g: &Grid, err: &mut Vec<f32>) -> f64 {
    err.clear();
    err.resize(g.n_voxels(), 0.0);
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let mut sum2 = 0.0f64;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                let d = (f.cbx[v + 1] - f.cbx[v]) / g.dx
                    + (f.cby[v + dj] - f.cby[v]) / g.dy
                    + (f.cbz[v + dk] - f.cbz[v]) / g.dz;
                err[v] = d;
                sum2 += (d as f64) * (d as f64);
            }
        }
    }
    (sum2 / g.n_live() as f64).sqrt()
}

/// Mirror the cell-centered `∇·B` error field on locally periodic axes so
/// the `0` ghost planes (read by [`apply_marder_b`]'s backward gradient)
/// are valid.
pub fn mirror_div_b_err(err: &mut [f32], g: &Grid, bcs: FieldBcs) {
    for (axis, &bc) in bcs.iter().enumerate().take(3) {
        if bc == FieldBc::Periodic {
            let n = n_of(g, axis);
            copy_plane(err, g, axis, n, 0);
        }
    }
}

/// The Marder correction on `B` over live voxels (cell-centered error,
/// gradient back to faces). Callers refresh ghosts afterwards with
/// [`sync_b`] or a ghost exchange.
pub fn apply_marder_b(f: &mut FieldArray, g: &Grid, err: &[f32]) {
    let inv2 = 1.0 / (g.dx * g.dx) + 1.0 / (g.dy * g.dy) + 1.0 / (g.dz * g.dz);
    // Half the stability limit — see `apply_marder_e` on the Nyquist mode.
    let kappa = 0.25 / inv2;
    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                f.cbx[v] += kappa * (err[v] - err[v - 1]) / g.dx;
                f.cby[v] += kappa * (err[v] - err[v - dj]) / g.dy;
                f.cbz[v] += kappa * (err[v] - err[v - dk]) / g.dz;
            }
        }
    }
}

/// One Marder pass on `B`: `cB −= κ ∇(∇·cB)` (cell-centered error,
/// gradient back to faces). Returns the pre-pass RMS error.
pub fn clean_div_b(f: &mut FieldArray, g: &Grid, scratch: &mut Vec<f32>) -> f64 {
    let bcs = bcs_of(g);
    let rms = compute_div_b_err(f, g, scratch);
    mirror_div_b_err(scratch, g, bcs);
    apply_marder_b(f, g, scratch);
    sync_b(f, g, bcs);
    rms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn plane_wave_grid(n: usize) -> Grid {
        let dx = 1.0 / n as f32;
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.5);
        Grid::periodic((n, 1, 1), (dx, dx, dx), dt)
    }

    /// A uniform `E` on a periodic box is divergence-free; the stencil at
    /// the first node plane reads the own-axis component's ghost plane 0,
    /// which `sync_e` must mirror from plane `n`.
    #[test]
    fn uniform_e_has_zero_divergence_after_sync() {
        let g = Grid::periodic((8, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    f.ex[v] = 1.0;
                    f.ey[v] = 2.0;
                    f.ez[v] = 3.0;
                }
            }
        }
        sync_e(&mut f, &g, bcs_of(&g));
        let mut scratch = Vec::new();
        let rms = compute_div_e_err(&f, &g, &mut scratch);
        assert!(rms < 1e-12, "uniform field has divergence rms {rms}");
    }

    /// Launch an x-propagating plane wave (Ey, cBz) and check it advects at
    /// (numerical) light speed with stable amplitude.
    #[test]
    fn vacuum_plane_wave_propagates() {
        let n = 64;
        let g = plane_wave_grid(n);
        let mut f = FieldArray::new(&g);
        let kx = 2.0 * PI; // one wavelength across the unit box
        for i in 1..=n {
            let x_node = (i - 1) as f64 * g.dx as f64;
            let x_edge = x_node + 0.5 * g.dx as f64;
            for j in 0..g.strides().1 {
                for k in 0..g.strides().2 {
                    let v = g.voxel(i, j, k);
                    f.ey[v] = (kx * x_node).sin() as f32;
                    // cBz staggered by dx/2 in space and dt/2 in time.
                    f.cbz[v] = (kx * (x_edge + 0.5 * g.dt as f64)).sin() as f32;
                }
            }
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let e0 = f.energy_e(&g) + f.energy_b(&g);
        // One full crossing of the box takes 1/c = 1 time unit.
        let steps = (1.0 / g.dt as f64).round() as usize;
        for _ in 0..steps {
            advance_b(&mut f, &g, 0.5);
            advance_b(&mut f, &g, 0.5);
            advance_e(&mut f, &g);
        }
        let e1 = f.energy_e(&g) + f.energy_b(&g);
        assert!((e1 - e0).abs() / e0 < 1e-3, "energy drift: {e0} -> {e1}");
        // Wave should be close to its initial phase (small numerical
        // dispersion at 64 cells/wavelength).
        let v = g.voxel(9, 1, 1);
        let want = (kx * 8.0 * g.dx as f64).sin() as f32;
        assert!(
            (f.ey[v] - want).abs() < 0.05,
            "got {} want {}",
            f.ey[v],
            want
        );
    }

    #[test]
    fn div_b_stays_zero() {
        let n = 16;
        let dx = 0.3;
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
        let g = Grid::periodic((n, n, n), (dx, dx, dx), dt);
        let mut f = FieldArray::new(&g);
        // Random-ish but smooth E seed.
        for k in 1..=n {
            for j in 1..=n {
                for i in 1..=n {
                    let v = g.voxel(i, j, k);
                    let (a, b, c) = (i as f32, j as f32, k as f32);
                    f.ex[v] = (0.3 * a + 0.11 * b).sin();
                    f.ey[v] = (0.2 * b - 0.07 * c).cos();
                    f.ez[v] = (0.15 * c + 0.05 * a).sin();
                }
            }
        }
        sync_e(&mut f, &g, bcs_of(&g));
        let mut scratch = Vec::new();
        for _ in 0..20 {
            advance_b(&mut f, &g, 0.5);
            advance_b(&mut f, &g, 0.5);
            advance_e(&mut f, &g);
        }
        let rms = compute_div_b_err(&f, &g, &mut scratch);
        assert!(rms < 1e-5, "div B rms = {rms}");
    }

    #[test]
    fn marder_pass_reduces_div_e_error() {
        let n = 16;
        let g = Grid::periodic((n, n, n), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        // Seed a divergence error: rho = 0 but E has nonzero divergence.
        for k in 1..=n {
            for j in 1..=n {
                for i in 1..=n {
                    let v = g.voxel(i, j, k);
                    f.ex[v] = ((i as f32) * 0.7).sin();
                }
            }
        }
        sync_e(&mut f, &g, bcs_of(&g));
        let mut scratch = Vec::new();
        let before = compute_div_e_err(&f, &g, &mut scratch);
        let mut last = before;
        for _ in 0..50 {
            clean_div_e(&mut f, &g, &mut scratch);
        }
        let after = compute_div_e_err(&f, &g, &mut scratch);
        assert!(after < 0.2 * before, "marder: {before} -> {after}");
        last = last.max(after);
        assert!(last.is_finite());
    }

    #[test]
    fn pec_walls_zero_tangential_e() {
        use crate::grid::ParticleBc;
        let g = Grid::new(
            (8, 4, 4),
            (0.5, 0.5, 0.5),
            0.1,
            [
                ParticleBc::Reflect,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
                ParticleBc::Reflect,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
            ],
        );
        assert_eq!(
            bcs_of(&g),
            [
                FieldBc::Pec,
                FieldBc::Periodic,
                FieldBc::Periodic,
                FieldBc::Pec,
                FieldBc::Periodic,
                FieldBc::Periodic,
            ]
        );
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ey[v] = 1.0;
            f.ez[v] = 1.0;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        for j in 1..=g.ny {
            for k in 1..=g.nz {
                assert_eq!(f.ey[g.voxel(1, j, k)], 0.0);
                assert_eq!(f.ez[g.voxel(1, j, k)], 0.0);
                assert_eq!(f.ey[g.voxel(g.nx + 1, j, k)], 0.0);
                assert_eq!(f.ez[g.voxel(g.nx + 1, j, k)], 0.0);
            }
        }
    }

    #[test]
    fn sync_j_folds_periodic_images() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let mut f = FieldArray::new(&g);
        // Deposit onto the aliased high plane and check it folds into plane 1.
        let v_hi = g.voxel(2, g.ny + 1, 2);
        let v_lo = g.voxel(2, 1, 2);
        f.jx[v_hi] = 2.0;
        f.jx[v_lo] = 1.0;
        sync_j(&mut f, &g, bcs_of(&g));
        assert_eq!(f.jx[v_lo], 3.0);
        assert_eq!(f.jx[v_hi], 3.0); // mirrored image
    }
}
