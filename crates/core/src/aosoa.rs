//! AoSoA ("array of structures of arrays") particle storage and push —
//! the SIMD blocking VPIC used to feed the Cell SPEs' 4-wide single
//! precision pipelines. Particles are stored in blocks of [`LANES`] with
//! each field contiguous across the block, so the hot loop is expressible
//! as straight-line lane arithmetic the autovectorizer can turn into
//! packed instructions. Used by the E8 layout ablation against the 32-byte
//! AoS baseline.

use crate::accumulator::AccumulatorArray;
use crate::grid::Grid;
use crate::interpolator::InterpolatorArray;
use crate::particle::{Mover, Particle};
use crate::push::{move_p_local, MoveOutcome, PushCoefficients};

/// Lanes per block (the Cell SPE was 4-wide; 8 suits AVX hosts).
pub const LANES: usize = 8;

/// One block of `LANES` particles, SoA inside.
#[derive(Clone, Debug)]
pub struct Block {
    pub dx: [f32; LANES],
    pub dy: [f32; LANES],
    pub dz: [f32; LANES],
    pub i: [u32; LANES],
    pub ux: [f32; LANES],
    pub uy: [f32; LANES],
    pub uz: [f32; LANES],
    pub w: [f32; LANES],
}

impl Default for Block {
    fn default() -> Self {
        Block {
            dx: [0.0; LANES],
            dy: [0.0; LANES],
            dz: [0.0; LANES],
            i: [0; LANES],
            ux: [0.0; LANES],
            uy: [0.0; LANES],
            uz: [0.0; LANES],
            w: [0.0; LANES],
        }
    }
}

/// AoSoA particle store.
#[derive(Clone, Debug, Default)]
pub struct AosoaStore {
    pub blocks: Vec<Block>,
    len: usize,
}

impl AosoaStore {
    /// Convert from an AoS slice (tail lanes are zero-weight no-ops).
    pub fn from_particles(parts: &[Particle]) -> Self {
        let mut store = AosoaStore {
            blocks: Vec::with_capacity(parts.len().div_ceil(LANES)),
            len: parts.len(),
        };
        for chunk in parts.chunks(LANES) {
            let mut b = Block::default();
            for (l, p) in chunk.iter().enumerate() {
                b.dx[l] = p.dx;
                b.dy[l] = p.dy;
                b.dz[l] = p.dz;
                b.i[l] = p.i;
                b.ux[l] = p.ux;
                b.uy[l] = p.uy;
                b.uz[l] = p.uz;
                b.w[l] = p.w;
            }
            // Park unused lanes on a valid voxel with zero weight.
            for l in chunk.len()..LANES {
                b.i[l] = chunk[0].i;
            }
            store.blocks.push(b);
        }
        store
    }

    /// Number of real particles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Convert back to AoS.
    pub fn to_particles(&self) -> Vec<Particle> {
        let mut out = Vec::with_capacity(self.len);
        'outer: for b in &self.blocks {
            for l in 0..LANES {
                if out.len() == self.len {
                    break 'outer;
                }
                out.push(Particle {
                    dx: b.dx[l],
                    dy: b.dy[l],
                    dz: b.dz[l],
                    i: b.i[l],
                    ux: b.ux[l],
                    uy: b.uy[l],
                    uz: b.uz[l],
                    w: b.w[l],
                });
            }
        }
        out
    }
}

/// AoSoA particle advance: lane-parallel interpolate/Boris/move with a
/// scalar fallback through `move_p_local` for the (rare) lanes that cross
/// a voxel face. Periodic/reflect topologies only (no migrate faces);
/// physics identical to `advance_p_serial` up to float summation order.
pub fn advance_p_aosoa(
    store: &mut AosoaStore,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) {
    const ONE: f32 = 1.0;
    const ONE_THIRD: f32 = 1.0 / 3.0;
    const TWO_FIFTEENTHS: f32 = 2.0 / 15.0;
    let ipd = &interp.data;
    let real = store.len;
    for (bi, b) in store.blocks.iter_mut().enumerate() {
        let live_lanes = (real - bi * LANES).min(LANES);
        let mut hx = [0.0f32; LANES];
        let mut hy = [0.0f32; LANES];
        let mut hz = [0.0f32; LANES];
        let mut mx = [0.0f32; LANES];
        let mut my = [0.0f32; LANES];
        let mut mz = [0.0f32; LANES];
        let mut nxp = [0.0f32; LANES];
        let mut nyp = [0.0f32; LANES];
        let mut nzp = [0.0f32; LANES];
        // Lane-parallel section: interpolate, kick, rotate, displace.
        for l in 0..LANES {
            let f = &ipd[b.i[l] as usize];
            let (dx, dy, dz) = (b.dx[l], b.dy[l], b.dz[l]);
            let hax = c.qdt_2mc * ((f.ex + dy * f.dexdy) + dz * (f.dexdz + dy * f.d2exdydz));
            let hay = c.qdt_2mc * ((f.ey + dz * f.deydz) + dx * (f.deydx + dz * f.d2eydzdx));
            let haz = c.qdt_2mc * ((f.ez + dx * f.dezdx) + dy * (f.dezdy + dx * f.d2ezdxdy));
            let cbx = f.cbx + dx * f.dcbxdx;
            let cby = f.cby + dy * f.dcbydy;
            let cbz = f.cbz + dz * f.dcbzdz;
            let mut ux = b.ux[l] + hax;
            let mut uy = b.uy[l] + hay;
            let mut uz = b.uz[l] + haz;
            let v0 = c.qdt_2mc / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
            let v1 = cbx * cbx + (cby * cby + cbz * cbz);
            let v2 = (v0 * v0) * v1;
            let v3 = v0 * (ONE + v2 * (ONE_THIRD + v2 * TWO_FIFTEENTHS));
            let mut v4 = v3 / (ONE + v1 * (v3 * v3));
            v4 += v4;
            let w0 = ux + v3 * (uy * cbz - uz * cby);
            let w1 = uy + v3 * (uz * cbx - ux * cbz);
            let w2 = uz + v3 * (ux * cby - uy * cbx);
            ux += v4 * (w1 * cbz - w2 * cby);
            uy += v4 * (w2 * cbx - w0 * cbz);
            uz += v4 * (w0 * cby - w1 * cbx);
            ux += hax;
            uy += hay;
            uz += haz;
            b.ux[l] = ux;
            b.uy[l] = uy;
            b.uz[l] = uz;
            let rg = ONE / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
            hx[l] = ux * rg * c.cdt_dx;
            hy[l] = uy * rg * c.cdt_dy;
            hz[l] = uz * rg * c.cdt_dz;
            mx[l] = dx + hx[l];
            my[l] = dy + hy[l];
            mz[l] = dz + hz[l];
            nxp[l] = mx[l] + hx[l];
            nyp[l] = my[l] + hy[l];
            nzp[l] = mz[l] + hz[l];
        }
        // Scalar tail: deposit / handle crossings per lane.
        for l in 0..live_lanes {
            if nxp[l].abs() <= ONE && nyp[l].abs() <= ONE && nzp[l].abs() <= ONE {
                b.dx[l] = nxp[l];
                b.dy[l] = nyp[l];
                b.dz[l] = nzp[l];
                acc.deposit(
                    b.i[l] as usize,
                    c.qsp * b.w[l],
                    (mx[l], my[l], mz[l]),
                    (hx[l], hy[l], hz[l]),
                );
            } else {
                let mut p = Particle {
                    dx: b.dx[l],
                    dy: b.dy[l],
                    dz: b.dz[l],
                    i: b.i[l],
                    ux: b.ux[l],
                    uy: b.uy[l],
                    uz: b.uz[l],
                    w: b.w[l],
                };
                let mut pm = Mover {
                    dispx: hx[l],
                    dispy: hy[l],
                    dispz: hz[l],
                    idx: 0,
                };
                match move_p_local(&mut p, &mut pm, acc, g, c.qsp) {
                    MoveOutcome::Done => {}
                    MoveOutcome::Absorbed | MoveOutcome::Exit { .. } => {
                        // Layout-ablation store supports closed domains
                        // only; park the particle with zero weight.
                        p.w = 0.0;
                    }
                }
                b.dx[l] = p.dx;
                b.dy[l] = p.dy;
                b.dz[l] = p.dz;
                b.i[l] = p.i;
                b.ux[l] = p.ux;
                b.uy[l] = p.uy;
                b.uz[l] = p.uz;
                b.w[l] = p.w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldArray;
    use crate::field_solver::{bcs_of, sync_b, sync_e};
    use crate::push::advance_p_serial;
    use crate::rng::Rng;

    #[test]
    fn roundtrip_preserves_particles() {
        let mut rng = Rng::seeded(5);
        let parts: Vec<Particle> = (0..21)
            .map(|n| Particle {
                dx: rng.uniform_in(-1.0, 1.0) as f32,
                i: 100 + n,
                w: 1.0,
                ..Default::default()
            })
            .collect();
        let store = AosoaStore::from_particles(&parts);
        assert_eq!(store.len(), 21);
        assert_eq!(store.blocks.len(), 3);
        assert_eq!(store.to_particles(), parts);
        assert!(!store.is_empty());
    }

    #[test]
    fn aosoa_push_matches_aos_push_exactly() {
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ex[v] = 0.3;
            f.cbz[v] = 0.8;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);

        let mut rng = Rng::seeded(31);
        let parts: Vec<Particle> = (0..100)
            .map(|_| Particle {
                dx: rng.uniform_in(-0.99, 0.99) as f32,
                dy: rng.uniform_in(-0.99, 0.99) as f32,
                dz: rng.uniform_in(-0.99, 0.99) as f32,
                i: g.voxel(1 + rng.index(6), 1 + rng.index(6), 1 + rng.index(6)) as u32,
                ux: rng.normal() as f32 * 0.3,
                uy: rng.normal() as f32 * 0.3,
                uz: rng.normal() as f32 * 0.3,
                w: 1.0,
            })
            .collect();

        let c = PushCoefficients::new(-1.0, 1.0, &g);
        let mut aos = parts.clone();
        let mut acc_aos = AccumulatorArray::new(&g);
        advance_p_serial(&mut aos, c, &ia, &mut acc_aos, &g);

        let mut store = AosoaStore::from_particles(&parts);
        let mut acc_soa = AccumulatorArray::new(&g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc_soa, &g);
        let soa = store.to_particles();

        assert_eq!(aos.len(), soa.len());
        for (a, b) in aos.iter().zip(soa.iter()) {
            assert_eq!(a, b, "particle state diverged");
        }
        for (x, y) in acc_aos.data.iter().zip(acc_soa.data.iter()) {
            for n in 0..4 {
                assert_eq!(x.jx[n], y.jx[n]);
                assert_eq!(x.jy[n], y.jy[n]);
                assert_eq!(x.jz[n], y.jz[n]);
            }
        }
    }

    #[test]
    fn padding_lanes_deposit_nothing() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let ia = InterpolatorArray::new(&g);
        let parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: 0.5,
            w: 1.0,
            ..Default::default()
        }];
        let mut store = AosoaStore::from_particles(&parts);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc, &g);
        // Only the single real particle's deposit exists.
        let total: f32 = acc.data.iter().flat_map(|a| a.jx.iter()).sum();
        let single: f32 = acc.data[g.voxel(2, 2, 2)].jx.iter().sum();
        assert_eq!(total, single);
        assert!(single != 0.0);
    }
}
