//! AoSoA ("array of structures of arrays") particle storage and push —
//! the SIMD blocking VPIC used to feed the Cell SPEs' 4-wide single
//! precision pipelines. Particles are stored in blocks of [`LANES`] with
//! each field contiguous across the block, so the hot loop is expressible
//! as straight-line lane arithmetic the autovectorizer can turn into
//! packed instructions.
//!
//! This is a full production backend of
//! [`ParticleStore`](crate::store::ParticleStore): element access, mover
//! emission for rank-boundary exiles, absorption, the blocked counting
//! sort, and Rayon pipeline parallelism — all bit-identical to the AoS
//! path because every particle runs the same scalar arithmetic in the same
//! order (the lane loop is element-wise f32 math, which carries no
//! reassociation).

use crate::accumulator::AccumulatorArray;
use crate::grid::Grid;
use crate::interpolator::InterpolatorArray;
use crate::particle::{Mover, Particle};
use crate::push::{
    move_p_local, push_one, retarget_and_delete, Exile, MoveOutcome, PushCoefficients, PushedFate,
};
use crate::sort::MIN_SORT_CHUNK;
use crate::threads::worker_threads;
use rayon::prelude::*;

/// Lanes per block (the Cell SPE was 4-wide; 8 suits AVX hosts).
pub const LANES: usize = 8;

/// One block of `LANES` particles, SoA inside.
#[derive(Clone, Debug)]
pub struct Block {
    pub dx: [f32; LANES],
    pub dy: [f32; LANES],
    pub dz: [f32; LANES],
    pub i: [u32; LANES],
    pub ux: [f32; LANES],
    pub uy: [f32; LANES],
    pub uz: [f32; LANES],
    pub w: [f32; LANES],
}

impl Default for Block {
    fn default() -> Self {
        Block {
            dx: [0.0; LANES],
            dy: [0.0; LANES],
            dz: [0.0; LANES],
            i: [0; LANES],
            ux: [0.0; LANES],
            uy: [0.0; LANES],
            uz: [0.0; LANES],
            w: [0.0; LANES],
        }
    }
}

impl Block {
    /// Copy lane `l` out as a particle.
    #[inline]
    pub fn lane(&self, l: usize) -> Particle {
        Particle {
            dx: self.dx[l],
            dy: self.dy[l],
            dz: self.dz[l],
            i: self.i[l],
            ux: self.ux[l],
            uy: self.uy[l],
            uz: self.uz[l],
            w: self.w[l],
        }
    }

    /// Overwrite lane `l` from a particle.
    #[inline]
    pub fn set_lane(&mut self, l: usize, p: &Particle) {
        self.dx[l] = p.dx;
        self.dy[l] = p.dy;
        self.dz[l] = p.dz;
        self.i[l] = p.i;
        self.ux[l] = p.ux;
        self.uy[l] = p.uy;
        self.uz[l] = p.uz;
        self.w[l] = p.w;
    }
}

/// Copy lane `l` of the block behind `b` out as a particle.
///
/// # Safety
/// `b` must point at a live `Block` and no other thread may be writing
/// lane `l` concurrently. Array indexing through the raw pointer is a
/// place projection — no `&`/`&mut` to the whole block is formed, so
/// disjoint-lane access from other threads stays sound.
#[inline]
unsafe fn lane_load(b: *const Block, l: usize) -> Particle {
    unsafe {
        Particle {
            dx: (*b).dx[l],
            dy: (*b).dy[l],
            dz: (*b).dz[l],
            i: (*b).i[l],
            ux: (*b).ux[l],
            uy: (*b).uy[l],
            uz: (*b).uz[l],
            w: (*b).w[l],
        }
    }
}

/// Overwrite lane `l` of the block behind `b`.
///
/// # Safety
/// Same contract as [`lane_load`], plus exclusive ownership of lane `l`.
#[inline]
unsafe fn lane_store(b: *mut Block, l: usize, p: &Particle) {
    unsafe {
        (*b).dx[l] = p.dx;
        (*b).dy[l] = p.dy;
        (*b).dz[l] = p.dz;
        (*b).i[l] = p.i;
        (*b).ux[l] = p.ux;
        (*b).uy[l] = p.uy;
        (*b).uz[l] = p.uz;
        (*b).w[l] = p.w;
    }
}

/// Raw block cursor shared across pipelines/workers. Workers touch
/// disjoint lane sets (see the safety arguments at the use sites), so
/// sharing the pointer across threads is sound — the AoSoA analogue of
/// `sort::ScatterPtr`.
#[derive(Clone, Copy)]
struct BlockPtr(*mut Block);
// SAFETY: only dereferenced on lanes owned exclusively by one worker, and
// the block buffer outlives every parallel section using the pointer.
unsafe impl Send for BlockPtr {}
unsafe impl Sync for BlockPtr {}

/// AoSoA particle store.
#[derive(Clone, Debug, Default)]
pub struct AosoaStore {
    pub blocks: Vec<Block>,
    len: usize,
}

impl AosoaStore {
    /// Convert from an AoS slice (tail lanes are zero-weight no-ops).
    pub fn from_particles(parts: &[Particle]) -> Self {
        let mut store = AosoaStore {
            blocks: Vec::with_capacity(parts.len().div_ceil(LANES)),
            len: parts.len(),
        };
        for chunk in parts.chunks(LANES) {
            let mut b = Block::default();
            for (l, p) in chunk.iter().enumerate() {
                b.set_lane(l, p);
            }
            // Park unused lanes on a valid voxel with zero weight.
            for l in chunk.len()..LANES {
                b.i[l] = chunk[0].i;
            }
            store.blocks.push(b);
        }
        store
    }

    /// Number of real particles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every particle (keeps block capacity).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }

    /// Reserve block capacity for `additional` more particles.
    pub fn reserve(&mut self, additional: usize) {
        let need = (self.len + additional).div_ceil(LANES);
        self.blocks.reserve(need.saturating_sub(self.blocks.len()));
    }

    /// Copy out particle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].lane(i % LANES)
    }

    /// Overwrite particle `i`.
    #[inline]
    pub fn set(&mut self, i: usize, p: Particle) {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].set_lane(i % LANES, &p);
    }

    /// Voxel index of particle `i`.
    #[inline]
    pub fn voxel(&self, i: usize) -> u32 {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].i[i % LANES]
    }

    /// Append a particle.
    #[inline]
    pub fn push(&mut self, p: Particle) {
        let l = self.len % LANES;
        if l == 0 {
            // Fresh block: park every lane on the new particle's voxel.
            self.blocks.push(Block {
                i: [p.i; LANES],
                ..Default::default()
            });
        }
        self.blocks.last_mut().unwrap().set_lane(l, &p);
        self.len += 1;
    }

    /// Remove particle `i` by swapping in the last one; returns it.
    /// Exactly `Vec::swap_remove` on the logical sequence.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        assert!(
            i < self.len,
            "swap_remove index {i} out of range {}",
            self.len
        );
        let last = self.len - 1;
        let removed = self.get(i);
        if i != last {
            let lp = self.get(last);
            self.set(i, lp);
        }
        let l = last % LANES;
        if l == 0 {
            // The tail block held only the removed lane — drop it whole.
            self.blocks.pop();
        } else {
            // Vacate the lane: zero weight, parked on its (valid) voxel.
            let b = self.blocks.last_mut().unwrap();
            b.dx[l] = 0.0;
            b.dy[l] = 0.0;
            b.dz[l] = 0.0;
            b.ux[l] = 0.0;
            b.uy[l] = 0.0;
            b.uz[l] = 0.0;
            b.w[l] = 0.0;
        }
        self.len = last;
        removed
    }

    /// Re-park the padding lanes of the tail block (zero weight, valid
    /// voxel) after a bulk rebuild like the sort's scatter.
    fn park_tail(&mut self) {
        let l0 = self.len % LANES;
        if l0 == 0 || self.blocks.is_empty() {
            return;
        }
        let b = self.blocks.last_mut().unwrap();
        let park = b.i[0];
        for l in l0..LANES {
            b.dx[l] = 0.0;
            b.dy[l] = 0.0;
            b.dz[l] = 0.0;
            b.i[l] = park;
            b.ux[l] = 0.0;
            b.uy[l] = 0.0;
            b.uz[l] = 0.0;
            b.w[l] = 0.0;
        }
    }

    /// Convert back to AoS.
    pub fn to_particles(&self) -> Vec<Particle> {
        let mut out = Vec::with_capacity(self.len);
        'outer: for b in &self.blocks {
            for l in 0..LANES {
                if out.len() == self.len {
                    break 'outer;
                }
                out.push(b.lane(l));
            }
        }
        out
    }
}

/// Lane-parallel advance of one block: interpolate/kick/rotate/displace
/// across all [`LANES`] lanes, then a scalar tail over the `live` lanes
/// that deposits current and finishes cell crossings. Global particle
/// index of lane `l` is `base_idx + l`; absorbed indices and exiles are
/// appended for the caller (identical contract to `push::advance_block`).
#[allow(clippy::too_many_arguments)]
fn advance_full_block(
    b: &mut Block,
    base_idx: u32,
    live: usize,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
    absorbed: &mut Vec<u32>,
    exiles: &mut Vec<Exile>,
) {
    const ONE: f32 = 1.0;
    const ONE_THIRD: f32 = 1.0 / 3.0;
    const TWO_FIFTEENTHS: f32 = 2.0 / 15.0;
    let ipd = &interp.data;
    let mut hx = [0.0f32; LANES];
    let mut hy = [0.0f32; LANES];
    let mut hz = [0.0f32; LANES];
    let mut mx = [0.0f32; LANES];
    let mut my = [0.0f32; LANES];
    let mut mz = [0.0f32; LANES];
    let mut nxp = [0.0f32; LANES];
    let mut nyp = [0.0f32; LANES];
    let mut nzp = [0.0f32; LANES];
    // Lane-parallel section: interpolate, kick, rotate, displace. Padding
    // lanes are parked on valid voxels so running them is safe (and their
    // zero weight deposits nothing in the scalar tail, which skips them
    // anyway).
    for l in 0..LANES {
        let f = &ipd[b.i[l] as usize];
        let (dx, dy, dz) = (b.dx[l], b.dy[l], b.dz[l]);
        let hax = c.qdt_2mc * ((f.ex + dy * f.dexdy) + dz * (f.dexdz + dy * f.d2exdydz));
        let hay = c.qdt_2mc * ((f.ey + dz * f.deydz) + dx * (f.deydx + dz * f.d2eydzdx));
        let haz = c.qdt_2mc * ((f.ez + dx * f.dezdx) + dy * (f.dezdy + dx * f.d2ezdxdy));
        let cbx = f.cbx + dx * f.dcbxdx;
        let cby = f.cby + dy * f.dcbydy;
        let cbz = f.cbz + dz * f.dcbzdz;
        let mut ux = b.ux[l] + hax;
        let mut uy = b.uy[l] + hay;
        let mut uz = b.uz[l] + haz;
        let v0 = c.qdt_2mc / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
        let v1 = cbx * cbx + (cby * cby + cbz * cbz);
        let v2 = (v0 * v0) * v1;
        let v3 = v0 * (ONE + v2 * (ONE_THIRD + v2 * TWO_FIFTEENTHS));
        let mut v4 = v3 / (ONE + v1 * (v3 * v3));
        v4 += v4;
        let w0 = ux + v3 * (uy * cbz - uz * cby);
        let w1 = uy + v3 * (uz * cbx - ux * cbz);
        let w2 = uz + v3 * (ux * cby - uy * cbx);
        ux += v4 * (w1 * cbz - w2 * cby);
        uy += v4 * (w2 * cbx - w0 * cbz);
        uz += v4 * (w0 * cby - w1 * cbx);
        ux += hax;
        uy += hay;
        uz += haz;
        b.ux[l] = ux;
        b.uy[l] = uy;
        b.uz[l] = uz;
        let rg = ONE / (ONE + (ux * ux + (uy * uy + uz * uz))).sqrt();
        hx[l] = ux * rg * c.cdt_dx;
        hy[l] = uy * rg * c.cdt_dy;
        hz[l] = uz * rg * c.cdt_dz;
        mx[l] = dx + hx[l];
        my[l] = dy + hy[l];
        mz[l] = dz + hz[l];
        nxp[l] = mx[l] + hx[l];
        nyp[l] = my[l] + hy[l];
        nzp[l] = mz[l] + hz[l];
    }
    // Scalar tail: deposit / handle crossings per live lane, in index
    // order (same deposit order as the AoS pipeline → bit-identical J).
    for l in 0..live {
        if nxp[l].abs() <= ONE && nyp[l].abs() <= ONE && nzp[l].abs() <= ONE {
            b.dx[l] = nxp[l];
            b.dy[l] = nyp[l];
            b.dz[l] = nzp[l];
            acc.deposit(
                b.i[l] as usize,
                c.qsp * b.w[l],
                (mx[l], my[l], mz[l]),
                (hx[l], hy[l], hz[l]),
            );
        } else {
            let idx = base_idx + l as u32;
            let mut p = b.lane(l);
            let mut pm = Mover {
                dispx: hx[l],
                dispy: hy[l],
                dispz: hz[l],
                idx,
            };
            match move_p_local(&mut p, &mut pm, acc, g, c.qsp) {
                MoveOutcome::Done => {}
                MoveOutcome::Absorbed => absorbed.push(idx),
                MoveOutcome::Exit { face } => exiles.push(Exile {
                    idx,
                    face,
                    mover: pm,
                }),
            }
            b.set_lane(l, &p);
        }
    }
}

/// One pipeline's share of the production AoSoA advance: the particle
/// index range `[start, end)`. Blocks fully inside the range run the
/// lane-parallel kernel; lanes of blocks straddling a pipeline boundary
/// run the scalar per-particle path (same arithmetic — lane math is
/// element-wise, so results are bit-identical either way).
///
/// # Safety
/// Ranges of concurrent callers must be disjoint, `blocks` must cover
/// `n_total` particles, and the buffer must outlive the call. A `&mut
/// Block` is only formed for blocks every live lane of which lies in
/// `[start, end)`; straddling blocks are accessed lane-wise through the
/// raw pointer, never via a whole-block reference.
#[allow(clippy::too_many_arguments)]
unsafe fn advance_range(
    blocks: BlockPtr,
    n_total: usize,
    start: usize,
    end: usize,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) -> (Vec<u32>, Vec<Exile>) {
    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    let mut idx = start;
    while idx < end {
        let bi = idx / LANES;
        let lane0 = idx - bi * LANES;
        let block_start = bi * LANES;
        let block_live_end = (block_start + LANES).min(n_total);
        if lane0 == 0 && end >= block_live_end {
            // Every live lane of this block belongs to this pipeline:
            // safe to take the whole block mutably and run lane-parallel.
            // SAFETY: exclusive ownership per the function contract.
            let b = unsafe { &mut *blocks.0.add(bi) };
            advance_full_block(
                b,
                block_start as u32,
                block_live_end - block_start,
                c,
                interp,
                acc,
                g,
                &mut absorbed,
                &mut exiles,
            );
            idx = block_live_end;
        } else {
            // Straddling block: touch only our lanes, via raw pointer.
            let hi = (end - block_start).min(LANES);
            let bp = unsafe { blocks.0.add(bi) };
            for l in lane0..hi {
                let gidx = (block_start + l) as u32;
                // SAFETY: lane `l` maps to particle index in [start, end),
                // owned exclusively by this pipeline.
                let mut p = unsafe { lane_load(bp, l) };
                match push_one(&mut p, gidx, c, interp, acc, g) {
                    PushedFate::Stayed => {}
                    PushedFate::Absorbed => absorbed.push(gidx),
                    PushedFate::Exiled(e) => exiles.push(e),
                }
                // SAFETY: as above.
                unsafe { lane_store(bp, l, &p) };
            }
            idx = block_start + hi;
        }
    }
    (absorbed, exiles)
}

/// Production AoSoA particle advance: the exact pipeline contract of
/// [`crate::push::advance_p`] — same index partition (`block =
/// n.div_ceil(n_pipes).max(1)` over *particle* indices, not blocks), same
/// per-pipeline deposit order, same absorbed/exile bookkeeping — so AoS
/// and AoSoA runs are bit-identical for any fixed pipeline count.
pub fn advance_p_aosoa_pipelined(
    store: &mut AosoaStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
) -> Vec<Exile> {
    let n_pipes = accumulators.len();
    assert!(n_pipes >= 1);
    let n = store.len;
    let block = n.div_ceil(n_pipes).max(1);
    let ptr = BlockPtr(store.blocks.as_mut_ptr());

    let results: Vec<(Vec<u32>, Vec<Exile>)> = accumulators
        .par_iter_mut()
        .enumerate()
        .map(|(pipe, acc)| {
            let start = (pipe * block).min(n);
            let end = ((pipe + 1) * block).min(n);
            // SAFETY: pipelines own disjoint particle index ranges
            // [start, end) partitioning [0, n); see `advance_range`.
            unsafe { advance_range(ptr, n, start, end, coeffs, interp, acc, g) }
        })
        .collect();

    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    for (a, e) in results {
        absorbed.extend(a);
        exiles.extend(e);
    }
    let len = store.len;
    retarget_and_delete(len, absorbed, &mut exiles, |i| {
        store.swap_remove(i);
    });
    exiles
}

/// Single-accumulator AoSoA advance for closed (periodic/reflect) domains
/// — the E8 layout-ablation kernel. Absorbed or exiting particles are
/// parked in place with zero weight instead of being removed/migrated;
/// use [`advance_p_aosoa_pipelined`] for the production contract.
pub fn advance_p_aosoa(
    store: &mut AosoaStore,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) {
    let real = store.len;
    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    for (bi, b) in store.blocks.iter_mut().enumerate() {
        let base = bi * LANES;
        let live = (real - base).min(LANES);
        advance_full_block(
            b,
            base as u32,
            live,
            c,
            interp,
            acc,
            g,
            &mut absorbed,
            &mut exiles,
        );
    }
    // Closed-domain fallback: park leavers with zero weight.
    for idx in absorbed {
        let mut p = store.get(idx as usize);
        p.w = 0.0;
        store.set(idx as usize, p);
    }
    for e in exiles {
        let mut p = store.get(e.idx as usize);
        p.w = 0.0;
        store.set(e.idx as usize, p);
    }
}

/// Blocked counting sort by voxel with a caller-held scratch/histogram,
/// mirroring [`crate::sort::sort_by_voxel_with`]: same worker-count rule,
/// same per-worker histograms over contiguous *particle index* chunks,
/// same serial `(voxel, worker)` prefix-sum — so the output permutation is
/// exactly the stable serial counting sort, bitwise independent of the
/// worker count and identical to the AoS sort's.
pub fn sort_aosoa_with(
    store: &mut AosoaStore,
    n_voxels: usize,
    scratch: &mut Vec<Block>,
    counts: &mut Vec<u32>,
) {
    let n = store.len;
    let workers = worker_threads().min(n.div_ceil(MIN_SORT_CHUNK)).max(1);
    sort_aosoa_with_workers(store, n_voxels, scratch, counts, workers);
}

/// Worker-count-explicit body of the AoSoA sort (tests drive this to pin
/// the permutation against the AoS reference for any worker count).
pub(crate) fn sort_aosoa_with_workers(
    store: &mut AosoaStore,
    n_voxels: usize,
    scratch: &mut Vec<Block>,
    counts: &mut Vec<u32>,
    workers: usize,
) {
    let n = store.len;
    if n <= 1 {
        return;
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);

    // Phase 1: per-worker histograms over index ranges (worker w owns
    // particles [w·chunk, (w+1)·chunk) — the same split par_chunks gives
    // the AoS sort).
    counts.clear();
    counts.resize(workers * n_voxels, 0);
    {
        let blocks = &store.blocks;
        counts
            .par_chunks_mut(n_voxels)
            .enumerate()
            .for_each(|(w, hist)| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                for i in lo..hi {
                    hist[blocks[i / LANES].i[i % LANES] as usize] += 1;
                }
            });
    }

    // Phase 2: exclusive prefix-sum in (voxel, worker) order — identical
    // to the AoS sort, which is what makes the permutations equal.
    let mut running = 0u32;
    for v in 0..n_voxels {
        for w in 0..workers {
            let c = &mut counts[w * n_voxels + v];
            let t = *c;
            *c = running;
            running += t;
        }
    }

    // Phase 3: scatter into scratch blocks. Worker w writes exactly the
    // lanes its prefix-sum slots reserve.
    scratch.clear();
    scratch.resize(n.div_ceil(LANES), Block::default());
    let out = BlockPtr(scratch.as_mut_ptr());
    {
        let blocks = &store.blocks;
        counts
            .par_chunks_mut(n_voxels)
            .enumerate()
            .for_each(move |(w, offsets)| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                for i in lo..hi {
                    let p = blocks[i / LANES].lane(i % LANES);
                    let slot = &mut offsets[p.i as usize];
                    let t = *slot as usize;
                    // SAFETY: `t` walks the half-open range reserved for
                    // this (worker, voxel) pair by the exclusive
                    // prefix-sum; those ranges partition [0, n), so no two
                    // writes target the same lane and every lane is in
                    // bounds of `scratch`.
                    unsafe { lane_store(out.0.add(t / LANES), t % LANES, &p) };
                    *slot += 1;
                }
            });
    }
    std::mem::swap(&mut store.blocks, scratch);
    store.park_tail();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldArray;
    use crate::field_solver::{bcs_of, sync_b, sync_e};
    use crate::push::{advance_p, advance_p_serial};
    use crate::rng::Rng;
    use crate::sort::sort_with_workers;
    use crate::store::ParticleStore;

    #[test]
    fn roundtrip_preserves_particles() {
        let mut rng = Rng::seeded(5);
        let parts: Vec<Particle> = (0..21)
            .map(|n| Particle {
                dx: rng.uniform_in(-1.0, 1.0) as f32,
                i: 100 + n,
                w: 1.0,
                ..Default::default()
            })
            .collect();
        let store = AosoaStore::from_particles(&parts);
        assert_eq!(store.len(), 21);
        assert_eq!(store.blocks.len(), 3);
        assert_eq!(store.to_particles(), parts);
        assert!(!store.is_empty());
    }

    fn loaded_plasma(g: &Grid, n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = Rng::seeded(seed);
        (0..n)
            .map(|_| Particle {
                dx: rng.uniform_in(-0.99, 0.99) as f32,
                dy: rng.uniform_in(-0.99, 0.99) as f32,
                dz: rng.uniform_in(-0.99, 0.99) as f32,
                i: g.voxel(
                    1 + rng.index(g.nx),
                    1 + rng.index(g.ny),
                    1 + rng.index(g.nz),
                ) as u32,
                ux: rng.normal() as f32 * 0.3,
                uy: rng.normal() as f32 * 0.3,
                uz: rng.normal() as f32 * 0.3,
                w: 1.0,
            })
            .collect()
    }

    #[test]
    fn aosoa_push_matches_aos_push_exactly() {
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ex[v] = 0.3;
            f.cbz[v] = 0.8;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);

        let parts = loaded_plasma(&g, 100, 31);

        let c = PushCoefficients::new(-1.0, 1.0, &g);
        let mut aos = parts.clone();
        let mut acc_aos = AccumulatorArray::new(&g);
        advance_p_serial(&mut aos, c, &ia, &mut acc_aos, &g);

        let mut store = AosoaStore::from_particles(&parts);
        let mut acc_soa = AccumulatorArray::new(&g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc_soa, &g);
        let soa = store.to_particles();

        assert_eq!(aos.len(), soa.len());
        for (a, b) in aos.iter().zip(soa.iter()) {
            assert_eq!(a, b, "particle state diverged");
        }
        for (x, y) in acc_aos.data.iter().zip(acc_soa.data.iter()) {
            for n in 0..4 {
                assert_eq!(x.jx[n], y.jx[n]);
                assert_eq!(x.jy[n], y.jy[n]);
                assert_eq!(x.jz[n], y.jz[n]);
            }
        }
    }

    #[test]
    fn padding_lanes_deposit_nothing() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let ia = InterpolatorArray::new(&g);
        let parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: 0.5,
            w: 1.0,
            ..Default::default()
        }];
        let mut store = AosoaStore::from_particles(&parts);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc, &g);
        // Only the single real particle's deposit exists.
        let total: f32 = acc.data.iter().flat_map(|a| a.jx.iter()).sum();
        let single: f32 = acc.data[g.voxel(2, 2, 2)].jx.iter().sum();
        assert_eq!(total, single);
        assert!(single != 0.0);
    }

    #[test]
    fn pipelined_aosoa_matches_pipelined_aos_bitwise() {
        // Production contract: for any fixed pipeline count, AoS and AoSoA
        // produce bit-identical particles AND per-pipeline accumulators
        // (straddling blocks force the scalar lane path at every pipeline
        // boundary — counts chosen so boundaries do not land on LANES
        // multiples).
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ex[v] = 0.4;
            f.cby[v] = 0.6;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);

        for (n, n_pipes) in [(101usize, 3usize), (257, 4), (64, 1), (30, 7)] {
            let parts = loaded_plasma(&g, n, 40 + n as u64);

            let mut aos = ParticleStore::Aos(parts.clone());
            let mut acc_a: Vec<AccumulatorArray> =
                (0..n_pipes).map(|_| AccumulatorArray::new(&g)).collect();
            let ex_a = advance_p(&mut aos, c, &ia, &mut acc_a, &g);

            let mut soa = ParticleStore::Aosoa(AosoaStore::from_particles(&parts));
            let mut acc_s: Vec<AccumulatorArray> =
                (0..n_pipes).map(|_| AccumulatorArray::new(&g)).collect();
            let ex_s = advance_p(&mut soa, c, &ia, &mut acc_s, &g);

            assert_eq!(
                aos.to_particles(),
                soa.to_particles(),
                "n={n} pipes={n_pipes}"
            );
            assert_eq!(ex_a.len(), ex_s.len());
            for (pipe, (x, y)) in acc_a.iter().zip(acc_s.iter()).enumerate() {
                for (vx, vy) in x.data.iter().zip(y.data.iter()) {
                    for k in 0..4 {
                        assert_eq!(vx.jx[k], vy.jx[k], "pipe {pipe}");
                        assert_eq!(vx.jy[k], vy.jy[k], "pipe {pipe}");
                        assert_eq!(vx.jz[k], vy.jz[k], "pipe {pipe}");
                    }
                }
            }
        }
    }

    #[test]
    fn aosoa_sort_matches_aos_permutation_for_any_worker_count() {
        let mut rng = Rng::seeded(21);
        let nv = 300;
        let parts: Vec<Particle> = (0..5000)
            .map(|k| Particle {
                i: rng.index(nv) as u32,
                w: k as f32, // unique tag → permutation comparable exactly
                ux: rng.normal() as f32,
                ..Default::default()
            })
            .collect();
        let mut want = parts.clone();
        let (mut s1, mut c1) = (Vec::new(), Vec::new());
        sort_with_workers(&mut want, nv, &mut s1, &mut c1, 1);
        for workers in [1usize, 2, 3, 5, 8] {
            let mut store = AosoaStore::from_particles(&parts);
            let (mut scratch, mut counts) = (Vec::new(), Vec::new());
            sort_aosoa_with_workers(&mut store, nv, &mut scratch, &mut counts, workers);
            assert_eq!(store.to_particles(), want, "workers = {workers}");
            assert_eq!(store.len(), parts.len());
        }
    }

    #[test]
    fn push_swap_remove_and_sort_keep_padding_invariants() {
        // After arbitrary mutation the tail block's padding lanes must
        // stay zero-weight on a valid voxel (the lane-parallel kernel
        // interpolates them unconditionally).
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let nv = g.n_voxels();
        let mut store = AosoaStore::default();
        let mut rng = Rng::seeded(9);
        for _ in 0..13 {
            store.push(Particle {
                i: g.voxel(1 + rng.index(4), 1 + rng.index(4), 1 + rng.index(4)) as u32,
                w: 1.0,
                ..Default::default()
            });
        }
        store.swap_remove(4);
        store.swap_remove(0);
        let (mut scratch, mut counts) = (Vec::new(), Vec::new());
        sort_aosoa_with(&mut store, nv, &mut scratch, &mut counts);
        assert_eq!(store.len(), 11);
        let live = store.len() % LANES;
        let tail = store.blocks.last().unwrap();
        for l in live..LANES {
            assert_eq!(tail.w[l], 0.0, "padding lane {l} has weight");
            assert!((tail.i[l] as usize) < nv, "padding lane {l} off-grid");
        }
    }
}
