//! AoSoA ("array of structures of arrays") particle storage and push —
//! the SIMD blocking VPIC used to feed the Cell SPEs' 4-wide single
//! precision pipelines. Particles are stored in blocks of [`LANES`] with
//! each field contiguous across the block, so the hot loop is expressible
//! as straight-line lane arithmetic the autovectorizer can turn into
//! packed instructions.
//!
//! This is a full production backend of
//! [`ParticleStore`](crate::store::ParticleStore): element access, mover
//! emission for rank-boundary exiles, absorption, the blocked counting
//! sort, and Rayon pipeline parallelism — all bit-identical to the AoS
//! path. The inner loop runs lane-wide ([`PushKernel::Lane`], built on
//! [`crate::lanes`]) yet stays bit-identical to the scalar oracle because
//! every lane executes the scalar kernel's exact IEEE expression tree
//! element-wise (no reassociation, no fused multiply-adds) and current is
//! scattered in lane index order; `crates/core/tests/kernel_oracle.rs`
//! pins the contract differentially.

use crate::accumulator::{quadrants_lanes, AccumulatorArray};
use crate::cadence::PushTally;
use crate::grid::Grid;
use crate::interpolator::InterpolatorArray;
use crate::lanes::{transpose8, F32x8};
use crate::particle::{Mover, Particle};
use crate::push::{
    move_p_local, push_one, retarget_and_delete, Exile, MoveOutcome, PushCoefficients, PushKernel,
    PushedFate,
};
use crate::sort::MIN_SORT_CHUNK;
use crate::threads::worker_threads;
use rayon::prelude::*;

pub use crate::lanes::LANES;

/// One block of `LANES` particles, SoA inside.
#[derive(Clone, Debug)]
pub struct Block {
    pub dx: [f32; LANES],
    pub dy: [f32; LANES],
    pub dz: [f32; LANES],
    pub i: [u32; LANES],
    pub ux: [f32; LANES],
    pub uy: [f32; LANES],
    pub uz: [f32; LANES],
    pub w: [f32; LANES],
}

impl Default for Block {
    fn default() -> Self {
        Block {
            dx: [0.0; LANES],
            dy: [0.0; LANES],
            dz: [0.0; LANES],
            i: [0; LANES],
            ux: [0.0; LANES],
            uy: [0.0; LANES],
            uz: [0.0; LANES],
            w: [0.0; LANES],
        }
    }
}

impl Block {
    /// Copy lane `l` out as a particle.
    #[inline]
    pub fn lane(&self, l: usize) -> Particle {
        Particle {
            dx: self.dx[l],
            dy: self.dy[l],
            dz: self.dz[l],
            i: self.i[l],
            ux: self.ux[l],
            uy: self.uy[l],
            uz: self.uz[l],
            w: self.w[l],
        }
    }

    /// Overwrite lane `l` from a particle.
    #[inline]
    pub fn set_lane(&mut self, l: usize, p: &Particle) {
        self.dx[l] = p.dx;
        self.dy[l] = p.dy;
        self.dz[l] = p.dz;
        self.i[l] = p.i;
        self.ux[l] = p.ux;
        self.uy[l] = p.uy;
        self.uz[l] = p.uz;
        self.w[l] = p.w;
    }
}

/// Copy lane `l` of the block behind `b` out as a particle.
///
/// # Safety
/// `b` must point at a live `Block` and no other thread may be writing
/// lane `l` concurrently. Array indexing through the raw pointer is a
/// place projection — no `&`/`&mut` to the whole block is formed, so
/// disjoint-lane access from other threads stays sound.
#[inline]
unsafe fn lane_load(b: *const Block, l: usize) -> Particle {
    unsafe {
        Particle {
            dx: (*b).dx[l],
            dy: (*b).dy[l],
            dz: (*b).dz[l],
            i: (*b).i[l],
            ux: (*b).ux[l],
            uy: (*b).uy[l],
            uz: (*b).uz[l],
            w: (*b).w[l],
        }
    }
}

/// Overwrite lane `l` of the block behind `b`.
///
/// # Safety
/// Same contract as [`lane_load`], plus exclusive ownership of lane `l`.
#[inline]
unsafe fn lane_store(b: *mut Block, l: usize, p: &Particle) {
    unsafe {
        (*b).dx[l] = p.dx;
        (*b).dy[l] = p.dy;
        (*b).dz[l] = p.dz;
        (*b).i[l] = p.i;
        (*b).ux[l] = p.ux;
        (*b).uy[l] = p.uy;
        (*b).uz[l] = p.uz;
        (*b).w[l] = p.w;
    }
}

/// Raw block cursor shared across pipelines/workers. Workers touch
/// disjoint lane sets (see the safety arguments at the use sites), so
/// sharing the pointer across threads is sound — the AoSoA analogue of
/// `sort::ScatterPtr`.
#[derive(Clone, Copy)]
struct BlockPtr(*mut Block);
// SAFETY: only dereferenced on lanes owned exclusively by one worker, and
// the block buffer outlives every parallel section using the pointer.
unsafe impl Send for BlockPtr {}
unsafe impl Sync for BlockPtr {}

/// AoSoA particle store.
#[derive(Clone, Debug, Default)]
pub struct AosoaStore {
    pub blocks: Vec<Block>,
    len: usize,
}

impl AosoaStore {
    /// Convert from an AoS slice (tail lanes are zero-weight no-ops).
    pub fn from_particles(parts: &[Particle]) -> Self {
        let mut store = AosoaStore {
            blocks: Vec::with_capacity(parts.len().div_ceil(LANES)),
            len: parts.len(),
        };
        for chunk in parts.chunks(LANES) {
            let mut b = Block::default();
            for (l, p) in chunk.iter().enumerate() {
                b.set_lane(l, p);
            }
            // Park unused lanes on a valid voxel with zero weight.
            for l in chunk.len()..LANES {
                b.i[l] = chunk[0].i;
            }
            store.blocks.push(b);
        }
        store
    }

    /// Number of real particles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every particle (keeps block capacity).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }

    /// Reserve block capacity for `additional` more particles.
    pub fn reserve(&mut self, additional: usize) {
        let need = (self.len + additional).div_ceil(LANES);
        self.blocks.reserve(need.saturating_sub(self.blocks.len()));
    }

    /// Copy out particle `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].lane(i % LANES)
    }

    /// Overwrite particle `i`.
    #[inline]
    pub fn set(&mut self, i: usize, p: Particle) {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].set_lane(i % LANES, &p);
    }

    /// Voxel index of particle `i`.
    #[inline]
    pub fn voxel(&self, i: usize) -> u32 {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.blocks[i / LANES].i[i % LANES]
    }

    /// Append a particle.
    #[inline]
    pub fn push(&mut self, p: Particle) {
        let l = self.len % LANES;
        if l == 0 {
            // Fresh block: park every lane on the new particle's voxel.
            self.blocks.push(Block {
                i: [p.i; LANES],
                ..Default::default()
            });
        }
        self.blocks.last_mut().unwrap().set_lane(l, &p);
        self.len += 1;
    }

    /// Remove particle `i` by swapping in the last one; returns it.
    /// Exactly `Vec::swap_remove` on the logical sequence.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        assert!(
            i < self.len,
            "swap_remove index {i} out of range {}",
            self.len
        );
        let last = self.len - 1;
        let removed = self.get(i);
        if i != last {
            let lp = self.get(last);
            self.set(i, lp);
        }
        let l = last % LANES;
        if l == 0 {
            // The tail block held only the removed lane — drop it whole.
            self.blocks.pop();
        } else {
            // Vacate the lane: zero weight, parked on its (valid) voxel.
            let b = self.blocks.last_mut().unwrap();
            b.dx[l] = 0.0;
            b.dy[l] = 0.0;
            b.dz[l] = 0.0;
            b.ux[l] = 0.0;
            b.uy[l] = 0.0;
            b.uz[l] = 0.0;
            b.w[l] = 0.0;
        }
        self.len = last;
        removed
    }

    /// Re-park the padding lanes of the tail block (zero weight, valid
    /// voxel) after a bulk rebuild like the sort's scatter.
    fn park_tail(&mut self) {
        let l0 = self.len % LANES;
        if l0 == 0 || self.blocks.is_empty() {
            return;
        }
        let b = self.blocks.last_mut().unwrap();
        let park = b.i[0];
        for l in l0..LANES {
            b.dx[l] = 0.0;
            b.dy[l] = 0.0;
            b.dz[l] = 0.0;
            b.i[l] = park;
            b.ux[l] = 0.0;
            b.uy[l] = 0.0;
            b.uz[l] = 0.0;
            b.w[l] = 0.0;
        }
    }

    /// Convert back to AoS.
    pub fn to_particles(&self) -> Vec<Particle> {
        let mut out = Vec::with_capacity(self.len);
        'outer: for b in &self.blocks {
            for l in 0..LANES {
                if out.len() == self.len {
                    break 'outer;
                }
                out.push(b.lane(l));
            }
        }
        out
    }
}

/// Lane-wide advance of one block — the production inner loop
/// ([`PushKernel::Lane`]). Four phases:
///
/// 1. **Gather**: transpose the 18 interpolator coefficients of the eight
///    lanes' voxels into [`F32x8`] vectors ([`InterpolatorArray::gather8`]),
///    so the arithmetic phase has no memory indirection.
/// 2. **Push**: the relativistic Boris kick/rotate/displace as lane-wide
///    ops mirroring `push_one`'s expression tree *exactly* — same
///    grouping, no fused multiply-adds — so every lane computes the same
///    IEEE operation sequence the scalar oracle would.
/// 3. **Masked write-back**: momenta unconditionally; positions through a
///    `select` on the stay mask `|n| <= 1` per axis, so cell-crossing
///    lanes keep their pre-push positions for the mover (NaN fails the
///    compare, exactly like the scalar `if`).
/// 4. **Scatter/spill-out**: the Villasenor–Buneman quadrant currents are
///    precomputed lane-wide ([`quadrants_lanes`]), then scattered by a
///    scalar loop **in lane index order**: stay lanes add their quadrant
///    addends; crossers spill out to the scalar [`move_p_local`] mover
///    right there. The spill-out is processed in-order rather than
///    deferred because accumulator adds are order-sensitive f32 sums —
///    lanes sharing a voxel (the common case after sorting) must deposit
///    in the same order the scalar pipeline would.
///
/// Padding lanes are parked on valid voxels so running the vector phases
/// over them is safe; the scatter loop stops at `live`, so they deposit
/// nothing and never spill. Global particle index of lane `l` is
/// `base_idx + l`; absorbed indices and exiles are appended for the
/// caller (identical contract to `push::advance_block`).
#[allow(clippy::too_many_arguments)]
fn advance_full_block(
    b: &mut Block,
    base_idx: u32,
    live: usize,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
    absorbed: &mut Vec<u32>,
    exiles: &mut Vec<Exile>,
) {
    let s = compute_block(b, c, interp);
    scatter_block(b, base_idx, live, &s, c.qsp, acc, g, absorbed, exiles);
}

/// Everything [`compute_block`] hands to [`scatter_block`]: the stay
/// mask, the half displacements the movers need, and the quadrant
/// addends already transposed lane-major.
struct BlockPush {
    stay: crate::lanes::Mask8,
    hx: F32x8,
    hy: F32x8,
    hz: F32x8,
    txy: [F32x8; LANES],
    tz: [F32x8; LANES],
}

/// Phases 1–3 of [`advance_full_block`] plus the lane-wide quadrant
/// precompute: pure vector work against the block and the (read-only)
/// interpolators — no accumulator access, so the computes of different
/// blocks are independent. [`advance_range`] exploits that with deferred
/// scatter: it computes up to [`SCATTER_BATCH`] consecutive blocks
/// back-to-back (independent sqrt/div chains the ROB can overlap) before
/// draining their queued [`BlockPush`]es through [`scatter_block`] in
/// block order, which keeps every accumulator deposit in the exact
/// particle-index order the serial kernel would use.
#[inline]
fn compute_block(b: &mut Block, c: PushCoefficients, interp: &InterpolatorArray) -> BlockPush {
    let one = F32x8::splat(1.0);
    let third = F32x8::splat(1.0 / 3.0);
    let two_fifteenths = F32x8::splat(2.0 / 15.0);

    // Phases 1+2: transposed gather fused with E/cB interpolation (see
    // gather_ha_cb8 — fusing keeps the eighteen coefficient vectors from
    // staying live across the Boris rotation below).
    let dx = F32x8(b.dx);
    let dy = F32x8(b.dy);
    let dz = F32x8(b.dz);
    let ((hax, hay, haz), (cbx, cby, cbz)) = interp.gather_ha_cb8(&b.i, dx, dy, dz, c.qdt_2mc);
    let qdt = F32x8::splat(c.qdt_2mc);

    // Half E acceleration, then the Boris rotation with the VPIC
    // tan(θ/2)/θ correction polynomial.
    let mut ux = F32x8(b.ux) + hax;
    let mut uy = F32x8(b.uy) + hay;
    let mut uz = F32x8(b.uz) + haz;
    let v0 = qdt / (one + (ux * ux + (uy * uy + uz * uz))).sqrt();
    let v1 = cbx * cbx + (cby * cby + cbz * cbz);
    let v2 = (v0 * v0) * v1;
    let v3 = v0 * (one + v2 * (third + v2 * two_fifteenths));
    let mut v4 = v3 / (one + v1 * (v3 * v3));
    v4 = v4 + v4;
    let w0 = ux + v3 * (uy * cbz - uz * cby);
    let w1 = uy + v3 * (uz * cbx - ux * cbz);
    let w2 = uz + v3 * (ux * cby - uy * cbx);
    ux = ux + v4 * (w1 * cbz - w2 * cby);
    uy = uy + v4 * (w2 * cbx - w0 * cbz);
    uz = uz + v4 * (w0 * cby - w1 * cbx);

    // Second half E acceleration; store momentum (all lanes, like the
    // scalar path, which writes momenta before displacement handling).
    ux = ux + hax;
    uy = uy + hay;
    uz = uz + haz;
    b.ux = ux.0;
    b.uy = uy.0;
    b.uz = uz.0;

    // Half displacement in voxel-offset units: h = (v/c)·(c·dt/Δ).
    let rg = one / (one + (ux * ux + (uy * uy + uz * uz))).sqrt();
    let hx = ux * rg * F32x8::splat(c.cdt_dx);
    let hy = uy * rg * F32x8::splat(c.cdt_dy);
    let hz = uz * rg * F32x8::splat(c.cdt_dz);
    let mx = dx + hx; // streak midpoint (if in bounds)
    let my = dy + hy;
    let mz = dz + hz;
    let nx = mx + hx; // new position
    let ny = my + hy;
    let nz = mz + hz;

    // Phase 3: stay mask + select write-back. Crosser lanes keep their
    // pre-push positions — move_p walks from there.
    let stay = nx.abs().le(one) & ny.abs().le(one) & nz.abs().le(one);
    b.dx = F32x8::select(stay, nx, dx).0;
    b.dy = F32x8::select(stay, ny, dy).0;
    b.dz = F32x8::select(stay, nz, dz).0;

    // Phase 4: quadrant currents lane-wide, then an in-order scalar
    // scatter with spill-out. Crosser/padding lanes' addends are computed
    // but never scattered.
    let q = F32x8::splat(c.qsp) * F32x8(b.w);
    let v5 = q * hx * hy * hz * third;
    let jx = quadrants_lanes(q * hx, my, mz, v5);
    let jy = quadrants_lanes(q * hy, mz, mx, v5);
    let jz = quadrants_lanes(q * hz, mx, my, v5);
    // Shuffle-transpose quadrant-major → lane-major so each stay lane
    // deposits from two contiguous registers. The transpose only moves
    // bits; the per-entry `+=` and the lane scatter order are unchanged.
    let txy = transpose8([jx[0], jx[1], jx[2], jx[3], jy[0], jy[1], jy[2], jy[3]]);
    let zero = F32x8::splat(0.0);
    let tz = transpose8([jz[0], jz[1], jz[2], jz[3], zero, zero, zero, zero]);

    BlockPush {
        stay,
        hx,
        hy,
        hz,
        txy,
        tz,
    }
}

/// Phase 4 of [`advance_full_block`]: the in-order lane scatter with
/// spill-out, fed by [`compute_block`]'s precomputed addends.
///
/// Deposits use a register-resident accumulator run: consecutive stay
/// lanes sharing a voxel add into registers and the sums are stored once
/// per run, instead of a load-add-store round trip per lane (the
/// store-to-load forwarding chain is what serializes same-voxel
/// deposits). Every accumulator entry still receives the same addends in
/// the same lane order, so the sums are bit-identical to the per-lane
/// form. The run is flushed before any spill-out because move_p deposits
/// into the same accumulator array.
#[allow(clippy::too_many_arguments)]
#[inline]
fn scatter_block(
    b: &mut Block,
    base_idx: u32,
    live: usize,
    s: &BlockPush,
    qsp: f32,
    acc: &mut AccumulatorArray,
    g: &Grid,
    absorbed: &mut Vec<u32>,
    exiles: &mut Vec<Exile>,
) {
    let mut open: Option<(usize, F32x8, F32x8)> = None;
    for l in 0..live {
        if s.stay.test(l) {
            let voxel = b.i[l] as usize;
            match open.as_mut() {
                Some((v, axy, az)) if *v == voxel => {
                    *axy = *axy + s.txy[l];
                    *az = *az + s.tz[l];
                }
                _ => {
                    if let Some((v, axy, az)) = open.take() {
                        acc.store_lanes(v, axy, az);
                    }
                    let (axy, az) = acc.load_lanes(voxel);
                    open = Some((voxel, axy + s.txy[l], az + s.tz[l]));
                }
            }
        } else {
            if let Some((v, axy, az)) = open.take() {
                acc.store_lanes(v, axy, az);
            }
            spill_lane(
                b,
                l,
                base_idx,
                (s.hx.0[l], s.hy.0[l], s.hz.0[l]),
                qsp,
                acc,
                g,
                absorbed,
                exiles,
            );
        }
    }
    if let Some((v, axy, az)) = open.take() {
        acc.store_lanes(v, axy, az);
    }
}

/// The crosser/boundary exit from the lane kernel: run one lane through
/// the scalar `move_p` path. Outlined and marked cold so the ~6% of
/// lanes that leave their voxel don't drag the segment-walk code and its
/// register demand into the hot block loop — inlined, the move_p body
/// roughly doubles the loop and costs hundreds of cycles per crosser in
/// spill traffic and I-cache misses.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn spill_lane(
    b: &mut Block,
    l: usize,
    base_idx: u32,
    disp: (f32, f32, f32),
    qsp: f32,
    acc: &mut AccumulatorArray,
    g: &Grid,
    absorbed: &mut Vec<u32>,
    exiles: &mut Vec<Exile>,
) {
    let idx = base_idx + l as u32;
    let mut p = b.lane(l);
    let mut pm = Mover {
        dispx: disp.0,
        dispy: disp.1,
        dispz: disp.2,
        idx,
    };
    match move_p_local(&mut p, &mut pm, acc, g, qsp) {
        MoveOutcome::Done => {}
        MoveOutcome::Absorbed => absorbed.push(idx),
        MoveOutcome::Exit { face } => exiles.push(Exile {
            idx,
            face,
            mover: pm,
        }),
    }
    b.set_lane(l, &p);
}

/// How many blocks' [`compute_block`] results are queued before one
/// scatter pass drains them. The compute phase of a block is a ~190-cycle
/// serial dependency chain (gather → sqrt → div → rotate); with immediate
/// scatter the next block's chain cannot start until this block's
/// accumulator writes retire. Computing a batch of independent chains
/// back-to-back lets the out-of-order core overlap them; 8 blocks ≈ 64
/// particles comfortably covers the chain depth while the queued
/// [`BlockPush`]es (~5 KiB) stay L1-resident.
const SCATTER_BATCH: usize = 8;

/// One computed-but-not-yet-scattered block in the deferred-scatter queue.
struct QueuedBlock {
    bi: usize,
    base: u32,
    live: usize,
    push: BlockPush,
}

/// Drain the deferred-scatter queue in block order. Deposits and spills
/// happen here, in exactly the order the unbatched kernel would produce
/// them, which is what keeps the batching invisible to the bit-identity
/// contract.
///
/// # Safety
/// Caller must own every queued block exclusively (same contract as
/// [`advance_range`]); no `&mut Block` to any of them may be live.
#[allow(clippy::too_many_arguments)]
unsafe fn drain_batch(
    batch: &mut Vec<QueuedBlock>,
    blocks: BlockPtr,
    qsp: f32,
    acc: &mut AccumulatorArray,
    g: &Grid,
    absorbed: &mut Vec<u32>,
    exiles: &mut Vec<Exile>,
) {
    for e in batch.drain(..) {
        // SAFETY: exclusive ownership per the function contract.
        let b = unsafe { &mut *blocks.0.add(e.bi) };
        scatter_block(b, e.base, e.live, &e.push, qsp, acc, g, absorbed, exiles);
    }
}

/// One pipeline's share of the production AoSoA advance: the particle
/// index range `[start, end)`. With [`PushKernel::Lane`], blocks fully
/// inside the range run the lane-wide kernel with deferred scatter:
/// [`compute_block`] runs for up to [`SCATTER_BATCH`] consecutive blocks
/// (pure vector work, no accumulator access), then the queued results
/// scatter in block order. Lanes of blocks straddling a pipeline boundary
/// run the scalar per-particle path (same arithmetic — lane math is
/// element-wise, so results are bit-identical either way); the queue is
/// drained first so accumulator deposits keep particle-index order.
/// With [`PushKernel::Scalar`] every lane takes the scalar path — that is
/// the oracle configuration the differential harness compares against.
///
/// Also tallies the coherence telemetry of the range (crossers, spills,
/// mixed blocks, straddled lanes) for the sort-cadence controller.
///
/// # Safety
/// Ranges of concurrent callers must be disjoint, `blocks` must cover
/// `n_total` particles, and the buffer must outlive the call. A `&mut
/// Block` is only formed for blocks every live lane of which lies in
/// `[start, end)`; straddling blocks are accessed lane-wise through the
/// raw pointer, never via a whole-block reference.
#[allow(clippy::too_many_arguments)]
unsafe fn advance_range(
    blocks: BlockPtr,
    n_total: usize,
    start: usize,
    end: usize,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
    kernel: PushKernel,
) -> (Vec<u32>, Vec<Exile>, PushTally) {
    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    let mut tally = PushTally::default();
    let mut batch: Vec<QueuedBlock> = Vec::with_capacity(SCATTER_BATCH);
    let mut idx = start;
    while idx < end {
        let bi = idx / LANES;
        let lane0 = idx - bi * LANES;
        let block_start = bi * LANES;
        let block_live_end = (block_start + LANES).min(n_total);
        if kernel == PushKernel::Lane && lane0 == 0 && end >= block_live_end {
            // Every live lane of this block belongs to this pipeline:
            // safe to take the whole block mutably and run lane-parallel.
            let live = block_live_end - block_start;
            // SAFETY: exclusive ownership per the function contract.
            let b = unsafe { &mut *blocks.0.add(bi) };
            tally.pushed += live as u64;
            tally.lane_blocks += 1;
            let v0 = b.i[0];
            if b.i[1..live].iter().any(|&v| v != v0) {
                tally.mixed_blocks += 1;
            }
            let push = compute_block(b, c, interp);
            let spills = (0..live).filter(|&l| !push.stay.test(l)).count() as u64;
            tally.lane_spills += spills;
            tally.crossers += spills;
            batch.push(QueuedBlock {
                bi,
                base: block_start as u32,
                live,
                push,
            });
            if batch.len() == SCATTER_BATCH {
                // SAFETY: no block reference is live; ownership as above.
                unsafe {
                    drain_batch(
                        &mut batch,
                        blocks,
                        c.qsp,
                        acc,
                        g,
                        &mut absorbed,
                        &mut exiles,
                    )
                };
            }
            idx = block_live_end;
        } else {
            // Straddling block (or scalar-kernel run): touch only our
            // lanes, via raw pointer. Deposits must stay in particle-index
            // order, so queued lane blocks scatter first.
            // SAFETY: as above.
            unsafe {
                drain_batch(
                    &mut batch,
                    blocks,
                    c.qsp,
                    acc,
                    g,
                    &mut absorbed,
                    &mut exiles,
                )
            };
            let hi = (end - block_start).min(LANES);
            let bp = unsafe { blocks.0.add(bi) };
            for l in lane0..hi {
                let gidx = (block_start + l) as u32;
                tally.pushed += 1;
                if kernel == PushKernel::Lane {
                    tally.straddle_lanes += 1;
                }
                // SAFETY: lane `l` maps to particle index in [start, end),
                // owned exclusively by this pipeline.
                let mut p = unsafe { lane_load(bp, l) };
                match push_one(&mut p, gidx, c, interp, acc, g) {
                    PushedFate::Stayed { crossed: false } => {}
                    PushedFate::Stayed { crossed: true } => tally.crossers += 1,
                    PushedFate::Absorbed => {
                        tally.crossers += 1;
                        absorbed.push(gidx);
                    }
                    PushedFate::Exiled(e) => {
                        tally.crossers += 1;
                        exiles.push(e);
                    }
                }
                // SAFETY: as above.
                unsafe { lane_store(bp, l, &p) };
            }
            idx = block_start + hi;
        }
    }
    // SAFETY: as above.
    unsafe {
        drain_batch(
            &mut batch,
            blocks,
            c.qsp,
            acc,
            g,
            &mut absorbed,
            &mut exiles,
        )
    };
    (absorbed, exiles, tally)
}

/// Production AoSoA particle advance: the exact pipeline contract of
/// [`crate::push::advance_p`] — same index partition (`block =
/// n.div_ceil(n_pipes).max(1)` over *particle* indices, not blocks), same
/// per-pipeline deposit order, same absorbed/exile bookkeeping — so AoS
/// and AoSoA runs are bit-identical for any fixed pipeline count.
pub fn advance_p_aosoa_pipelined(
    store: &mut AosoaStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
) -> Vec<Exile> {
    advance_p_aosoa_pipelined_with(
        store,
        coeffs,
        interp,
        accumulators,
        g,
        PushKernel::default(),
    )
    .0
}

/// [`advance_p_aosoa_pipelined`] with an explicit kernel choice (the
/// differential-oracle harness pins `Lane` against `Scalar` through this
/// entry point) that also returns the range tallies summed in pipeline
/// order — integer adds, so the totals are worker-count-independent.
pub fn advance_p_aosoa_pipelined_with(
    store: &mut AosoaStore,
    coeffs: PushCoefficients,
    interp: &InterpolatorArray,
    accumulators: &mut [AccumulatorArray],
    g: &Grid,
    kernel: PushKernel,
) -> (Vec<Exile>, PushTally) {
    let n_pipes = accumulators.len();
    assert!(n_pipes >= 1);
    let n = store.len;
    let block = n.div_ceil(n_pipes).max(1);
    let ptr = BlockPtr(store.blocks.as_mut_ptr());

    let results: Vec<(Vec<u32>, Vec<Exile>, PushTally)> = accumulators
        .par_iter_mut()
        .enumerate()
        .map(|(pipe, acc)| {
            let start = (pipe * block).min(n);
            let end = ((pipe + 1) * block).min(n);
            // SAFETY: pipelines own disjoint particle index ranges
            // [start, end) partitioning [0, n); see `advance_range`.
            unsafe { advance_range(ptr, n, start, end, coeffs, interp, acc, g, kernel) }
        })
        .collect();

    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    let mut tally = PushTally::default();
    for (a, e, t) in results {
        absorbed.extend(a);
        exiles.extend(e);
        tally.absorb(&t);
    }
    let len = store.len;
    retarget_and_delete(len, absorbed, &mut exiles, |i| {
        store.swap_remove(i);
    });
    (exiles, tally)
}

/// Single-accumulator AoSoA advance for closed (periodic/reflect) domains
/// — the E8 layout-ablation kernel. Absorbed or exiting particles are
/// parked in place with zero weight instead of being removed/migrated;
/// use [`advance_p_aosoa_pipelined`] for the production contract.
pub fn advance_p_aosoa(
    store: &mut AosoaStore,
    c: PushCoefficients,
    interp: &InterpolatorArray,
    acc: &mut AccumulatorArray,
    g: &Grid,
) {
    let real = store.len;
    let mut absorbed: Vec<u32> = Vec::new();
    let mut exiles: Vec<Exile> = Vec::new();
    for (bi, b) in store.blocks.iter_mut().enumerate() {
        let base = bi * LANES;
        let live = (real - base).min(LANES);
        advance_full_block(
            b,
            base as u32,
            live,
            c,
            interp,
            acc,
            g,
            &mut absorbed,
            &mut exiles,
        );
    }
    // Closed-domain fallback: park leavers with zero weight.
    for idx in absorbed {
        let mut p = store.get(idx as usize);
        p.w = 0.0;
        store.set(idx as usize, p);
    }
    for e in exiles {
        let mut p = store.get(e.idx as usize);
        p.w = 0.0;
        store.set(e.idx as usize, p);
    }
}

/// Blocked counting sort by voxel with a caller-held scratch/histogram,
/// mirroring [`crate::sort::sort_by_voxel_with`]: same worker-count rule,
/// same per-worker histograms over contiguous *particle index* chunks,
/// same serial `(voxel, worker)` prefix-sum — so the output permutation is
/// exactly the stable serial counting sort, bitwise independent of the
/// worker count and identical to the AoS sort's.
pub fn sort_aosoa_with(
    store: &mut AosoaStore,
    n_voxels: usize,
    scratch: &mut Vec<Block>,
    counts: &mut Vec<u32>,
) {
    let n = store.len;
    let workers = worker_threads().min(n.div_ceil(MIN_SORT_CHUNK)).max(1);
    sort_aosoa_with_workers(store, n_voxels, scratch, counts, workers);
}

/// Worker-count-explicit body of the AoSoA sort (tests drive this to pin
/// the permutation against the AoS reference for any worker count).
pub(crate) fn sort_aosoa_with_workers(
    store: &mut AosoaStore,
    n_voxels: usize,
    scratch: &mut Vec<Block>,
    counts: &mut Vec<u32>,
    workers: usize,
) {
    let n = store.len;
    if n <= 1 {
        return;
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);

    // Phase 1: per-worker histograms over index ranges (worker w owns
    // particles [w·chunk, (w+1)·chunk) — the same split par_chunks gives
    // the AoS sort).
    counts.clear();
    counts.resize(workers * n_voxels, 0);
    {
        let blocks = &store.blocks;
        counts
            .par_chunks_mut(n_voxels)
            .enumerate()
            .for_each(|(w, hist)| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                for i in lo..hi {
                    hist[blocks[i / LANES].i[i % LANES] as usize] += 1;
                }
            });
    }

    // Phase 2: exclusive prefix-sum in (voxel, worker) order — identical
    // to the AoS sort, which is what makes the permutations equal.
    let mut running = 0u32;
    for v in 0..n_voxels {
        for w in 0..workers {
            let c = &mut counts[w * n_voxels + v];
            let t = *c;
            *c = running;
            running += t;
        }
    }

    // Phase 3: scatter into scratch blocks. Worker w writes exactly the
    // lanes its prefix-sum slots reserve.
    scratch.clear();
    scratch.resize(n.div_ceil(LANES), Block::default());
    let out = BlockPtr(scratch.as_mut_ptr());
    {
        let blocks = &store.blocks;
        counts
            .par_chunks_mut(n_voxels)
            .enumerate()
            .for_each(move |(w, offsets)| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                for i in lo..hi {
                    let p = blocks[i / LANES].lane(i % LANES);
                    let slot = &mut offsets[p.i as usize];
                    let t = *slot as usize;
                    // SAFETY: `t` walks the half-open range reserved for
                    // this (worker, voxel) pair by the exclusive
                    // prefix-sum; those ranges partition [0, n), so no two
                    // writes target the same lane and every lane is in
                    // bounds of `scratch`.
                    unsafe { lane_store(out.0.add(t / LANES), t % LANES, &p) };
                    *slot += 1;
                }
            });
    }
    std::mem::swap(&mut store.blocks, scratch);
    store.park_tail();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldArray;
    use crate::field_solver::{bcs_of, sync_b, sync_e};
    use crate::push::{advance_p, advance_p_serial};
    use crate::rng::Rng;
    use crate::sort::sort_with_workers;
    use crate::store::ParticleStore;

    #[test]
    fn roundtrip_preserves_particles() {
        let mut rng = Rng::seeded(5);
        let parts: Vec<Particle> = (0..21)
            .map(|n| Particle {
                dx: rng.uniform_in(-1.0, 1.0) as f32,
                i: 100 + n,
                w: 1.0,
                ..Default::default()
            })
            .collect();
        let store = AosoaStore::from_particles(&parts);
        assert_eq!(store.len(), 21);
        assert_eq!(store.blocks.len(), 3);
        assert_eq!(store.to_particles(), parts);
        assert!(!store.is_empty());
    }

    fn loaded_plasma(g: &Grid, n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = Rng::seeded(seed);
        (0..n)
            .map(|_| Particle {
                dx: rng.uniform_in(-0.99, 0.99) as f32,
                dy: rng.uniform_in(-0.99, 0.99) as f32,
                dz: rng.uniform_in(-0.99, 0.99) as f32,
                i: g.voxel(
                    1 + rng.index(g.nx),
                    1 + rng.index(g.ny),
                    1 + rng.index(g.nz),
                ) as u32,
                ux: rng.normal() as f32 * 0.3,
                uy: rng.normal() as f32 * 0.3,
                uz: rng.normal() as f32 * 0.3,
                w: 1.0,
            })
            .collect()
    }

    #[test]
    fn aosoa_push_matches_aos_push_exactly() {
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ex[v] = 0.3;
            f.cbz[v] = 0.8;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);

        let parts = loaded_plasma(&g, 100, 31);

        let c = PushCoefficients::new(-1.0, 1.0, &g);
        let mut aos = parts.clone();
        let mut acc_aos = AccumulatorArray::new(&g);
        advance_p_serial(&mut aos, c, &ia, &mut acc_aos, &g);

        let mut store = AosoaStore::from_particles(&parts);
        let mut acc_soa = AccumulatorArray::new(&g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc_soa, &g);
        let soa = store.to_particles();

        assert_eq!(aos.len(), soa.len());
        for (a, b) in aos.iter().zip(soa.iter()) {
            assert_eq!(a, b, "particle state diverged");
        }
        for (x, y) in acc_aos.data.iter().zip(acc_soa.data.iter()) {
            for n in 0..4 {
                assert_eq!(x.jx[n], y.jx[n]);
                assert_eq!(x.jy[n], y.jy[n]);
                assert_eq!(x.jz[n], y.jz[n]);
            }
        }
    }

    #[test]
    fn padding_lanes_deposit_nothing() {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let ia = InterpolatorArray::new(&g);
        let parts = vec![Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: 0.5,
            w: 1.0,
            ..Default::default()
        }];
        let mut store = AosoaStore::from_particles(&parts);
        let mut acc = AccumulatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);
        advance_p_aosoa(&mut store, c, &ia, &mut acc, &g);
        // Only the single real particle's deposit exists.
        let total: f32 = acc.data.iter().flat_map(|a| a.jx.iter()).sum();
        let single: f32 = acc.data[g.voxel(2, 2, 2)].jx.iter().sum();
        assert_eq!(total, single);
        assert!(single != 0.0);
    }

    #[test]
    fn pipelined_aosoa_matches_pipelined_aos_bitwise() {
        // Production contract: for any fixed pipeline count, AoS and AoSoA
        // produce bit-identical particles AND per-pipeline accumulators
        // (straddling blocks force the scalar lane path at every pipeline
        // boundary — counts chosen so boundaries do not land on LANES
        // multiples).
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut f = FieldArray::new(&g);
        for v in 0..g.n_voxels() {
            f.ex[v] = 0.4;
            f.cby[v] = 0.6;
        }
        sync_e(&mut f, &g, bcs_of(&g));
        sync_b(&mut f, &g, bcs_of(&g));
        let mut ia = InterpolatorArray::new(&g);
        ia.load(&f, &g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);

        for (n, n_pipes) in [(101usize, 3usize), (257, 4), (64, 1), (30, 7)] {
            let parts = loaded_plasma(&g, n, 40 + n as u64);

            let mut aos = ParticleStore::Aos(parts.clone());
            let mut acc_a: Vec<AccumulatorArray> =
                (0..n_pipes).map(|_| AccumulatorArray::new(&g)).collect();
            let ex_a = advance_p(&mut aos, c, &ia, &mut acc_a, &g);

            let mut soa = ParticleStore::Aosoa(AosoaStore::from_particles(&parts));
            let mut acc_s: Vec<AccumulatorArray> =
                (0..n_pipes).map(|_| AccumulatorArray::new(&g)).collect();
            let ex_s = advance_p(&mut soa, c, &ia, &mut acc_s, &g);

            assert_eq!(
                aos.to_particles(),
                soa.to_particles(),
                "n={n} pipes={n_pipes}"
            );
            assert_eq!(ex_a.len(), ex_s.len());
            for (pipe, (x, y)) in acc_a.iter().zip(acc_s.iter()).enumerate() {
                for (vx, vy) in x.data.iter().zip(y.data.iter()) {
                    for k in 0..4 {
                        assert_eq!(vx.jx[k], vy.jx[k], "pipe {pipe}");
                        assert_eq!(vx.jy[k], vy.jy[k], "pipe {pipe}");
                        assert_eq!(vx.jz[k], vy.jz[k], "pipe {pipe}");
                    }
                }
            }
        }
    }

    #[test]
    fn aosoa_sort_matches_aos_permutation_for_any_worker_count() {
        let mut rng = Rng::seeded(21);
        let nv = 300;
        let parts: Vec<Particle> = (0..5000)
            .map(|k| Particle {
                i: rng.index(nv) as u32,
                w: k as f32, // unique tag → permutation comparable exactly
                ux: rng.normal() as f32,
                ..Default::default()
            })
            .collect();
        let mut want = parts.clone();
        let (mut s1, mut c1) = (Vec::new(), Vec::new());
        sort_with_workers(&mut want, nv, &mut s1, &mut c1, 1);
        for workers in [1usize, 2, 3, 5, 8] {
            let mut store = AosoaStore::from_particles(&parts);
            let (mut scratch, mut counts) = (Vec::new(), Vec::new());
            sort_aosoa_with_workers(&mut store, nv, &mut scratch, &mut counts, workers);
            assert_eq!(store.to_particles(), want, "workers = {workers}");
            assert_eq!(store.len(), parts.len());
        }
    }

    #[test]
    fn push_swap_remove_and_sort_keep_padding_invariants() {
        // After arbitrary mutation the tail block's padding lanes must
        // stay zero-weight on a valid voxel (the lane-parallel kernel
        // interpolates them unconditionally).
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.1);
        let nv = g.n_voxels();
        let mut store = AosoaStore::default();
        let mut rng = Rng::seeded(9);
        for _ in 0..13 {
            store.push(Particle {
                i: g.voxel(1 + rng.index(4), 1 + rng.index(4), 1 + rng.index(4)) as u32,
                w: 1.0,
                ..Default::default()
            });
        }
        store.swap_remove(4);
        store.swap_remove(0);
        let (mut scratch, mut counts) = (Vec::new(), Vec::new());
        sort_aosoa_with(&mut store, nv, &mut scratch, &mut counts);
        assert_eq!(store.len(), 11);
        let live = store.len() % LANES;
        let tail = store.blocks.last().unwrap();
        for l in live..LANES {
            assert_eq!(tail.w[l], 0.0, "padding lane {l} has weight");
            assert!((tail.i[l] as usize) < nv, "padding lane {l} off-grid");
        }
    }
}
