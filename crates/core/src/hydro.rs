//! Hydrodynamic moment deposition (VPIC's `hydro_array`): per-species
//! node-centered fluid moments accumulated from the particles. These are
//! the quantities LPI analyses actually plot — density profiles, current
//! channels, heating maps — and the basis of the paper's field dumps.

use crate::grid::Grid;
use crate::species::Species;

/// Node-centered fluid moments of one species:
/// charge-free number density `n`, momentum density `n·⟨u⟩`, kinetic
/// energy density `n·⟨γ−1⟩` and the diagonal momentum-flux (stress)
/// components `n·⟨uᵢvᵢ⟩`.
#[derive(Clone, Debug)]
pub struct HydroArray {
    pub n: Vec<f32>,
    pub px: Vec<f32>,
    pub py: Vec<f32>,
    pub pz: Vec<f32>,
    pub ke: Vec<f32>,
    pub txx: Vec<f32>,
    pub tyy: Vec<f32>,
    pub tzz: Vec<f32>,
    n_voxels: usize,
}

impl HydroArray {
    /// Zeroed moments for `grid`.
    pub fn new(g: &Grid) -> Self {
        let n = g.n_voxels();
        HydroArray {
            n: vec![0.0; n],
            px: vec![0.0; n],
            py: vec![0.0; n],
            pz: vec![0.0; n],
            ke: vec![0.0; n],
            txx: vec![0.0; n],
            tyy: vec![0.0; n],
            tzz: vec![0.0; n],
            n_voxels: n,
        }
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        for arr in [
            &mut self.n,
            &mut self.px,
            &mut self.py,
            &mut self.pz,
            &mut self.ke,
            &mut self.txx,
            &mut self.tyy,
            &mut self.tzz,
        ] {
            arr.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Accumulate a species' moments with trilinear node weighting
    /// (densities per unit volume).
    pub fn accumulate(&mut self, sp: &Species, g: &Grid) {
        assert_eq!(self.n_voxels, g.n_voxels());
        let (sx, sy, _) = g.strides();
        let (dj, dk) = (sx, sx * sy);
        let r8v = 1.0 / (8.0 * g.dv());
        for p in sp.iter() {
            let v = p.i as usize;
            let w = p.w * r8v;
            let gamma = p.gamma();
            let rg = 1.0 / gamma;
            let ke = (p.kinetic_w() / p.w.max(1e-30) as f64) as f32; // (γ−1) per particle
            let moments = [
                w,
                w * p.ux,
                w * p.uy,
                w * p.uz,
                w * ke,
                w * p.ux * p.ux * rg, // u·v = u²/γ
                w * p.uy * p.uy * rg,
                w * p.uz * p.uz * rg,
            ];
            let (lx, hx) = (1.0 - p.dx, 1.0 + p.dx);
            let (ly, hy) = (1.0 - p.dy, 1.0 + p.dy);
            let (lz, hz) = (1.0 - p.dz, 1.0 + p.dz);
            let corners = [
                (v, lx * ly * lz),
                (v + 1, hx * ly * lz),
                (v + dj, lx * hy * lz),
                (v + 1 + dj, hx * hy * lz),
                (v + dk, lx * ly * hz),
                (v + 1 + dk, hx * ly * hz),
                (v + dj + dk, lx * hy * hz),
                (v + 1 + dj + dk, hx * hy * hz),
            ];
            for (node, cw) in corners {
                self.n[node] += moments[0] * cw;
                self.px[node] += moments[1] * cw;
                self.py[node] += moments[2] * cw;
                self.pz[node] += moments[3] * cw;
                self.ke[node] += moments[4] * cw;
                self.txx[node] += moments[5] * cw;
                self.tyy[node] += moments[6] * cw;
                self.tzz[node] += moments[7] * cw;
            }
        }
    }

    /// Mean density over live nodes.
    pub fn mean_density(&self, g: &Grid) -> f64 {
        let mut s = 0.0f64;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    s += self.n[g.voxel(i, j, k)] as f64;
                }
            }
        }
        s / g.n_live() as f64
    }

    /// Density line-out along x (transverse-averaged, live nodes, with the
    /// periodic images of planes `n+1` folded into plane 1 by the caller
    /// if exact totals are needed; line-outs just read live nodes).
    pub fn density_line_x(&self, g: &Grid) -> Vec<f64> {
        (1..=g.nx)
            .map(|i| {
                let mut s = 0.0f64;
                for k in 1..=g.nz {
                    for j in 1..=g.ny {
                        s += self.n[g.voxel(i, j, k)] as f64;
                    }
                }
                s / (g.ny * g.nz) as f64
            })
            .collect()
    }

    /// Temperature proxy `⟨T⟩ = (txx+tyy+tzz)/(3n)` averaged over live
    /// nodes with density above `n_floor`.
    pub fn mean_temperature(&self, g: &Grid, n_floor: f32) -> f64 {
        let mut s = 0.0f64;
        let mut c = 0usize;
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let v = g.voxel(i, j, k);
                    if self.n[v] > n_floor {
                        s += ((self.txx[v] + self.tyy[v] + self.tzz[v]) / (3.0 * self.n[v])) as f64;
                        c += 1;
                    }
                }
            }
        }
        if c > 0 {
            s / c as f64
        } else {
            0.0
        }
    }
}

impl HydroArray {
    /// Fold periodic node aliases (plane `n+1` into plane `1`, mirrored
    /// back) so live nodes carry full values on periodic axes. Call once
    /// after all `accumulate`s.
    pub fn fold_periodic(&mut self, g: &Grid) {
        use crate::field_solver::{bcs_of, copy_plane, fold_plane, FieldBc};
        let bcs = bcs_of(g);
        for axis in 0..3 {
            if bcs[axis] != FieldBc::Periodic || bcs[axis + 3] != FieldBc::Periodic {
                continue;
            }
            let n = [g.nx, g.ny, g.nz][axis];
            for arr in [
                &mut self.n,
                &mut self.px,
                &mut self.py,
                &mut self.pz,
                &mut self.ke,
                &mut self.txx,
                &mut self.tyy,
                &mut self.tzz,
            ] {
                fold_plane(arr, g, axis, n + 1, 1);
                copy_plane(arr, g, axis, 1, n + 1);
            }
        }
    }
}

/// One-call helper: fresh moments of one species.
pub fn hydro_moments(sp: &Species, g: &Grid) -> HydroArray {
    let mut h = HydroArray::new(g);
    h.accumulate(sp, g);
    h.fold_periodic(g);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxwellian::{load_uniform, Momentum};
    use crate::particle::Particle;
    use crate::rng::Rng;

    #[test]
    fn uniform_plasma_moments() {
        let g = Grid::periodic((6, 6, 6), (0.5, 0.5, 0.5), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(1);
        let uth = 0.05f32;
        let drift = 0.02f32;
        load_uniform(
            &mut sp,
            &g,
            &mut rng,
            2.0,
            200,
            Momentum::drifting_x(uth, drift),
        );
        let h = hydro_moments(&sp, &g);
        // With periodic folding every live node sees the full density 2.0.
        let mut n_sum = 0.0f64;
        let mut px_sum = 0.0f64;
        let mut txx_sum = 0.0f64;
        let mut count = 0usize;
        for k in 1..=6 {
            for j in 1..=6 {
                for i in 1..=6 {
                    let v = g.voxel(i, j, k);
                    n_sum += h.n[v] as f64;
                    px_sum += h.px[v] as f64;
                    txx_sum += h.txx[v] as f64;
                    count += 1;
                }
            }
        }
        let n_mean = n_sum / count as f64;
        assert!((n_mean - 2.0).abs() < 0.05, "n = {n_mean}");
        // Mean momentum density ≈ n·u_drift.
        assert!((px_sum / count as f64 - 2.0 * drift as f64).abs() < 0.01);
        // Stress ≈ n·(uth² + drift²).
        let want = 2.0 * (uth as f64 * uth as f64 + (drift as f64).powi(2));
        assert!((txx_sum / count as f64 - want).abs() < 0.25 * want);
    }

    #[test]
    fn temperature_proxy_matches_loading() {
        let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(2);
        let uth = 0.08f32;
        load_uniform(&mut sp, &g, &mut rng, 1.0, 400, Momentum::thermal(uth));
        let h = hydro_moments(&sp, &g);
        let t = h.mean_temperature(&g, 0.1);
        let want = (uth as f64).powi(2);
        assert!((t - want).abs() < 0.1 * want, "T = {t}, want {want}");
    }

    #[test]
    fn density_line_sees_a_slab() {
        let g = Grid::periodic((10, 2, 2), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(3);
        crate::maxwellian::load_profile(
            &mut sp,
            &g,
            &mut rng,
            300,
            Momentum::thermal(0.0),
            1.0,
            |x, _, _| {
                if (3.0..7.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let h = hydro_moments(&sp, &g);
        let line = h.density_line_x(&g);
        assert!(line[0] < 0.1, "vacuum polluted: {line:?}");
        assert!((line[5] - 1.0).abs() < 0.15, "slab missing: {line:?}");
        assert!(line[9] < 0.1);
    }

    #[test]
    fn clear_resets_everything() {
        let g = Grid::periodic((3, 3, 3), (1.0, 1.0, 1.0), 0.1);
        let mut sp = Species::new("e", -1.0, 1.0);
        sp.push(Particle {
            i: g.voxel(2, 2, 2) as u32,
            ux: 1.0,
            w: 1.0,
            ..Default::default()
        });
        let mut h = hydro_moments(&sp, &g);
        assert!(h.mean_density(&g) > 0.0);
        h.clear();
        assert_eq!(h.mean_density(&g), 0.0);
        assert!(h.px.iter().all(|&v| v == 0.0));
    }
}
