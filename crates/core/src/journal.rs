//! Write-ahead journal: an append-only log of CRC-framed records.
//!
//! The sweep orchestrator (and anything else that must survive being
//! killed mid-flight) records state transitions here *before* acting on
//! them, then replays the log on restart. The framing discipline is the
//! checkpoint module's, shrunk to a stream: a magic header, then one
//! `u32` length + payload + `u32` CRC-32 frame per record. Each append
//! is a single `write_all` followed by `File::sync_data`, so a record is
//! either fully on disk or recognizably absent.
//!
//! Replay policy (the part that makes crash-recovery sound):
//!
//! * **Torn tail** — the file ends inside a frame (partial length word,
//!   or fewer payload/CRC bytes than declared). This is exactly what a
//!   `kill -9` between `write_all` and durability produces. The valid
//!   prefix is salvaged, the tear is reported in [`ReplayReport`], and
//!   the next append truncates the tail before writing.
//! * **Corrupt record** — a *complete* frame whose CRC does not match,
//!   anywhere in the file. That is bit rot, not a crash artifact, and
//!   replay refuses it with a typed [`JournalError::CorruptRecord`]
//!   rather than guessing.
//! * A corrupted length word can masquerade as a tear (it claims more
//!   bytes than the file holds); the salvage then drops every later
//!   record. Replay can't tell the difference, so the report carries
//!   `dropped_bytes` and callers that know their expected state (the
//!   sweep queue re-defines every job from its spec) must reconcile
//!   against it instead of trusting the journal to be complete.

use crate::crc32::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"VPICWAL1";

/// Largest record payload this implementation accepts. Journals hold
/// state-machine transitions, not bulk data; anything bigger than this
/// in a length word is corruption, not a record.
pub const MAX_RECORD: u32 = 1 << 24;

/// Typed journal failure.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the journal magic.
    BadMagic,
    /// A complete frame failed its CRC or declared an implausible
    /// length: bit rot somewhere the crash-recovery story cannot paper
    /// over.
    CorruptRecord {
        /// Byte offset of the frame's length word.
        offset: u64,
        /// What specifically failed.
        reason: String,
    },
    /// Asked to append a payload larger than [`MAX_RECORD`].
    RecordTooLarge { len: usize },
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a VPIC journal (bad magic)"),
            JournalError::CorruptRecord { offset, reason } => {
                write!(f, "corrupt journal record at byte {offset}: {reason}")
            }
            JournalError::RecordTooLarge { len } => {
                write!(f, "journal record of {len} bytes exceeds cap {MAX_RECORD}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// What replay found, beyond the records themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Complete, CRC-verified records replayed.
    pub records: usize,
    /// The file ended inside a frame (crash artifact); the tail was
    /// dropped and will be truncated by the next append.
    pub torn_tail: bool,
    /// Bytes dropped after the last valid record (0 when not torn).
    pub dropped_bytes: u64,
}

/// Append-only CRC-framed record log.
///
/// One writer at a time: opening takes the file as-is, appends go
/// through `&mut self`. Readers replay by reopening the path.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// End of the last valid frame; appends land here.
    write_pos: u64,
    /// A torn tail was detected at open and not yet truncated.
    pending_truncate: bool,
}

impl Journal {
    /// Create a fresh journal at `path` (truncating any existing file),
    /// write the magic header and make it durable.
    pub fn create(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path,
            write_pos: MAGIC.len() as u64,
            pending_truncate: false,
        })
    }

    /// Open an existing journal (or create it if absent), replaying
    /// every valid record into `apply`. Returns the journal positioned
    /// for appending plus the replay report.
    pub fn open(
        path: impl Into<PathBuf>,
        mut apply: impl FnMut(&[u8]),
    ) -> Result<(Journal, ReplayReport), JournalError> {
        let path = path.into();
        if !path.exists() {
            return Ok((Journal::create(path)?, ReplayReport::default()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (valid_len, report) = replay_bytes(&bytes, &mut apply)?;
        Ok((
            Journal {
                file,
                path,
                write_pos: valid_len,
                pending_truncate: report.torn_tail,
            },
            report,
        ))
    }

    /// Append one record and make it durable before returning.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return Err(JournalError::RecordTooLarge { len: payload.len() });
        }
        if self.pending_truncate {
            // Cut the torn tail so the new frame starts clean.
            self.file.set_len(self.write_pos)?;
            self.pending_truncate = false;
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(self.write_pos))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.write_pos += frame.len() as u64;
        Ok(())
    }

    /// Path this journal lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid journal (header plus whole frames).
    pub fn len(&self) -> u64 {
        self.write_pos
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.write_pos == MAGIC.len() as u64
    }
}

/// Replay framed records from an in-memory image, calling `apply` per
/// record. Returns the byte length of the valid prefix and the report.
fn replay_bytes(
    bytes: &[u8],
    apply: &mut impl FnMut(&[u8]),
) -> Result<(u64, ReplayReport), JournalError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut pos = MAGIC.len();
    let mut report = ReplayReport::default();
    while pos < bytes.len() {
        let frame_start = pos;
        // Length word.
        if bytes.len() - pos < 4 {
            report.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(JournalError::CorruptRecord {
                offset: frame_start as u64,
                reason: format!("declared length {len} exceeds cap {MAX_RECORD}"),
            });
        }
        // Payload + CRC.
        let need = len as usize + 4;
        if bytes.len() - pos - 4 < need {
            report.torn_tail = true;
            break;
        }
        pos += 4;
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        let expected = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        pos += 4;
        let got = crc32(payload);
        if got != expected {
            return Err(JournalError::CorruptRecord {
                offset: frame_start as u64,
                reason: format!("CRC-32 mismatch (expected {expected:#010x}, got {got:#010x})"),
            });
        }
        apply(payload);
        report.records += 1;
    }
    // When torn, the loop broke with `pos` still at the start of the
    // incomplete frame, so `pos` is the valid prefix either way.
    if report.torn_tail {
        report.dropped_bytes = (bytes.len() - pos) as u64;
    }
    Ok((pos as u64, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vpic_journal_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    fn replay_all(path: &Path) -> Result<(Vec<Vec<u8>>, ReplayReport), JournalError> {
        let mut records = Vec::new();
        let (_, report) = Journal::open(path, |r| records.push(r.to_vec()))?;
        Ok((records, report))
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        assert!(j.is_empty());
        j.append(b"alpha").unwrap();
        j.append(b"").unwrap();
        j.append(&[0xFFu8; 300]).unwrap();
        assert!(!j.is_empty());
        drop(j);
        let (records, report) = replay_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], vec![0xFFu8; 300]);
        assert_eq!(
            report,
            ReplayReport {
                records: 3,
                torn_tail: false,
                dropped_bytes: 0
            }
        );
    }

    #[test]
    fn torn_tail_salvages_prefix_and_next_append_heals() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append(b"keep-me").unwrap();
        j.append(b"torn-away").unwrap();
        drop(j);
        // Tear the last frame: drop its final 3 bytes (inside the CRC).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (records, report) = replay_all(&path).unwrap();
        assert_eq!(records, vec![b"keep-me".to_vec()]);
        assert!(report.torn_tail);
        assert!(report.dropped_bytes > 0);

        // Appending over the tear truncates it and stays replayable.
        let (mut j, _) = Journal::open(&path, |_| {}).unwrap();
        j.append(b"after-tear").unwrap();
        drop(j);
        let (records, report) = replay_all(&path).unwrap();
        assert_eq!(records, vec![b"keep-me".to_vec(), b"after-tear".to_vec()]);
        assert!(!report.torn_tail);
    }

    #[test]
    fn mid_file_bit_flip_is_a_typed_error() {
        let path = tmp("bitflip.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append(b"first-record").unwrap();
        j.append(b"second-record").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit of the first record (just past magic + len).
        let idx = MAGIC.len() + 4 + 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match replay_all(&path) {
            Err(JournalError::CorruptRecord { offset, .. }) => {
                assert_eq!(offset, MAGIC.len() as u64)
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = tmp("magic.wal");
        std::fs::write(&path, b"NOTAWAL!extra").unwrap();
        assert!(matches!(replay_all(&path), Err(JournalError::BadMagic)));
    }

    #[test]
    fn oversize_append_is_rejected_before_write() {
        let path = tmp("oversize.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        let too_big = vec![0u8; MAX_RECORD as usize + 1];
        assert!(matches!(
            j.append(&too_big),
            Err(JournalError::RecordTooLarge { .. })
        ));
        // The journal is still usable and the file unpolluted.
        j.append(b"ok").unwrap();
        drop(j);
        let (records, _) = replay_all(&path).unwrap();
        assert_eq!(records, vec![b"ok".to_vec()]);
    }
}
