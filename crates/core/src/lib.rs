//! # vpic-core
//!
//! A from-scratch Rust reproduction of the VPIC kinetic plasma simulation
//! core — the three-dimensional, relativistic, electromagnetic
//! particle-in-cell code whose Roadrunner runs are reported in
//! *"0.374 Pflop/s trillion-particle kinetic modeling of laser plasma
//! interaction on Roadrunner"* (Bowers et al., SC 2008).
//!
//! The crate provides the single-domain engine:
//!
//! * [`grid::Grid`] — Yee mesh with ghost ring, voxel indexing and
//!   particle boundary topology;
//! * [`field::FieldArray`] + [`field_solver`] — explicit FDTD Maxwell
//!   solver with periodic/PEC boundaries and Marder divergence cleaning;
//! * [`interpolator::InterpolatorArray`] — per-voxel energy-conserving
//!   interpolation coefficients (VPIC's 18-float interpolator);
//! * [`push`] — the relativistic Boris push with charge-conserving
//!   (Villasenor–Buneman) current deposition and `move_p` cell-crossing
//!   segmentation;
//! * [`accumulator`] — per-pipeline current accumulators;
//! * [`sort`] — voxel-order counting sort;
//! * [`maxwellian`] — plasma loading;
//! * [`sim::Simulation`] — the step driver with per-phase timings;
//! * [`sponge`], [`checkpoint`], [`rng`] — open-boundary damping layers,
//!   restart dumps and deterministic RNG.
//!
//! Distributed (multi-domain) runs live in the `vpic-parallel` crate;
//! laser–plasma workloads in `vpic-lpi`.
//!
//! ## Units
//!
//! The engine is unit-agnostic; the normalized convention used throughout
//! the workspace is `c = ε0 = μ0 = 1`, electron charge `−1`, electron
//! mass `1`, so a density `n` gives plasma frequency `ωpe = √n`.
//! Magnetic storage is `cB` (VPIC convention) and particle momentum is
//! `u = p/(mc)`.

pub mod accumulator;
pub mod aosoa;
pub mod cadence;
pub mod checkpoint;
pub mod collision;
pub mod crc32;
pub mod deposit;
pub mod field;
pub mod field_solver;
pub mod grid;
pub mod harris;
pub mod hydro;
pub mod inject;
pub mod interpolator;
pub mod journal;
pub mod juttner;
pub mod lanes;
pub mod maxwellian;
pub mod particle;
pub mod push;
pub mod queue;
pub mod rng;
pub mod sentinel;
pub mod sim;
pub mod sort;
pub mod species;
pub mod sponge;
pub mod store;
pub mod threads;
pub mod tracer;
pub mod units;

pub use accumulator::{Accumulator, AccumulatorArray, AccumulatorSet};
pub use aosoa::{
    advance_p_aosoa, advance_p_aosoa_pipelined, advance_p_aosoa_pipelined_with, sort_aosoa_with,
    AosoaStore, Block, LANES,
};
pub use cadence::{
    auto_sort_interval, CadenceState, CoherenceCounters, PushTally, SortPolicy,
    DEFAULT_SORT_INTERVAL, MAX_AUTO_INTERVAL, MIN_AUTO_INTERVAL,
};
pub use checkpoint::CheckpointError;
pub use collision::CollisionOperator;
pub use crc32::{crc32, Crc32};
pub use field::FieldArray;
pub use field_solver::FieldBc;
pub use grid::{Grid, ParticleBc};
pub use harris::HarrisSheet;
pub use hydro::{hydro_moments, HydroArray};
pub use inject::ThermalInjector;
pub use interpolator::{Interpolator, InterpolatorArray, InterpolatorLanes};
pub use journal::{Journal, JournalError, ReplayReport};
pub use juttner::{load_juttner, sample_juttner, sample_juttner_u};
pub use lanes::{transpose8, F32x8, F64x8, Mask8};
pub use maxwellian::{load_profile, load_two_stream, load_uniform, Momentum};
pub use particle::{Mover, Particle};
pub use push::{
    advance_p, advance_p_serial, advance_p_tallied, advance_p_with, move_p_local, Exile,
    MoveOutcome, PushCoefficients, PushKernel,
};
pub use queue::{Job, JobEvent, JobQueue, JobState, QueueError, QueueStats, RetryPolicy};
pub use rng::Rng;
pub use sentinel::{
    classify, validate_cfl, AnomalyKind, CorruptionEvent, CorruptionMode, CorruptionPlan,
    FlightRecorder, HealEvent, HealthSample, HealthVerdict, Sentinel, SentinelConfig, SimConfig,
};
pub use sim::{EnergySnapshot, Simulation, StepTimings};
pub use sort::{sort_by_voxel, sort_by_voxel_with};
pub use species::Species;
pub use sponge::Sponge;
pub use store::{Layout, ParticleStore, StoreIter};
pub use threads::worker_threads;
pub use tracer::{add_tracer, tracer_species, TrackPoint, TrajectoryRecorder};
pub use units::LabFrame;
