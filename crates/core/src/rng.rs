//! Deterministic random number generation for particle loading.
//!
//! Thin wrapper over `rand::rngs::SmallRng` adding a Box–Muller normal
//! sampler (the only distribution PIC loading needs beyond uniforms) and a
//! per-domain seeding convention so distributed runs are reproducible
//! regardless of rank count.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic RNG for loaders and tests.
pub struct Rng {
    inner: SmallRng,
    spare_normal: Option<f64>,
}

impl Rng {
    /// Seeded constructor.
    pub fn seeded(seed: u64) -> Self {
        Rng {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Seed for a domain in a multi-domain run: mixes the run seed with the
    /// rank so every rank draws an independent, reproducible stream.
    pub fn for_domain(run_seed: u64, rank: usize) -> Self {
        // SplitMix64 finalizer as the mixing function.
        let mut z = run_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rank as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::seeded(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller (pairs cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
            self.spare_normal = Some(r * s);
            return r * c;
        }
    }

    /// Uniform integer in `0..n`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn domain_streams_differ() {
        let mut a = Rng::for_domain(7, 0);
        let mut b = Rng::for_domain(7, 1);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seeded(123);
        let n = 200_000;
        let (mut m1, mut m2) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z = r.normal();
            m1 += z;
            m2 += z * z;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.01, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.02, "var {m2}");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = Rng::seeded(5);
        for _ in 0..1000 {
            let x = r.uniform_in(-3.0, 2.0);
            assert!((-3.0..2.0).contains(&x));
            let i = r.index(7);
            assert!(i < 7);
        }
    }
}
