//! IEEE CRC-32 (the polynomial used by zip/gzip/Ethernet), table-driven,
//! dependency-free. Checkpoint sections are checksummed with this so a
//! truncated or bit-flipped restart dump is detected at load time instead
//! of silently seeding a corrupt resumed run.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0x5Au8; 1024];
        let base = crc32(&data);
        data[513] ^= 0x04;
        assert_ne!(crc32(&data), base);
    }
}
