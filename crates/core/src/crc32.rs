//! IEEE CRC-32 (the polynomial used by zip/gzip/Ethernet), table-driven,
//! dependency-free. Checkpoint sections are checksummed with this so a
//! truncated or bit-flipped restart dump is detected at load time instead
//! of silently seeding a corrupt resumed run.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Content fingerprint for buffers that *embed their own CRC-32s*.
///
/// CRC-32 has a residue property: running `payload ++ le32(crc32(payload))`
/// through the register lands on a constant (`0x2144_DF1C` pre-final-xor)
/// regardless of the payload. The v2 checkpoint container stores exactly
/// that shape per section, so `crc32(whole_dump)` collapses to a function
/// of the *section lengths only* — two dumps with the same particle count
/// collide even when most of their bytes differ. Any end-state "are these
/// runs bit-identical" witness must therefore NOT be a plain CRC of the
/// container. This fingerprint mixes each 8-byte chunk through a
/// splitmix64-style avalanche (seeded with the length), which has no such
/// linear cancellation.
pub fn fingerprint32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h = mix64(h ^ v);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix64(h ^ u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
    }
    (h ^ (h >> 32)) as u32
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0x5Au8; 1024];
        let base = crc32(&data);
        data[513] ^= 0x04;
        assert_ne!(crc32(&data), base);
    }

    /// A buffer shaped `payload ++ le32(crc32(payload))` drives the CRC
    /// register to a constant residue, so two such buffers of equal length
    /// share a CRC-32 no matter how the payloads differ. That is exactly
    /// the v2 checkpoint section shape; `fingerprint32` must not cancel.
    #[test]
    fn fingerprint_distinguishes_self_checksummed_sections() {
        let framed = |payload: &[u8]| {
            let mut buf = payload.to_vec();
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf
        };
        let a = framed(&[0x11u8; 256]);
        let b = framed(&[0xEEu8; 128].repeat(2));
        assert_ne!(a, b);
        // The trap: plain CRC-32 collides on the framed buffers.
        assert_eq!(crc32(&a), crc32(&b));
        // The fix: the avalanche fingerprint tells them apart.
        assert_ne!(fingerprint32(&a), fingerprint32(&b));
    }

    #[test]
    fn fingerprint_sensitive_to_length_and_tail() {
        let data = vec![0xA5u8; 100];
        assert_ne!(fingerprint32(&data[..99]), fingerprint32(&data));
        let mut flipped = data.clone();
        flipped[99] ^= 0x01; // last byte lives in the ragged tail chunk
        assert_ne!(fingerprint32(&flipped), fingerprint32(&data));
    }
}
