//! Corruption matrix for the sweep WAL: *any* truncation and *any*
//! single-bit flip of a valid journal must replay to a valid job-queue
//! state or a typed [`JournalError`] — never a panic, and never a
//! silently misapplied record. Truncation is the one corruption a WAL
//! must *tolerate* (a `kill -9` mid-append is a truncation), so the
//! assertions distinguish the two regimes:
//!
//! * a truncated journal salvages exactly the complete-frame prefix,
//!   reports the tear, and the rebuilt queue equals the queue built by
//!   applying that prefix of the original history — then re-defining
//!   the sweep's jobs from spec (the orchestrator's reconciliation
//!   step) restores every job, so none is silently lost;
//! * a bit-flipped journal either surfaces a typed error (CRC or magic
//!   or length-cap), or — when the flip lands in a length word and
//!   masquerades as a tear — salvages a *byte-identical prefix* of the
//!   original records and reports dropped bytes.
//!
//! Offsets are proptest-chosen so the matrix covers the magic, length
//! words, payloads and CRCs without enumerating the format by hand.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use vpic_core::journal::{Journal, JournalError, ReplayReport};
use vpic_core::queue::{JobEvent, JobQueue};

/// A legal multi-job sweep history: success, retry-then-quarantine, and
/// an orphaned lease released by a restarted orchestrator.
fn history() -> Vec<JobEvent> {
    let fp = |id: u64| 0x5EED_0000 + id;
    vec![
        JobEvent::Defined {
            id: 0,
            fingerprint: fp(0),
        },
        JobEvent::Defined {
            id: 1,
            fingerprint: fp(1),
        },
        JobEvent::Defined {
            id: 2,
            fingerprint: fp(2),
        },
        JobEvent::Leased {
            id: 0,
            attempt: 1,
            deadline_ms: 1_000,
        },
        JobEvent::Started { id: 0, attempt: 1 },
        JobEvent::Progress {
            id: 0,
            certified_step: 50,
            deadline_ms: 1_050,
        },
        JobEvent::Done {
            id: 0,
            result: vec![0xAB; 36],
        },
        JobEvent::Leased {
            id: 1,
            attempt: 1,
            deadline_ms: 2_000,
        },
        JobEvent::Started { id: 1, attempt: 1 },
        JobEvent::Failed {
            id: 1,
            attempt: 1,
            ready_at_ms: 3_000,
            cause: "sentinel tripped".into(),
        },
        JobEvent::Leased {
            id: 2,
            attempt: 1,
            deadline_ms: 3_500,
        },
        JobEvent::Started { id: 2, attempt: 1 },
        JobEvent::Progress {
            id: 2,
            certified_step: 100,
            deadline_ms: 3_600,
        },
        // Orchestrator died here; its successor released the orphan.
        JobEvent::Released { id: 2 },
        JobEvent::Leased {
            id: 1,
            attempt: 2,
            deadline_ms: 4_000,
        },
        JobEvent::Started { id: 1, attempt: 2 },
        JobEvent::Failed {
            id: 1,
            attempt: 2,
            ready_at_ms: 5_000,
            cause: "sentinel tripped again".into(),
        },
        JobEvent::Quarantined {
            id: 1,
            cause: "out of attempts".into(),
        },
        JobEvent::Leased {
            id: 2,
            attempt: 1,
            deadline_ms: 6_000,
        },
        JobEvent::Started { id: 2, attempt: 1 },
        JobEvent::Done {
            id: 2,
            result: vec![0xCD; 36],
        },
    ]
}

/// Byte image of the WAL holding [`history`], plus each frame's end
/// offset (so tests can reason about frame boundaries).
fn baseline() -> &'static (Vec<u8>, Vec<usize>) {
    static WAL: OnceLock<(Vec<u8>, Vec<usize>)> = OnceLock::new();
    WAL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("vpic_walcorrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        let mut ends = Vec::new();
        for ev in history() {
            j.append(&ev.encode()).unwrap();
            ends.push(j.len() as usize);
        }
        drop(j);
        (std::fs::read(&path).unwrap(), ends)
    })
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_walcorrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Replay `bytes` as a WAL into a fresh queue, collecting raw records.
fn replay(
    path: &Path,
    bytes: &[u8],
) -> Result<(JobQueue, Vec<Vec<u8>>, ReplayReport), JournalError> {
    std::fs::write(path, bytes).unwrap();
    let mut queue = JobQueue::new();
    let mut raw = Vec::new();
    let mut defect = None;
    let (_, report) = Journal::open(path, |payload| {
        raw.push(payload.to_vec());
        if defect.is_some() {
            return;
        }
        match JobEvent::decode(payload) {
            Ok(ev) => {
                if let Err(e) = queue.apply(&ev) {
                    defect = Some(format!("apply: {e}"));
                }
            }
            Err(e) => defect = Some(format!("decode: {e}")),
        }
    })?;
    // A CRC-clean record that fails to decode or apply would be a
    // silently dropped job transition — promote it to a test failure.
    if let Some(d) = defect {
        panic!("CRC-valid record rejected by the state machine: {d}");
    }
    Ok((queue, raw, report))
}

#[test]
fn pristine_wal_replays_full_history() {
    // Sanity for the property tests: the untampered WAL replays every
    // record, so every rejection below is caused by the tampering.
    let (bytes, ends) = baseline();
    let (queue, raw, report) = replay(&scratch("pristine.wal"), bytes).unwrap();
    assert_eq!(report.records, history().len());
    assert!(!report.torn_tail);
    assert_eq!(raw.len(), ends.len());
    assert_eq!(queue.stats().done, 2);
    assert_eq!(queue.stats().quarantined, 1);
    assert!(queue.is_settled());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_wal_salvages_exact_prefix(frac in 0usize..10_000usize) {
        let (bytes, ends) = baseline();
        let cut_len = frac * (bytes.len() - 1) / 9_999;
        let cut = &bytes[..cut_len];
        let events = history();

        if cut_len < 8 {
            // Not even a magic header: typed rejection.
            let r = replay(&scratch("trunc.wal"), cut);
            prop_assert!(matches!(r, Err(JournalError::BadMagic)));
            return Ok(());
        }
        let (queue, raw, report) =
            replay(&scratch("trunc.wal"), cut).expect("truncation is the tolerated corruption");
        // Exactly the complete frames survive — no more, no fewer.
        let complete = ends.iter().filter(|&&e| e <= cut_len).count();
        prop_assert_eq!(report.records, complete);
        // A cut at a frame boundary (or right after the magic) is
        // indistinguishable from a crash between appends: no tear.
        let at_boundary = cut_len == 8 || ends.binary_search(&cut_len).is_ok();
        prop_assert_eq!(report.torn_tail, !at_boundary);
        if report.torn_tail {
            let valid = ends[..complete].last().copied().unwrap_or(8);
            prop_assert_eq!(report.dropped_bytes, (cut_len - valid) as u64);
        }
        // Byte-identical prefix of the original records, and the queue
        // equals one built from that prefix of the history directly.
        let mut expect = JobQueue::new();
        for (i, ev) in events[..complete].iter().enumerate() {
            prop_assert_eq!(&raw[i], &ev.encode());
            expect.apply(ev).unwrap();
        }
        prop_assert_eq!(format!("{queue:?}"), format!("{expect:?}"));
        // Reconciliation heals any dropped Defined record: re-defining
        // every job from spec restores them all, none silently lost.
        let mut queue = queue;
        for id in 0..3u64 {
            queue
                .apply(&JobEvent::Defined { id, fingerprint: 0x5EED_0000 + id })
                .expect("re-defining from spec is idempotent");
        }
        prop_assert_eq!(queue.len(), 3);
    }

    #[test]
    fn single_bit_flip_is_typed_or_salvaged_prefix(
        offset in 0usize..10_000usize,
        bit in 0u32..8,
    ) {
        let (bytes, _) = baseline();
        let pos = offset * (bytes.len() - 1) / 9_999;
        let mut bad = bytes.clone();
        bad[pos] ^= 1u8 << bit;
        let events = history();

        match replay(&scratch("flip.wal"), &bad) {
            // CRC mismatch, magic damage, or an implausible length.
            Err(
                JournalError::CorruptRecord { .. } | JournalError::BadMagic,
            ) => {}
            Err(e) => return Err(format!(
                "unexpected error class for bit {bit} at byte {pos}: {e}"
            )),
            // A flip in a length word can masquerade as a torn tail;
            // the salvage must then be a byte-identical prefix with the
            // damage accounted for, never a reinterpreted record.
            Ok((_, raw, report)) => {
                prop_assert!(
                    report.torn_tail && report.records < events.len(),
                    "flip of bit {bit} at byte {pos} replayed {} records untorn",
                    report.records
                );
                for (i, r) in raw.iter().enumerate() {
                    prop_assert_eq!(r, &events[i].encode());
                }
            }
        }
    }

    #[test]
    fn killed_mid_append_salvages_and_heals(frac in 0usize..10_000usize) {
        // Simulate `kill -9` between write_all and durability: the WAL
        // ends with a proper prefix of one more valid frame. Replay
        // salvages the full history and reports the tear; the next
        // append truncates the tail and the journal is whole again.
        let (bytes, _) = baseline();
        let events = history();
        let next = JobEvent::Progress { id: 0, certified_step: 60, deadline_ms: 9_000 };
        let payload = next.encode();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&[0u8; 4]); // CRC bytes never land
        let torn_len = 1 + frac * (frame.len() - 2) / 9_999; // 1..frame.len()-1
        let mut torn = bytes.clone();
        torn.extend_from_slice(&frame[..torn_len]);

        let path = scratch("midappend.wal");
        let (queue, _, report) = replay(&path, &torn)
            .expect("a partially-written frame is a tear, not corruption");
        prop_assert_eq!(report.records, events.len());
        prop_assert!(report.torn_tail);
        prop_assert_eq!(report.dropped_bytes, torn_len as u64);
        prop_assert!(queue.is_settled());

        // Healing: one more append over the tear, then a clean replay.
        let mut q2 = JobQueue::new();
        let (mut j, _) = Journal::open(&path, |_| {}).unwrap();
        j.append(&JobEvent::Defined { id: 9, fingerprint: 9 }.encode()).unwrap();
        drop(j);
        let healed_bytes = std::fs::read(&path).unwrap();
        let (_, raw, report) = replay(&scratch("healed.wal"), &healed_bytes).unwrap();
        prop_assert!(!report.torn_tail);
        prop_assert_eq!(report.records, events.len() + 1);
        for ev in raw.iter().map(|r| JobEvent::decode(r).unwrap()) {
            q2.apply(&ev).unwrap();
        }
        prop_assert_eq!(q2.len(), 4);
    }
}
