//! Integration contract of the adaptive sort-cadence controller.
//!
//! The controller's decisions feed only on bitwise-deterministic inputs
//! (exact crosser counts, compile-time model constants), so the cadence a
//! species settles on must be identical across worker counts, layouts and
//! kernels — and must ride checkpoints so resume replays the same
//! decisions. These tests pin that contract end to end through the real
//! step loop, alongside the convergence and zero-crosser-skip behaviors.

use vpic_core::checkpoint::{load, save};
use vpic_core::{
    load_uniform, Grid, Layout, Momentum, PushKernel, Rng, Simulation, SortPolicy, Species,
    MAX_AUTO_INTERVAL,
};

/// Thermal plasma with a seeded longitudinal E perturbation (same shape
/// as the determinism suite) under a given sort policy.
fn plasma(pipelines: usize, policy: SortPolicy, vth: f32) -> Simulation {
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.8);
    let g = Grid::periodic((10, 9, 8), (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, pipelines);
    let mut e = Species::new("e", -1.0, 1.0).with_sort_policy(policy);
    let mut rng = Rng::seeded(123);
    load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 8, Momentum::thermal(vth));
    sim.add_species(e);
    let g = sim.grid.clone();
    let kx = 2.0 * std::f32::consts::PI / g.extent().0;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let x = g.x0 + (i as f32 - 0.5) * g.dx;
                sim.fields.ex[g.voxel(i, j, k)] = 0.02 * (kx * x).sin();
            }
        }
    }
    vpic_core::field_solver::sync_e(&mut sim.fields, &g, vpic_core::field_solver::bcs_of(&g));
    sim
}

/// The cadence state in bit-comparable form (the EWMA rate as raw bits).
type CadenceBits = (u32, u32, u64, u64, bool, u64, bool);

fn cadence_bits(sim: &Simulation) -> CadenceBits {
    let c = sim.species[0].cadence();
    (
        c.interval,
        c.steps_since_sort,
        c.crossers_since_sort,
        c.len_at_sort,
        c.coherent,
        c.rate.to_bits(),
        c.measured,
    )
}

/// Auto cadence is the same sequence of decisions at every worker count,
/// layout and kernel: after N steps the controller state (interval, EWMA
/// rate bits, window position) and the sort/skip counts are identical,
/// and the runs themselves stay bit-identical.
#[test]
fn auto_cadence_is_identical_across_pipelines_layouts_and_kernels() {
    let mut reference: Option<(CadenceBits, u64, u64, u64)> = None;
    for pipes in [1usize, 2, 4, 8] {
        for (layout, kernel) in [
            (Layout::Aos, PushKernel::Scalar),
            (Layout::Aosoa, PushKernel::Scalar),
            (Layout::Aosoa, PushKernel::Lane),
        ] {
            let mut sim = plasma(pipes, SortPolicy::Auto, 0.08);
            sim.set_layout(layout);
            sim.set_kernel(kernel);
            for _ in 0..40 {
                sim.step();
            }
            let coh = sim.species[0].coherence();
            let got = (
                cadence_bits(&sim),
                coh.sorts,
                coh.skipped_sorts,
                coh.tally.crossers,
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "cadence diverged at {pipes} pipes, {layout} layout, {kernel:?} kernel"
                ),
            }
        }
    }
    // The run must have actually exercised the controller.
    let (state, sorts, _, crossers) = reference.unwrap();
    assert!(sorts > 0, "no sorts in 40 steps");
    assert!(crossers > 0, "thermal run produced no crossers");
    assert!(state.6, "controller never measured a window");
}

/// Cadence state rides the checkpoint: save mid-run, restore, and the
/// resumed run replays the same sorts and lands bit-identical to the
/// uninterrupted one — including the controller's interval and rate.
#[test]
fn auto_cadence_rides_checkpoint_roundtrip() {
    let mut straight = plasma(2, SortPolicy::Auto, 0.08);
    straight.set_layout(Layout::Aosoa);
    let mut first = plasma(2, SortPolicy::Auto, 0.08);
    first.set_layout(Layout::Aosoa);
    for _ in 0..30 {
        straight.step();
        first.step();
    }
    let mut buf = Vec::new();
    save(&first, &mut buf).unwrap();
    let mut resumed = load(&mut buf.as_slice(), 2).unwrap();
    assert_eq!(resumed.species[0].sort_policy, SortPolicy::Auto);
    assert_eq!(
        cadence_bits(&resumed),
        cadence_bits(&first),
        "cadence state did not survive the dump"
    );
    // Decision-relevant counters ride the dump; kernel telemetry (lane
    // blocks/spills) deliberately does not — dumps stay canonical AoS
    // bytes whatever kernel produced them.
    let (rc, fc) = (resumed.species[0].coherence(), first.species[0].coherence());
    assert_eq!(rc.tally.pushed, fc.tally.pushed);
    assert_eq!(rc.tally.crossers, fc.tally.crossers);
    assert_eq!(rc.sorts, fc.sorts);
    assert_eq!(rc.skipped_sorts, fc.skipped_sorts);
    assert_eq!(rc.tally.lane_blocks, 0, "kernel telemetry must reset");
    for _ in 0..30 {
        straight.step();
        resumed.step();
    }
    assert_eq!(cadence_bits(&resumed), cadence_bits(&straight));
    assert_eq!(resumed.n_particles(), straight.n_particles());
    for (p, q) in straight.species[0].iter().zip(resumed.species[0].iter()) {
        assert_eq!(p, q);
    }
}

/// On a steady-state thermal deck the controller settles: once warmed up,
/// the interval stops moving and tracks the closed-form optimum for the
/// measured EWMA rate.
#[test]
fn auto_cadence_converges_on_steady_thermal_deck() {
    let mut sim = plasma(1, SortPolicy::Auto, 0.08);
    sim.set_layout(Layout::Aosoa);
    let mut intervals = Vec::new();
    let mut last_sorts = 0;
    for _ in 0..400 {
        sim.step();
        let sorts = sim.species[0].coherence().sorts;
        if sorts != last_sorts {
            last_sorts = sorts;
            intervals.push(sim.species[0].cadence().interval);
        }
    }
    assert!(
        intervals.len() >= 4,
        "expected several measurement windows, got {intervals:?}"
    );
    let tail = &intervals[intervals.len() - 2..];
    assert!(
        tail.windows(2).all(|w| w[0].abs_diff(w[1]) <= 1),
        "interval still moving at steady state: {intervals:?}"
    );
    let c = sim.species[0].cadence();
    let expected =
        vpic_core::auto_sort_interval(sim.n_particles() as u64, sim.grid.n_voxels() as u64, c.rate);
    assert!(
        c.interval.abs_diff(expected) <= 1,
        "settled interval {} far from closed form {expected}",
        c.interval
    );
}

/// A frozen plasma (zero temperature, no fields driving it) never
/// crosses a cell face, so after the first real sort every cadence-due
/// sort is skipped as provably redundant — and the skip is phase-
/// preserving, not a one-off.
#[test]
fn zero_crosser_runs_skip_redundant_sorts() {
    let mut sim = plasma(2, SortPolicy::Fixed(5), 0.0);
    sim.fields.ex.iter_mut().for_each(|v| *v = 0.0);
    sim.set_layout(Layout::Aosoa);
    for _ in 0..31 {
        sim.step();
    }
    let coh = sim.species[0].coherence();
    assert_eq!(coh.tally.crossers, 0, "frozen plasma must not cross");
    assert_eq!(coh.sorts, 1, "exactly the first due sort runs");
    assert_eq!(
        coh.skipped_sorts, 5,
        "every later cadence hit is provably redundant (steps 5,10,..,30)"
    );
    // Under Auto the measured zero rate drives the interval to the cap.
    let mut auto = plasma(1, SortPolicy::Auto, 0.0);
    auto.fields.ex.iter_mut().for_each(|v| *v = 0.0);
    for _ in 0..60 {
        auto.step();
    }
    assert_eq!(auto.species[0].cadence().interval, MAX_AUTO_INTERVAL);
}
