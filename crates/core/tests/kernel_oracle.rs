//! Differential-oracle harness for the lane-wide push kernel.
//!
//! The scalar AoS path (`advance_p_with` + [`PushKernel::Scalar`]) is the
//! *pinned oracle*: every other configuration — the AoSoA layout with the
//! scalar kernel, and the production 8-lane kernel — must reproduce its
//! results **bit for bit**: particle states, survivor order after
//! absorption, exile records (including mover bits), and every
//! per-pipeline accumulator entry. Proptest-generated states round-trip
//! through all three configurations each case; pipeline counts 1/2/3/8
//! cover the no-split, even-split, straddling-block and over-decomposed
//! regimes.
//!
//! The vendored proptest shim has no shrinking, so the harness does its
//! own: on any divergence the comparison locates the *first* differing
//! lane and fails with a single printable lane state (field values plus
//! exact bit patterns) instead of a wall of particles.

use proptest::prelude::*;
use vpic_core::{
    advance_p_with, AccumulatorArray, Grid, Interpolator, InterpolatorArray, Layout, Particle,
    ParticleBc, ParticleStore, PushCoefficients, PushKernel, LANES,
};

/// Everything one differential case needs.
struct Case {
    g: Grid,
    interp: InterpolatorArray,
    parts: Vec<Particle>,
    coeffs: PushCoefficients,
}

/// Outcome of one push configuration, in comparable form.
struct RunResult {
    parts: Vec<Particle>,
    exiles: Vec<(u32, usize, [u32; 4])>, // idx, face, mover bits (dispx,dispy,dispz,idx)
    accs: Vec<AccumulatorArray>,
}

fn run(case: &Case, layout: Layout, kernel: PushKernel, pipes: usize) -> RunResult {
    let mut store = ParticleStore::from_particles(case.parts.clone(), layout);
    let mut accs: Vec<AccumulatorArray> =
        (0..pipes).map(|_| AccumulatorArray::new(&case.g)).collect();
    let exiles = advance_p_with(
        &mut store,
        case.coeffs,
        &case.interp,
        &mut accs,
        &case.g,
        kernel,
    );
    RunResult {
        parts: store.to_particles(),
        exiles: exiles
            .iter()
            .map(|e| {
                (
                    e.idx,
                    e.face,
                    [
                        e.mover.dispx.to_bits(),
                        e.mover.dispy.to_bits(),
                        e.mover.dispz.to_bits(),
                        e.mover.idx,
                    ],
                )
            })
            .collect(),
        accs,
    }
}

/// One particle's state formatted for a failure report: decoded values
/// next to exact bit patterns, so a diverging lane is reproducible from
/// the test output alone.
fn lane_state(p: &Particle) -> String {
    format!(
        "voxel {}  dx {:+e} [{:#010x}]  dy {:+e} [{:#010x}]  dz {:+e} [{:#010x}]  \
         ux {:+e} [{:#010x}]  uy {:+e} [{:#010x}]  uz {:+e} [{:#010x}]  w {:+e} [{:#010x}]",
        p.i,
        p.dx,
        p.dx.to_bits(),
        p.dy,
        p.dy.to_bits(),
        p.dz,
        p.dz.to_bits(),
        p.ux,
        p.ux.to_bits(),
        p.uy,
        p.uy.to_bits(),
        p.uz,
        p.uz.to_bits(),
        p.w,
        p.w.to_bits(),
    )
}

fn bits(p: &Particle) -> [u32; 8] {
    [
        p.dx.to_bits(),
        p.dy.to_bits(),
        p.dz.to_bits(),
        p.i,
        p.ux.to_bits(),
        p.uy.to_bits(),
        p.uz.to_bits(),
        p.w.to_bits(),
    ]
}

/// Compare a run against the oracle; on divergence report the first
/// differing lane (particle, exile or accumulator entry) as one
/// printable state.
fn diff(oracle: &RunResult, got: &RunResult, label: &str) -> Result<(), String> {
    if oracle.parts.len() != got.parts.len() {
        return Err(format!(
            "{label}: survivor count {} vs oracle {}",
            got.parts.len(),
            oracle.parts.len()
        ));
    }
    for (k, (a, b)) in oracle.parts.iter().zip(got.parts.iter()).enumerate() {
        if bits(a) != bits(b) {
            return Err(format!(
                "{label}: first divergent lane = particle {k}\n  oracle: {}\n  kernel: {}",
                lane_state(a),
                lane_state(b)
            ));
        }
    }
    if oracle.exiles != got.exiles {
        let k = oracle
            .exiles
            .iter()
            .zip(got.exiles.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(oracle.exiles.len().min(got.exiles.len()));
        return Err(format!(
            "{label}: exile list diverges at entry {k}: oracle {:?} vs kernel {:?}",
            oracle.exiles.get(k),
            got.exiles.get(k)
        ));
    }
    for (pipe, (a, b)) in oracle.accs.iter().zip(got.accs.iter()).enumerate() {
        for (v, (x, y)) in a.data.iter().zip(b.data.iter()).enumerate() {
            for n in 0..4 {
                let pairs = [
                    ("jx", x.jx[n], y.jx[n]),
                    ("jy", x.jy[n], y.jy[n]),
                    ("jz", x.jz[n], y.jz[n]),
                ];
                for (comp, p, q) in pairs {
                    if p.to_bits() != q.to_bits() {
                        return Err(format!(
                            "{label}: accumulator pipe {pipe} voxel {v} {comp}[{n}]: \
                             oracle {p:e} [{:#010x}] vs kernel {q:e} [{:#010x}]",
                            p.to_bits(),
                            q.to_bits()
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Run the oracle and both AoSoA kernels at `pipes` pipelines and check
/// bit-identity; `Err` carries the first-divergent-lane report.
fn check_case(case: &Case, pipes: usize) -> Result<(), String> {
    let oracle = run(case, Layout::Aos, PushKernel::Scalar, pipes);
    let scalar = run(case, Layout::Aosoa, PushKernel::Scalar, pipes);
    diff(&oracle, &scalar, &format!("aosoa-scalar @{pipes} pipes"))?;
    let lane = run(case, Layout::Aosoa, PushKernel::Lane, pipes);
    diff(&oracle, &lane, &format!("aosoa-lane @{pipes} pipes"))
}

/// Interpolator filled with random (physically unconstrained) values:
/// bit-identity must hold for *any* field data, so no ghost sync needed.
fn random_interp(g: &Grid, rng: &mut proptest::test_runner::TestRng) -> InterpolatorArray {
    let mut ia = InterpolatorArray::new(g);
    let mut f = || (rng.unit_f64() * 2.0 - 1.0) as f32;
    for v in ia.data.iter_mut() {
        *v = Interpolator {
            ex: f(),
            dexdy: f(),
            dexdz: f(),
            d2exdydz: f(),
            ey: f(),
            deydz: f(),
            deydx: f(),
            d2eydzdx: f(),
            ez: f(),
            dezdx: f(),
            dezdy: f(),
            d2ezdxdy: f(),
            cbx: f(),
            dcbxdx: f(),
            cby: f(),
            dcbydy: f(),
            cbz: f(),
            dcbzdz: f(),
        };
    }
    ia
}

const BCS: [ParticleBc; 4] = [
    ParticleBc::Periodic,
    ParticleBc::Reflect,
    ParticleBc::Absorb,
    ParticleBc::Migrate,
];

/// Momentum classes the pathological generator draws from.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Regime {
    /// Modest thermal spread; most lanes stay in their voxel.
    Thermal,
    /// Ultra-relativistic: every lane crosses a face every step.
    AllCross,
    /// Ultra-relativistic *into* an absorbing wall: whole blocks die.
    AllAbsorbed,
    /// NaN-free denormal momenta (subnormal f32 bit patterns).
    Denormal,
    /// Exactly one live lane in the tail block.
    TailOne,
}

fn build_case(
    regime: Regime,
    dims: (usize, usize, usize),
    bc_pick: [usize; 6],
    n_parts: usize,
    seed_rng: &mut proptest::test_runner::TestRng,
) -> Case {
    let dx = 0.3f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let mut bc = [ParticleBc::Periodic; 6];
    for (f, &pick) in bc.iter_mut().zip(bc_pick.iter()) {
        *f = BCS[pick % BCS.len()];
    }
    if regime == Regime::AllAbsorbed {
        bc = [ParticleBc::Absorb; 6];
    }
    let g = Grid::new(dims, (dx, dx, dx), dt, bc);
    let interp = random_interp(&g, seed_rng);
    let n = match regime {
        // One partial tail block: 8k+1 particles, a single live tail lane.
        Regime::TailOne => (n_parts / LANES) * LANES + 1,
        _ => n_parts.max(1),
    };
    fn unit(rng: &mut proptest::test_runner::TestRng, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * rng.unit_f64() as f32
    }
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let (i, j, k) = (
            1 + (seed_rng.below(g.nx as u64) as usize),
            1 + (seed_rng.below(g.ny as u64) as usize),
            1 + (seed_rng.below(g.nz as u64) as usize),
        );
        let (ux, uy, uz) = match regime {
            Regime::Thermal | Regime::TailOne => (
                unit(seed_rng, -0.3, 0.3),
                unit(seed_rng, -0.3, 0.3),
                unit(seed_rng, -0.3, 0.3),
            ),
            // |u| >> 1 => v ~ c: guaranteed to reach a face from any
            // offset under a 0.9-Courant step when started near one.
            Regime::AllCross | Regime::AllAbsorbed => {
                let s = |r: &mut proptest::test_runner::TestRng| {
                    if r.below(2) == 0 {
                        25.0f32
                    } else {
                        -25.0
                    }
                };
                (s(seed_rng), s(seed_rng), s(seed_rng))
            }
            // Smallest positive subnormals, sign-mixed: exercises
            // gradual-underflow arithmetic in both kernels.
            Regime::Denormal => {
                let d = |r: &mut proptest::test_runner::TestRng| {
                    let mag = f32::from_bits(1 + r.below(0xFF) as u32);
                    if r.below(2) == 0 {
                        mag
                    } else {
                        -mag
                    }
                };
                (d(seed_rng), d(seed_rng), d(seed_rng))
            }
        };
        let near_face = matches!(regime, Regime::AllCross | Regime::AllAbsorbed);
        let off = |u: f32, r: &mut proptest::test_runner::TestRng| {
            if near_face {
                // Start within one step's reach of the face `u` points at.
                if u > 0.0 {
                    0.95 + 0.04 * r.unit_f64() as f32
                } else {
                    -0.95 - 0.04 * r.unit_f64() as f32
                }
            } else {
                (2.0 * r.unit_f64() - 1.0) as f32
            }
        };
        parts.push(Particle {
            dx: off(ux, seed_rng),
            dy: off(uy, seed_rng),
            dz: off(uz, seed_rng),
            i: g.voxel(i, j, k) as u32,
            ux,
            uy,
            uz,
            w: unit(seed_rng, 0.5, 2.0),
        });
    }
    let coeffs = PushCoefficients::new(-1.0, 1.0, &g);
    Case {
        g,
        interp,
        parts,
        coeffs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// General random states: the lane kernel round-trips bit-identically
    /// through the oracle at every pipeline decomposition.
    #[test]
    fn lane_kernel_matches_scalar_oracle(
        dims in (1usize..=5, 1usize..=4, 1usize..=4),
        bc_pick in (0usize..4, 0usize..4, 0usize..4, 0usize..4, 0usize..4, 0usize..4),
        n in 1usize..120,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = proptest::test_runner::TestRng::new(seed);
        let bc = [bc_pick.0, bc_pick.1, bc_pick.2, bc_pick.3, bc_pick.4, bc_pick.5];
        let case = build_case(Regime::Thermal, dims, bc, n, &mut rng);
        for pipes in [1usize, 2, 3, 8] {
            if let Err(msg) = check_case(&case, pipes) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Pathological blocks: every lane crossing, whole blocks absorbed,
    /// a single live tail lane, and NaN-free denormal momenta.
    #[test]
    fn pathological_blocks_match_scalar_oracle(
        regime in prop::sample::select(vec![
            Regime::AllCross,
            Regime::AllAbsorbed,
            Regime::Denormal,
            Regime::TailOne,
        ]),
        dims in (2usize..=4, 2usize..=4, 2usize..=4),
        bc_pick in (0usize..4, 0usize..4, 0usize..4, 0usize..4, 0usize..4, 0usize..4),
        n in 1usize..80,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = proptest::test_runner::TestRng::new(seed);
        let bc = [bc_pick.0, bc_pick.1, bc_pick.2, bc_pick.3, bc_pick.4, bc_pick.5];
        let case = build_case(regime, dims, bc, n, &mut rng);
        for pipes in [1usize, 2, 3, 8] {
            if let Err(msg) = check_case(&case, pipes) {
                prop_assert!(false, "regime {:?}: {}", regime, msg);
            }
        }
    }
}

/// A full single block where every lane exits through a different kind of
/// boundary at once (reflect/absorb/migrate/periodic mixed per face).
#[test]
fn one_block_mixed_boundary_exits() {
    let mut rng = proptest::test_runner::TestRng::new(0xB10C);
    // -x reflect, -y absorb, -z migrate, +x periodic, +y migrate, +z absorb.
    let case = build_case(
        Regime::AllCross,
        (2, 2, 2),
        [1, 2, 3, 0, 3, 2],
        LANES,
        &mut rng,
    );
    // The case must actually exercise the boundary paths, not pass vacuously.
    let oracle = run(&case, Layout::Aos, PushKernel::Scalar, 1);
    assert!(
        oracle.parts.len() < LANES || !oracle.exiles.is_empty(),
        "expected at least one absorption or exile"
    );
    for pipes in [1usize, 2, 3, 8] {
        if let Err(msg) = check_case(&case, pipes) {
            panic!("{msg}");
        }
    }
}

/// The spill path of a *straddling* block (pipeline boundary inside a
/// block) must also match: 3 pipelines over 20 particles cuts blocks 0
/// and 1 mid-block.
#[test]
fn straddling_blocks_with_crossers_match() {
    let mut rng = proptest::test_runner::TestRng::new(0x51DE);
    let case = build_case(Regime::AllCross, (3, 3, 3), [0; 6], 20, &mut rng);
    if let Err(msg) = check_case(&case, 3) {
        panic!("{msg}");
    }
}

/// The deferred-scatter batch: more full blocks than one batch holds
/// (the lane kernel queues 8 blocks of precomputed scatter work before
/// draining), with every lane crossing, so the queue fills and drains
/// mid-range *and* drains a partial batch at range end — all of it
/// bit-identical to the unbatched scalar oracle.
#[test]
fn deferred_scatter_batch_all_cross_blocks_match() {
    let mut rng = proptest::test_runner::TestRng::new(0xDEF5);
    let case = build_case(Regime::AllCross, (4, 4, 4), [0; 6], 12 * LANES, &mut rng);
    for pipes in [1usize, 2, 3, 8] {
        if let Err(msg) = check_case(&case, pipes) {
            panic!("{msg}");
        }
    }
}

/// Batched full blocks interleaved with straddling blocks: the queued
/// scatter batch must drain *before* any straddle lane pushes scalar, or
/// the accumulator deposit order (and hence its bits) would change. Ten
/// full blocks plus a ragged tail under 3 pipelines cuts blocks mid-way,
/// so batched and straddled work alternate within one push.
#[test]
fn deferred_scatter_drains_before_straddle_lanes() {
    let mut rng = proptest::test_runner::TestRng::new(0x5CA7);
    let case = build_case(
        Regime::AllCross,
        (3, 3, 3),
        [0; 6],
        10 * LANES + 5,
        &mut rng,
    );
    for pipes in [3usize, 8] {
        if let Err(msg) = check_case(&case, pipes) {
            panic!("{msg}");
        }
    }
}

/// Tail block with exactly one live lane, which is also a crosser.
#[test]
fn tail_block_single_live_crossing_lane() {
    let mut rng = proptest::test_runner::TestRng::new(0x7A11);
    let mut case = build_case(Regime::TailOne, (3, 3, 3), [0; 6], 2 * LANES, &mut rng);
    let n = case.parts.len();
    assert_eq!(n % LANES, 1, "tail regime must leave one live tail lane");
    // Make the lone tail lane ultra-relativistic so it spills.
    case.parts[n - 1].ux = 30.0;
    case.parts[n - 1].dx = 0.99;
    for pipes in [1usize, 2, 3, 8] {
        if let Err(msg) = check_case(&case, pipes) {
            panic!("{msg}");
        }
    }
}

/// The failure report itself: divergent states must render as a single
/// printable lane, not a dump of the whole store.
#[test]
fn divergence_report_prints_one_lane_state() {
    let mut rng = proptest::test_runner::TestRng::new(3);
    let case = build_case(Regime::Thermal, (2, 2, 2), [0; 6], 9, &mut rng);
    let oracle = run(&case, Layout::Aos, PushKernel::Scalar, 1);
    let mut forged = run(&case, Layout::Aos, PushKernel::Scalar, 1);
    forged.parts[3].ux = f32::from_bits(forged.parts[3].ux.to_bits() ^ 1);
    let msg = diff(&oracle, &forged, "forged").unwrap_err();
    assert!(
        msg.contains("first divergent lane = particle 3"),
        "report should name the lane: {msg}"
    );
    assert!(
        msg.contains("voxel"),
        "report should print the lane state: {msg}"
    );
    assert_eq!(
        msg.lines().count(),
        3,
        "one-lane report (label + oracle + kernel), got: {msg}"
    );
}
